// remapd_ckpt: checkpoint inspector. Validates a checkpoint file (magic,
// version, declared size, every CRC) and dumps its contents as JSON:
// header + section table, the RunMeta identity card, the config
// fingerprint, a per-crossbar fault summary of the "rcs" section, the BIST
// density map, and the task -> crossbar assignment.
//
// Exit status: 0 on a valid checkpoint, 1 on a corrupt/unreadable one (the
// CI resume job relies on the nonzero exit to catch bit flips).
//
// Usage: remapd_ckpt <checkpoint-file>

#include <cstdio>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "core/fault_density_map.hpp"
#include "xbar/mapper.hpp"

namespace {

using namespace remapd;

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void dump_sections(const ckpt::CheckpointReader& r) {
  std::printf("  \"format_version\": %u,\n  \"sections\": [",
              ckpt::kFormatVersion);
  bool first = true;
  for (const ckpt::SectionInfo& s : r.sections()) {
    std::printf("%s\n    {\"name\": \"%s\", \"offset\": %llu, \"size\": %llu, "
                "\"crc32\": %u}",
                first ? "" : ",", esc(s.name).c_str(),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size), s.crc);
    first = false;
  }
  std::printf("\n  ]");
}

void dump_meta(const ckpt::CheckpointReader& r) {
  ckpt::ByteReader br = r.open("meta");
  ckpt::RunMeta m;
  m.load(br);
  std::printf(",\n  \"meta\": {\"model\": \"%s\", \"policy\": \"%s\", "
              "\"dataset\": \"%s\", \"seed\": %llu, \"epochs_total\": %llu, "
              "\"epochs_completed\": %llu, \"crossbars\": %llu, "
              "\"tasks\": %llu}",
              esc(m.model).c_str(), esc(m.policy).c_str(),
              esc(m.dataset).c_str(),
              static_cast<unsigned long long>(m.seed),
              static_cast<unsigned long long>(m.epochs_total),
              static_cast<unsigned long long>(m.epochs_completed),
              static_cast<unsigned long long>(m.crossbars),
              static_cast<unsigned long long>(m.tasks));
}

void dump_config(const ckpt::CheckpointReader& r) {
  ckpt::ByteReader br = r.open("config");
  const auto pairs = ckpt::load_string_pairs(br);
  std::printf(",\n  \"config\": {");
  bool first = true;
  for (const auto& [k, v] : pairs) {
    std::printf("%s\n    \"%s\": \"%s\"", first ? "" : ",", esc(k).c_str(),
                esc(v).c_str());
    first = false;
  }
  std::printf("\n  }");
}

void dump_fault_summary(const ckpt::CheckpointReader& r) {
  ckpt::ByteReader br = r.open("rcs");
  const std::uint64_t count = br.u64();
  std::size_t faults = 0, sa0 = 0, sa1 = 0, faulty_xbars = 0;
  std::uint64_t writes = 0;
  std::size_t worst = 0;
  double worst_density = 0.0, density_sum = 0.0;
  std::size_t cell_bits = 0, coded_bytes = 0, fp32_bytes = 0;
  std::vector<std::size_t> code_hist;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto s = Crossbar::summarize_snapshot(br);
    faults += s.fault_count;
    sa0 += s.sa0;
    sa1 += s.sa1;
    writes += s.array_writes;
    if (s.cell_bits > 0) {
      cell_bits = s.cell_bits;
      coded_bytes += s.coded_bytes;
      fp32_bytes += s.fp32_equiv_bytes;
      if (code_hist.size() < s.code_hist.size())
        code_hist.resize(s.code_hist.size(), 0);
      for (std::size_t c = 0; c < s.code_hist.size(); ++c)
        code_hist[c] += s.code_hist[c];
    }
    if (s.fault_count) ++faulty_xbars;
    const double d = s.rows != 0 && s.cols != 0
                         ? static_cast<double>(s.fault_count) /
                               static_cast<double>(s.rows * s.cols)
                         : 0.0;
    density_sum += d;
    if (d > worst_density) {
      worst_density = d;
      worst = static_cast<std::size_t>(i);
    }
  }
  std::printf(",\n  \"faults\": {\"crossbars\": %llu, \"faulty_crossbars\": "
              "%zu, \"total_faults\": %zu, \"sa0\": %zu, \"sa1\": %zu, "
              "\"array_writes\": %llu, \"mean_density\": %.8g, "
              "\"worst_crossbar\": %zu, \"worst_density\": %.8g}",
              static_cast<unsigned long long>(count), faulty_xbars, faults,
              sa0, sa1, static_cast<unsigned long long>(writes),
              count ? density_sum / static_cast<double>(count) : 0.0, worst,
              worst_density);
  if (cell_bits > 0) {
    // Level-coded arrays: bits per cell, the fleet-wide code histogram, and
    // the packed-nibble footprint vs the fp32 weight image it replaces.
    std::printf(",\n  \"quant\": {\"cell_bits\": %zu, \"coded_bytes\": %zu, "
                "\"fp32_equiv_bytes\": %zu, \"compression\": %.3g, "
                "\"code_histogram\": [",
                cell_bits, coded_bytes, fp32_bytes,
                coded_bytes ? static_cast<double>(fp32_bytes) /
                                  static_cast<double>(coded_bytes)
                            : 0.0);
    for (std::size_t c = 0; c < code_hist.size(); ++c)
      std::printf("%s%zu", c ? ", " : "", code_hist[c]);
    std::printf("]}");
  }
}

void dump_density(const ckpt::CheckpointReader& r) {
  ckpt::ByteReader br = r.open("density");
  FaultDensityMap map;
  map.load_state(br);
  std::printf(",\n  \"bist_density\": {\"crossbars\": %zu, \"surveys\": %zu, "
              "\"mean\": %.8g, \"max\": %.8g}",
              map.size(), map.surveys(), map.size() ? map.mean() : 0.0,
              map.size() ? map.max() : 0.0);
}

void dump_task_map(const ckpt::CheckpointReader& r) {
  ckpt::ByteReader br = r.open("mapper");
  LineScheme scheme = LineScheme::kSingleSided;
  const auto tasks = WeightMapper::read_task_map(br, &scheme);
  std::printf(",\n  \"line_scheme\": \"%s\"", line_scheme_name(scheme));
  std::printf(",\n  \"task_map\": [");
  bool first = true;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const auto& e = tasks[t];
    std::printf("%s\n    {\"task\": %zu, \"layer\": %zu, \"phase\": \"%s\", "
                "\"row0\": %zu, \"col0\": %zu, \"rows\": %zu, \"cols\": %zu, "
                "\"xbar\": %zu}",
                first ? "" : ",", t, e.layer, phase_name(e.phase), e.row0,
                e.col0, e.rows, e.cols, e.xbar);
    first = false;
  }
  std::printf("\n  ]");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: remapd_ckpt <checkpoint-file>\n");
    return 2;
  }
  try {
    const ckpt::CheckpointReader reader{std::string(argv[1])};
    std::printf("{\n  \"file\": \"%s\",\n", esc(argv[1]).c_str());
    dump_sections(reader);
    if (reader.has("meta")) dump_meta(reader);
    if (reader.has("config")) dump_config(reader);
    if (reader.has("rcs")) dump_fault_summary(reader);
    if (reader.has("density")) dump_density(reader);
    if (reader.has("mapper")) dump_task_map(reader);
    std::printf("\n}\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "remapd_ckpt: %s\n", e.what());
    return 1;
  }
  return 0;
}
