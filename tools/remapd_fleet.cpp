// Fleet-mode simulation server CLI: ingest a job file (CSV or JSON), run
// every job to completion across a pool of degrading simulated RCS chips,
// and report fleet throughput, queue-wait / completion-latency percentiles,
// and migration activity.
//
// Usage: remapd_fleet --jobs FILE [--flag value]...
//   --jobs FILE         job file; '['-prefixed content parses as a JSON
//                       array of objects, anything else as headered CSV.
//                       Fields: name (required), model, policy, epochs,
//                       train, test, seed, priority
//   --chips N           chips in the pool (default 3)
//   --sched NAME        fifo|priority (default fifo)
//   --slice N           epochs per scheduling quantum (default 1)
//   --max-queued N      reject submissions beyond N waiting (0 = unbounded)
//   --migrate-below X   migrate when chip health score < X (0 = off)
//   --chip-native PCT   per-chip native stuck-cell density (%, default 0)
//   --chip-wear-n PCT   crossbars gaining faults per service round (%)
//   --chip-wear-m PCT   new faulty cells per selected crossbar (%)
//   --chip-seed N       chip pool base seed (default 1)
//   --force-migrate-at N  force one migration per job once N epochs are
//                       done (determinism tests / CI smoke)
//   --csv PATH          per-job per-epoch training history (deterministic;
//                       byte-comparable across fleet layouts)
//   --summary-json PATH fleet summary as a flat JSON object
//   --serve PORT        daemon mode: serve /metrics /healthz /status /jobs
//                       on 127.0.0.1:PORT (0 = kernel-assigned) while the
//                       fleet runs, then keep serving the final state until
//                       SIGINT. Serving never perturbs the simulation: the
//                       outputs above stay byte-identical to an unserved
//                       run. Implies telemetry collection.
//   --verbose           per-step scheduler log on stderr
//
// Exit codes: 0 all jobs completed, 1 some job failed/rejected, 2 bad
// usage or unreadable job file.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "fleet/jobfile.hpp"
#include "fleet/scheduler.hpp"
#include "fleet/status.hpp"
#include "obs/http_server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"

namespace {

using namespace remapd;

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "remapd_fleet: %s (see header for flags)\n",
               msg.c_str());
  std::exit(2);
}

std::atomic<bool> g_stop{false};

void on_sigint(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  std::string jobs_path;
  std::string csv_path;
  std::string summary_json_path;
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::size_t chips = 3;
  fleet::ChipSpec chip_base;
  chip_base.name = "chip";
  fleet::SchedulerConfig sched;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--jobs") {
      jobs_path = next();
    } else if (flag == "--chips") {
      chips = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--sched") {
      sched.policy = fleet::sched_policy_from(next());
    } else if (flag == "--slice") {
      sched.slice_epochs = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--max-queued") {
      sched.max_queued = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--migrate-below") {
      sched.migrate_below = std::atof(next());
    } else if (flag == "--chip-native") {
      chip_base.native_fault_density = std::atof(next()) / 100.0;
    } else if (flag == "--chip-wear-n") {
      chip_base.wear_xbar_fraction = std::atof(next()) / 100.0;
    } else if (flag == "--chip-wear-m") {
      chip_base.wear_cell_fraction = std::atof(next()) / 100.0;
    } else if (flag == "--chip-seed") {
      chip_base.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (flag == "--force-migrate-at") {
      sched.force_migrate_at_epoch =
          static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--summary-json") {
      summary_json_path = next();
    } else if (flag == "--serve") {
      serve = true;
      serve_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (flag == "--verbose") {
      sched.verbose = true;
    } else {
      usage("unknown flag " + flag);
    }
  }
  if (jobs_path.empty()) usage("--jobs FILE is required");
  if (chips == 0) usage("--chips must be >= 1");

  fleet::StatusBoard board;
  obs::HttpServer server;
  if (serve) {
    // Daemon mode. Metrics come from the telemetry registry, so collection
    // must be on; /status and /jobs read only published StatusBoard
    // snapshots, so a polling client cannot perturb the run.
    telemetry::set_enabled(true);
    sched.status_board = &board;
    sched.stop_requested = &g_stop;
    std::signal(SIGINT, on_sigint);
    std::signal(SIGTERM, on_sigint);
    server.route("/healthz", [](const obs::HttpRequest&) {
      return obs::HttpResponse::text("ok\n");
    });
    server.route("/metrics", [](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = telemetry::kPrometheusContentType;
      r.body = telemetry::prometheus_text();
      return r;
    });
    server.route("/status", [&board](const obs::HttpRequest&) {
      return obs::HttpResponse::json(board.read().json());
    });
    server.route("/jobs", [&board](const obs::HttpRequest&) {
      return obs::HttpResponse::json(board.read().jobs_json());
    });
  }

  try {
    const std::vector<fleet::JobSpec> specs = fleet::load_job_file(jobs_path);
    fleet::ChipPool pool = fleet::ChipPool::homogeneous(chips, chip_base);
    fleet::Scheduler scheduler(pool, sched);
    for (const fleet::JobSpec& spec : specs) scheduler.submit(spec);

    if (serve) {
      scheduler.publish_status();  // /status is valid before the first step
      server.start(serve_port);
      std::fprintf(stderr,
                   "remapd_fleet: serving on http://127.0.0.1:%u/ "
                   "(/metrics /healthz /status /jobs)\n",
                   static_cast<unsigned>(server.port()));
    }

    const fleet::FleetSummary summary = scheduler.run();

    std::printf("%-12s %-10s %-10s %-9s %6s %6s %6s %8s %9s\n", "job",
                "model", "policy", "state", "epochs", "slices", "migr",
                "latency", "final_acc");
    for (const fleet::FleetJob& job : scheduler.jobs()) {
      const std::size_t epochs =
          job.trainer ? job.trainer->epochs_completed() : 0;
      const double acc =
          job.trainer ? job.trainer->result().final_test_accuracy : 0.0;
      std::printf("%-12s %-10s %-10s %-9s %6zu %6zu %6zu %8zu %9.3f\n",
                  job.spec.name.c_str(), job.spec.model.c_str(),
                  job.spec.policy.c_str(), fleet::job_state_name(job.state),
                  epochs, job.slices, job.migrations,
                  job.finish_step - job.submit_step, acc);
      if (!job.failure.empty())
        std::printf("%-12s   ^ %s\n", "", job.failure.c_str());
    }
    for (const fleet::MigrationRecord& m : scheduler.migrations())
      std::printf("migration: '%s' chip%zu -> chip%zu at epoch %zu (step "
                  "%zu, %zu byte image)\n",
                  m.job.c_str(), m.from_chip, m.to_chip, m.at_epoch, m.step,
                  m.image_bytes);
    std::fputs(summary.table().c_str(), stdout);

    if (!csv_path.empty()) {
      CsvWriter csv(csv_path);
      csv.header({"job", "model", "policy", "epoch", "loss", "train_acc",
                  "test_acc", "remaps", "faults", "new_faults"});
      for (const fleet::FleetJob& job : scheduler.jobs()) {
        if (!job.trainer) continue;
        for (const EpochRecord& e : job.trainer->result().history)
          csv.row(job.spec.name, job.spec.model, job.spec.policy, e.epoch,
                  e.train_loss, e.train_accuracy, e.test_accuracy, e.remaps,
                  e.total_faults, e.new_faults);
      }
      std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!summary_json_path.empty()) {
      std::ofstream out(summary_json_path);
      out << summary.json() << "\n";
      std::printf("wrote %s\n", summary_json_path.c_str());
    }
    if (telemetry::enabled())
      std::fputs(telemetry::summary_table().c_str(), stderr);

    if (serve) {
      // All outputs are on disk; keep answering polls on the final state
      // until the operator interrupts. A SIGINT that already landed during
      // run() (partial fleet) skips the linger entirely.
      if (!g_stop.load())
        std::fprintf(stderr,
                     "remapd_fleet: run complete; serving final state until "
                     "SIGINT\n");
      while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      server.stop();
      // Final flush with the server thread already joined — idempotent
      // against the atexit flush that follows (telemetry/export.cpp).
      telemetry::flush_to_env_paths();
    }

    return summary.completed == summary.submitted ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "remapd_fleet: %s\n", e.what());
    return 2;
  }
}
