// Terminal fleet monitor: polls a `remapd_fleet --serve` daemon's /status
// endpoint and redraws a compact fleet / chips / jobs table, top(1)-style.
//
// Usage: remapd_top [--host H] [--port P] [--interval-ms N] [--once]
//                   [--plain]
//   --host H         daemon host (default 127.0.0.1)
//   --port P         daemon port (default 8787)
//   --interval-ms N  poll period (default 1000)
//   --once           print one snapshot and exit (no screen control)
//   --plain          never emit ANSI clear/home (implied by --once)
//
// Exits 0 on a clean snapshot (or when the daemon reports done and --once),
// 1 when the daemon is unreachable. The tool is deliberately self-contained
// (own HTTP GET + own minimal JSON reader) so it links against nothing but
// the util library — it must stay usable against a daemon built from any
// other revision.

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader: parses the /status payload (objects, arrays, strings,
// numbers, booleans, null) into a tree. Strict enough for a trusted local
// daemon; not a general-purpose validator.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
  [[nodiscard]] double num(const std::string& key, double fallback = 0) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kNumber ? v->number : fallback;
  }
  [[nodiscard]] std::string text(const std::string& key) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kString ? v->str : "";
  }
  [[nodiscard]] bool truthy(const std::string& key) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kBool && v->boolean;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    error_ = &error;
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    *error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("truncated escape");
        char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Status payloads are ASCII; render any \uXXXX as '?'.
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            pos_ += 4;
            c = '?';
            break;
          default: c = e; break;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') {
      out.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        JsonValue v;
        if (!value(v)) return false;
        out.fields.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated object");
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == '}') { ++pos_; return true; }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        JsonValue v;
        if (!value(v)) return false;
        out.items.push_back(std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated array");
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == ']') { ++pos_; return true; }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.str);
    }
    if (c == 't') { out.kind = JsonValue::Kind::kBool; out.boolean = true;
                    return literal("true"); }
    if (c == 'f') { out.kind = JsonValue::Kind::kBool; out.boolean = false;
                    return literal("false"); }
    if (c == 'n') { out.kind = JsonValue::Kind::kNull;
                    return literal("null"); }
    // number
    const std::size_t start = pos_;
    if (s_[pos_] == '-' || s_[pos_] == '+') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::atof(std::string(s_.substr(start, pos_ - start)).c_str());
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* error_ = nullptr;
};

// ---------------------------------------------------------------------------
// One-shot HTTP GET (the daemon speaks Connection: close, so read-to-EOF
// framing is sufficient).

bool http_get(const std::string& host, const std::string& port,
              const std::string& path, std::string& body, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
      rc != 0) {
    error = std::string("resolve: ") + ::gai_strerror(rc);
    return false;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    error = "connect to " + host + ":" + port + " failed: " +
            std::strerror(errno);
    return false;
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    error = "malformed response (no header terminator)";
    return false;
  }
  const std::string status_line = raw.substr(0, raw.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    error = "daemon answered: " + status_line;
    return false;
  }
  body = raw.substr(hdr_end + 4);
  return true;
}

// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

void render(const JsonValue& st) {
  std::printf("fleet  step %zu  %s   jobs: %zu submitted, %zu queued, "
              "%zu running, %zu completed, %zu failed, %zu rejected   "
              "migrations: %zu\n",
              static_cast<std::size_t>(st.num("step")),
              st.truthy("done") ? "DONE   " : "RUNNING",
              static_cast<std::size_t>(st.num("submitted")),
              static_cast<std::size_t>(st.num("queued")),
              static_cast<std::size_t>(st.num("running")),
              static_cast<std::size_t>(st.num("completed")),
              static_cast<std::size_t>(st.num("failed")),
              static_cast<std::size_t>(st.num("rejected")),
              static_cast<std::size_t>(st.num("migrations")));

  const JsonValue* chips = st.find("chips");
  std::printf("\n%-4s %-10s %-12s %8s %12s %12s %6s\n", "id", "chip", "job",
              "health", "density", "trend/ep", "wear");
  if (chips)
    for (const JsonValue& c : chips->items) {
      const std::string job = c.text("job");
      std::printf("%-4zu %-10s %-12s %8.3f %12.5f %12.5f %6zu\n",
                  static_cast<std::size_t>(c.num("id")),
                  c.text("name").c_str(), job.empty() ? "-" : job.c_str(),
                  c.num("health"), c.num("mean_density"),
                  c.num("trend_per_epoch"),
                  static_cast<std::size_t>(c.num("wear_rounds")));
    }

  const JsonValue* jobs = st.find("jobs");
  std::printf("\n%-12s %-10s %-10s %-10s %9s %6s %5s %9s %8s\n", "job",
              "model", "policy", "state", "epochs", "slices", "migr",
              "test_acc", "trace_id");
  if (jobs)
    for (const JsonValue& j : jobs->items) {
      char epochs[32];
      std::snprintf(epochs, sizeof(epochs), "%zu/%zu",
                    static_cast<std::size_t>(j.num("epochs_completed")),
                    static_cast<std::size_t>(j.num("epochs_total")));
      std::printf("%-12s %-10s %-10s %-10s %9s %6zu %5zu %9.3f %8zu\n",
                  j.text("name").c_str(), j.text("model").c_str(),
                  j.text("policy").c_str(), j.text("state").c_str(), epochs,
                  static_cast<std::size_t>(j.num("slices")),
                  static_cast<std::size_t>(j.num("migrations")),
                  j.num("last_test_accuracy"),
                  static_cast<std::size_t>(j.num("trace_id")));
      const std::string failure = j.text("failure");
      if (!failure.empty())
        std::printf("%-12s   ^ %s\n", "", failure.c_str());
    }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string port = "8787";
  long interval_ms = 1000;
  bool once = false;
  bool plain = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "remapd_top: missing value for %s\n",
                     flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--host") host = next();
    else if (flag == "--port") port = next();
    else if (flag == "--interval-ms") interval_ms = std::atol(next());
    else if (flag == "--once") once = true;
    else if (flag == "--plain") plain = true;
    else {
      std::fprintf(stderr, "remapd_top: unknown flag %s (see header)\n",
                   flag.c_str());
      return 2;
    }
  }
  if (interval_ms < 50) interval_ms = 50;
  std::signal(SIGINT, on_sigint);

  bool ever_ok = false;
  while (!g_interrupted) {
    std::string body, error;
    if (!http_get(host, port, "/status", body, error)) {
      if (!ever_ok) {
        std::fprintf(stderr, "remapd_top: %s\n", error.c_str());
        return 1;
      }
      // The daemon exiting mid-watch ends the session cleanly.
      std::fprintf(stderr, "remapd_top: daemon gone (%s)\n", error.c_str());
      return 0;
    }
    JsonValue st;
    if (std::string perr; !JsonParser(body).parse(st, perr)) {
      std::fprintf(stderr, "remapd_top: bad /status payload: %s\n",
                   perr.c_str());
      return 1;
    }
    ever_ok = true;
    if (!once && !plain) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    std::printf("remapd_top  %s:%s  (poll %ldms)\n\n", host.c_str(),
                port.c_str(), interval_ms);
    render(st);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
