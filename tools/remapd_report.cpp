// remapd_report: offline reader for the health JSONL stream written by the
// reliability observatory (REMAPD_HEALTH=<path>, see src/obs/report.hpp).
//
//   remapd_report <health.jsonl> [--epochs] [--health] [--remaps] [--noc]
//                 [--top K] [--xbar N]
//
// With no section flag every section prints. Records are regrouped into
// runs on the stream's "run" lines (a bench process writes several). The
// tool is strict: the first malformed line aborts with its line number and
// exit code 1, which is what the CI smoke step relies on.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"

namespace {

using remapd::obs::JsonObject;
using remapd::obs::number_or;
using remapd::obs::string_or;

struct Options {
  std::string path;
  bool epochs = false, health = false, remaps = false, noc = false;
  std::size_t top_k = 8;
  long long xbar = -1;  ///< restrict --health to one crossbar's time-series
};

struct Run {
  JsonObject info;  ///< the "run" line (may be empty for headerless input)
  std::vector<JsonObject> epochs, health, remaps, noc;
};

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <health.jsonl> [--epochs] [--health] [--remaps] [--noc]"
               " [--top K] [--xbar N]\n";
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--epochs") opt->epochs = true;
    else if (a == "--health") opt->health = true;
    else if (a == "--remaps") opt->remaps = true;
    else if (a == "--noc") opt->noc = true;
    else if (a == "--top" || a == "--xbar") {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      const long long v = std::strtoll(argv[++i], &end, 10);
      if (!end || *end || v < 0) return false;
      if (a == "--top") opt->top_k = static_cast<std::size_t>(v);
      else opt->xbar = v;
    } else if (!a.empty() && a[0] == '-') {
      return false;
    } else if (opt->path.empty()) {
      opt->path = a;
    } else {
      return false;
    }
  }
  if (opt->path.empty()) return false;
  if (!opt->epochs && !opt->health && !opt->remaps && !opt->noc)
    opt->epochs = opt->health = opt->remaps = opt->noc = true;
  return true;
}

void print_run_header(const Run& run, std::size_t idx) {
  std::printf("== run %zu: model=%s policy=%s dataset=%s seed=%lld "
              "(%lld crossbars, %lldx%lld tiles) ==\n",
              idx, string_or(run.info, "model", "?").c_str(),
              string_or(run.info, "policy", "?").c_str(),
              string_or(run.info, "dataset", "?").c_str(),
              static_cast<long long>(number_or(run.info, "seed", 0)),
              static_cast<long long>(number_or(run.info, "crossbars", 0)),
              static_cast<long long>(number_or(run.info, "tiles_x", 0)),
              static_cast<long long>(number_or(run.info, "tiles_y", 0)));
}

void print_epochs(const Run& run) {
  if (run.epochs.empty()) return;
  std::printf("\nepochs\n%6s %7s %11s %13s %11s %10s %13s %12s %11s\n",
              "epoch", "remaps", "new_faults", "total_faults", "train_loss",
              "test_acc", "est_abs_err", "bist_cycles", "noc_cycles");
  for (const JsonObject& e : run.epochs)
    std::printf("%6lld %7lld %11lld %13lld %11.4f %10.4f %13.6f %12lld %11lld\n",
                static_cast<long long>(number_or(e, "epoch", 0)),
                static_cast<long long>(number_or(e, "remaps", 0)),
                static_cast<long long>(number_or(e, "new_faults", 0)),
                static_cast<long long>(number_or(e, "total_faults", 0)),
                number_or(e, "train_loss", 0), number_or(e, "test_accuracy", 0),
                number_or(e, "est_mean_abs_err", 0),
                static_cast<long long>(number_or(e, "bist_cycles", 0)),
                static_cast<long long>(number_or(e, "noc_cycles", 0)));
}

void print_health_row(const JsonObject& h) {
  std::printf("%6lld %6lld %11.5f %10.5f %6lld %6lld %8lld %7lld %s\n",
              static_cast<long long>(number_or(h, "epoch", 0)),
              static_cast<long long>(number_or(h, "xbar", 0)),
              number_or(h, "true_density", 0), number_or(h, "est_density", 0),
              static_cast<long long>(number_or(h, "sa0", 0)),
              static_cast<long long>(number_or(h, "sa1", 0)),
              static_cast<long long>(number_or(h, "writes", 0)),
              static_cast<long long>(number_or(h, "remaps", 0)),
              string_or(h, "phase", "?").c_str());
}

void print_health(const Run& run, const Options& opt) {
  if (run.health.empty()) return;
  const char* head = "%6s %6s %11s %10s %6s %6s %8s %7s %s\n";
  if (opt.xbar >= 0) {
    std::printf("\nhealth time-series for crossbar %lld\n", opt.xbar);
    std::printf(head, "epoch", "xbar", "true_dens", "est_dens", "sa0", "sa1",
                "writes", "remaps", "phase");
    for (const JsonObject& h : run.health)
      if (static_cast<long long>(number_or(h, "xbar", -1)) == opt.xbar)
        print_health_row(h);
    return;
  }

  double last_epoch = 0;
  for (const JsonObject& h : run.health)
    last_epoch = std::max(last_epoch, number_or(h, "epoch", 0));
  std::vector<const JsonObject*> final_rows;
  for (const JsonObject& h : run.health)
    if (number_or(h, "epoch", 0) == last_epoch) final_rows.push_back(&h);
  std::stable_sort(final_rows.begin(), final_rows.end(),
                   [](const JsonObject* a, const JsonObject* b) {
                     return number_or(*a, "true_density", 0) >
                            number_or(*b, "true_density", 0);
                   });
  if (final_rows.size() > opt.top_k) final_rows.resize(opt.top_k);

  std::printf("\ntop-%zu degraded crossbars (epoch %lld)\n", opt.top_k,
              static_cast<long long>(last_epoch));
  std::printf(head, "epoch", "xbar", "true_dens", "est_dens", "sa0", "sa1",
              "writes", "remaps", "phase");
  for (const JsonObject* h : final_rows) print_health_row(*h);
}

void print_remaps(const Run& run, const Options& opt) {
  if (run.remaps.empty()) return;
  std::printf("\nremap audit (%zu decisions)\n", run.remaps.size());
  std::printf("%6s %6s %7s %9s %11s %11s %5s %6s %s\n", "epoch", "round",
              "sender", "receiver", "send_dens", "recv_dens", "hops", "cands",
              "reason");
  for (const JsonObject& r : run.remaps) {
    const long long recv = static_cast<long long>(number_or(r, "receiver", -1));
    std::size_t cands = 0;
    const auto it = r.find("candidates");
    if (it != r.end() && it->second.is_array()) cands = it->second.arr.size();
    std::printf("%6lld %6s %7lld %9lld %11.5f %11.5f %5lld %6zu %s\n",
                static_cast<long long>(number_or(r, "epoch", 0)),
                string_or(r, "round", "?").c_str(),
                static_cast<long long>(number_or(r, "sender", 0)), recv,
                number_or(r, "sender_density", 0),
                number_or(r, "receiver_density", 0),
                static_cast<long long>(number_or(r, "hops", 0)), cands,
                string_or(r, "reason", "?").c_str());
  }
  (void)opt;
}

void print_noc(const Run& run, const Options& opt) {
  if (run.noc.empty()) return;
  // Per-epoch hotspot ranking over the per-router records.
  std::vector<double> epochs;
  for (const JsonObject& n : run.noc) {
    const double e = number_or(n, "epoch", 0);
    if (std::find(epochs.begin(), epochs.end(), e) == epochs.end())
      epochs.push_back(e);
  }
  std::sort(epochs.begin(), epochs.end());
  std::printf("\nNoC remap-traffic hotspots (top-%zu routers per epoch)\n",
              opt.top_k);
  for (const double e : epochs) {
    std::vector<const JsonObject*> rows;
    for (const JsonObject& n : run.noc)
      if (number_or(n, "epoch", 0) == e && number_or(n, "flits", 0) > 0)
        rows.push_back(&n);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const JsonObject* a, const JsonObject* b) {
                       return number_or(*a, "flits", 0) >
                              number_or(*b, "flits", 0);
                     });
    if (rows.size() > opt.top_k) rows.resize(opt.top_k);
    std::printf("  epoch %lld:", static_cast<long long>(e));
    for (const JsonObject* n : rows)
      std::printf(" r%lld(%lld)",
                  static_cast<long long>(number_or(*n, "router", 0)),
                  static_cast<long long>(number_or(*n, "flits", 0)));
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(opt.path);
  if (!in) {
    std::cerr << "remapd_report: cannot open " << opt.path << "\n";
    return 1;
  }

  std::vector<Run> runs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonObject obj;
    std::string err;
    if (!remapd::obs::parse_jsonl_line(line, &obj, &err)) {
      std::cerr << "remapd_report: " << opt.path << ":" << lineno
                << ": parse error: " << err << "\n";
      return 1;
    }
    const std::string type = string_or(obj, "type", "");
    if (type == "run") {
      runs.emplace_back();
      runs.back().info = std::move(obj);
      continue;
    }
    if (runs.empty()) runs.emplace_back();  // headerless stream
    if (type == "epoch") runs.back().epochs.push_back(std::move(obj));
    else if (type == "health") runs.back().health.push_back(std::move(obj));
    else if (type == "remap") runs.back().remaps.push_back(std::move(obj));
    else if (type == "noc") runs.back().noc.push_back(std::move(obj));
    // Unknown types are ignored: the stream may grow new record kinds.
  }

  if (runs.empty()) {
    std::cerr << "remapd_report: " << opt.path << ": no records\n";
    return 1;
  }

  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) std::printf("\n");
    print_run_header(runs[i], i);
    if (opt.epochs) print_epochs(runs[i]);
    if (opt.health) print_health(runs[i], opt);
    if (opt.remaps) print_remaps(runs[i], opt);
    if (opt.noc) print_noc(runs[i], opt);
  }
  return 0;
}
