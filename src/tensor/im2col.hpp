// im2col / col2im lowering for convolution. Conv2d forward becomes a GEMM of
// the (C_out x C_in*KH*KW) filter matrix against the im2col buffer — the same
// lowering an RCS performs when a convolution is unrolled onto crossbars.
#pragma once

#include <cstddef>

namespace remapd {

/// Parameters of a 2-D convolution lowering.
struct ConvGeom {
  std::size_t channels, height, width;   // input
  std::size_t kernel_h, kernel_w;
  std::size_t stride, pad;

  [[nodiscard]] std::size_t out_h() const {
    return (height + 2 * pad - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (width + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the im2col matrix: C*KH*KW.
  [[nodiscard]] std::size_t col_rows() const {
    return channels * kernel_h * kernel_w;
  }
  /// Columns of the im2col matrix: OH*OW.
  [[nodiscard]] std::size_t col_cols() const { return out_h() * out_w(); }
};

/// Expand one image (C,H,W row-major) into `col` of size col_rows x col_cols.
void im2col(const float* img, const ConvGeom& g, float* col);

/// Inverse scatter-add: accumulate `col` back into `img` (must be zeroed by
/// the caller when a fresh gradient is wanted).
void col2im(const float* col, const ConvGeom& g, float* img);

}  // namespace remapd
