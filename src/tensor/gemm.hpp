// General matrix multiply: BLAS sgemm semantics over the packed SIMD
// micro-kernel layer (tensor/gemm_kernel.hpp). Transposed operands are
// absorbed by the packing layer (no transpose copies); alpha == 0 / k == 0
// degenerate calls only apply the beta scale and record zero flops. The
// per-C-row floating-point accumulation order is a pure function of the
// problem shape, so results are bitwise identical at any REMAPD_THREADS.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace remapd {

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// A is MxK (after optional transpose), B is KxN, C is MxN.
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

/// Convenience wrapper on rank-2 tensors: returns A(MxK) * B(KxN).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Returns op(A) * op(B) with optional transposes.
Tensor matmul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b);

}  // namespace remapd
