// General matrix multiply kernels. A blocked scalar kernel is enough for the
// scaled-down CNN workloads of this reproduction (single CPU core); the
// interface mirrors BLAS sgemm semantics so a faster backend could be
// dropped in.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace remapd {

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// A is MxK (after optional transpose), B is KxN, C is MxN.
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

/// Convenience wrapper on rank-2 tensors: returns A(MxK) * B(KxN).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Returns op(A) * op(B) with optional transposes.
Tensor matmul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b);

}  // namespace remapd
