// Int8 symmetric-quantized GEMM fast path for quantized-cell layers
// (DESIGN.md §15; the narrow-storage payoff of ROADMAP item 4).
//
// Shape of the trick: a layer mapped onto b-bit cells stores weights on a
// (2^b)-level grid spanning [-w_max, +w_max], i.e. every weight is an
// exact small signed integer times w_max/(2^b - 1). Activations are
// quantized per call with a dynamic symmetric scale (max|x| / 127). The
// product is then an exact int32 dot — integer accumulation has no
// rounding and no order sensitivity, so every kernel path and every
// REMAPD_THREADS value produces bit-identical int32 sums, and the single
// fp32 dequantization multiply at the end is identical too. The PR-3
// determinism contract holds with *zero* arithmetic-order caveats.
//
// Layout (mirrors the fp32 packed-panel design in gemm_kernel.hpp, sized
// for byte kernels): A is packed into 4-row strips of k-quads — for each
// group of 4 consecutive k values a row contributes one little-endian
// 4-byte quad, broadcast as an int32 into the kernel. B is packed into
// 16-column strips of 64-byte quad-rows: two 32-byte halves, each lane of
// 4 interleaved k-bytes belonging to one column. That is exactly the
// operand shape of VPDPBUSD (AVX-512 VNNI) and VPMADDUBSW+VPMADDWD
// (AVX2); the portable fallback walks the same packed bytes with scalar
// ints, so all three agree exactly.
//
// Signedness: A carries the signed weights (int8), B carries activations
// biased to unsigned (u8 = q + 128); the bias is removed in the epilogue
// via the precomputed row sums of A (corr_i = 128 * sum_k qa(i,k)).
// Saturation: VPMADDUBSW saturates its int16 pair-sums, so the kernel
// contract requires |A ints| <= 63 (pair sum <= 2*255*63 = 32130 <
// 32767). Level-grid weights satisfy this with huge margin: 4-bit cells
// give |qa| <= 15, and even IR-drop gain spread (<= 1.5x) stays far
// under the cap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/gemm_kernel.hpp"  // StridedOperand

namespace remapd {

/// Hard cap on the packed signed A integers (saturation-safety of the
/// AVX2 maddubs path; see header comment). pack() clamps to this.
inline constexpr int kInt8AMax = 63;

/// Reusable packed quantized-A panels, mirroring GemmAPack: quantize and
/// pack the (effective-weight) matrix once per layer call, then run many
/// C_i = dequant(Aq * Bq_i) multiplies. Packed panels are immutable after
/// pack(), so multiply() is const and safe from the per-sample parallel
/// loop (B-side scratch is thread-local).
class Int8APack {
 public:
  /// Quantize and pack op(A) (m x k): qa = round(a / a_scale) clamped to
  /// +-kInt8AMax. For level-grid weights pass a_scale = w_max / (L - 1)
  /// and the rounding is exact. Requires a_scale > 0.
  void pack(std::size_t m, std::size_t k, StridedOperand a, float a_scale);

  /// C = dequant(packed_A * quant(B)); op(B) is k x n, C row-major m x n
  /// with leading dimension ldc, overwritten (beta = 0 semantics). B is
  /// quantized per call with scale max|B| / 127. If B contains non-finite
  /// values the caller's fp32 path should be used instead; returns false
  /// in that case without touching C.
  [[nodiscard]] bool multiply(std::size_t n, StridedOperand b, float* c,
                              std::size_t ldc) const;

  [[nodiscard]] std::size_t rows() const { return m_; }
  [[nodiscard]] std::size_t depth() const { return k_; }
  [[nodiscard]] bool packed() const { return m_ > 0; }

 private:
  std::size_t m_ = 0, k_ = 0, kq_ = 0;  // kq_ = k rounded up to quads of 4
  float a_scale_ = 0.0f;
  std::vector<std::int32_t> panels_;  // [strip][quad * 4 + row] byte-quads
  std::vector<std::int32_t> corr_;    // per-row 128 * rowsum(qa)
};

/// Name of the int8 micro-kernel selected at startup ("avx512vnni",
/// "avx2", or "portable") — surfaced in bench JSON records.
const char* int8_kernel_name();

}  // namespace remapd
