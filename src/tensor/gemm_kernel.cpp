#include "tensor/gemm_kernel.hpp"

#include <atomic>
#include <cstring>

#include "util/parallel.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define REMAPD_GEMM_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace remapd {
namespace {

std::atomic<std::uint64_t> g_scratch_allocs{0};

// Grow-only scratch arena: one per thread (workers persist across calls, so
// thread_local buffers amortize to zero allocations in steady state).
struct Arena {
  std::vector<float> buf;
  float* ensure(std::size_t n) {
    if (buf.size() < n) {
      buf.resize(n);
      g_scratch_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    return buf.data();
  }
};
thread_local Arena t_apack_arena;
thread_local Arena t_bpack_arena;

constexpr std::size_t kTile = kMR * kNR;

// ---------------------------------------------------------------------------
// Micro-kernels: full kMR x kNR tile over one packed depth chunk, written to
// an aligned tile buffer (the merge step handles tails and C update). The
// per-lane accumulation is strictly ascending in k, so every C element's FP
// order is independent of tiling, partitioning, and thread count.
// ---------------------------------------------------------------------------

using MicroFn = void (*)(std::size_t kc, const float* ap, const float* bp,
                         float* tile);

void micro_portable(std::size_t kc, const float* ap, const float* bp,
                    float* tile) {
  float acc[kTile] = {0.0f};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kNR;
    const float* arow = ap + p * kMR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = arow[r];
      float* crow = acc + r * kNR;
#pragma omp simd
      for (std::size_t j = 0; j < kNR; ++j) crow[j] += av * brow[j];
    }
  }
  std::memcpy(tile, acc, sizeof(acc));
}

#ifdef REMAPD_GEMM_X86_DISPATCH
__attribute__((target("avx2,fma"))) void micro_avx2(std::size_t kc,
                                                    const float* ap,
                                                    const float* bp,
                                                    float* tile) {
  __m256 acc[kMR][2];
  for (std::size_t r = 0; r < kMR; ++r)
    acc[r][0] = acc[r][1] = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    const float* arow = ap + p * kMR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    _mm256_storeu_ps(tile + r * kNR, acc[r][0]);
    _mm256_storeu_ps(tile + r * kNR + 8, acc[r][1]);
  }
}
#endif

struct MicroChoice {
  MicroFn fn;
  const char* name;
};

MicroChoice resolve_micro() {
#ifdef REMAPD_GEMM_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return {micro_avx2, "avx2"};
#endif
  return {micro_portable, "portable"};
}

const MicroChoice& micro_choice() {
  static const MicroChoice choice = resolve_micro();
  return choice;
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Number of kMR strips covering m rows.
inline std::size_t a_strips(std::size_t m) { return (m + kMR - 1) / kMR; }

/// Pack alpha*op(A) for all depth chunks into `dst` (layout: chunk-major,
/// then kMR strip, then [p * kMR + r]). Only strips intersecting
/// [r0, r1) are written, so concurrent callers with disjoint kMR-aligned
/// row ranges touch disjoint regions.
void pack_a_rows(std::size_t r0, std::size_t r1, std::size_t m, std::size_t k,
                 float alpha, StridedOperand a, float* dst) {
  const std::size_t nstrips = a_strips(m);
  for (std::size_t pc = 0; pc < k; pc += kKC) {
    const std::size_t kc = std::min(kKC, k - pc);
    for (std::size_t g = r0 / kMR; g * kMR < r1; ++g) {
      float* strip = dst + nstrips * kMR * pc + g * kMR * kc;
      const std::size_t rows = std::min(kMR, m - g * kMR);
      for (std::size_t r = 0; r < rows; ++r) {
        const float* src = a.ptr + (g * kMR + r) * a.row_stride +
                           pc * a.col_stride;
        for (std::size_t p = 0; p < kc; ++p)
          strip[p * kMR + r] = alpha * src[p * a.col_stride];
      }
      for (std::size_t r = rows; r < kMR; ++r)
        for (std::size_t p = 0; p < kc; ++p) strip[p * kMR + r] = 0.0f;
    }
  }
}

/// Pack op(B)[pc:pc+kc, jc:jc+ncb] into kNR-wide strips ([p * kNR + lane],
/// zero-padded lanes past ncb). Strip `s` is a disjoint region, so strips
/// parallelize as copy-only blocks.
void pack_b_strip(std::size_t s, std::size_t pc, std::size_t kc,
                  std::size_t jc, std::size_t ncb, StridedOperand b,
                  float* dst) {
  float* strip = dst + s * kNR * kc;
  const std::size_t j0 = s * kNR;
  const std::size_t lanes = std::min(kNR, ncb - j0);
  if (b.col_stride == 1) {
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = b.ptr + (pc + p) * b.row_stride + jc + j0;
      float* out = strip + p * kNR;
      for (std::size_t j = 0; j < lanes; ++j) out[j] = src[j];
      for (std::size_t j = lanes; j < kNR; ++j) out[j] = 0.0f;
    }
  } else {
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = b.ptr + (pc + p) * b.row_stride +
                         (jc + j0) * b.col_stride;
      float* out = strip + p * kNR;
      for (std::size_t j = 0; j < lanes; ++j) out[j] = src[j * b.col_stride];
      for (std::size_t j = lanes; j < kNR; ++j) out[j] = 0.0f;
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Scale rows [r0, r1) x cols [j0, j1) of C by beta. beta == 0 stores zeros
/// without reading (BLAS semantics: C may hold NaN/garbage).
void scale_c(float beta, float* c, std::size_t ldc, std::size_t r0,
             std::size_t r1, std::size_t j0, std::size_t j1) {
  if (beta == 1.0f) return;
  for (std::size_t i = r0; i < r1; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::size_t j = j0; j < j1; ++j) crow[j] = 0.0f;
    } else {
      for (std::size_t j = j0; j < j1; ++j) crow[j] *= beta;
    }
  }
}

/// Merge a full micro-tile's valid rows x cols region into C.
void merge_tile(const float* tile, float* c, std::size_t ldc,
                std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    const float* trow = tile + r * kNR;
#pragma omp simd
    for (std::size_t j = 0; j < cols; ++j) crow[j] += trow[j];
  }
}

/// Shared compute stage over pre-packed A panels: the jc/pc panel loops,
/// per-chunk B packing, and the row-partitioned tile sweep (which also
/// applies beta to its own rows at the first depth chunk).
void compute_packed(std::size_t m, std::size_t n, std::size_t k,
                    const float* apanels, StridedOperand b, float beta,
                    float* c, std::size_t ldc) {
  const MicroFn micro = micro_choice().fn;
  const std::size_t nstrips_a = a_strips(m);
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t ncb = std::min(kNC, n - jc);
    const std::size_t nstrips_b = (ncb + kNR - 1) / kNR;
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      float* bpack = t_bpack_arena.ensure(nstrips_b * kNR * kc);
      parallel_for(0, nstrips_b, 1, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s)
          pack_b_strip(s, pc, kc, jc, ncb, b, bpack);
      });
      parallel_for(0, m, kMC, [&](std::size_t r0, std::size_t r1) {
        // Each block applies beta to its own C rows right before its first
        // accumulation — no serial pre-scale pass, per-row order unchanged.
        if (pc == 0) scale_c(beta, c, ldc, r0, r1, jc, jc + ncb);
        alignas(32) float tile[kTile];
        for (std::size_t jr = 0; jr < ncb; jr += kNR) {
          const std::size_t cols = std::min(kNR, ncb - jr);
          const float* bp = bpack + (jr / kNR) * kNR * kc;
          for (std::size_t ir = r0; ir < r1; ir += kMR) {
            const std::size_t rows = std::min(kMR, r1 - ir);
            const float* ap = apanels + nstrips_a * kMR * pc +
                              (ir / kMR) * kMR * kc;
            micro(kc, ap, bp, tile);
            merge_tile(tile, c + ir * ldc + jc + jr, ldc, rows, cols);
          }
        }
      });
    }
  }
}

}  // namespace

void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 StridedOperand a, StridedOperand b, float beta, float* c,
                 std::size_t ldc) {
  float* apanels = t_apack_arena.ensure(a_strips(m) * kMR * k);
  parallel_for(0, m, kMC, [&](std::size_t r0, std::size_t r1) {
    pack_a_rows(r0, r1, m, k, alpha, a, apanels);
  });
  compute_packed(m, n, k, apanels, b, beta, c, ldc);
}

void GemmAPack::pack(std::size_t m, std::size_t k, float alpha,
                     StridedOperand a) {
  m_ = m;
  k_ = k;
  const std::size_t needed = a_strips(m) * kMR * k;
  if (needed > panels_.capacity())
    g_scratch_allocs.fetch_add(1, std::memory_order_relaxed);
  panels_.resize(needed);
  float* dst = panels_.data();
  parallel_for(0, m, kMC, [&](std::size_t r0, std::size_t r1) {
    pack_a_rows(r0, r1, m, k, alpha, a, dst);
  });
}

void GemmAPack::multiply(std::size_t n, const float* b, std::size_t ldb,
                         float beta, float* c, std::size_t ldc) const {
  compute_packed(m_, n, k_, panels_.data(), StridedOperand{b, ldb, 1}, beta,
                 c, ldc);
}

std::uint64_t gemm_scratch_allocations() {
  return g_scratch_allocs.load(std::memory_order_relaxed);
}

const char* gemm_kernel_name() { return micro_choice().name; }

}  // namespace remapd
