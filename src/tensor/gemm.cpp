#include "tensor/gemm.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "tensor/gemm_kernel.hpp"
#include "util/parallel.hpp"

namespace remapd {
namespace {

// Cached telemetry handles: registered once, updated only when telemetry is
// enabled (KernelTimer / enabled() gate the hot path). The function-local
// static makes the first (possibly concurrent) initialization race-free;
// the handles themselves are relaxed atomics.
struct GemmTelemetry {
  telemetry::Counter& calls;
  telemetry::Counter& flops;
  telemetry::Histogram& ns;
};

GemmTelemetry& gemm_telemetry() {
  auto& reg = telemetry::Registry::instance();
  static GemmTelemetry t{reg.counter("tensor.gemm.calls"),
                         reg.counter("tensor.gemm.flops"),
                         reg.histogram("tensor.gemm.ns")};
  return t;
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  GemmTelemetry& telem = gemm_telemetry();
  telemetry::KernelTimer timer(telem.calls, telem.ns);

  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    // No products are issued — only the beta scale/clear runs (and no
    // flops are recorded: telemetry counts multiplies actually performed,
    // so degenerate calls cannot inflate GFLOP/s).
    parallel_for(0, m, kMC, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        float* crow = c + i * ldc;
        if (beta == 0.0f) {
          for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
        } else if (beta != 1.0f) {
          for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
      }
    });
    return;
  }
  if (telemetry::enabled()) telem.flops.add(2ull * m * n * k);

  // Transposes are absorbed by the packing layer as operand strides — the
  // NT/TN/TT paths never materialize a transposed copy.
  const StridedOperand opa =
      trans_a ? StridedOperand{a, 1, lda} : StridedOperand{a, lda, 1};
  const StridedOperand opb =
      trans_b ? StridedOperand{b, 1, ldb} : StridedOperand{b, ldb, 1};
  gemm_packed(m, n, k, alpha, opa, opb, beta, c, ldc);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul(a, false, b, false);
}

Tensor matmul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2)
    throw std::invalid_argument("matmul: rank must be 2");
  const std::size_t m = trans_a ? a.shape()[1] : a.shape()[0];
  const std::size_t ka = trans_a ? a.shape()[0] : a.shape()[1];
  const std::size_t kb = trans_b ? b.shape()[1] : b.shape()[0];
  const std::size_t n = trans_b ? b.shape()[0] : b.shape()[1];
  if (ka != kb) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c(Shape{m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.shape()[1], b.data(),
       b.shape()[1], 0.0f, c.data(), n);
  return c;
}

}  // namespace remapd
