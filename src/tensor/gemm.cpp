#include "tensor/gemm.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace remapd {
namespace {

// Cached telemetry handles: registered once, updated only when telemetry is
// enabled (KernelTimer / enabled() gate the hot path). The function-local
// static makes the first (possibly concurrent) initialization race-free;
// the handles themselves are relaxed atomics.
struct GemmTelemetry {
  telemetry::Counter& calls;
  telemetry::Counter& flops;
  telemetry::Histogram& ns;
};

GemmTelemetry& gemm_telemetry() {
  auto& reg = telemetry::Registry::instance();
  static GemmTelemetry t{reg.counter("tensor.gemm.calls"),
                         reg.counter("tensor.gemm.flops"),
                         reg.histogram("tensor.gemm.ns")};
  return t;
}

// Cache-blocked kernel for the common non-transposed case. Block sizes are
// tuned for L1 residency of the B panel on a typical x86 core.
constexpr std::size_t kBlockM = 32;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 64;

bool panel_all_finite(const float* b, std::size_t k, std::size_t n,
                      std::size_t ldb) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* brow = b + p * ldb;
    for (std::size_t j = 0; j < n; ++j)
      if (!std::isfinite(brow[j])) return false;
  }
  return true;
}

// Lazily resolved gate for the zero-A skip. Zero entries of A may only
// short-circuit the B row when B is known finite: 0 * NaN/Inf must stay NaN
// (a diverging activation or a full-scale stuck weight must surface, not be
// masked by sparsity). The O(k*n) panel scan is wasted when A has no zeros
// — which rivals the multiply itself for skinny GEMMs — so it runs only
// when a zero entry is first encountered. The verdict is a pure function of
// B (constant for the call), so concurrent row-blocks may race to compute
// it; every racer stores the same value and the skip decision is identical
// at any thread count.
class ZeroSkipGate {
 public:
  ZeroSkipGate(const float* b, std::size_t k, std::size_t n, std::size_t ldb)
      : b_(b), k_(k), n_(n), ldb_(ldb) {}

  /// True iff the zero-A skip is safe (B panel all finite).
  bool allowed() {
    int s = state_.load(std::memory_order_relaxed);
    if (s == kUnknown) {
      s = panel_all_finite(b_, k_, n_, ldb_) ? kFinite : kNonFinite;
      state_.store(s, std::memory_order_relaxed);
    }
    return s == kFinite;
  }

 private:
  static constexpr int kUnknown = 0, kFinite = 1, kNonFinite = 2;
  const float* b_;
  std::size_t k_, n_, ldb_;
  std::atomic<int> state_{kUnknown};
};

// Kernel over the row range [r0, r1) of C. Per-row update order (the p then
// j block walk) is independent of the row partition, so splitting rows
// across threads leaves every row's FP summation order unchanged.
void gemm_nn_rows(std::size_t r0, std::size_t r1, std::size_t n,
                  std::size_t k, float alpha, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, float* c, std::size_t ldc,
                  ZeroSkipGate& gate) {
  int skip = 0;  // local cache of the gate verdict; 0 = not yet consulted
  for (std::size_t i0 = r0; i0 < r1; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, r1);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t p = p0; p < p1; ++p) {
            const float aval = alpha * a[i * lda + p];
            if (aval == 0.0f) {
              if (skip == 0) skip = gate.allowed() ? 1 : 2;
              if (skip == 1) continue;
            }
            const float* brow = b + p * ldb;
            float* crow = c + i * ldc;
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aval * brow[j];
          }
        }
      }
    }
  }
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, std::size_t lda, const float* b, std::size_t ldb,
             float* c, std::size_t ldc) {
  ZeroSkipGate gate(b, k, n, ldb);
  // Row-partitioned: each block owns a disjoint set of C rows, so there is
  // no reduction and per-row arithmetic is bitwise identical at any thread
  // count. Grain = kBlockM keeps the i-blocking aligned with the serial
  // kernel's walk.
  parallel_for(0, m, kBlockM, [&](std::size_t r0, std::size_t r1) {
    gemm_nn_rows(r0, r1, n, k, alpha, a, lda, b, ldb, c, ldc, gate);
  });
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  GemmTelemetry& telem = gemm_telemetry();
  telemetry::KernelTimer timer(telem.calls, telem.ns);
  if (telemetry::enabled()) telem.flops.add(2ull * m * n * k);

  // Scale / clear C first.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    gemm_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Transposed variants: materialize the transposed operand once. The model
  // zoo calls these on modest shapes (weight-gradient GEMMs), so the copy is
  // cheap relative to the multiply.
  std::vector<float> abuf, bbuf;
  const float* ap = a;
  std::size_t alda = lda;
  if (trans_a) {
    abuf.resize(m * k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) abuf[i * k + p] = a[p * lda + i];
    ap = abuf.data();
    alda = k;
  }
  const float* bp = b;
  std::size_t bldb = ldb;
  if (trans_b) {
    bbuf.resize(k * n);
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) bbuf[p * n + j] = b[j * ldb + p];
    bp = bbuf.data();
    bldb = n;
  }
  gemm_nn(m, n, k, alpha, ap, alda, bp, bldb, c, ldc);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul(a, false, b, false);
}

Tensor matmul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2)
    throw std::invalid_argument("matmul: rank must be 2");
  const std::size_t m = trans_a ? a.shape()[1] : a.shape()[0];
  const std::size_t ka = trans_a ? a.shape()[0] : a.shape()[1];
  const std::size_t kb = trans_b ? b.shape()[1] : b.shape()[0];
  const std::size_t n = trans_b ? b.shape()[0] : b.shape()[1];
  if (ka != kb) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c(Shape{m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.shape()[1], b.data(),
       b.shape()[1], 0.0f, c.data(), n);
  return c;
}

}  // namespace remapd
