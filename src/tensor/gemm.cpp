#include "tensor/gemm.hpp"

#include <stdexcept>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace remapd {
namespace {

// Cached telemetry handles: registered once, updated only when telemetry is
// enabled (KernelTimer / enabled() gate the hot path).
struct GemmTelemetry {
  telemetry::Counter& calls;
  telemetry::Counter& flops;
  telemetry::Histogram& ns;
};

GemmTelemetry& gemm_telemetry() {
  auto& reg = telemetry::Registry::instance();
  static GemmTelemetry t{reg.counter("tensor.gemm.calls"),
                         reg.counter("tensor.gemm.flops"),
                         reg.histogram("tensor.gemm.ns")};
  return t;
}

// Cache-blocked kernel for the common non-transposed case. Block sizes are
// tuned for L1 residency of the B panel on a typical x86 core.
constexpr std::size_t kBlockM = 32;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 64;

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, std::size_t lda, const float* b, std::size_t ldb,
             float* c, std::size_t ldc) {
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t p = p0; p < p1; ++p) {
            const float aval = alpha * a[i * lda + p];
            if (aval == 0.0f) continue;
            const float* brow = b + p * ldb;
            float* crow = c + i * ldc;
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aval * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  GemmTelemetry& telem = gemm_telemetry();
  telemetry::KernelTimer timer(telem.calls, telem.ns);
  if (telemetry::enabled()) telem.flops.add(2ull * m * n * k);

  // Scale / clear C first.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    gemm_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Transposed variants: materialize the transposed operand once. The model
  // zoo calls these on modest shapes (weight-gradient GEMMs), so the copy is
  // cheap relative to the multiply.
  std::vector<float> abuf, bbuf;
  const float* ap = a;
  std::size_t alda = lda;
  if (trans_a) {
    abuf.resize(m * k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) abuf[i * k + p] = a[p * lda + i];
    ap = abuf.data();
    alda = k;
  }
  const float* bp = b;
  std::size_t bldb = ldb;
  if (trans_b) {
    bbuf.resize(k * n);
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) bbuf[p * n + j] = b[j * ldb + p];
    bp = bbuf.data();
    bldb = n;
  }
  gemm_nn(m, n, k, alpha, ap, alda, bp, bldb, c, ldc);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul(a, false, b, false);
}

Tensor matmul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2)
    throw std::invalid_argument("matmul: rank must be 2");
  const std::size_t m = trans_a ? a.shape()[1] : a.shape()[0];
  const std::size_t ka = trans_a ? a.shape()[0] : a.shape()[1];
  const std::size_t kb = trans_b ? b.shape()[1] : b.shape()[0];
  const std::size_t n = trans_b ? b.shape()[0] : b.shape()[1];
  if (ka != kb) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c(Shape{m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.shape()[1], b.data(),
       b.shape()[1], 0.0f, c.data(), n);
  return c;
}

}  // namespace remapd
