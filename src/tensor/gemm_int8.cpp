#include "tensor/gemm_int8.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define REMAPD_INT8_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace remapd {
namespace {

// Register tile: 4 rows x 16 columns of int32 accumulators (4 rows x 2 ymm
// on AVX2/VNNI). Depth advances in quads of 4 k-values — the natural unit
// of the byte dot-product instructions.
constexpr std::size_t kQMR = 4;
constexpr std::size_t kQNR = 16;
constexpr std::size_t kQMC = 64;  // row-partition grain, multiple of kQMR

struct ByteArena {
  std::vector<std::uint8_t> buf;
  std::uint8_t* ensure(std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return buf.data();
  }
};
thread_local ByteArena t_int8_bpack_arena;
thread_local ByteArena t_int8_apack_arena;

/// Round-half-away-from-zero quantization of one value; NaN maps to 0,
/// +-inf saturate. The AVX2 twin below reproduces this lane-for-lane, so
/// quantization is identical no matter which GEMM core runs afterwards.
inline int quantize_clamped(float x, float inv, int qmax) {
  float t = x * inv;
  if (t != t) return 0;  // NaN
  const float lim = static_cast<float>(qmax);
  if (t > lim) return qmax;
  if (t < -lim) return -qmax;
  return static_cast<int>(t + (t >= 0.0f ? 0.5f : -0.5f));
}

#ifdef REMAPD_INT8_X86_DISPATCH
/// Vector twin of quantize_clamped: same multiply, same half-away-from-zero
/// rounding, same saturating clamp, NaN -> 0. Bit-identical per lane, so the
/// scalar fallback and the AVX2 packers may be mixed freely (strided vs
/// contiguous operands) without changing a single packed byte.
__attribute__((target("avx2"))) inline __m256i quantize8_avx2(__m256 v,
                                                              __m256 vinv,
                                                              __m256 vlim,
                                                              __m256i vqmax) {
  const __m256 t = _mm256_mul_ps(v, vinv);
  const __m256 half = _mm256_or_ps(
      _mm256_set1_ps(0.5f), _mm256_and_ps(t, _mm256_set1_ps(-0.0f)));
  __m256i r = _mm256_cvttps_epi32(_mm256_add_ps(t, half));
  const __m256i hi = _mm256_castps_si256(_mm256_cmp_ps(t, vlim, _CMP_GT_OQ));
  const __m256i lo = _mm256_castps_si256(_mm256_cmp_ps(
      t, _mm256_sub_ps(_mm256_setzero_ps(), vlim), _CMP_LT_OQ));
  r = _mm256_blendv_epi8(r, vqmax, hi);
  r = _mm256_blendv_epi8(
      r, _mm256_sub_epi32(_mm256_setzero_si256(), vqmax), lo);
  const __m256i nan = _mm256_castps_si256(_mm256_cmp_ps(t, t, _CMP_UNORD_Q));
  return _mm256_andnot_si256(nan, r);
}

/// NaN-sticky max-|v| over a k x n operand with contiguous rows. max() is
/// exact and order-independent, so this reduces to the same scalar result;
/// any NaN (or inf, which max propagates) yields a non-finite return that
/// the caller turns into an fp32 fallback.
__attribute__((target("avx2"))) float maxabs_scan_avx2(std::size_t k,
                                                       std::size_t n,
                                                       StridedOperand b) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  __m256 vnan = _mm256_setzero_ps();
  float tail = 0.0f;
  bool tail_nan = false;
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* row = b.ptr + kk * b.row_stride;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_loadu_ps(row + j);
      vnan = _mm256_or_ps(vnan, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
      vmax = _mm256_max_ps(vmax, _mm256_and_ps(v, absmask));
    }
    for (; j < n; ++j) {
      const float v = std::fabs(row[j]);
      if (v != v) tail_nan = true;
      else if (v > tail) tail = v;
    }
  }
  if (_mm256_movemask_ps(vnan) != 0 || tail_nan)
    return std::numeric_limits<float>::quiet_NaN();
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  float m = tail;
  for (int i = 0; i < 8; ++i)
    if (lanes[i] > m) m = lanes[i];
  return m;
}

/// Dequantize one 16-wide accumulator row: cvtepi32->ps and the multiply
/// round exactly like the scalar casts, so results match bit-for-bit.
__attribute__((target("avx2"))) void dequant_row_avx2(
    const std::int32_t* trow, std::int32_t ci, float scale, float* crow,
    std::size_t cols) {
  if (cols == kQNR) {
    const __m256i vci = _mm256_set1_epi32(ci);
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256i t0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(trow));
    const __m256i t1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(trow + 8));
    _mm256_storeu_ps(
        crow,
        _mm256_mul_ps(vs, _mm256_cvtepi32_ps(_mm256_sub_epi32(t0, vci))));
    _mm256_storeu_ps(
        crow + 8,
        _mm256_mul_ps(vs, _mm256_cvtepi32_ps(_mm256_sub_epi32(t1, vci))));
  } else {
    for (std::size_t j = 0; j < cols; ++j)
      crow[j] = static_cast<float>(trow[j] - ci) * scale;
  }
}
#endif

// ---------------------------------------------------------------------------
// Micro-kernels: one packed A strip (4 rows as int32 quads) against one
// packed B strip (16 columns, 64 bytes per quad), full depth, into an int32
// tile. Integer accumulation is exact, so the three implementations agree
// bit-for-bit by construction.
// ---------------------------------------------------------------------------

using Int8MicroFn = void (*)(std::size_t kq, const std::int32_t* ap,
                             const std::uint8_t* bp, std::int32_t* tile);

void micro_int8_portable(std::size_t kq, const std::int32_t* ap,
                         const std::uint8_t* bp, std::int32_t* tile) {
  std::int32_t acc[kQMR * kQNR] = {0};
  for (std::size_t p = 0; p < kq; ++p) {
    const std::uint8_t* bq = bp + p * 64;
    for (std::size_t r = 0; r < kQMR; ++r) {
      const std::uint32_t aq =
          static_cast<std::uint32_t>(ap[p * kQMR + r]);
      const int a0 = static_cast<std::int8_t>(aq & 0xff);
      const int a1 = static_cast<std::int8_t>((aq >> 8) & 0xff);
      const int a2 = static_cast<std::int8_t>((aq >> 16) & 0xff);
      const int a3 = static_cast<std::int8_t>((aq >> 24) & 0xff);
      std::int32_t* arow = acc + r * kQNR;
      for (std::size_t j = 0; j < kQNR; ++j) {
        const std::uint8_t* lane = bq + (j / 8) * 32 + (j % 8) * 4;
        arow[j] += a0 * lane[0] + a1 * lane[1] + a2 * lane[2] + a3 * lane[3];
      }
    }
  }
  std::memcpy(tile, acc, sizeof(acc));
}

#ifdef REMAPD_INT8_X86_DISPATCH
__attribute__((target("avx2"))) void micro_int8_avx2(std::size_t kq,
                                                     const std::int32_t* ap,
                                                     const std::uint8_t* bp,
                                                     std::int32_t* tile) {
  __m256i acc[kQMR][2];
  for (std::size_t r = 0; r < kQMR; ++r)
    acc[r][0] = acc[r][1] = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t p = 0; p < kq; ++p) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * 64));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * 64 + 32));
    for (std::size_t r = 0; r < kQMR; ++r) {
      const __m256i va = _mm256_set1_epi32(ap[p * kQMR + r]);
      // u8 (B) x s8 (A) pair-sums; exact because |A| <= 63 (see header).
      acc[r][0] = _mm256_add_epi32(
          acc[r][0],
          _mm256_madd_epi16(_mm256_maddubs_epi16(b0, va), ones));
      acc[r][1] = _mm256_add_epi32(
          acc[r][1],
          _mm256_madd_epi16(_mm256_maddubs_epi16(b1, va), ones));
    }
  }
  for (std::size_t r = 0; r < kQMR; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tile + r * kQNR),
                        acc[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tile + r * kQNR + 8),
                        acc[r][1]);
  }
}

__attribute__((target("avx512vnni,avx512vl"))) void micro_int8_vnni(
    std::size_t kq, const std::int32_t* ap, const std::uint8_t* bp,
    std::int32_t* tile) {
  __m256i acc[kQMR][2];
  for (std::size_t r = 0; r < kQMR; ++r)
    acc[r][0] = acc[r][1] = _mm256_setzero_si256();
  for (std::size_t p = 0; p < kq; ++p) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * 64));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * 64 + 32));
    for (std::size_t r = 0; r < kQMR; ++r) {
      const __m256i va = _mm256_set1_epi32(ap[p * kQMR + r]);
      acc[r][0] = _mm256_dpbusd_epi32(acc[r][0], b0, va);
      acc[r][1] = _mm256_dpbusd_epi32(acc[r][1], b1, va);
    }
  }
  for (std::size_t r = 0; r < kQMR; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tile + r * kQNR),
                        acc[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tile + r * kQNR + 8),
                        acc[r][1]);
  }
}
#endif

struct Int8MicroChoice {
  Int8MicroFn fn;
  const char* name;
  // True when the AVX2 quantize/pack/scan helpers may run (contiguous
  // operands only; strided operands always take the scalar packers).
  bool vector_pack;
};

Int8MicroChoice resolve_int8_micro() {
#ifdef REMAPD_INT8_X86_DISPATCH
  const bool vp = __builtin_cpu_supports("avx2") != 0;
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512vl"))
    return {micro_int8_vnni, "avx512vnni", vp};
  if (vp) return {micro_int8_avx2, "avx2", true};
#endif
  return {micro_int8_portable, "portable", false};
}

const Int8MicroChoice& int8_micro_choice() {
  static const Int8MicroChoice choice = resolve_int8_micro();
  return choice;
}

inline std::size_t quad_count(std::size_t k) { return (k + 3) / 4; }
inline std::size_t b_strips(std::size_t n) { return (n + kQNR - 1) / kQNR; }

/// Quantize-and-pack one 16-column B strip: 64 bytes per k-quad, two
/// 32-byte halves of 8 lanes x 4 interleaved k-bytes (the VPDPBUSD operand
/// shape). Padding lanes/k-bytes hold 128 (= quantized zero).
void pack_b_strip_u8(std::size_t s, std::size_t k, std::size_t kq,
                     std::size_t n, StridedOperand b, float inv,
                     std::uint8_t* dst) {
  std::uint8_t* strip = dst + s * kq * 64;
  const std::size_t j0 = s * kQNR;
  const std::size_t lanes = std::min(kQNR, n - j0);
  for (std::size_t p = 0; p < kq; ++p) {
    std::uint8_t* out = strip + p * 64;
    for (std::size_t j = 0; j < kQNR; ++j) {
      std::uint8_t* lane = out + (j / 8) * 32 + (j % 8) * 4;
      if (j < lanes) {
        const float* src = b.ptr + (j0 + j) * b.col_stride;
        for (std::size_t t = 0; t < 4; ++t) {
          const std::size_t kk = p * 4 + t;
          lane[t] = static_cast<std::uint8_t>(
              kk < k
                  ? quantize_clamped(src[kk * b.row_stride], inv, 127) + 128
                  : 128);
        }
      } else {
        lane[0] = lane[1] = lane[2] = lane[3] = 128;
      }
    }
  }
}

#ifdef REMAPD_INT8_X86_DISPATCH
/// AVX2 B-strip packer (contiguous rows). Quantizes each k-row of the strip
/// to 16 bytes (u8 = q + 128; padding columns quantize the zero fill to
/// 128), then byte-transposes groups of four rows into the 64-byte quad
/// layout with punpck — byte-identical output to pack_b_strip_u8.
__attribute__((target("avx2"))) void pack_b_strip_u8_avx2(
    std::size_t s, std::size_t k, std::size_t kq, std::size_t n,
    StridedOperand b, float inv, std::uint8_t* dst) {
  std::uint8_t* strip = dst + s * kq * 64;
  const std::size_t j0 = s * kQNR;
  const std::size_t lanes = std::min(kQNR, n - j0);
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vlim = _mm256_set1_ps(127.0f);
  const __m256i vqmax = _mm256_set1_epi32(127);
  const __m256i bias = _mm256_set1_epi16(128);
  alignas(16) std::uint8_t rowq[4][16];
  for (std::size_t p = 0; p < kq; ++p) {
    for (std::size_t t = 0; t < 4; ++t) {
      const std::size_t kk = p * 4 + t;
      if (kk >= k) {
        std::memset(rowq[t], 128, 16);
        continue;
      }
      const float* src = b.ptr + kk * b.row_stride + j0;
      __m256 f0, f1;
      if (lanes == kQNR) {
        f0 = _mm256_loadu_ps(src);
        f1 = _mm256_loadu_ps(src + 8);
      } else {
        alignas(32) float f[16] = {0};
        std::memcpy(f, src, lanes * sizeof(float));
        f0 = _mm256_load_ps(f);
        f1 = _mm256_load_ps(f + 8);
      }
      const __m256i q0 = quantize8_avx2(f0, vinv, vlim, vqmax);
      const __m256i q1 = quantize8_avx2(f1, vinv, vlim, vqmax);
      __m256i w = _mm256_permute4x64_epi64(_mm256_packs_epi32(q0, q1), 0xD8);
      w = _mm256_add_epi16(w, bias);
      _mm_store_si128(reinterpret_cast<__m128i*>(rowq[t]),
                      _mm_packus_epi16(_mm256_castsi256_si128(w),
                                       _mm256_extracti128_si256(w, 1)));
    }
    const __m128i r0 = _mm_load_si128(reinterpret_cast<__m128i*>(rowq[0]));
    const __m128i r1 = _mm_load_si128(reinterpret_cast<__m128i*>(rowq[1]));
    const __m128i r2 = _mm_load_si128(reinterpret_cast<__m128i*>(rowq[2]));
    const __m128i r3 = _mm_load_si128(reinterpret_cast<__m128i*>(rowq[3]));
    const __m128i xl = _mm_unpacklo_epi8(r0, r1);
    const __m128i yl = _mm_unpacklo_epi8(r2, r3);
    const __m128i xh = _mm_unpackhi_epi8(r0, r1);
    const __m128i yh = _mm_unpackhi_epi8(r2, r3);
    std::uint8_t* out = strip + p * 64;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                     _mm_unpacklo_epi16(xl, yl));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16),
                     _mm_unpackhi_epi16(xl, yl));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32),
                     _mm_unpacklo_epi16(xh, yh));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48),
                     _mm_unpackhi_epi16(xh, yh));
  }
}

/// AVX2 A-strip packer (contiguous rows). Quantizes each row of the 4-row
/// strip to int8 (qmax = kInt8AMax) into a scratch row, accumulates the row
/// sum vectorially, then scatters little-endian 4-byte quads into the
/// panel. Matches the scalar path byte-for-byte (zero padding past k).
__attribute__((target("avx2"))) void pack_a_strip_avx2(
    std::size_t g, std::size_t m, std::size_t k, std::size_t kq,
    StridedOperand a, float inv, std::int32_t* dst, std::int32_t* corr,
    std::uint8_t* rowq) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vlim = _mm256_set1_ps(static_cast<float>(kInt8AMax));
  const __m256i vqmax = _mm256_set1_epi32(kInt8AMax);
  std::int32_t* panel = dst + g * kq * kQMR;
  for (std::size_t r = 0; r < kQMR; ++r) {
    const std::size_t i = g * kQMR + r;
    if (i >= m) {
      for (std::size_t p = 0; p < kq; ++p) panel[p * kQMR + r] = 0;
      continue;
    }
    const float* src = a.ptr + i * a.row_stride;
    __m256i vsum = _mm256_setzero_si256();
    std::size_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
      const __m256i q0 = quantize8_avx2(_mm256_loadu_ps(src + kk), vinv,
                                        vlim, vqmax);
      const __m256i q1 = quantize8_avx2(_mm256_loadu_ps(src + kk + 8), vinv,
                                        vlim, vqmax);
      vsum = _mm256_add_epi32(vsum, _mm256_add_epi32(q0, q1));
      const __m256i w =
          _mm256_permute4x64_epi64(_mm256_packs_epi32(q0, q1), 0xD8);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(rowq + kk),
                       _mm_packs_epi16(_mm256_castsi256_si128(w),
                                       _mm256_extracti128_si256(w, 1)));
    }
    if (kk < k) {
      alignas(32) float f[16] = {0};
      std::memcpy(f, src + kk, (k - kk) * sizeof(float));
      const __m256i q0 = quantize8_avx2(_mm256_load_ps(f), vinv, vlim, vqmax);
      const __m256i q1 =
          quantize8_avx2(_mm256_load_ps(f + 8), vinv, vlim, vqmax);
      vsum = _mm256_add_epi32(vsum, _mm256_add_epi32(q0, q1));
      const __m256i w =
          _mm256_permute4x64_epi64(_mm256_packs_epi32(q0, q1), 0xD8);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(rowq + kk),
                       _mm_packs_epi16(_mm256_castsi256_si128(w),
                                       _mm256_extracti128_si256(w, 1)));
    }
    alignas(32) std::int32_t sl[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(sl), vsum);
    std::int32_t rowsum = 0;
    for (int l = 0; l < 8; ++l) rowsum += sl[l];
    corr[i] = 128 * rowsum;
    for (std::size_t p = 0; p < kq; ++p) {
      std::uint32_t quad;
      std::memcpy(&quad, rowq + p * 4, 4);
      panel[p * kQMR + r] = static_cast<std::int32_t>(quad);
    }
  }
}
#endif

}  // namespace

void Int8APack::pack(std::size_t m, std::size_t k, StridedOperand a,
                     float a_scale) {
  if (!(a_scale > 0.0f))
    throw std::invalid_argument("Int8APack::pack: a_scale must be > 0");
  m_ = m;
  k_ = k;
  kq_ = quad_count(k);
  a_scale_ = a_scale;
  const float inv = 1.0f / a_scale;
  const std::size_t nstrips = (m + kQMR - 1) / kQMR;
  panels_.resize(nstrips * kq_ * kQMR);
  corr_.assign(m, 0);
  std::int32_t* dst = panels_.data();
  std::int32_t* corr = corr_.data();
  parallel_for(0, nstrips, 1, [&](std::size_t g0, std::size_t g1) {
#ifdef REMAPD_INT8_X86_DISPATCH
    if (int8_micro_choice().vector_pack && a.col_stride == 1) {
      std::uint8_t* rowq =
          t_int8_apack_arena.ensure(((k + 15) / 16) * 16);
      for (std::size_t g = g0; g < g1; ++g)
        pack_a_strip_avx2(g, m, k, kq_, a, inv, dst, corr, rowq);
      return;
    }
#endif
    for (std::size_t g = g0; g < g1; ++g) {
      for (std::size_t p = 0; p < kq_; ++p) {
        for (std::size_t r = 0; r < kQMR; ++r) {
          const std::size_t i = g * kQMR + r;
          std::uint32_t quad = 0;
          if (i < m) {
            const float* src = a.ptr + i * a.row_stride;
            std::int32_t rowsum = 0;
            for (std::size_t t = 0; t < 4; ++t) {
              const std::size_t kk = p * 4 + t;
              int q = 0;
              if (kk < k)
                q = quantize_clamped(src[kk * a.col_stride], inv, kInt8AMax);
              rowsum += q;
              quad |= static_cast<std::uint32_t>(
                          static_cast<std::uint8_t>(static_cast<std::int8_t>(q)))
                      << (8 * t);
            }
            corr[i] += 128 * rowsum;
          }
          dst[g * kq_ * kQMR + p * kQMR + r] =
              static_cast<std::int32_t>(quad);
        }
      }
    }
  });
}

bool Int8APack::multiply(std::size_t n, StridedOperand b, float* c,
                         std::size_t ldc) const {
  if (!packed())
    throw std::logic_error("Int8APack::multiply before pack()");
  if (n == 0) return true;

  // Dynamic symmetric activation scale. A NaN anywhere is tracked
  // explicitly and poisons maxabs, signalling the caller to take the fp32
  // path so divergence is never silently clamped away. (A plain
  // `!(v <= maxabs)` update is NOT sticky: once maxabs is NaN the next
  // finite element compares false and overwrites it.)
  float maxabs = 0.0f;
  const bool vec_pack =
      int8_micro_choice().vector_pack && b.col_stride == 1;
#ifdef REMAPD_INT8_X86_DISPATCH
  if (vec_pack) {
    maxabs = maxabs_scan_avx2(k_, n, b);
  } else
#endif
  {
    bool saw_nan = false;
    for (std::size_t kk = 0; kk < k_; ++kk) {
      const float* row = b.ptr + kk * b.row_stride;
      for (std::size_t j = 0; j < n; ++j) {
        const float v = std::fabs(row[j * b.col_stride]);
        if (v != v) saw_nan = true;
        else if (v > maxabs) maxabs = v;
      }
    }
    if (saw_nan) maxabs = std::numeric_limits<float>::quiet_NaN();
  }
  if (!std::isfinite(maxabs)) return false;
  const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
  const float b_scale = maxabs > 0.0f ? maxabs / 127.0f : 0.0f;
  const float scale = a_scale_ * b_scale;

  const std::size_t nstrips = b_strips(n);
  std::uint8_t* bpack = t_int8_bpack_arena.ensure(nstrips * kq_ * 64);
  parallel_for(0, nstrips, 1, [&](std::size_t s0, std::size_t s1) {
#ifdef REMAPD_INT8_X86_DISPATCH
    if (vec_pack) {
      for (std::size_t s = s0; s < s1; ++s)
        pack_b_strip_u8_avx2(s, k_, kq_, n, b, inv, bpack);
      return;
    }
#endif
    for (std::size_t s = s0; s < s1; ++s)
      pack_b_strip_u8(s, k_, kq_, n, b, inv, bpack);
  });

  const Int8MicroFn micro = int8_micro_choice().fn;
  const bool vec_dequant = int8_micro_choice().vector_pack;
  const std::int32_t* corr = corr_.data();
  const std::int32_t* panels = panels_.data();
  const std::size_t kq = kq_;
  parallel_for(0, m_, kQMC, [&](std::size_t r0, std::size_t r1) {
    alignas(32) std::int32_t tile[kQMR * kQNR];
    for (std::size_t s = 0; s < nstrips; ++s) {
      const std::size_t j0 = s * kQNR;
      const std::size_t cols = std::min(kQNR, n - j0);
      const std::uint8_t* bp = bpack + s * kq * 64;
      for (std::size_t ir = r0; ir < r1; ir += kQMR) {
        const std::size_t rows = std::min(kQMR, r1 - ir);
        micro(kq, panels + (ir / kQMR) * kq * kQMR, bp, tile);
        for (std::size_t r = 0; r < rows; ++r) {
          const std::size_t i = ir + r;
          float* crow = c + i * ldc + j0;
          const std::int32_t ci = corr[i];
          const std::int32_t* trow = tile + r * kQNR;
#ifdef REMAPD_INT8_X86_DISPATCH
          if (vec_dequant) {
            dequant_row_avx2(trow, ci, scale, crow, cols);
            continue;
          }
#endif
          for (std::size_t j = 0; j < cols; ++j)
            crow[j] = static_cast<float>(trow[j] - ci) * scale;
        }
      }
    }
  });
  return true;
}

const char* int8_kernel_name() { return int8_micro_choice().name; }

}  // namespace remapd
