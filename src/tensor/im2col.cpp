#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "telemetry/telemetry.hpp"

namespace remapd {
namespace {

struct LoweringTelemetry {
  telemetry::Counter& calls;
  telemetry::Histogram& ns;
};

LoweringTelemetry& im2col_telemetry() {
  auto& reg = telemetry::Registry::instance();
  static LoweringTelemetry t{reg.counter("tensor.im2col.calls"),
                             reg.histogram("tensor.im2col.ns")};
  return t;
}

LoweringTelemetry& col2im_telemetry() {
  auto& reg = telemetry::Registry::instance();
  static LoweringTelemetry t{reg.counter("tensor.col2im.calls"),
                             reg.histogram("tensor.col2im.ns")};
  return t;
}

}  // namespace

void im2col(const float* img, const ConvGeom& g, float* col) {
  LoweringTelemetry& telem = im2col_telemetry();
  telemetry::KernelTimer timer(telem.calls, telem.ns);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = col + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          // Input row for this output row; pad handled by bounds check.
          const long iy = static_cast<long>(y * g.stride + kh) -
                          static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(g.height)) {
            for (std::size_t x = 0; x < ow; ++x) dst[y * ow + x] = 0.0f;
            continue;
          }
          const float* src =
              img + (c * g.height + static_cast<std::size_t>(iy)) * g.width;
          if (g.stride == 1) {
            // Unit stride: the valid x range maps to one contiguous source
            // slice [x0, x1); memcpy it and zero-fill the pad edges.
            const long off = static_cast<long>(kw) - static_cast<long>(g.pad);
            const std::size_t x0 = static_cast<std::size_t>(
                std::max<long>(0, -off));
            const std::size_t x1 = static_cast<std::size_t>(std::max<long>(
                0, std::min<long>(static_cast<long>(ow),
                                  static_cast<long>(g.width) - off)));
            float* drow = dst + y * ow;
            for (std::size_t x = 0; x < x0; ++x) drow[x] = 0.0f;
            if (x1 > x0)
              std::memcpy(drow + x0, src + static_cast<std::size_t>(off) + x0,
                          (x1 - x0) * sizeof(float));
            for (std::size_t x = x1; x < ow; ++x) drow[x] = 0.0f;
            continue;
          }
          for (std::size_t x = 0; x < ow; ++x) {
            const long ix = static_cast<long>(x * g.stride + kw) -
                            static_cast<long>(g.pad);
            dst[y * ow + x] =
                (ix < 0 || ix >= static_cast<long>(g.width))
                    ? 0.0f
                    : src[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeom& g, float* img) {
  LoweringTelemetry& telem = col2im_telemetry();
  telemetry::KernelTimer timer(telem.calls, telem.ns);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const long iy = static_cast<long>(y * g.stride + kh) -
                          static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(g.height)) continue;
          float* dst =
              img + (c * g.height + static_cast<std::size_t>(iy)) * g.width;
          for (std::size_t x = 0; x < ow; ++x) {
            const long ix = static_cast<long>(x * g.stride + kw) -
                            static_cast<long>(g.pad);
            if (ix < 0 || ix >= static_cast<long>(g.width)) continue;
            dst[static_cast<std::size_t>(ix)] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace remapd
