#include "tensor/im2col.hpp"

namespace remapd {

void im2col(const float* img, const ConvGeom& g, float* col) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = col + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          // Input row for this output row; pad handled by bounds check.
          const long iy = static_cast<long>(y * g.stride + kh) -
                          static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(g.height)) {
            for (std::size_t x = 0; x < ow; ++x) dst[y * ow + x] = 0.0f;
            continue;
          }
          const float* src =
              img + (c * g.height + static_cast<std::size_t>(iy)) * g.width;
          for (std::size_t x = 0; x < ow; ++x) {
            const long ix = static_cast<long>(x * g.stride + kw) -
                            static_cast<long>(g.pad);
            dst[y * ow + x] =
                (ix < 0 || ix >= static_cast<long>(g.width))
                    ? 0.0f
                    : src[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeom& g, float* img) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const long iy = static_cast<long>(y * g.stride + kh) -
                          static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(g.height)) continue;
          float* dst =
              img + (c * g.height + static_cast<std::size_t>(iy)) * g.width;
          for (std::size_t x = 0; x < ow; ++x) {
            const long ix = static_cast<long>(x * g.stride + kw) -
                            static_cast<long>(g.pad);
            if (ix < 0 || ix >= static_cast<long>(g.width)) continue;
            dst[static_cast<std::size_t>(ix)] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace remapd
