// Packed, cache-blocked GEMM micro-kernel layer.
//
// The compute core is a classic three-level blocking (BLIS-style):
//
//   for jc in N step kNC:                 // B panel column block
//     for pc in K step kKC:               // depth block (L2-resident panels)
//       pack B[pc:pc+kc, jc:jc+nc] into kNR-wide strips      (shared)
//       parallel_for row blocks of kMC rows:                  (disjoint C rows)
//         pack alpha*op(A)[rows, pc:pc+kc] into kMR strips    (per worker)
//         for jr strips: for ir strips:
//           micro-kernel: kMR x kNR register tile over the packed strips
//
// The micro-kernel accumulates a full kMR x kNR tile in registers over the
// kc depth chunk and merges it into C afterwards. Per C element the
// floating-point order is therefore
//
//   C(i,j) = ((beta*C(i,j) + chunk_0) + chunk_1) + ... ,
//   chunk_t = sum over k in [t*kKC, (t+1)*kKC) in ascending-k order,
//
// which depends only on (m, n, k, beta) — never on the thread count, the
// row partition, or which strip a row lands in (every element owns a
// private accumulator lane). That preserves the PR-3 contract: any
// REMAPD_THREADS value is bitwise identical, checkpoints resume exactly.
//
// Transposed operands are handled by the packing layer (an operand is a
// pointer plus row/col strides), so NT/TN/TT never materialize a
// transposed copy. Scratch panels live in grow-only thread-local arenas;
// steady-state calls perform no heap allocation (see scratch_allocations()).
//
// Two micro-kernel implementations sit behind one function pointer chosen
// at process start: an AVX2+FMA intrinsics kernel (x86-64, runtime
// __builtin_cpu_supports dispatch, no special build flags needed) and a
// portable `#pragma omp simd` kernel. The choice is per-process, so it
// cannot vary with thread count; results may differ across machines (as
// compiler flags already allow) but never across runs on one machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace remapd {

// Register tile and cache-block geometry. kMR x kNR is the micro-tile
// (6 rows x 16 columns = 12 YMM accumulators + 2 B vectors + 1 A broadcast
// on AVX2). kMC/kKC size the packed A block (~48 KiB) and kNC the packed B
// panel for L2 residency.
inline constexpr std::size_t kMR = 6;
inline constexpr std::size_t kNR = 16;
inline constexpr std::size_t kMC = 48;   // row-partition grain, multiple of kMR
inline constexpr std::size_t kKC = 256;  // depth chunk
inline constexpr std::size_t kNC = 1024; // column panel, multiple of kNR

/// A matrix operand as the packing layer sees it: element (i, j) of op(X)
/// lives at ptr[i * row_stride + j * col_stride]. A plain row-major matrix
/// is {ptr, ld, 1}; its transpose is {ptr, 1, ld} — no copy needed.
struct StridedOperand {
  const float* ptr;
  std::size_t row_stride;
  std::size_t col_stride;
};

/// C = alpha * op(A) * op(B) + beta * C over strided operands, C row-major
/// m x n with leading dimension ldc. beta == 0 never reads C (NaN/garbage
/// in C is overwritten, BLAS semantics). The beta scale/clear is folded
/// into the row-partitioned region: each block scales its own C rows right
/// before accumulating its first depth chunk, so no serial pre-pass runs.
/// Requires alpha != 0 and m, n, k > 0 (the gemm() wrapper handles the
/// degenerate cases).
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 StridedOperand a, StridedOperand b, float beta, float* c,
                 std::size_t ldc);

/// Reusable packed-A panels for the fused convolution path: pack the
/// (effective-weight) matrix once per layer call, then run many
/// C_i = packed_A * B_i multiplies against per-sample B operands. The
/// packed panels are immutable after pack(), so multiply() is const and
/// safe to call concurrently from the per-sample parallel loop (per-call
/// scratch is thread-local). multiply() performs the exact arithmetic of
/// gemm_packed with the same shapes — fused and unfused paths agree
/// bitwise.
class GemmAPack {
 public:
  /// Pack alpha * op(A) (m x k). Reuses the panel buffer's capacity, so
  /// repeated packs of the same geometry do not allocate.
  void pack(std::size_t m, std::size_t k, float alpha, StridedOperand a);

  /// C = packed_A * B + beta * C; B is k x n row-major with leading
  /// dimension ldb. Requires pack() first.
  void multiply(std::size_t n, const float* b, std::size_t ldb, float beta,
                float* c, std::size_t ldc) const;

  [[nodiscard]] std::size_t rows() const { return m_; }
  [[nodiscard]] std::size_t depth() const { return k_; }

 private:
  std::size_t m_ = 0, k_ = 0;
  std::vector<float> panels_;  // [pc chunk][kMR strip][p * kMR + r]
};

/// Process-wide count of scratch-arena growths (heap allocations) made by
/// the packing layer. Steady-state GEMM calls — including NT/TN, which
/// previously materialized fresh transpose buffers per call — must leave
/// this flat; tests assert on it.
std::uint64_t gemm_scratch_allocations();

/// Name of the micro-kernel implementation selected at startup ("avx2" or
/// "portable") — surfaced in bench JSON records so a perf trajectory is
/// interpretable across machines.
const char* gemm_kernel_name();

}  // namespace remapd
