#include "tensor/tensor.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace remapd {

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t d : dims) n *= d;
  return dims.empty() ? 0 : n;
}

std::string Shape::str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims[i]);
  }
  return s + "]";
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::kaiming(Shape shape, std::size_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1));
  return randn(std::move(shape), rng, static_cast<float>(stddev));
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values) {
  if (shape.numel() != values.size())
    throw std::invalid_argument("Tensor::from_vector: size mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  return data_[r * shape_[1] + c];
}
float Tensor::at(std::size_t r, std::size_t c) const {
  return data_[r * shape_[1] + c];
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}
float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.str() + " -> " + new_shape.str());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::add_(const Tensor& other) {
  if (!(shape_ == other.shape_))
    throw std::invalid_argument("Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  if (!(shape_ == other.shape_))
    throw std::invalid_argument("Tensor::axpy_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) {
  for (auto& x : data_) x *= alpha;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::size_t Tensor::argmax() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < data_.size(); ++i)
    if (data_[i] > data_[best]) best = i;
  return best;
}

Tensor Tensor::transposed() const {
  if (shape_.rank() != 2)
    throw std::invalid_argument("Tensor::transposed: rank must be 2");
  const std::size_t rows = shape_[0], cols = shape_[1];
  Tensor t(Shape{cols, rows});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) t.at(c, r) = at(r, c);
  return t;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape()))
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

void save_tensor(ckpt::ByteWriter& w, const Tensor& t) {
  w.u64(t.shape().rank());
  for (std::size_t d = 0; d < t.shape().rank(); ++d) w.u64(t.shape()[d]);
  w.f32_array(t.data(), t.numel());
}

namespace {

Shape read_shape(ckpt::ByteReader& r) {
  const std::uint64_t rank = r.u64();
  if (rank > 4)
    throw ckpt::CheckpointError("tensor rank " + std::to_string(rank) +
                                " out of range");
  std::vector<std::size_t> dims(static_cast<std::size_t>(rank));
  for (auto& d : dims) d = static_cast<std::size_t>(r.u64());
  return Shape(std::move(dims));
}

}  // namespace

Tensor load_tensor(ckpt::ByteReader& r) {
  Tensor t(read_shape(r));
  r.f32_array(t.data(), t.numel());
  return t;
}

void load_tensor_into(ckpt::ByteReader& r, Tensor& t) {
  const Shape s = read_shape(r);
  if (!(s == t.shape()))
    throw ckpt::CheckpointError("tensor shape mismatch: stored " + s.str() +
                                ", expected " + t.shape().str());
  r.f32_array(t.data(), t.numel());
}

}  // namespace remapd
