// Dense row-major float tensor, the numeric workhorse of the CNN training
// substrate. Supports up to 4 dimensions (N, C, H, W) which is all the model
// zoo needs; rank-2 tensors double as matrices for the crossbar mapper.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "util/rng.hpp"

namespace remapd {

/// Shape of a tensor: 1 to 4 dimensions.
struct Shape {
  std::vector<std::size_t> dims;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> d) : dims(d) {}
  explicit Shape(std::vector<std::size_t> d) : dims(std::move(d)) {}

  [[nodiscard]] std::size_t rank() const { return dims.size(); }
  [[nodiscard]] std::size_t numel() const;
  [[nodiscard]] std::size_t operator[](std::size_t i) const { return dims[i]; }
  bool operator==(const Shape& o) const { return dims == o.dims; }
  [[nodiscard]] std::string str() const;
};

/// Owning dense float tensor. Copyable (deep) and movable.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  /// i.i.d. N(0, stddev) entries.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// Kaiming/He normal initialization for a layer with `fan_in` inputs.
  static Tensor kaiming(Shape shape, std::size_t fan_in, Rng& rng);
  static Tensor from_vector(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access (rank must be 2).
  float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;
  /// 4-D access (rank must be 4).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const;

  /// Reinterpret with a new shape of identical numel (no copy).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  void fill(float v);
  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this += alpha * other.
  void axpy_(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(float alpha);

  [[nodiscard]] float sum() const;
  [[nodiscard]] float abs_max() const;
  /// Index of maximum element (first on ties).
  [[nodiscard]] std::size_t argmax() const;

  /// Rank-2 transpose copy.
  [[nodiscard]] Tensor transposed() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Max |a[i] - b[i]|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Checkpoint helpers: shape (rank + dims) followed by the raw IEEE-754
/// float payload. load_tensor_into restores into an existing tensor and
/// throws ckpt::CheckpointError when the stored shape does not match —
/// the checkpoint layer's guard against loading a foreign blob.
void save_tensor(ckpt::ByteWriter& w, const Tensor& t);
Tensor load_tensor(ckpt::ByteReader& r);
void load_tensor_into(ckpt::ByteReader& r, Tensor& t);

}  // namespace remapd
