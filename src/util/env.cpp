#include "util/env.hpp"

#include <cstdlib>

namespace remapd {

int env_int(const std::string& name, int def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return def;
  return static_cast<int>(parsed);
}

double env_double(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return def;
  return parsed;
}

std::string env_str(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : def;
}

}  // namespace remapd
