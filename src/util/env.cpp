#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace remapd {

namespace {

[[noreturn]] void bad_value(const std::string& name, const char* value,
                            const std::string& expected) {
  throw std::runtime_error(name + ": cannot parse '" + value + "' (" +
                           expected + ")");
}

}  // namespace

int env_int(const std::string& name, int def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max())
    bad_value(name, v, "expected an integer");
  return static_cast<int>(parsed);
}

std::size_t env_size(const std::string& name, std::size_t def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE)
    bad_value(name, v, "expected a non-negative integer");
  if (parsed < 0) bad_value(name, v, "must be non-negative");
  return static_cast<std::size_t>(parsed);
}

double env_double(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE)
    bad_value(name, v, "expected a number");
  return parsed;
}

double env_double_nonneg(const std::string& name, double def) {
  const double parsed = env_double(name, def);
  if (parsed < 0.0) {
    const char* v = std::getenv(name.c_str());
    bad_value(name, v ? v : "", "must be non-negative");
  }
  return parsed;
}

std::string env_str(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : def;
}

}  // namespace remapd
