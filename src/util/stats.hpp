// Small online/offline statistics helpers used by benches and the NoC
// Monte Carlo harness.
#pragma once

#include <cstddef>
#include <vector>

namespace remapd {

/// Welford-style online accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

/// Population standard deviation of a vector.
double stddev_of(const std::vector<double>& xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Linear least-squares fit y = a*x + b; returns {a, b}.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

}  // namespace remapd
