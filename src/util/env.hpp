// Environment-variable configuration knobs. The paper trains full-size CNNs
// for 50 epochs on a GPU; our CPU reproduction runs scaled variants whose
// size can be tuned without recompiling:
//
//   REMAPD_THREADS  worker threads for the deterministic parallel layer
//                   (unset → hardware concurrency; 0 or 1 → serial fast
//                   path). Results are bitwise identical at any setting —
//                   see util/parallel.hpp for the contract
//   REMAPD_EPOCHS   override training epochs for benches (default per-bench)
//   REMAPD_TRAIN    override number of training samples
//   REMAPD_TEST     override number of test samples
//   REMAPD_LOG      log level (debug|info|warn|error, case-insensitive;
//                   unrecognized values warn once and fall back to info)
//   REMAPD_TRACE    enable telemetry; write a chrome://tracing JSON to this
//                   path at process exit (see telemetry/)
//   REMAPD_METRICS  enable telemetry; write metrics to this path at exit —
//                   JSONL if it ends in ".jsonl", plain-text summary
//                   otherwise ("-" for stdout)
//   REMAPD_HEALTH   enable the reliability observatory; write the health
//                   JSONL stream to this path (and a human-readable
//                   summary to <path>.summary.txt) at exit — see src/obs/
//                   and tools/remapd_report.cpp
//
// Parsing is strict: a REMAPD_* variable that is set but malformed (empty,
// trailing garbage, out of range) throws std::runtime_error naming the
// variable and the offending value — a typo'd override must never be
// silently ignored, truncated, or fall back to the default.
#pragma once

#include <cstddef>
#include <string>

namespace remapd {

/// Integer env var with default. Throws std::runtime_error when the
/// variable is set but not a valid integer.
int env_int(const std::string& name, int def);

/// Non-negative integer env var with default. Throws std::runtime_error on
/// malformed input or a negative value.
std::size_t env_size(const std::string& name, std::size_t def);

/// Double env var with default. Throws std::runtime_error when the
/// variable is set but not a valid number.
double env_double(const std::string& name, double def);

/// Non-negative double env var with default. Throws std::runtime_error on
/// malformed input or a negative value.
double env_double_nonneg(const std::string& name, double def);

/// String env var with default.
std::string env_str(const std::string& name, const std::string& def);

}  // namespace remapd
