// Minimal CSV writer for bench outputs — each bench emits the rows/series of
// the paper figure it regenerates both to stdout (human readable) and,
// optionally, to a CSV file for plotting.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace remapd {

/// Append-style CSV writer. Writes a header once, then rows. All cells are
/// stringified with operator<<.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  /// In-memory only (dump() retrieves contents); used by tests.
  CsvWriter() = default;

  void header(const std::vector<std::string>& cols);

  template <typename... Ts>
  void row(const Ts&... cells) {
    std::ostringstream os;
    bool first = true;
    ((os << (first ? "" : ",") << cells, first = false), ...);
    write_line(os.str());
  }

  /// Contents accumulated so far (also valid when writing to a file).
  [[nodiscard]] const std::string& dump() const { return buffer_; }

 private:
  void write_line(const std::string& line);

  std::ofstream file_;
  bool to_file_ = false;
  std::string buffer_;
};

}  // namespace remapd
