#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.hpp"

namespace remapd {
namespace {

thread_local bool tl_in_parallel = false;

std::size_t resolve_env_threads() {
  // Unset -> one worker per hardware thread; an explicit 0 or 1 -> serial
  // fast path. Malformed or negative values throw (util/env.hpp).
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  const std::size_t v = env_size("REMAPD_THREADS", kUnset);
  if (v == kUnset) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
  }
  return v <= 1 ? 1 : v;
}

/// Persistent pool. One job runs at a time (job_mu_); blocks are claimed
/// with a monotone fetch-add. Publishing a new job waits for active_ == 0
/// under mu_, so no worker can be mid-drain() while fn_/nblocks_/next_ are
/// reset: a stale claim against an exhausted cursor can otherwise race the
/// reset and pass the nblocks_ check of a *larger* new job, executing a
/// block the fresh cursor hands out again (double execution, done_
/// overshoot, caller hang).
class Pool {
 public:
  explicit Pool(std::size_t threads) : threads_(threads) {
    workers_.reserve(threads_ - 1);
    for (std::size_t t = 0; t + 1 < threads_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t threads() const { return threads_; }

  void run(std::size_t nblocks,
           const std::function<void(std::size_t)>& block_fn) {
    std::lock_guard<std::mutex> job_lock(job_mu_);
    {
      std::unique_lock<std::mutex> lk(mu_);
      // A worker notified for a previous epoch may still be inside drain()
      // (its final, exhausted cursor claim races this reset). Wait for it
      // to leave before mutating the job state; active_ only changes under
      // mu_, so once it reads 0 here no worker can re-enter drain() until
      // the new epoch is published below.
      done_cv_.wait(lk, [&] { return active_ == 0; });
      fn_.store(&block_fn);
      nblocks_.store(nblocks);
      done_ = 0;
      error_ = nullptr;
      // The cursor reset is sequenced after fn_/nblocks_ above (all
      // seq_cst), so any thread that claims a block < nblocks observes the
      // new job's function.
      next_.store(0);
      ++epoch_;
    }
    cv_.notify_all();
    drain();  // the caller is worker #0
    std::exception_ptr err;
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return done_ == nblocks_.load() && active_ == 0; });
      fn_.store(nullptr);
      err = error_;
      error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        ++active_;
      }
      drain();
      {
        std::lock_guard<std::mutex> lk(mu_);
        --active_;
        // Wakes both the completion wait (done_ == nblocks_ && active_ == 0)
        // and the pre-publish wait (active_ == 0) in run().
        if (active_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Claim and execute blocks until the cursor runs past the job.
  void drain() {
    const bool was_in_parallel = tl_in_parallel;
    tl_in_parallel = true;
    std::size_t completed = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1);
      if (i >= nblocks_.load()) break;
      const auto* fn = fn_.load();
      if (!fn) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      ++completed;
    }
    tl_in_parallel = was_in_parallel;
    if (completed) {
      std::lock_guard<std::mutex> lk(mu_);
      done_ += completed;
      if (done_ == nblocks_.load()) done_cv_.notify_all();
    }
  }

  const std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex job_mu_;  ///< serializes run() calls

  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers for a new epoch
  std::condition_variable done_cv_;  ///< wakes the caller on completion
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;

  std::atomic<const std::function<void(std::size_t)>*> fn_{nullptr};
  std::atomic<std::size_t> nblocks_{0};
  std::atomic<std::size_t> next_{0};
};

std::mutex g_pool_mu;
std::unique_ptr<Pool> g_pool;    // non-null iff g_threads > 1
std::size_t g_threads = 0;       // 0 = not yet resolved

void ensure_resolved_locked() {
  if (g_threads == 0) {
    g_threads = resolve_env_threads();
    if (g_threads > 1) g_pool = std::make_unique<Pool>(g_threads);
  }
}

Pool* current_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  ensure_resolved_locked();
  return g_pool.get();
}

}  // namespace

std::size_t parallel_threads() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  ensure_resolved_locked();
  return g_threads;
}

void set_parallel_threads(std::size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool.reset();
  g_threads = n <= 1 ? 1 : n;
  if (g_threads > 1) g_pool = std::make_unique<Pool>(g_threads);
}

bool in_parallel_region() { return tl_in_parallel; }

void parallel_for_blocks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t nblocks = num_blocks(begin, end, grain);
  const auto run_block = [&](std::size_t blk) {
    const std::size_t b0 = begin + blk * grain;
    const std::size_t b1 = std::min(b0 + grain, end);
    body(b0, b1, blk);
  };
  Pool* pool = tl_in_parallel ? nullptr : current_pool();
  if (!pool || nblocks == 1) {
    // Serial fast path and nested calls: same block structure, same
    // arithmetic, no thread machinery.
    for (std::size_t blk = 0; blk < nblocks; ++blk) run_block(blk);
    return;
  }
  pool->run(nblocks, run_block);
}

}  // namespace remapd
