// Deterministic work-sharing layer: a small persistent thread pool behind a
// `parallel_for` with *static block partitioning*.
//
// Determinism contract
// --------------------
// The iteration range is cut into fixed-size blocks of `grain` elements;
// the block structure depends only on (range, grain) — never on the thread
// count. Blocks are the unit of scheduling AND the unit of arithmetic:
//   - a body that writes disjoint outputs per block is trivially bitwise
//     reproducible at any REMAPD_THREADS, and
//   - a reduction done into per-block partials and merged in block-index
//     order afterwards performs the identical floating-point sum grouping
//     whether 1 or 64 threads executed the blocks.
// Callers must therefore never branch on the thread count inside a body and
// never share mutable state across blocks (except via relaxed atomics whose
// final value is order-independent, e.g. integer counters).
//
// Sizing: REMAPD_THREADS (unset -> hardware concurrency; 0 or 1 -> serial
// fast path that touches no thread machinery). Tests and benches can
// reconfigure at runtime with set_parallel_threads().
//
// Nesting: a parallel_for issued from inside a parallel_for body runs
// inline on the calling worker (the block structure of the inner loop is
// unchanged, so results stay identical — only the execution is serial).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

namespace remapd {

/// Worker count currently in effect (>= 1; 1 means serial). Resolved from
/// REMAPD_THREADS on first use.
std::size_t parallel_threads();

/// Reconfigure the pool (joins existing workers, spawns `n - 1` new ones).
/// `n` of 0 or 1 selects the serial fast path. Not safe to call while
/// parallel_for is executing on another thread; intended for tests/benches
/// and process startup.
void set_parallel_threads(std::size_t n);

/// True while the calling thread is executing a parallel_for body.
bool in_parallel_region();

/// Number of blocks `parallel_for` will use for a range and grain.
inline std::size_t num_blocks(std::size_t begin, std::size_t end,
                              std::size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

/// Grain that caps a reduction at `max_blocks` per-block partials. The cap
/// is a compile-time-style constant per call site — it must NOT be derived
/// from the thread count, or the partial-sum grouping (and hence the FP
/// result) would change with REMAPD_THREADS.
inline std::size_t reduction_grain(std::size_t range,
                                   std::size_t max_blocks = 16) {
  if (max_blocks == 0) max_blocks = 1;
  return std::max<std::size_t>(1, (range + max_blocks - 1) / max_blocks);
}

/// Round `grain` up to a multiple of `tile` (>= tile). Kernels whose block
/// bodies walk fixed-size register tiles use this so every parallel block
/// starts on a tile boundary: the tile decomposition of the range is then
/// identical to the serial walk's, independent of how blocks are assigned
/// to threads. Like reduction_grain, the result must never be derived from
/// the thread count.
inline std::size_t aligned_grain(std::size_t grain, std::size_t tile) {
  if (tile == 0) tile = 1;
  if (grain == 0) grain = 1;
  return (grain + tile - 1) / tile * tile;
}

/// Run `body(block_begin, block_end, block_index)` for every block of the
/// partition of [begin, end) into `grain`-sized blocks. Blocks may execute
/// concurrently and in any order; each executes exactly once. Exceptions
/// thrown by a body are rethrown (first one wins) after all blocks finish.
void parallel_for_blocks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Convenience wrapper for bodies that don't need the block index.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_blocks(
      begin, end, grain,
      [&body](std::size_t b0, std::size_t b1, std::size_t) { body(b0, b1); });
}

}  // namespace remapd
