#include "util/stats.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace remapd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size");
  if (xs.empty()) return 0.0;
  const double mx = mean_of(xs), my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("linear_fit: bad sizes");
  const double mx = mean_of(xs), my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  LinearFit f;
  if (sxx > 0.0) {
    f.slope = sxy / sxx;
    f.intercept = my - f.slope * mx;
  } else {
    f.slope = 0.0;
    f.intercept = my;
  }
  return f;
}

}  // namespace remapd
