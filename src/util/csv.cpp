#include "util/csv.hpp"

#include <stdexcept>

namespace remapd {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  std::string line;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i) line += ',';
    line += cols[i];
  }
  write_line(line);
}

void CsvWriter::write_line(const std::string& line) {
  buffer_ += line;
  buffer_ += '\n';
  if (to_file_) {
    file_ << line << '\n';
    file_.flush();
  }
}

}  // namespace remapd
