#include "util/log.hpp"

#include <cstdlib>
#include <iostream>

namespace remapd {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("REMAPD_LOG");
  if (!env) return LogLevel::kInfo;
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel& level_ref() {
  static LogLevel lvl = initial_level();
  return lvl;
}

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel lvl) { level_ref() = lvl; }

void log_message(LogLevel lvl, const std::string& msg) {
  if (lvl < level_ref()) return;
  std::cerr << "[remapd " << level_tag(lvl) << "] " << msg << '\n';
}

}  // namespace remapd
