#include "util/log.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace remapd {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("REMAPD_LOG");
  if (!env || !*env) return LogLevel::kInfo;
  bool ok = false;
  const LogLevel lvl = parse_log_level(env, &ok);
  if (!ok) {
    // One-time warning (this runs once, at first log_level() use): a typo'd
    // REMAPD_LOG silently reverting to info is hard to notice otherwise.
    std::cerr << "[remapd WARN ] REMAPD_LOG=\"" << env
              << "\" is not a known level (debug|info|warn|error); "
                 "using info\n";
  }
  return lvl;
}

LogLevel& level_ref() {
  static LogLevel lvl = initial_level();
  return lvl;
}

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

// Parse REMAPD_LOG (and surface the typo warning) at program start rather
// than at the first log call — a run that never logs, e.g. a bench with
// verbose off, would otherwise swallow the warning entirely.
[[maybe_unused]] const bool g_eager_init = (level_ref(), true);

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel lvl) { level_ref() = lvl; }

LogLevel parse_log_level(const std::string& name, bool* ok) {
  std::string v = name;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (ok) *ok = true;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (ok) *ok = false;
  return LogLevel::kInfo;
}

void log_message(LogLevel lvl, const std::string& msg) {
  if (lvl < level_ref()) return;
  std::cerr << "[remapd " << level_tag(lvl) << "] " << msg << '\n';
}

}  // namespace remapd
