// Deterministic random number generation for reproducible simulation.
//
// All stochastic components of the simulator (fault injection, weight
// initialization, synthetic data generation, Monte Carlo NoC runs) draw from
// a Rng instance that is explicitly seeded, so every experiment in the paper
// reproduction is bit-for-bit repeatable.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "ckpt/snapshot.hpp"

namespace remapd {

/// A seedable pseudo-random source wrapping a 64-bit Mersenne twister.
///
/// Prefer passing a Rng& down the call stack over global state; components
/// that need independent streams should call split() to derive a child
/// generator whose sequence is decorrelated from the parent's.
///
/// Snapshotable: save_state captures the engine *and* the cached state of
/// both wrapped distributions (normal_distribution holds a spare Box-Muller
/// draw), so a restored Rng continues its sequence bit-exactly.
class Rng : public ckpt::Snapshotable {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'c0de'1234'5678ULL) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return uni_(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Standard normal sample.
  double normal() { return norm_(gen_); }

  /// Normal with explicit mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (seeded from this stream).
  Rng split() {
    const std::uint64_t a = gen_();
    const std::uint64_t b = gen_();
    return Rng(a ^ (b << 1) ^ 0x9e37'79b9'7f4a'7c15ULL);
  }

  /// Stateless, order-free derivation of a child seed for stream `stream`
  /// of `base` (splitmix64 finalizer). Unlike split(), this consumes no
  /// generator state, so workloads that give each unit of work (e.g. each
  /// crossbar) its own child RNG keyed by id produce identical streams no
  /// matter how many threads process the units or in which order.
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
    std::uint64_t z = base + 0x9e37'79b9'7f4a'7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebULL;
    return z ^ (z >> 31);
  }

  /// Sample k distinct indices from [0, n) without replacement.
  /// Ordering of the result is unspecified but deterministic for a seed.
  /// Throws std::invalid_argument when k > n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Access the underlying engine (for std:: distributions).
  std::mt19937_64& engine() { return gen_; }

  // Snapshotable: full engine + cached-distribution state.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
  std::normal_distribution<double> norm_{0.0, 1.0};
};

}  // namespace remapd
