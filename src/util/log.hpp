// Leveled logging to stderr. Benches keep stdout clean for result tables and
// route progress chatter here.
#pragma once

#include <sstream>
#include <string>

namespace remapd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default Info; REMAPD_LOG=debug|info|warn|error,
/// case-insensitive; "warning" is accepted as an alias for "warn").
LogLevel log_level();
void set_log_level(LogLevel lvl);

/// Parse a level name as REMAPD_LOG does. Sets `*ok` (when non-null) to
/// whether `name` was recognized; unrecognized names return kInfo.
LogLevel parse_log_level(const std::string& name, bool* ok = nullptr);

void log_message(LogLevel lvl, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  log_message(LogLevel::kError, detail::concat(parts...));
}

}  // namespace remapd
