#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace remapd {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n)
    throw std::invalid_argument(
        "sample_without_replacement: k (" + std::to_string(k) + ") > n (" +
        std::to_string(n) + ")");
  if (k == 0) return {};
  // For small k relative to n, rejection sampling is cheaper than a full
  // permutation; otherwise shuffle a dense index array and truncate.
  if (k * 3 < n) {
    std::unordered_set<std::size_t> chosen;
    chosen.reserve(k * 2);
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      const auto idx = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (chosen.insert(idx).second) out.push_back(idx);
    }
    return out;
  }
  auto perm = permutation(n);
  perm.resize(k);
  return perm;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), gen_);
  return idx;
}

void Rng::save_state(ckpt::ByteWriter& w) const {
  // The standard serializes engine and distribution state as text via
  // operator<< with exact round-trip guarantees; store that string. The
  // classic locale of a fresh stream keeps the format stable.
  std::ostringstream os;
  os << gen_ << ' ' << uni_ << ' ' << norm_;
  w.str(os.str());
}

void Rng::load_state(ckpt::ByteReader& r) {
  std::istringstream is(r.str());
  is >> gen_ >> uni_ >> norm_;
  if (!is) throw ckpt::CheckpointError("malformed RNG state string");
}

}  // namespace remapd
