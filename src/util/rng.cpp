#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace remapd {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // For small k relative to n, rejection sampling is cheaper than a full
  // permutation; otherwise shuffle a dense index array and truncate.
  if (k * 3 < n) {
    std::unordered_set<std::size_t> chosen;
    chosen.reserve(k * 2);
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      const auto idx = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (chosen.insert(idx).second) out.push_back(idx);
    }
    return out;
  }
  auto perm = permutation(n);
  perm.resize(k);
  return perm;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), gen_);
  return idx;
}

}  // namespace remapd
