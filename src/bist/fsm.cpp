#include "bist/fsm.hpp"

namespace remapd {

const char* bist_state_name(BistState s) {
  switch (s) {
    case BistState::kS0Idle: return "S0:idle";
    case BistState::kS1WriteZero: return "S1:wr-zero";
    case BistState::kS2ReadSa1: return "S2:rd-sa1";
    case BistState::kS3ProcessSa1: return "S3:proc-sa1";
    case BistState::kS4WriteOne: return "S4:wr-one";
    case BistState::kS5ReadSa0: return "S5:rd-sa0";
    case BistState::kS6ProcessSa0: return "S6:proc-sa0";
  }
  return "?";
}

void BistFsm::start() {
  // The start signal moves the controller out of idle combinationally; the
  // first clocked cycle performs the first row write.
  state_ = BistState::kS1WriteZero;
  counter_ = 0;
  cycles_ = 0;
  running_ = true;
  finish_flag_ = false;
}

BistState BistFsm::step() {
  if (!running_) return state_;
  ++cycles_;
  const BistState worked = state_;  // state doing work during this cycle

  switch (state_) {
    case BistState::kS0Idle:
      break;
    case BistState::kS1WriteZero:
      if (++counter_ >= rows_) {
        state_ = BistState::kS2ReadSa1;
        counter_ = 0;
      }
      break;
    case BistState::kS2ReadSa1:
      state_ = BistState::kS3ProcessSa1;
      break;
    case BistState::kS3ProcessSa1:
      state_ = BistState::kS4WriteOne;
      break;
    case BistState::kS4WriteOne:
      if (++counter_ >= rows_) {
        state_ = BistState::kS5ReadSa0;
        counter_ = 0;
      }
      break;
    case BistState::kS5ReadSa0:
      state_ = BistState::kS6ProcessSa0;
      break;
    case BistState::kS6ProcessSa0:
      state_ = BistState::kS0Idle;
      running_ = false;
      finish_flag_ = true;
      break;
  }
  return worked;
}

}  // namespace remapd
