#include "bist/controller.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"
#include "xbar/rcs.hpp"

namespace remapd {

BistReport BistController::run(Crossbar& xb) const {
  BistFsm fsm(xb.rows());
  BistCalibration cal(xb.params(), xb.rows());
  BistReport report;

  fsm.start();
  while (!fsm.finished()) {
    const BistState worked = fsm.step();
    switch (worked) {
      case BistState::kS2ReadSa1: {
        // All columns are read in parallel (one ReRAM cycle); the counts
        // are latched for the processing state.
        std::size_t total = 0;
        for (double i : all_column_currents(xb, TestPattern::kAllZero))
          total += cal.estimate_fault_count(i, TestPattern::kAllZero);
        report.sa1_estimate = total;
        break;
      }
      case BistState::kS5ReadSa0: {
        std::size_t total = 0;
        for (double i : all_column_currents(xb, TestPattern::kAllOne))
          total += cal.estimate_fault_count(i, TestPattern::kAllOne);
        report.sa0_estimate = total;
        break;
      }
      default:
        break;
    }
  }

  // The two full-array write passes (S1, S4) count toward endurance.
  xb.record_array_write();
  xb.record_array_write();

  report.cycles = fsm.cycles_elapsed();
  report.elapsed_ns = static_cast<double>(report.cycles) * kReramCycleNs;
  report.density_estimate = static_cast<double>(report.total_estimate()) /
                            static_cast<double>(xb.cell_count());
  telemetry::count("bist.runs");
  telemetry::count("bist.faults_estimated", report.total_estimate());
  telemetry::observe("bist.run_cycles", report.cycles);
  return report;
}

std::vector<double> BistController::survey(Rcs& rcs,
                                           std::uint64_t* total_cycles) const {
  const std::size_t total = rcs.total_crossbars();
  std::vector<double> densities(total, 0.0);
  std::vector<std::uint64_t> cycles_of(total, 0);
  // Crossbars test independently (the run() mutates only its own crossbar
  // and writes its own result slot), and the BIST read-out consumes no RNG,
  // so the survey parallelizes with bitwise-identical estimates at any
  // thread count.
  parallel_for(0, total, 1, [&](std::size_t x0, std::size_t x1) {
    for (XbarId id = x0; id < x1; ++id) {
      const BistReport r = run(rcs.crossbar(id));
      densities[id] = r.density_estimate;
      cycles_of[id] = r.cycles;
    }
  });
  std::uint64_t cycles = 0;  // IMAs test concurrently -> max, not sum
  for (std::uint64_t c : cycles_of) cycles = std::max(cycles, c);
  if (total_cycles) *total_cycles = cycles;

  telemetry::count("bist.surveys");
  telemetry::count("bist.crossbars_tested", rcs.total_crossbars());
  // Wall-clock ReRAM cycles of the survey (IMAs run concurrently, so this
  // is the max, not the sum).
  telemetry::observe("bist.survey_cycles", cycles);
  return densities;
}

}  // namespace remapd
