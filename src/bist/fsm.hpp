// Cycle-accurate model of the BIST controller FSM of Fig. 2(b).
//
// States: S0 idle; S1/S2/S3 SA1 test (write all-0 row-by-row, apply read
// voltage, process outputs); S4/S5/S6 SA0 test (write all-1, read, process).
// Row-by-row writes take one ReRAM cycle per row [18], the read and the
// CMOS output processing one ReRAM cycle each, so a 128x128 array costs
// 130 + 130 = 260 ReRAM cycles (one ReRAM cycle = 100 ns at the 10 MHz
// array clock; the 1.2 GHz CMOS peripherals finish within it [13], [18]).
#pragma once

#include <cstdint>
#include <string>

namespace remapd {

enum class BistState : std::uint8_t {
  kS0Idle = 0,
  kS1WriteZero,
  kS2ReadSa1,
  kS3ProcessSa1,
  kS4WriteOne,
  kS5ReadSa0,
  kS6ProcessSa0,
};

const char* bist_state_name(BistState s);

/// One ReRAM cycle is 100 ns (10 MHz array clock [13], [18]).
constexpr double kReramCycleNs = 100.0;

class BistFsm {
 public:
  /// `rows` is the crossbar row count (write pass length).
  explicit BistFsm(std::size_t rows) : rows_(rows) {}

  /// Start a test run (combinational S0 -> S1 on the start signal).
  void start();

  /// Advance one ReRAM cycle. Returns the state that performed work during
  /// this cycle.
  BistState step();

  [[nodiscard]] BistState state() const { return state_; }
  [[nodiscard]] bool finished() const { return finish_flag_; }
  [[nodiscard]] std::uint64_t cycles_elapsed() const { return cycles_; }
  /// Counter output 'c' controlling the row-by-row write timing.
  [[nodiscard]] std::size_t counter() const { return counter_; }

  /// Total cycles of a complete run for an array with `rows` rows:
  /// 2 * (rows + 2).
  [[nodiscard]] static std::uint64_t total_cycles(std::size_t rows) {
    return 2 * (static_cast<std::uint64_t>(rows) + 2);
  }

 private:
  std::size_t rows_;
  BistState state_ = BistState::kS0Idle;
  std::size_t counter_ = 0;
  std::uint64_t cycles_ = 0;
  bool running_ = false;
  bool finish_flag_ = false;
};

}  // namespace remapd
