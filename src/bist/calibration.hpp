// BIST calibration: inverts the column-current model to a fault count.
//
// The BIST peripherals compare the measured column current against a
// calibration table built from nominal stuck resistances (§IV.B: "through a
// calibration step, we can determine the number of faulty cells ... by
// observing the output current"). The estimate is robust to the stuck-R
// variation bands of [4] because the per-fault current step is large
// compared to the variation-induced spread (Fig. 4).
#pragma once

#include "analog/column_current.hpp"

namespace remapd {

class BistCalibration {
 public:
  /// Calibrate for arrays with `rows` cells per column.
  BistCalibration(const CellParams& params, std::size_t rows);

  /// Estimated number of faults in a column from its measured current.
  /// `pattern` selects which fault type the test exposes (kAllZero -> SA1,
  /// kAllOne -> SA0). Clamped to [0, rows].
  [[nodiscard]] std::size_t estimate_fault_count(double current,
                                                 TestPattern pattern) const;

  /// Expected current for exactly `k` faults at nominal stuck resistance.
  [[nodiscard]] double expected_current(std::size_t k,
                                        TestPattern pattern) const;

 private:
  CellParams params_;
  std::size_t rows_;
};

}  // namespace remapd
