#include "bist/calibration.hpp"

#include <cmath>

namespace remapd {
namespace {

double healthy_conductance(const CellParams& p, TestPattern pattern) {
  return pattern == TestPattern::kAllZero ? 1.0 / p.r_off : 1.0 / p.r_on;
}

double stuck_conductance(const CellParams& p, TestPattern pattern) {
  // kAllZero exposes SA1 (stuck low-R); kAllOne exposes SA0 (stuck high-R).
  const CellFault f = pattern == TestPattern::kAllZero
                          ? CellFault::kStuckAt1
                          : CellFault::kStuckAt0;
  return 1.0 / p.nominal_stuck_resistance(f);
}

}  // namespace

BistCalibration::BistCalibration(const CellParams& params, std::size_t rows)
    : params_(params), rows_(rows) {}

double BistCalibration::expected_current(std::size_t k,
                                         TestPattern pattern) const {
  const double gh = healthy_conductance(params_, pattern);
  const double gs = stuck_conductance(params_, pattern);
  return params_.read_voltage *
         (static_cast<double>(rows_ - k) * gh + static_cast<double>(k) * gs);
}

std::size_t BistCalibration::estimate_fault_count(double current,
                                                  TestPattern pattern) const {
  const double gh = healthy_conductance(params_, pattern);
  const double gs = stuck_conductance(params_, pattern);
  const double baseline =
      params_.read_voltage * static_cast<double>(rows_) * gh;
  const double per_fault_step = params_.read_voltage * (gs - gh);
  const double k = (current - baseline) / per_fault_step;
  if (k <= 0.0) return 0;
  const auto rounded = static_cast<std::size_t>(std::llround(k));
  return rounded > rows_ ? rows_ : rounded;
}

}  // namespace remapd
