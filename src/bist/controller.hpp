// BIST controller: drives the FSM over a crossbar, samples the analog
// column currents at the read states, and produces the per-crossbar fault
// density report the remapping policies consume.
//
// Only the *density* is reported — not per-cell locations — which is what
// makes this BIST cheaper than conventional march-test BIST (§III.B.3).
#pragma once

#include "bist/calibration.hpp"
#include "bist/fsm.hpp"

namespace remapd {

struct BistReport {
  std::size_t sa1_estimate = 0;   ///< estimated SA1 fault count
  std::size_t sa0_estimate = 0;   ///< estimated SA0 fault count
  double density_estimate = 0.0;  ///< (sa0+sa1) / cells
  std::uint64_t cycles = 0;       ///< ReRAM cycles consumed
  double elapsed_ns = 0.0;

  [[nodiscard]] std::size_t total_estimate() const {
    return sa1_estimate + sa0_estimate;
  }
};

class BistController {
 public:
  /// Run the full S1..S6 sequence on `xb`. Accounts the two write passes
  /// toward the crossbar's endurance counters.
  BistReport run(Crossbar& xb) const;

  /// Run BIST over every crossbar of an RCS; returns densities by XbarId.
  /// `total_cycles` (optional out) receives the cycles of one crossbar's
  /// test — all IMAs test in parallel, so this is also the RCS-wide cost.
  std::vector<double> survey(class Rcs& rcs,
                             std::uint64_t* total_cycles = nullptr) const;
};

}  // namespace remapd
