// March C- memory test — the conventional fault-detection baseline the
// paper contrasts its density-only BIST against (§II: March tests "detect
// pre-deployment faults but introduce high overhead for detecting
// post-deployment faults").
//
// March C-: {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)} —
// 10 operations per cell, each one ReRAM cycle (per-cell addressing is what
// buys exact fault locations and types). A 128x128 array costs 163,840
// cycles versus the 260 cycles of the density BIST.
#pragma once

#include <vector>

#include "xbar/crossbar.hpp"

namespace remapd {

/// One located fault found by the march.
struct MarchFault {
  std::size_t row, col;
  CellFault type;
};

struct MarchResult {
  std::vector<MarchFault> faults;     ///< exact locations and types
  std::uint64_t cycles = 0;           ///< ReRAM cycles consumed
  std::size_t reads = 0, writes = 0;  ///< operation counts

  [[nodiscard]] std::size_t fault_count() const { return faults.size(); }
};

/// Run March C- over a crossbar. Detects every stuck-at fault with its
/// location and type (unlike the density BIST, which reports only counts).
MarchResult march_c_minus(const Crossbar& xb);

/// Cycle cost of March C- for an array of `cells` cells: 10 ops/cell.
[[nodiscard]] constexpr std::uint64_t march_c_minus_cycles(
    std::size_t cells) {
  return 10ULL * cells;
}

}  // namespace remapd
