#include "bist/march.hpp"

namespace remapd {
namespace {

/// Simulated cell storage under faults: writes to a stuck cell are lost,
/// reads return the stuck logic value.
class CellArray {
 public:
  explicit CellArray(const Crossbar& xb) : xb_(xb),
      stored_(xb.rows() * xb.cols(), false) {}

  void write(std::size_t r, std::size_t c, bool v) {
    if (xb_.fault_at(r, c) == CellFault::kNone)
      stored_[r * xb_.cols() + c] = v;
  }

  [[nodiscard]] bool read(std::size_t r, std::size_t c) const {
    switch (xb_.fault_at(r, c)) {
      case CellFault::kStuckAt0: return false;
      case CellFault::kStuckAt1: return true;
      case CellFault::kNone: break;
    }
    return stored_[r * xb_.cols() + c];
  }

 private:
  const Crossbar& xb_;
  std::vector<bool> stored_;
};

}  // namespace

MarchResult march_c_minus(const Crossbar& xb) {
  MarchResult res;
  CellArray mem(xb);
  const std::size_t rows = xb.rows(), cols = xb.cols();
  std::vector<bool> flagged(rows * cols, false);

  auto flag = [&](std::size_t r, std::size_t c, bool read_value,
                  bool expected) {
    if (read_value == expected) return;
    if (flagged[r * cols + c]) return;
    flagged[r * cols + c] = true;
    // A cell that reads 1 where 0 was written is stuck-at-1 and vice versa.
    res.faults.push_back(MarchFault{
        r, c, read_value ? CellFault::kStuckAt1 : CellFault::kStuckAt0});
  };

  // Element-wise ascending/descending sweeps. `up` selects address order
  // (irrelevant for stuck-at detection, kept for fidelity to the
  // algorithm's coupling-fault coverage).
  auto sweep = [&](bool up, bool read_first, bool expected, bool write_after,
                   bool write_value) {
    for (std::size_t i = 0; i < rows * cols; ++i) {
      const std::size_t idx = up ? i : rows * cols - 1 - i;
      const std::size_t r = idx / cols, c = idx % cols;
      if (read_first) {
        flag(r, c, mem.read(r, c), expected);
        ++res.reads;
        ++res.cycles;
      }
      if (write_after) {
        mem.write(r, c, write_value);
        ++res.writes;
        ++res.cycles;
      }
    }
  };

  sweep(true, false, false, true, false);   // ⇕(w0)
  sweep(true, true, false, true, true);     // ⇑(r0, w1)
  sweep(true, true, true, true, false);     // ⇑(r1, w0)
  sweep(false, true, false, true, true);    // ⇓(r0, w1)
  sweep(false, true, true, true, false);    // ⇓(r1, w0)
  sweep(false, true, false, false, false);  // ⇕(r0)

  return res;
}

}  // namespace remapd
