#include "ecc/an_code.hpp"

#include <stdexcept>

namespace remapd {

AnCode::AnCode(std::int64_t a) : a_(a) {
  if (a < 3 || a % 2 == 0)
    throw std::invalid_argument("AnCode: A must be odd and >= 3");
}

std::int64_t AnCode::decode(std::int64_t code) const {
  if (code % a_ != 0)
    throw std::invalid_argument("AnCode::decode: corrupted code word");
  return code / a_;
}

std::int64_t AnCode::residue(std::int64_t code) const {
  std::int64_t r = code % a_;
  if (r > a_ / 2) r -= a_;
  if (r < -(a_ / 2)) r += a_;
  return r;
}

std::int64_t AnCode::correct(std::int64_t code) const {
  return code - residue(code);
}

std::vector<std::int64_t> AnCode::encode(
    const std::vector<std::int64_t>& values) const {
  std::vector<std::int64_t> out;
  out.reserve(values.size());
  for (std::int64_t v : values) out.push_back(encode(v));
  return out;
}

std::vector<std::int64_t> AnCode::correct_and_decode(
    const std::vector<std::int64_t>& codes) const {
  std::vector<std::int64_t> out;
  out.reserve(codes.size());
  for (std::int64_t c : codes) out.push_back(correct(c) / a_);
  return out;
}

}  // namespace remapd
