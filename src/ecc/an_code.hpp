// AN-code arithmetic error coding, the ECC scheme of Feinberg et al. [10]
// that the paper uses as its first baseline.
//
// An AN code multiplies every datum by a constant A before storage; any
// code word must therefore be a multiple of A. Because matrix-vector
// multiplication is linear, crossbar MVM outputs of encoded operands remain
// multiples of A, and a non-zero residue (y mod A) flags an error. Additive
// errors of magnitude |e| < A/2 are correctable by rounding to the nearest
// multiple of A; larger or compound errors (multiple faulty cells feeding
// one output — exactly what happens at high local fault density) exceed the
// code's capability, which is why the AN-code baseline collapses on
// crossbars with clustered faults (§IV.C).
#pragma once

#include <cstdint>
#include <vector>

namespace remapd {

class AnCode {
 public:
  /// `a` must be >= 3 and odd (odd A detects all single-bit flips).
  explicit AnCode(std::int64_t a = 17);

  [[nodiscard]] std::int64_t a() const { return a_; }

  [[nodiscard]] std::int64_t encode(std::int64_t value) const {
    return a_ * value;
  }
  /// Exact decode of a valid code word. Throws if `code` is not a multiple
  /// of A (use correct() first for possibly-faulty words).
  [[nodiscard]] std::int64_t decode(std::int64_t code) const;

  /// True when `code` carries no detectable error.
  [[nodiscard]] bool check(std::int64_t code) const {
    return residue(code) == 0;
  }
  /// Residue (code mod A), folded into (-A/2, A/2].
  [[nodiscard]] std::int64_t residue(std::int64_t code) const;

  /// Round to the nearest multiple of A — corrects any additive error of
  /// magnitude < A/2.
  [[nodiscard]] std::int64_t correct(std::int64_t code) const;

  /// Largest additive error magnitude the code corrects.
  [[nodiscard]] std::int64_t correctable_magnitude() const {
    return (a_ - 1) / 2;
  }

  // Vector conveniences.
  [[nodiscard]] std::vector<std::int64_t> encode(
      const std::vector<std::int64_t>& values) const;
  [[nodiscard]] std::vector<std::int64_t> correct_and_decode(
      const std::vector<std::int64_t>& codes) const;

 private:
  std::int64_t a_;
};

}  // namespace remapd
