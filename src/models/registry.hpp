// Model zoo used in the paper's evaluation: VGG-11/16/19 [2], ResNet-12/18
// [1] (ResNet-12 = ResNet-18 minus 6 conv layers, as in §IV.A), and
// SqueezeNet [20].
//
// The paper trains the full-size models on a GPU; this reproduction runs
// width-scaled variants (same depth and topology, fewer channels, smaller
// input) sized for a single CPU core. `ModelConfig::base_width` sets the
// width of the paper's 64-channel stage; 8 reproduces qualitative behaviour
// in seconds per epoch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace remapd {

struct ModelConfig {
  std::size_t num_classes = 10;
  std::size_t input_size = 16;   ///< square input resolution
  std::size_t input_channels = 3;
  std::size_t base_width = 8;    ///< width of the paper's 64-channel stage
};

/// A built CNN: the layer graph plus bookkeeping for the crossbar mapper.
struct Model {
  std::string name;
  ModelConfig config;
  std::unique_ptr<Sequential> net;

  Tensor forward(const Tensor& x, bool train) {
    return net->forward(x, train);
  }
  Tensor backward(const Tensor& dy) { return net->backward(dy); }
  std::vector<Param*> params() { return net->params(); }
  /// All crossbar-mapped (weight-bearing) layers, in topological order.
  std::vector<FaultableLayer*> faultable() {
    return collect_faultable(*net);
  }
  /// Total weights across faultable layers.
  [[nodiscard]] std::size_t total_mapped_weights();
};

Model build_vgg(int depth, const ModelConfig& cfg, Rng& rng);       // 11/16/19
Model build_resnet(int depth, const ModelConfig& cfg, Rng& rng);    // 12/18
Model build_squeezenet(const ModelConfig& cfg, Rng& rng);

/// Build by name: "vgg11" | "vgg16" | "vgg19" | "resnet12" | "resnet18" |
/// "squeezenet". Throws std::invalid_argument for unknown names.
Model build_model(const std::string& name, const ModelConfig& cfg, Rng& rng);

/// The five models of Fig. 5 plus SqueezeNet (Fig. 6 order).
const std::vector<std::string>& model_zoo();

}  // namespace remapd
