#include "models/registry.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace remapd {

Model build_squeezenet(const ModelConfig& cfg, Rng& rng) {
  // SqueezeNet v1.1-style topology scaled to base_width: stem conv, six fire
  // modules with periodic max-pooling, 1x1 classifier conv, global average
  // pool producing the logits (the hallmark parameter-lean design of [20]).
  auto net = std::make_unique<Sequential>("squeezenet");
  const std::size_t w = cfg.base_width;  // paper's 64 -> w

  net->emplace<Conv2d>(cfg.input_channels, 2 * w, 3, 1, 1, rng, "stem");
  net->emplace<BatchNorm>(2 * w, 0.1f, 1e-5f, "stem.bn");
  net->emplace<ReLU>();
  std::size_t spatial = cfg.input_size;
  std::size_t in_ch = 2 * w;

  struct FirePlan { std::size_t squeeze, expand; };
  const FirePlan plans[6] = {{w / 2, w},     {w / 2, w},
                             {w, 2 * w},     {w, 2 * w},
                             {3 * w / 2, 3 * w}, {3 * w / 2, 3 * w}};
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0 && spatial >= 2 && spatial % 2 == 0) {
      net->emplace<MaxPool2d>(2);
      spatial /= 2;
    }
    auto* fire = net->emplace<FireModule>(in_ch, plans[i].squeeze,
                                          plans[i].expand, plans[i].expand,
                                          rng, "fire" + std::to_string(i));
    in_ch = fire->out_channels();
  }

  net->emplace<Conv2d>(in_ch, cfg.num_classes, 1, 1, 0, rng, "classifier");
  net->emplace<GlobalAvgPool>();

  return Model{"squeezenet", cfg, std::move(net)};
}

}  // namespace remapd
