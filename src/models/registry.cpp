#include "models/registry.hpp"

#include <stdexcept>

namespace remapd {

std::size_t Model::total_mapped_weights() {
  std::size_t total = 0;
  for (FaultableLayer* f : faultable())
    total += f->weight_rows() * f->weight_cols();
  return total;
}

Model build_model(const std::string& name, const ModelConfig& cfg, Rng& rng) {
  if (name == "vgg11") return build_vgg(11, cfg, rng);
  if (name == "vgg16") return build_vgg(16, cfg, rng);
  if (name == "vgg19") return build_vgg(19, cfg, rng);
  if (name == "resnet12") return build_resnet(12, cfg, rng);
  if (name == "resnet18") return build_resnet(18, cfg, rng);
  if (name == "squeezenet") return build_squeezenet(cfg, rng);
  throw std::invalid_argument("unknown model: " + name);
}

const std::vector<std::string>& model_zoo() {
  static const std::vector<std::string> zoo = {
      "vgg11", "vgg16", "vgg19", "resnet12", "resnet18", "squeezenet"};
  return zoo;
}

}  // namespace remapd
