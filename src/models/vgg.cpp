#include <stdexcept>

#include "models/registry.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace remapd {
namespace {

// Standard VGG stage plans; -1 denotes a max-pool ("M").
const std::vector<int>& vgg_plan(int depth) {
  static const std::vector<int> v11 = {64, -1, 128, -1, 256, 256, -1,
                                       512, 512, -1, 512, 512, -1};
  static const std::vector<int> v16 = {64, 64, -1, 128, 128, -1,
                                       256, 256, 256, -1,
                                       512, 512, 512, -1,
                                       512, 512, 512, -1};
  static const std::vector<int> v19 = {64, 64, -1, 128, 128, -1,
                                       256, 256, 256, 256, -1,
                                       512, 512, 512, 512, -1,
                                       512, 512, 512, 512, -1};
  switch (depth) {
    case 11: return v11;
    case 16: return v16;
    case 19: return v19;
    default: throw std::invalid_argument("vgg depth must be 11/16/19");
  }
}

}  // namespace

Model build_vgg(int depth, const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_unique<Sequential>("vgg" + std::to_string(depth));
  std::size_t in_ch = cfg.input_channels;
  std::size_t spatial = cfg.input_size;
  int conv_idx = 0;

  for (int entry : vgg_plan(depth)) {
    if (entry == -1) {
      // Pool only while spatial resolution allows it — scaled inputs are
      // smaller than the paper's 32x32, so trailing pools are skipped once
      // the feature map can no longer halve evenly.
      if (spatial >= 2 && spatial % 2 == 0) {
        net->emplace<MaxPool2d>(2);
        spatial /= 2;
      }
      continue;
    }
    const std::size_t out_ch =
        static_cast<std::size_t>(entry) * cfg.base_width / 64;
    const std::string tag = "conv" + std::to_string(conv_idx++);
    net->emplace<Conv2d>(in_ch, out_ch, 3, 1, 1, rng, tag);
    net->emplace<BatchNorm>(out_ch, 0.1f, 1e-5f, tag + ".bn");
    net->emplace<ReLU>();
    in_ch = out_ch;
  }

  net->emplace<Flatten>();
  const std::size_t feat = in_ch * spatial * spatial;
  const std::size_t hidden = 8 * cfg.base_width;
  net->emplace<Linear>(feat, hidden, rng, "fc0");
  net->emplace<ReLU>();
  net->emplace<Linear>(hidden, cfg.num_classes, rng, "fc1");

  return Model{"vgg" + std::to_string(depth), cfg, std::move(net)};
}

}  // namespace remapd
