#include <stdexcept>

#include "models/registry.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace remapd {

Model build_resnet(int depth, const ModelConfig& cfg, Rng& rng) {
  // ResNet-18 = stem + 4 stages of 2 basic blocks (16 convs) + FC.
  // ResNet-12 removes 6 conv layers, i.e. one basic block from each of the
  // first three stages (§IV.A: "removing 6 convolution layers").
  std::vector<int> blocks;
  if (depth == 18) blocks = {2, 2, 2, 2};
  else if (depth == 12) blocks = {1, 1, 1, 2};
  else throw std::invalid_argument("resnet depth must be 12 or 18");

  auto net = std::make_unique<Sequential>("resnet" + std::to_string(depth));
  const std::size_t w = cfg.base_width;

  net->emplace<Conv2d>(cfg.input_channels, w, 3, 1, 1, rng, "stem");
  net->emplace<BatchNorm>(w, 0.1f, 1e-5f, "stem.bn");
  net->emplace<ReLU>();

  std::size_t in_ch = w;
  std::size_t spatial = cfg.input_size;
  const std::size_t stage_ch[4] = {w, 2 * w, 4 * w, 8 * w};
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      // First block of stages 2..4 downsamples — but only while the feature
      // map can still shrink (scaled inputs are smaller than the paper's).
      std::size_t stride = (stage > 0 && b == 0 && spatial >= 2) ? 2 : 1;
      const std::string tag =
          "s" + std::to_string(stage) + "b" + std::to_string(b);
      net->emplace<ResidualBlock>(in_ch, stage_ch[stage], stride, rng, tag);
      in_ch = stage_ch[stage];
      spatial /= stride;
    }
  }

  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_ch, cfg.num_classes, rng, "fc");

  return Model{"resnet" + std::to_string(depth), cfg, std::move(net)};
}

}  // namespace remapd
