#include "trainer/fault_aware_trainer.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/loss.hpp"
#include "obs/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace remapd {
namespace {

/// Conductance full-scale as a multiple of the layer weight RMS
/// (REMAPD_WMAX_RMS overrides for ablation studies).
const float kFullScaleRms = static_cast<float>(
    env_double_nonneg("REMAPD_WMAX_RMS", 4.0));

/// Domain tag separating the stochastic programmer's seed stream from every
/// other derive_seed consumer of cfg.seed.
constexpr std::uint64_t kProgrammerSeedTag = 0x70726f67;  // "prog"

}  // namespace

FaultAwareTrainer::FaultAwareTrainer(TrainerConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed),
      data_(make_synthetic([&] {
        SynthSpec s = cfg_.data;
        s.seed = cfg_.seed;
        return s;
      }())),
      model_([&] {
        ModelConfig mc = cfg_.model_cfg;
        mc.num_classes = data_.train.num_classes;
        mc.input_size = cfg_.data.image_size;
        Rng init_rng(cfg_.seed ^ 0x1234);
        return build_model(cfg_.model, mc, init_rng);
      }()) {
  layers_ = model_.faultable();

  // Size an RCS with enough crossbars for every forward + backward block.
  std::vector<std::pair<std::size_t, std::size_t>> dims;
  dims.reserve(layers_.size());
  std::size_t blocks = 0;
  const std::size_t s = cfg_.xbar_size;
  for (FaultableLayer* l : layers_) {
    dims.emplace_back(l->weight_rows(), l->weight_cols());
    const std::size_t fr = (l->weight_rows() + s - 1) / s;
    const std::size_t fc = (l->weight_cols() + s - 1) / s;
    blocks += 2 * fr * fc;  // forward + backward copies
  }
  RcsConfig rcfg = RcsConfig::sized_for(blocks, s, s);
  // Quantized cells: the crossbars allocate level-code storage, and SAF /
  // upset / IR-drop models act on discrete codes.
  cfg_.quant.validate();
  rcfg.cell.quant = cfg_.quant;
  rcs_ = std::make_unique<Rcs>(rcfg);
  mapper_ = std::make_unique<WeightMapper>(*rcs_);
  mapper_->map_layers(dims);

  injector_ = std::make_unique<FaultInjector>(cfg_.faults, rng_);
  if (cfg_.transients.enabled) {
    transients_ =
        std::make_unique<TransientFaultModel>(cfg_.transients, rng_);
    mapper_->set_transients(transients_.get());
  }
  mapper_->set_ir_drop(cfg_.ir_drop);
  if (cfg_.quant.enabled)
    programmer_ = std::make_unique<StochasticProgrammer>(
        cfg_.quant, Rng::derive_seed(cfg_.seed, kProgrammerSeedTag));
  policy_ = make_policy(cfg_.policy);
  density_.reset(rcs_->total_crossbars());

  // Snapshot initial weights and allocate gradient-importance buffers for
  // the weight-significance baselines.
  initial_weights_.reserve(layers_.size());
  grad_importance_.reserve(layers_.size());
  for (FaultableLayer* l : layers_) {
    initial_weights_.push_back(l->weight_param().value);
    grad_importance_.push_back(Tensor::zeros(l->weight_param().value.shape()));
  }

  sgd_ = std::make_unique<Sgd>(model_.params(), cfg_.sgd);

  if (!cfg_.resume_from.empty()) restore_from(cfg_.resume_from);
}

void FaultAwareTrainer::inject_pre_deployment() {
  if (!cfg_.faults.enable_pre) return;
  if (cfg_.fault_target == PhaseFaultTarget::kAll) {
    injector_->inject_pre_deployment(*rcs_);
    return;
  }
  // Fig. 5 mode: uniform faults only on the crossbars of one phase.
  const Phase phase = cfg_.fault_target == PhaseFaultTarget::kForwardOnly
                          ? Phase::kForward
                          : Phase::kBackward;
  const double density = cfg_.faults.high_density_hi;
  for (XbarId x : mapper_->xbars_of_phase(phase)) {
    Crossbar& xb = rcs_->crossbar(x);
    const auto count = static_cast<std::size_t>(
        std::llround(density * static_cast<double>(xb.cell_count())));
    xb.inject_random_faults(count, cfg_.faults.sa0_fraction, rng_);
  }
}

std::uint64_t FaultAwareTrainer::survey() {
  if (cfg_.use_bist_estimates) {
    std::uint64_t cycles = 0;
    density_.update(bist_.survey(*rcs_, &cycles));
    return cycles;
  }
  density_.update(rcs_->fault_densities());
  return 0;
}

PolicyContext FaultAwareTrainer::make_context(std::size_t epoch) {
  PolicyContext ctx;
  ctx.mapper = mapper_.get();
  ctx.density = &density_;
  ctx.epoch = epoch;
  ctx.rng = &rng_;
  ctx.transients = transients_.get();
  if (obs::enabled()) ctx.audit = &obs::Observatory::instance().audit();
  ctx.layers.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    ctx.layers[l].initial_weights = &initial_weights_[l];
    ctx.layers[l].grad_importance = &grad_importance_[l];
  }
  return ctx;
}

void FaultAwareTrainer::redeploy_interconnect(const IrDropConfig& ir,
                                              LineScheme scheme) {
  mapper_->set_ir_drop(ir);
  mapper_->set_line_scheme(scheme);
  refresh_fault_views(epochs_completed());
}

float FaultAwareTrainer::compute_layer_w_max(std::size_t l) const {
  // Conductance full-scale tracks the layer's dynamic range: the mapping
  // allocates headroom of `kFullScaleRms` times the weight RMS (like a
  // fixed-point quantizer clipping rare outliers). A stuck cell therefore
  // represents a full-scale (multi-sigma) weight value, and conductance
  // saturation bounds any drift to the same range.
  const Tensor& w = layers_[l]->weight_param().value;
  double sq = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i)
    sq += static_cast<double>(w[i]) * w[i];
  const float rms = static_cast<float>(
      std::sqrt(sq / static_cast<double>(std::max<std::size_t>(w.numel(), 1))));
  return std::max(0.05f, kFullScaleRms * rms);
}

void FaultAwareTrainer::program_step() {
  if (!programmer_) return;
  if (task_indices_.empty()) {
    // Write order per crossbar is remap-invariant, so the cache survives
    // swaps. Backward tasks hold the transposed copy of the same weights;
    // programming iterates forward tasks only, touching every master
    // weight exactly once per round.
    task_indices_.resize(mapper_->num_tasks());
    for (TaskId t = 0; t < mapper_->num_tasks(); ++t)
      if (mapper_->task(t).phase == Phase::kForward)
        task_indices_[t] = mapper_->task_weight_indices(t);
  }
  // Tasks write disjoint weight slices from independent per-(round, xbar)
  // RNG streams, so any thread partition produces identical bits.
  parallel_for(0, mapper_->num_tasks(), 1,
               [&](std::size_t t0, std::size_t t1) {
    for (TaskId t = t0; t < t1; ++t) {
      const WeightBlock& blk = mapper_->task(t);
      if (blk.phase != Phase::kForward) continue;
      const std::vector<std::uint32_t>& idx = task_indices_[t];
      programmer_->program_indexed(
          mapper_->xbar_of(t),
          layers_[blk.layer]->weight_param().value.data(), idx.data(),
          idx.size(), layer_w_max_[blk.layer]);
    }
  });
  programmer_->advance_round();
}

void FaultAwareTrainer::refresh_fault_views(std::size_t view_epoch) {
  PolicyContext ctx = make_context(view_epoch);
  layer_w_max_.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const float w_max = compute_layer_w_max(l);
    layer_w_max_[l] = w_max;
    // Quantized arrays: refresh the stored level codes before the views
    // read them (upset decoding needs codes under the current w_max).
    // Idempotent for fixed (weights, w_max), so the re-refresh after a
    // checkpoint resume reproduces the interrupted run's codes exactly.
    if (programmer_)
      mapper_->commit_level_codes(
          l, layers_[l]->weight_param().value.data(), w_max);
    FaultView fwd =
        mapper_->build_fault_view(l, Phase::kForward, w_max, cfg_.mapping);
    FaultView bwd =
        mapper_->build_fault_view(l, Phase::kBackward, w_max, cfg_.mapping);
    fwd = policy_->filter_view(l, Phase::kForward, std::move(fwd), ctx);
    bwd = policy_->filter_view(l, Phase::kBackward, std::move(bwd), ctx);
    layers_[l]->set_fault_views(std::move(fwd), std::move(bwd));
  }
}

void FaultAwareTrainer::begin_training() {
  if (started_) return;
  started_ = true;

  result_.model = model_.name;
  result_.policy = policy_->name();
  result_.dataset = synth_name(cfg_.data.kind);
  result_.policy_area_overhead_percent = policy_->area_overhead_percent();

  obs::Observatory* ob =
      obs::enabled() ? &obs::Observatory::instance() : nullptr;
  if (ob) {
    obs::RunInfo info;
    info.model = result_.model;
    info.policy = result_.policy;
    info.dataset = result_.dataset;
    info.seed = cfg_.seed;
    info.epochs = cfg_.epochs;
    info.crossbars = rcs_->total_crossbars();
    info.tiles_x = rcs_->config().tiles_x;
    info.tiles_y = rcs_->config().tiles_y;
    info.xbar_rows = rcs_->config().xbar_rows;
    info.xbar_cols = rcs_->config().xbar_cols;
    ob->begin_run(info);
  }

  if (!resumed_) {
    inject_pre_deployment();
    {
      REMAPD_TRACE_SPAN("bist-survey", "trainer");
      survey();
    }
    {
      REMAPD_TRACE_SPAN("remap", "trainer");
      PolicyContext ctx = make_context(0);
      // The placement round precedes deployment: its swaps are audited with
      // round="start" (excluded from epoch swap counts) and generate no NoC
      // weight-exchange traffic — the arrays are written fresh afterwards.
      ctx.at_training_start = true;
      policy_->on_training_start(ctx);
      result_.total_remaps += policy_->last_events().size();
    }
    if (programmer_) {
      // Initial array write (round 0): deployment programs the fresh
      // placement's crossbars, snapping the initial weights onto the level
      // grid. Skipped on resume — the restored weights are already the
      // programmed ones and the programmer resumes at its restored round.
      REMAPD_TRACE_SPAN("array-write", "trainer");
      layer_w_max_.resize(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l)
        layer_w_max_[l] = compute_layer_w_max(l);
      program_step();
    }
  }
  {
    // On resume this rebuilds the views from the restored fault state,
    // task map, and grad-importance accumulators — exactly the views the
    // interrupted run trained its next epoch with. epochs_completed() is
    // 0 for a fresh run and matches the view_epoch the interrupted run
    // last refreshed with (epoch + 1 at the boundary of its final epoch).
    REMAPD_TRACE_SPAN("view-refresh", "trainer");
    refresh_fault_views(epochs_completed());
  }
}

void FaultAwareTrainer::train_one_epoch(std::size_t epoch, Batcher& batcher) {
  obs::Observatory* ob =
      obs::enabled() ? &obs::Observatory::instance() : nullptr;
  Sgd& sgd = *sgd_;

  telemetry::TraceSpan epoch_span(
      "epoch", "trainer",
      telemetry::enabled() ? "{\"epoch\":" + std::to_string(epoch) + "}"
                           : std::string());
  {
    // Step learning-rate schedule (x0.3 at 1/2 and 3/4 of training): late
    // epochs run at a small rate, which keeps a nearly-converged model from
    // being tipped into divergence by accumulated fault perturbations.
    float lr = cfg_.sgd.lr;
    if (epoch * 2 >= cfg_.epochs) lr *= 0.3f;
    if (epoch * 4 >= 3 * cfg_.epochs) lr *= 0.3f;
    sgd.set_lr(lr);
  }

  for (auto& imp : grad_importance_) imp.fill(0.0f);
  // Fresh BN statistics window so evaluation normalizes with the current
  // epoch's activation distribution.
  model_.net->visit([](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm*>(&l)) bn->begin_stats_window();
  });

  batcher.start_epoch();
  double loss_sum = 0.0;
  std::size_t correct = 0, seen = 0;
  for (std::size_t b = 0; b < batcher.batches_per_epoch(); ++b) {
    const Batch batch = batcher.get(b);
    Tensor logits;
    {
      REMAPD_TRACE_SPAN("forward", "trainer");
      logits = model_.forward(batch.images, /*train=*/true);
    }
    const LossResult batch_loss = softmax_cross_entropy(logits, batch.labels);
    {
      REMAPD_TRACE_SPAN("backward", "trainer");
      model_.backward(batch_loss.dlogits);
    }

    // Accumulate |grad| importance before the optimizer clears grads.
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const Tensor& g = layers_[l]->weight_param().grad;
      Tensor& imp = grad_importance_[l];
      for (std::size_t i = 0; i < g.numel(); ++i)
        imp[i] += std::abs(g[i]);
    }

    {
      REMAPD_TRACE_SPAN("sgd-step", "trainer");
      sgd.step();
      mapper_->record_weight_update();  // endurance accounting

      // Conductance saturation (ablation): a stored weight cannot leave
      // the representable range [-w_max, +w_max] — the array write clips
      // it, bounding pinned-gradient drift.
      if (cfg_.saturate_weights)
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          const float wm = layer_w_max_[l];
          Tensor& wt = layers_[l]->weight_param().value;
          for (std::size_t i = 0; i < wt.numel(); ++i) {
            if (wt[i] > wm) wt[i] = wm;
            else if (wt[i] < -wm) wt[i] = -wm;
          }
        }

      // Quantized arrays: the update lands in the arrays as a stochastic-
      // rounding write — the master weights themselves live on the level
      // grid (quantized storage, not just quantized inference).
      if (programmer_) {
        REMAPD_TRACE_SPAN("array-write", "trainer");
        program_step();
      }
    }

    loss_sum += static_cast<double>(batch_loss.loss) * batch.labels.size();
    correct += batch_loss.correct;
    seen += batch.labels.size();
  }

  // --- epoch boundary: wear-out, upsets, BIST, remapping, view refresh ---
  std::size_t new_faults = 0;
  if (cfg_.fault_target == PhaseFaultTarget::kAll)
    new_faults = injector_->inject_post_deployment(*rcs_);
  // Transient upsets accrued over this epoch's operation. They surface in
  // the views built below — corrupting evaluation and the next epoch —
  // unless the policy's refresh round clears them first. The BIST survey
  // does NOT see them: march tests target permanent faults, and a cell
  // that programs correctly passes (detection needs the verify-read the
  // refresh policy pays for).
  std::size_t new_upsets = 0;
  if (transients_) new_upsets = transients_->step_epoch(*rcs_);
  std::uint64_t bist_cycles = 0;
  {
    REMAPD_TRACE_SPAN("bist-survey", "trainer");
    bist_cycles = survey();
  }

  PolicyContext ctx = make_context(epoch);
  const std::size_t audit_before = ob ? ob->audit().size() : 0;
  {
    REMAPD_TRACE_SPAN("remap", "trainer");
    policy_->on_epoch_end(ctx);
  }
  const std::size_t remaps = policy_->last_events().size();
  result_.total_remaps += remaps;
  {
    // Views for the next epoch (and this epoch's evaluation): epoch-keyed
    // filters must match what a resume at this boundary would rebuild.
    REMAPD_TRACE_SPAN("view-refresh", "trainer");
    refresh_fault_views(epoch + 1);
  }

  EpochRecord rec;
  rec.epoch = epoch;
  rec.train_loss = static_cast<float>(loss_sum / std::max<std::size_t>(seen, 1));
  rec.train_accuracy =
      static_cast<double>(correct) / std::max<std::size_t>(seen, 1);
  {
    REMAPD_TRACE_SPAN("evaluate", "trainer");
    rec.test_accuracy = evaluate_accuracy(model_, data_.test);
  }
  rec.remaps = remaps;
  rec.mean_density_est = density_.mean();
  rec.max_density_est = density_.max();
  rec.bist_cycles = bist_cycles;
  std::size_t faults = 0;
  for (XbarId x = 0; x < rcs_->total_crossbars(); ++x)
    faults += rcs_->crossbar(x).fault_count();
  rec.total_faults = faults;
  rec.new_faults = new_faults;
  rec.new_upsets = new_upsets;
  rec.live_upsets = transients_ ? transients_->total_upsets() : 0;
  rec.refreshed_cells = policy_->last_refreshed_cells();
  rec.refresh_cycles = policy_->last_extra_cycles();
  result_.history.push_back(rec);

  if (ob) {
    // Replay this round's protocol traffic (Fig. 3) from the audit
    // records it appended, then snapshot every crossbar's health.
    const auto& audit_recs = ob->audit().records();
    if (audit_recs.size() > audit_before)
      ob->noc().record_round(
          epoch, obs::simulate_round_traffic(audit_recs, audit_before, *rcs_));
    obs::EpochObs eo;
    eo.epoch = epoch;
    eo.remaps = rec.remaps;
    eo.new_faults = rec.new_faults;
    eo.total_faults = rec.total_faults;
    eo.train_loss = rec.train_loss;
    eo.test_accuracy = rec.test_accuracy;
    eo.bist_cycles = rec.bist_cycles;
    ob->sample_epoch(eo, *rcs_, density_, *mapper_);
  }

  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::instance();
    reg.counter("trainer.epochs").add();
    reg.counter("trainer.batches").add(batcher.batches_per_epoch());
    reg.counter("trainer.samples").add(seen);
    reg.counter("trainer.new_faults").add(new_faults);
    reg.gauge("trainer.train_loss").set(rec.train_loss);
    reg.gauge("trainer.test_accuracy").set(rec.test_accuracy);
    reg.gauge("trainer.total_faults").set(static_cast<double>(faults));
  }

  if (cfg_.verbose)
    log_info(model_.name, "/", policy_->name(), " epoch ", epoch,
             " loss=", rec.train_loss, " train_acc=", rec.train_accuracy,
             " test_acc=", rec.test_accuracy, " remaps=", remaps,
             " faults=", faults);
}

TrainResult FaultAwareTrainer::run() {
  begin_training();

  Batcher batcher(data_.train, cfg_.batch_size, rng_);
  for (std::size_t epoch = epochs_completed(); epoch < cfg_.epochs; ++epoch) {
    train_one_epoch(epoch, batcher);

    // --- checkpoint / early stop ---
    const std::size_t done = epoch + 1;
    const bool stopping =
        cfg_.stop_after_epochs > 0 && done >= cfg_.stop_after_epochs &&
        done < cfg_.epochs;
    if (!cfg_.checkpoint_path.empty() &&
        ((cfg_.checkpoint_every > 0 && done % cfg_.checkpoint_every == 0) ||
         stopping)) {
      REMAPD_TRACE_SPAN("checkpoint", "trainer");
      save_checkpoint(cfg_.checkpoint_path);
      if (cfg_.verbose)
        log_info("checkpoint saved to ", cfg_.checkpoint_path, " after epoch ",
                 epoch);
    }
    if (stopping) break;
  }

  result_.final_test_accuracy =
      result_.history.empty() ? 0.0 : result_.history.back().test_accuracy;
  return result_;
}

bool FaultAwareTrainer::run_slice(std::size_t max_epochs) {
  begin_training();
  const std::size_t next = epochs_completed();
  const std::size_t limit =
      max_epochs == 0 ? cfg_.epochs
                      : std::min(cfg_.epochs, next + max_epochs);
  // A per-slice Batcher is bitwise-equivalent to one that lives across
  // slices: construction consumes no RNG state, and every epoch's shuffle
  // is drawn fresh from rng_ in start_epoch().
  Batcher batcher(data_.train, cfg_.batch_size, rng_);
  for (std::size_t epoch = next; epoch < limit; ++epoch)
    train_one_epoch(epoch, batcher);
  result_.final_test_accuracy =
      result_.history.empty() ? 0.0 : result_.history.back().test_accuracy;
  return finished();
}

TrainResult train_with_faults(const TrainerConfig& cfg) {
  FaultAwareTrainer trainer(cfg);
  return trainer.run();
}

TrainerConfig recommended_config(const std::string& model) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.epochs = 8;
  cfg.data.train = 256;
  cfg.data.test = 128;
  // The deep plain VGGs need a gentler rate at the scaled width: at 0.05
  // their training is stable on ideal hardware but fault perturbations tip
  // it into divergence, which would confound fault damage with optimizer
  // instability.
  cfg.sgd.lr = (model == "vgg16" || model == "vgg19") ? 0.02f : 0.05f;
  // The two lowest-redundancy architectures — 16-conv plain VGG and
  // SqueezeNet with its 4-channel squeeze bottlenecks at base width 8 —
  // get 1.5x width so individual stuck weights cannot sever whole paths
  // (the paper's full-width models have vastly more redundancy).
  if (model == "vgg19" || model == "squeezenet")
    cfg.model_cfg.base_width = 12;
  return cfg;
}

void apply_env_overrides(TrainerConfig& cfg) {
  cfg.epochs = env_size("REMAPD_EPOCHS", cfg.epochs);
  cfg.data.train = env_size("REMAPD_TRAIN", cfg.data.train);
  cfg.data.test = env_size("REMAPD_TEST", cfg.data.test);
}

}  // namespace remapd
