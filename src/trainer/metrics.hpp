// Evaluation helpers and per-epoch training records.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "models/registry.hpp"

namespace remapd {

/// Top-1 accuracy of `model` on `data`, evaluated in inference mode through
/// the (possibly faulted) forward path.
double evaluate_accuracy(Model& model, const Dataset& data,
                         std::size_t batch_size = 64);

struct EpochRecord {
  std::size_t epoch = 0;
  float train_loss = 0.0f;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::size_t remaps = 0;            ///< task swaps this epoch
  double mean_density_est = 0.0;     ///< BIST view of the RCS
  double max_density_est = 0.0;
  std::size_t total_faults = 0;      ///< ground truth faulty cells
  std::size_t new_faults = 0;        ///< cells that failed during this epoch
  std::uint64_t bist_cycles = 0;     ///< ReRAM cycles of the epoch's survey
  std::size_t new_upsets = 0;        ///< transient upsets accrued this epoch
  std::size_t live_upsets = 0;       ///< upsets still drifted after policy
  std::size_t refreshed_cells = 0;   ///< upsets verified-and-rewritten
  std::uint64_t refresh_cycles = 0;  ///< ReRAM cycles of the refresh round
};

struct TrainResult {
  std::string model;
  std::string policy;
  std::string dataset;
  std::vector<EpochRecord> history;
  double final_test_accuracy = 0.0;
  std::size_t total_remaps = 0;
  double policy_area_overhead_percent = 0.0;

  /// Final epoch's record. Throws instead of the UB of back() on an empty
  /// history (a zero-epoch run has no records).
  [[nodiscard]] const EpochRecord& last() const {
    if (history.empty())
      throw std::out_of_range("TrainResult::last(): empty history");
    return history.back();
  }
};

}  // namespace remapd
