// Named fault-model presets: the `--fault-model` axis of the scenario
// matrix (fault model x policy; see DESIGN.md §14 and the README table).
//
// A fault model is a *bundle* of TrainerConfig fields — the permanent SAF
// scenario, the transient-upset scenario, and the IR-drop interconnect
// config — applied on top of an existing config. Policies are the other
// axis and stay orthogonal: any policy can run under any fault model.
#pragma once

#include <string>
#include <vector>

#include "trainer/fault_aware_trainer.hpp"

namespace remapd {

/// One row of the fault-model catalog
/// (`remapd_experiment --list-fault-models`).
struct FaultModelSpec {
  std::string name;
  std::string summary;
};

/// Every name apply_fault_model accepts:
///   saf            the paper's permanent stuck-at scenario (default)
///   transient      ideal cells + Poisson conductance upsets
///   ir-drop        ideal cells + finite line resistance
///   saf+transient  permanent faults and upsets together
///   saf+ir-drop    permanent faults under resistive lines
///   ideal          no faults of any kind
const std::vector<FaultModelSpec>& fault_model_registry();

/// Overwrite cfg's fault-related fields with the named preset. The SAF
/// preset derives its per-epoch wear-out rate from cfg.epochs (like
/// FaultScenario::paper_default_compressed), so set epochs first. Throws
/// std::invalid_argument naming `--fault-model` for unknown names.
void apply_fault_model(TrainerConfig& cfg, const std::string& name);

}  // namespace remapd
