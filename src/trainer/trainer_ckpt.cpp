// Checkpoint section inventory of FaultAwareTrainer.
//
//   meta      RunMeta identity card (model/policy/dataset/seed/progress)
//   config    ordered (field, value) fingerprint of every config field that
//             shapes the training trajectory; compared verbatim on resume
//   rng       the trainer's shared RNG stream (engine + cached
//             distribution state)
//   model     every parameter tensor (weights, biases, BN gamma/beta),
//             tagged, in model params() order
//   bn        BatchNorm running statistics + Chan window accumulators
//   sgd       momentum buffers
//   gradimp   per-layer |grad| importance accumulators (the weight-
//             significance baselines read the *completed* epoch's values
//             when views are rebuilt after resume)
//   rcs       per-crossbar cell state: SA0/SA1 fault maps, differential-
//             pair halves, stuck resistances, endurance write counters
//   mapper    task -> crossbar assignment (including Remap-D swaps) and
//             the line-drive scheme
//   injector  fault-injection base seed, completed rounds, endurance
//             baselines
//   transients transient-upset base seed, completed rounds, and every
//             still-drifted cell (absent marker when the scenario is off)
//   quant     stochastic-programmer base seed + completed write rounds
//             (absent marker when quantization is off); the crossbars'
//             level codes travel inside "rcs"
//   policy    the policy's name plus its Snapshotable payload (e.g.
//             drop-connect's mask seed, refresh's lifetime totals)
//   density   the BIST fault-density map + survey counter
//   history   per-epoch records + cumulative remap count
//
// Together these cover every bit of state that differs between "trained N
// epochs and stopped" and "trained N epochs of a longer run": a restore
// followed by the remaining epochs reproduces the uninterrupted run
// bitwise (see tests/test_ckpt.cpp).
#include <cstdio>

#include "ckpt/checkpoint.hpp"
#include "nn/batchnorm.hpp"
#include "telemetry/export.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "util/env.hpp"

namespace remapd {
namespace {

/// Shortest round-trip-exact decimal form: fingerprints compare as text.
std::string fmt_f(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_b(bool v) { return v ? "1" : "0"; }

void save_epoch_record(ckpt::ByteWriter& w, const EpochRecord& rec) {
  w.u64(rec.epoch);
  w.f32(rec.train_loss);
  w.f64(rec.train_accuracy);
  w.f64(rec.test_accuracy);
  w.u64(rec.remaps);
  w.f64(rec.mean_density_est);
  w.f64(rec.max_density_est);
  w.u64(rec.total_faults);
  w.u64(rec.new_faults);
  w.u64(rec.bist_cycles);
  w.u64(rec.new_upsets);
  w.u64(rec.live_upsets);
  w.u64(rec.refreshed_cells);
  w.u64(rec.refresh_cycles);
}

EpochRecord load_epoch_record(ckpt::ByteReader& r) {
  EpochRecord rec;
  rec.epoch = static_cast<std::size_t>(r.u64());
  rec.train_loss = r.f32();
  rec.train_accuracy = r.f64();
  rec.test_accuracy = r.f64();
  rec.remaps = static_cast<std::size_t>(r.u64());
  rec.mean_density_est = r.f64();
  rec.max_density_est = r.f64();
  rec.total_faults = static_cast<std::size_t>(r.u64());
  rec.new_faults = static_cast<std::size_t>(r.u64());
  rec.bist_cycles = r.u64();
  rec.new_upsets = static_cast<std::size_t>(r.u64());
  rec.live_upsets = static_cast<std::size_t>(r.u64());
  rec.refreshed_cells = static_cast<std::size_t>(r.u64());
  rec.refresh_cycles = r.u64();
  return rec;
}

}  // namespace

std::vector<std::pair<std::string, std::string>>
FaultAwareTrainer::config_fingerprint() const {
  std::vector<std::pair<std::string, std::string>> p;
  p.emplace_back("model", cfg_.model);
  p.emplace_back("base_width", std::to_string(cfg_.model_cfg.base_width));
  p.emplace_back("input_channels",
                 std::to_string(cfg_.model_cfg.input_channels));
  p.emplace_back("data.kind",
                 std::to_string(static_cast<int>(cfg_.data.kind)));
  p.emplace_back("data.image_size", std::to_string(cfg_.data.image_size));
  p.emplace_back("data.train", std::to_string(cfg_.data.train));
  p.emplace_back("data.test", std::to_string(cfg_.data.test));
  p.emplace_back("data.noise", fmt_f(cfg_.data.noise));
  // The lr step schedule and the compressed post-deployment fault rate are
  // functions of the full horizon, so `epochs` is part of the trajectory
  // even before the final epoch runs.
  p.emplace_back("epochs", std::to_string(cfg_.epochs));
  p.emplace_back("batch_size", std::to_string(cfg_.batch_size));
  p.emplace_back("sgd.lr", fmt_f(cfg_.sgd.lr));
  p.emplace_back("sgd.momentum", fmt_f(cfg_.sgd.momentum));
  p.emplace_back("sgd.weight_decay", fmt_f(cfg_.sgd.weight_decay));
  p.emplace_back("sgd.grad_clip", fmt_f(cfg_.sgd.grad_clip));
  const FaultScenario& fs = cfg_.faults;
  p.emplace_back("faults.enable_pre", fmt_b(fs.enable_pre));
  p.emplace_back("faults.high_fraction", fmt_f(fs.high_density_fraction));
  p.emplace_back("faults.high_lo", fmt_f(fs.high_density_lo));
  p.emplace_back("faults.high_hi", fmt_f(fs.high_density_hi));
  p.emplace_back("faults.low_lo", fmt_f(fs.low_density_lo));
  p.emplace_back("faults.low_hi", fmt_f(fs.low_density_hi));
  p.emplace_back("faults.sa0_fraction", fmt_f(fs.sa0_fraction));
  p.emplace_back("faults.clusters", std::to_string(fs.clusters_per_xbar));
  p.emplace_back("faults.enable_post", fmt_b(fs.enable_post));
  p.emplace_back("faults.post_xbar_fraction",
                 fmt_f(fs.post_xbar_fraction));
  p.emplace_back("faults.post_cell_fraction",
                 fmt_f(fs.post_cell_fraction));
  p.emplace_back("faults.mechanistic", fmt_b(fs.mechanistic_endurance));
  p.emplace_back("faults.weibull_shape", fmt_f(fs.endurance.weibull_shape));
  p.emplace_back("faults.char_writes",
                 fmt_f(fs.endurance.characteristic_writes));
  p.emplace_back("faults.endurance_sa0", fmt_f(fs.endurance.sa0_fraction));
  p.emplace_back("transients.enabled", fmt_b(cfg_.transients.enabled));
  p.emplace_back("transients.upset_rate", fmt_f(cfg_.transients.upset_rate));
  p.emplace_back("transients.toward_on",
                 fmt_f(cfg_.transients.toward_on_fraction));
  p.emplace_back("ir.wire_ohms", fmt_f(cfg_.ir_drop.wire_ohms_per_cell));
  p.emplace_back("ir.reference_ohms", fmt_f(cfg_.ir_drop.reference_ohms));
  // 0 when quantization is off, so an fp32 checkpoint resumed with
  // --cell-bits (or vice versa) fails naming the decisive field.
  p.emplace_back("quant.cell_bits",
                 std::to_string(cfg_.quant.enabled ? cfg_.quant.cell_bits
                                                   : 0));
  p.emplace_back("quant.noise", fmt_f(cfg_.quant.program_noise_sigma));
  p.emplace_back("quant.int8", fmt_b(cfg_.quant.int8_gemm));
  p.emplace_back("fault_target",
                 std::to_string(static_cast<int>(cfg_.fault_target)));
  p.emplace_back("policy", cfg_.policy);
  p.emplace_back("xbar_size", std::to_string(cfg_.xbar_size));
  p.emplace_back("mapping", std::to_string(static_cast<int>(cfg_.mapping)));
  p.emplace_back("saturate_weights", fmt_b(cfg_.saturate_weights));
  p.emplace_back("seed", std::to_string(cfg_.seed));
  p.emplace_back("use_bist", fmt_b(cfg_.use_bist_estimates));
  // Env knobs that alter the faulted arithmetic itself (REMAPD_THREADS is
  // deliberately absent: results are bitwise thread-count-invariant).
  p.emplace_back("env.wmax_rms", fmt_f(env_double_nonneg("REMAPD_WMAX_RMS",
                                                         4.0)));
  p.emplace_back("env.grad_pin", fmt_f(env_double_nonneg("REMAPD_GRAD_PIN",
                                                         12.0)));
  // Policy knobs that shape the trajectory when their policy is active
  // (harmless constants otherwise, but fingerprinting them unconditionally
  // keeps the field list fixed).
  p.emplace_back("env.refresh_every",
                 std::to_string(env_size("REMAPD_REFRESH_EVERY", 1)));
  p.emplace_back("env.drop_fraction",
                 fmt_f(env_double_nonneg("REMAPD_DROP_FRACTION", 0.05)));
  return p;
}

void FaultAwareTrainer::write_sections(ckpt::CheckpointWriter& w) {
  {
    ckpt::RunMeta meta;
    meta.model = model_.name;
    meta.policy = policy_->name();
    meta.dataset = synth_name(cfg_.data.kind);
    meta.seed = cfg_.seed;
    meta.epochs_total = cfg_.epochs;
    meta.epochs_completed = result_.history.size();
    meta.crossbars = rcs_->total_crossbars();
    meta.tasks = mapper_->num_tasks();
    meta.save(w.section("meta"));
  }
  ckpt::save_string_pairs(w.section("config"), config_fingerprint());
  rng_.save_state(w.section("rng"));
  {
    ckpt::ByteWriter& mw = w.section("model");
    const std::vector<Param*> params = model_.params();
    mw.u64(params.size());
    for (const Param* p : params) {
      mw.str(p->tag);
      save_tensor(mw, p->value);
    }
  }
  {
    ckpt::ByteWriter& bw = w.section("bn");
    std::vector<BatchNorm*> bns;
    model_.net->visit([&](Layer& l) {
      if (auto* bn = dynamic_cast<BatchNorm*>(&l)) bns.push_back(bn);
    });
    bw.u64(bns.size());
    for (const BatchNorm* bn : bns) bn->save_state(bw);
  }
  sgd_->save_state(w.section("sgd"));
  {
    ckpt::ByteWriter& gw = w.section("gradimp");
    gw.u64(grad_importance_.size());
    for (const Tensor& t : grad_importance_) save_tensor(gw, t);
  }
  rcs_->save_state(w.section("rcs"));
  mapper_->save_state(w.section("mapper"));
  injector_->save_state(w.section("injector"));
  {
    // Presence flag first: the config fingerprint already guarantees the
    // scenario matches, but an explicit marker keeps the section
    // self-describing for the inspector and fails loudly on corruption.
    ckpt::ByteWriter& tw = w.section("transients");
    tw.boolean(transients_ != nullptr);
    if (transients_) transients_->save_state(tw);
  }
  {
    // Same presence-flag pattern as "transients".
    ckpt::ByteWriter& qw = w.section("quant");
    qw.boolean(programmer_ != nullptr);
    if (programmer_) programmer_->save_state(qw);
  }
  {
    ckpt::ByteWriter& pw = w.section("policy");
    pw.str(policy_->name());
    policy_->save_state(pw);
  }
  density_.save_state(w.section("density"));
  {
    ckpt::ByteWriter& hw = w.section("history");
    hw.u64(result_.total_remaps);
    hw.u64(result_.history.size());
    for (const EpochRecord& rec : result_.history)
      save_epoch_record(hw, rec);
  }
}

void FaultAwareTrainer::save_checkpoint(const std::string& path) {
  ckpt::CheckpointWriter w;
  write_sections(w);
  w.write_file(path);
}

std::string FaultAwareTrainer::save_checkpoint_bytes() {
  ckpt::CheckpointWriter w;
  write_sections(w);
  return w.serialize();
}

void FaultAwareTrainer::restore_from(const std::string& path) {
  read_sections(ckpt::CheckpointReader(path));
  // The interrupted leg (a previous process) already wrote its telemetry /
  // obs streams to the same paths; this process must extend them, not
  // overwrite them. Only the file path sets this: an in-memory restore
  // (restore_from_bytes — fleet live migration) happens inside one
  // process whose exporters hold the full history and flush normally.
  telemetry::set_resume_append(true);
}

void FaultAwareTrainer::restore_from_bytes(const std::string& bytes) {
  read_sections(ckpt::CheckpointReader::from_bytes(bytes));
}

void FaultAwareTrainer::read_sections(const ckpt::CheckpointReader& reader) {
  ckpt::RunMeta meta;
  {
    ckpt::ByteReader r = reader.open("meta");
    meta.load(r);
    r.expect_end();
  }

  {
    ckpt::ByteReader r = reader.open("config");
    const auto stored = ckpt::load_string_pairs(r);
    r.expect_end();
    const auto current = config_fingerprint();
    if (stored.size() != current.size())
      throw ckpt::CheckpointError(
          "config fingerprint has " + std::to_string(stored.size()) +
          " fields, this build expects " + std::to_string(current.size()) +
          " (checkpoint from a different code version?)");
    for (std::size_t i = 0; i < stored.size(); ++i) {
      if (stored[i].first != current[i].first)
        throw ckpt::CheckpointError(
            "config fingerprint field order mismatch: '" + stored[i].first +
            "' vs '" + current[i].first + "'");
      if (stored[i].second != current[i].second)
        throw ckpt::CheckpointError(
            "config mismatch on '" + stored[i].first + "': checkpoint has " +
            stored[i].second + ", this run has " + current[i].second);
    }
  }

  const auto load = [&](const char* name, auto&& fn) {
    ckpt::ByteReader r = reader.open(name);
    fn(r);
    r.expect_end();
  };

  load("rng", [&](ckpt::ByteReader& r) { rng_.load_state(r); });
  load("model", [&](ckpt::ByteReader& r) {
    const std::vector<Param*> params = model_.params();
    const std::uint64_t count = r.u64();
    if (count != params.size())
      throw ckpt::CheckpointError(
          "parameter count mismatch: stored " + std::to_string(count) +
          ", model has " + std::to_string(params.size()));
    for (Param* p : params) {
      const std::string tag = r.str();
      if (tag != p->tag)
        throw ckpt::CheckpointError("parameter tag mismatch: stored '" + tag +
                                    "', model has '" + p->tag + "'");
      load_tensor_into(r, p->value);
    }
  });
  load("bn", [&](ckpt::ByteReader& r) {
    std::vector<BatchNorm*> bns;
    model_.net->visit([&](Layer& l) {
      if (auto* bn = dynamic_cast<BatchNorm*>(&l)) bns.push_back(bn);
    });
    const std::uint64_t count = r.u64();
    if (count != bns.size())
      throw ckpt::CheckpointError(
          "BatchNorm count mismatch: stored " + std::to_string(count) +
          ", model has " + std::to_string(bns.size()));
    for (BatchNorm* bn : bns) bn->load_state(r);
  });
  load("sgd", [&](ckpt::ByteReader& r) { sgd_->load_state(r); });
  load("gradimp", [&](ckpt::ByteReader& r) {
    const std::uint64_t count = r.u64();
    if (count != grad_importance_.size())
      throw ckpt::CheckpointError("grad-importance layer count mismatch");
    for (Tensor& t : grad_importance_) load_tensor_into(r, t);
  });
  load("rcs", [&](ckpt::ByteReader& r) { rcs_->load_state(r); });
  load("mapper", [&](ckpt::ByteReader& r) { mapper_->load_state(r); });
  load("injector", [&](ckpt::ByteReader& r) { injector_->load_state(r); });
  load("transients", [&](ckpt::ByteReader& r) {
    const bool present = r.boolean();
    if (present != (transients_ != nullptr))
      throw ckpt::CheckpointError(
          present ? "checkpoint has transient-upset state but the scenario "
                    "is disabled in this config"
                  : "checkpoint has no transient-upset state but the "
                    "scenario is enabled in this config");
    if (transients_) transients_->load_state(r);
  });
  load("quant", [&](ckpt::ByteReader& r) {
    const bool present = r.boolean();
    if (present != (programmer_ != nullptr))
      throw ckpt::CheckpointError(
          present ? "checkpoint has quantized-programming state but "
                    "quantization is disabled in this config"
                  : "checkpoint has no quantized-programming state but "
                    "quantization is enabled in this config");
    if (programmer_) programmer_->load_state(r);
  });
  load("policy", [&](ckpt::ByteReader& r) {
    const std::string stored = r.str();
    if (stored != policy_->name())
      throw ckpt::CheckpointError("policy mismatch: checkpoint was written "
                                  "by '" + stored + "', this run uses '" +
                                  policy_->name() + "'");
    policy_->load_state(r);
  });
  load("density", [&](ckpt::ByteReader& r) { density_.load_state(r); });
  load("history", [&](ckpt::ByteReader& r) {
    result_.total_remaps = static_cast<std::size_t>(r.u64());
    const std::uint64_t count = r.u64();
    result_.history.clear();
    result_.history.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
      result_.history.push_back(load_epoch_record(r));
  });

  if (result_.history.size() != meta.epochs_completed)
    throw ckpt::CheckpointError(
        "meta says " + std::to_string(meta.epochs_completed) +
        " epochs completed but history holds " +
        std::to_string(result_.history.size()));

  resumed_ = true;
  // A restore invalidates any views begin_training() built earlier on this
  // object: force the prologue to run again (in resumed mode it only
  // rebuilds views — no re-injection, no placement round).
  started_ = false;
}

}  // namespace remapd
