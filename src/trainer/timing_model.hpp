// Pipeline timing model of CNN training on the RCS, in ReRAM cycles — the
// denominator behind the paper's 0.13 % BIST overhead claim (§III.B.3,
// "considering full system evaluation [3], [14]").
//
// PipeLayer-style execution: the layers form a pipeline over crossbar MVMs;
// images stream through at the initiation interval of the slowest stage
// (a handful of ReRAM cycles — the analog MVM plus its column-serialized
// ADC readout at the 120x faster CMOS clock), and each batch boundary
// pays a row-by-row weight-update write. BIST runs once per epoch on every
// IMA in parallel, so its cost is one crossbar's test sequence.
#pragma once

#include <cstdint>
#include <cstddef>

namespace remapd {

struct PipelineTimingConfig {
  double reram_cycle_ns = 100.0;   ///< 10 MHz array clock [13], [18]
  std::size_t images_per_epoch = 50000;   ///< CIFAR-scale epoch
  std::size_t batch_size = 128;
  /// Initiation interval of the pipeline in ReRAM cycles: analog MVM (1) +
  /// ADC/S&A readout and forwarding (2; the 1.2 GHz CMOS periphery
  /// amortizes its ~128 conversions inside these cycles [13]).
  std::size_t mvm_interval_cycles = 3;
  /// Pipeline depth in stages (forward + backward tasks of the model).
  std::size_t pipeline_stages = 36;
  /// Row-by-row weight write per batch boundary [18].
  std::size_t weight_write_cycles = 128;
};

struct EpochTiming {
  std::uint64_t compute_cycles = 0;  ///< streaming MVMs (pipelined)
  std::uint64_t write_cycles = 0;    ///< per-batch weight updates
  std::uint64_t total_cycles = 0;
  double milliseconds = 0.0;

  [[nodiscard]] double overhead_percent(std::uint64_t extra_cycles) const {
    return total_cycles
               ? 100.0 * static_cast<double>(extra_cycles) /
                     static_cast<double>(total_cycles)
               : 0.0;
  }
};

/// Estimate one training epoch's duration in ReRAM cycles.
EpochTiming estimate_epoch_timing(const PipelineTimingConfig& cfg);

}  // namespace remapd
