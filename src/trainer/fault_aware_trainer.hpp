// FaultAwareTrainer: the full system loop of the paper.
//
// Per training run:
//   1. Build the CNN, size an RCS for it, tile + map every weight matrix
//      (forward and backward copies) onto crossbars.
//   2. Inject pre-deployment faults (clustered, non-uniform, SA0:SA1 9:1).
//   3. BIST survey -> density map; policy.on_training_start (e.g. static
//      fault-aware placement); build fault views and install them.
//   4. For each epoch: SGD over the training set with the faulted forward
//      and backward crossbar arithmetic; post-deployment fault injection
//      (wear-out of the epoch's writes); BIST survey; policy.on_epoch_end
//      (e.g. Remap-D task swaps); rebuild fault views; evaluate accuracy
//      through the faulted forward path.
//
// Every policy of Fig. 6 plugs into the same loop, so accuracy differences
// are attributable to the policy alone.
#pragma once

#include "bist/controller.hpp"
#include "core/remap_policy.hpp"
#include "data/synth.hpp"
#include "nn/sgd.hpp"
#include "trainer/metrics.hpp"
#include "xbar/fault_model.hpp"

namespace remapd {

/// Restrict fault injection to the crossbars of one phase (the Fig. 5
/// forward-vs-backward tolerance experiment).
enum class PhaseFaultTarget { kAll, kForwardOnly, kBackwardOnly };

struct TrainerConfig {
  std::string model = "vgg11";
  ModelConfig model_cfg{};
  SynthSpec data{};
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  Sgd::Config sgd{};
  FaultScenario faults = FaultScenario::ideal();
  PhaseFaultTarget fault_target = PhaseFaultTarget::kAll;
  std::string policy = "none";
  std::size_t xbar_size = 32;  ///< crossbar dimension for the scaled run
  MappingMode mapping = MappingMode::kSingleArrayBias;
  /// Clip stored weights to the conductance range after every update.
  /// Off by default: PytorX-style evaluation keeps an FP32 master copy and
  /// lets corrupted-gradient momentum drive weights out of range — the
  /// divergence dynamics behind the paper's large accuracy drops. The
  /// saturation ablation bench flips this on.
  bool saturate_weights = false;
  std::uint64_t seed = 42;
  bool use_bist_estimates = true;  ///< false: policies see ground truth
  bool verbose = false;

  // --- checkpoint / resume ---
  /// Save a checkpoint to `checkpoint_path` every N completed epochs
  /// (0 = never). A save also happens when `stop_after_epochs` truncates
  /// the run, so an interrupted run always leaves a resumable file.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Restore full training state from this checkpoint before running.
  /// The stored config fingerprint must match this config exactly.
  std::string resume_from;
  /// Stop (cleanly) after this many total epochs even though `epochs` is
  /// larger (0 = run to completion). This models an interruption without
  /// touching `epochs`, which the lr schedule and the compressed fault
  /// scenario are derived from.
  std::size_t stop_after_epochs = 0;
};

class FaultAwareTrainer {
 public:
  explicit FaultAwareTrainer(TrainerConfig cfg);

  /// Run the full training; returns the per-epoch record. After a
  /// restore_from (or cfg.resume_from), continues from the checkpointed
  /// epoch and the returned history includes the restored epochs.
  TrainResult run();

  /// Write the complete training state to `path` (atomic; see
  /// ckpt/checkpoint.hpp). Section inventory in trainer/trainer_ckpt.cpp.
  void save_checkpoint(const std::string& path);
  /// Restore state saved by save_checkpoint. Throws ckpt::CheckpointError
  /// if the file is corrupt or its config fingerprint does not match this
  /// trainer's config. A subsequent run() continues bitwise-identically to
  /// the uninterrupted run.
  void restore_from(const std::string& path);

  // Introspection for tests / examples (valid after construction).
  [[nodiscard]] const Rcs& rcs() const { return *rcs_; }
  [[nodiscard]] const WeightMapper& mapper() const { return *mapper_; }
  [[nodiscard]] Model& model() { return model_; }
  [[nodiscard]] const TrainerConfig& config() const { return cfg_; }

 private:
  void inject_pre_deployment();
  /// BIST (or ground-truth) survey into the density map; returns cycles.
  std::uint64_t survey();
  /// Rebuild + install fault views on every faultable layer.
  void refresh_fault_views();
  PolicyContext make_context(std::size_t epoch);
  /// Ordered (field, value) pairs of every config field that shapes the
  /// training trajectory — stored in the checkpoint and compared on resume.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  config_fingerprint() const;

  TrainerConfig cfg_;
  Rng rng_;
  std::vector<float> layer_w_max_;  ///< current conductance full-scale
  TrainTest data_;
  Model model_;
  std::vector<FaultableLayer*> layers_;
  std::unique_ptr<Rcs> rcs_;
  std::unique_ptr<WeightMapper> mapper_;
  std::unique_ptr<FaultInjector> injector_;
  PolicyPtr policy_;
  FaultDensityMap density_;
  BistController bist_;
  std::unique_ptr<Sgd> sgd_;

  // Baseline-policy inputs.
  std::vector<Tensor> initial_weights_;
  std::vector<Tensor> grad_importance_;

  // Resume state: run() starts at start_epoch_ with result_ pre-seeded
  // from the checkpointed history.
  TrainResult result_;
  std::size_t start_epoch_ = 0;
  bool resumed_ = false;
};

/// Convenience wrapper: construct + run.
TrainResult train_with_faults(const TrainerConfig& cfg);

/// Bench-calibrated configuration for a model of the zoo: 8 epochs over
/// the 256-sample scaled dataset, with a per-model learning rate (the
/// deepest plain VGG needs a gentler rate at the scaled width).
TrainerConfig recommended_config(const std::string& model);

/// Shared env-var scaling for benches: applies REMAPD_EPOCHS /
/// REMAPD_TRAIN / REMAPD_TEST overrides to a config.
void apply_env_overrides(TrainerConfig& cfg);

}  // namespace remapd
