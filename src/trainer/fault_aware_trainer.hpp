// FaultAwareTrainer: the full system loop of the paper.
//
// Per training run:
//   1. Build the CNN, size an RCS for it, tile + map every weight matrix
//      (forward and backward copies) onto crossbars.
//   2. Inject pre-deployment faults (clustered, non-uniform, SA0:SA1 9:1).
//   3. BIST survey -> density map; policy.on_training_start (e.g. static
//      fault-aware placement); build fault views and install them.
//   4. For each epoch: SGD over the training set with the faulted forward
//      and backward crossbar arithmetic; post-deployment fault injection
//      (wear-out of the epoch's writes); BIST survey; policy.on_epoch_end
//      (e.g. Remap-D task swaps); rebuild fault views; evaluate accuracy
//      through the faulted forward path.
//
// Every policy of Fig. 6 plugs into the same loop, so accuracy differences
// are attributable to the policy alone.
#pragma once

#include "bist/controller.hpp"
#include "core/remap_policy.hpp"
#include "data/synth.hpp"
#include "nn/sgd.hpp"
#include "quant/programmer.hpp"
#include "trainer/metrics.hpp"
#include "xbar/fault_model.hpp"
#include "xbar/transient.hpp"

namespace remapd {

namespace ckpt {
class CheckpointWriter;
class CheckpointReader;
}  // namespace ckpt

/// Restrict fault injection to the crossbars of one phase (the Fig. 5
/// forward-vs-backward tolerance experiment).
enum class PhaseFaultTarget { kAll, kForwardOnly, kBackwardOnly };

struct TrainerConfig {
  std::string model = "vgg11";
  ModelConfig model_cfg{};
  SynthSpec data{};
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  Sgd::Config sgd{};
  FaultScenario faults = FaultScenario::ideal();
  /// Transient conductance upsets (xbar/transient.hpp); off by default.
  TransientScenario transients{};
  /// Interconnect IR-drop (xbar/ir_drop.hpp); ideal wires by default.
  IrDropConfig ir_drop{};
  /// Multi-bit cell quantization (quant/quant.hpp). When enabled, every
  /// optimizer step ends with a stochastic-rounding array write that snaps
  /// the master weights onto each crossbar's discrete level grid, and the
  /// crossbars store level codes (SAF clamps and transient upsets then act
  /// on codes). quant.int8_gemm additionally routes layer MVMs through the
  /// int8 GEMM fast path. Off by default: fp32 runs are bit-identical to
  /// pre-quantization builds.
  QuantSpec quant{};
  PhaseFaultTarget fault_target = PhaseFaultTarget::kAll;
  std::string policy = "none";
  std::size_t xbar_size = 32;  ///< crossbar dimension for the scaled run
  MappingMode mapping = MappingMode::kSingleArrayBias;
  /// Clip stored weights to the conductance range after every update.
  /// Off by default: PytorX-style evaluation keeps an FP32 master copy and
  /// lets corrupted-gradient momentum drive weights out of range — the
  /// divergence dynamics behind the paper's large accuracy drops. The
  /// saturation ablation bench flips this on.
  bool saturate_weights = false;
  std::uint64_t seed = 42;
  bool use_bist_estimates = true;  ///< false: policies see ground truth
  bool verbose = false;

  // --- checkpoint / resume ---
  /// Save a checkpoint to `checkpoint_path` every N completed epochs
  /// (0 = never). A save also happens when `stop_after_epochs` truncates
  /// the run, so an interrupted run always leaves a resumable file.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Restore full training state from this checkpoint before running.
  /// The stored config fingerprint must match this config exactly.
  std::string resume_from;
  /// Stop (cleanly) after this many total epochs even though `epochs` is
  /// larger (0 = run to completion). This models an interruption without
  /// touching `epochs`, which the lr schedule and the compressed fault
  /// scenario are derived from.
  std::size_t stop_after_epochs = 0;
};

class FaultAwareTrainer {
 public:
  explicit FaultAwareTrainer(TrainerConfig cfg);

  /// Run the full training; returns the per-epoch record. After a
  /// restore_from (or cfg.resume_from), continues from the checkpointed
  /// epoch and the returned history includes the restored epochs.
  TrainResult run();

  /// Deployment prologue: pre-deployment fault injection, the initial BIST
  /// survey, the policy's placement round, and the first fault-view build.
  /// run()/run_slice() call it implicitly; the fleet scheduler calls it
  /// explicitly when a job is bound to a chip so that an epoch-0 checkpoint
  /// already contains the deployed state. Idempotent; after a restore it
  /// rebuilds the views from the restored state instead of re-injecting.
  void begin_training();

  /// Incremental execution for job multiplexing (src/fleet/): run up to
  /// `max_epochs` further epochs (0 = run to the cfg.epochs horizon) and
  /// yield. Returns true when all cfg.epochs are complete. Slices ignore
  /// checkpoint_every / stop_after_epochs — the caller owns checkpointing.
  /// Slicing is bitwise-identical to one uninterrupted run(): the batch
  /// shuffle, fault schedule, and arithmetic depend only on epoch index and
  /// restored RNG state, never on slice boundaries.
  bool run_slice(std::size_t max_epochs);

  /// Epochs finished so far (== result().history.size()).
  [[nodiscard]] std::size_t epochs_completed() const {
    return result_.history.size();
  }
  /// True once every cfg.epochs has run.
  [[nodiscard]] bool finished() const {
    return epochs_completed() >= cfg_.epochs;
  }
  /// Records accumulated so far (complete after run() / final run_slice()).
  [[nodiscard]] const TrainResult& result() const { return result_; }

  /// Write the complete training state to `path` (atomic; see
  /// ckpt/checkpoint.hpp). Section inventory in trainer/trainer_ckpt.cpp.
  void save_checkpoint(const std::string& path);
  /// The same checkpoint image as save_checkpoint, returned as bytes
  /// instead of touching the filesystem — live migration hands this
  /// straight to another trainer's restore_from_bytes.
  [[nodiscard]] std::string save_checkpoint_bytes();
  /// Restore state saved by save_checkpoint. Throws ckpt::CheckpointError
  /// if the file is corrupt or its config fingerprint does not match this
  /// trainer's config. A subsequent run() continues bitwise-identically to
  /// the uninterrupted run.
  void restore_from(const std::string& path);
  /// Restore from an in-memory image (same validation as restore_from).
  void restore_from_bytes(const std::string& bytes);

  /// Deploy-time interconnect what-if: swap the IR-drop model / line-drive
  /// scheme and rebuild every installed fault view (X-CHANGR-style
  /// evaluation of a trained network on a different interconnect than it
  /// trained on). Call after run(); a subsequent evaluate_accuracy() on
  /// model() reads through the redeployed arithmetic.
  void redeploy_interconnect(const IrDropConfig& ir, LineScheme scheme);

  // Introspection for tests / examples (valid after construction).
  [[nodiscard]] const Rcs& rcs() const { return *rcs_; }
  /// Mutable RCS access for the fleet layer: a SimChip imprints its native
  /// faults / wear into the array state of the job deployed on it.
  [[nodiscard]] Rcs& rcs() { return *rcs_; }
  [[nodiscard]] const WeightMapper& mapper() const { return *mapper_; }
  [[nodiscard]] const FaultDensityMap& density() const { return density_; }
  [[nodiscard]] Model& model() { return model_; }
  [[nodiscard]] const TrainerConfig& config() const { return cfg_; }

 private:
  void inject_pre_deployment();
  /// One full training epoch: SGD over the shuffled set, post-deployment
  /// wear, BIST survey, policy round, view refresh, evaluation; appends the
  /// epoch's record to result_.
  void train_one_epoch(std::size_t epoch, Batcher& batcher);
  /// Shared section writer/reader behind the file and byte checkpoints.
  void write_sections(ckpt::CheckpointWriter& w);
  void read_sections(const ckpt::CheckpointReader& reader);
  /// BIST (or ground-truth) survey into the density map; returns cycles.
  std::uint64_t survey();
  /// Rebuild + install fault views on every faultable layer. `view_epoch`
  /// is the epoch the views will serve (the *next* one at an epoch
  /// boundary): epoch-keyed view filters (drop-connect's rotating mask)
  /// must see the same value whether the views are built at the end of
  /// epoch e or by begin_training() after a resume past epoch e.
  void refresh_fault_views(std::size_t view_epoch);
  /// Conductance full-scale for layer `l` from its current weight RMS.
  [[nodiscard]] float compute_layer_w_max(std::size_t l) const;
  /// One array-write round (quantized runs only): stochastically round the
  /// master weights of every forward task onto its crossbar's level grid,
  /// then advance the programmer round. Stream per (round, crossbar), so
  /// the result is identical at any REMAPD_THREADS.
  void program_step();
  PolicyContext make_context(std::size_t epoch);
  /// Ordered (field, value) pairs of every config field that shapes the
  /// training trajectory — stored in the checkpoint and compared on resume.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  config_fingerprint() const;

  TrainerConfig cfg_;
  Rng rng_;
  std::vector<float> layer_w_max_;  ///< current conductance full-scale
  TrainTest data_;
  Model model_;
  std::vector<FaultableLayer*> layers_;
  std::unique_ptr<Rcs> rcs_;
  std::unique_ptr<WeightMapper> mapper_;
  std::unique_ptr<FaultInjector> injector_;
  /// Null unless cfg_.transients.enabled (so SAF-only runs draw exactly
  /// the RNG stream they always did).
  std::unique_ptr<TransientFaultModel> transients_;
  /// Null unless cfg_.quant.enabled (same stream-preservation rule). Seeded
  /// from cfg_.seed via derive_seed — never from rng_ draws.
  std::unique_ptr<StochasticProgrammer> programmer_;
  /// Per-task write-order cache for program_step (task_weight_indices is
  /// remap-invariant); lazily built, empty slots for backward tasks.
  std::vector<std::vector<std::uint32_t>> task_indices_;
  PolicyPtr policy_;
  FaultDensityMap density_;
  BistController bist_;
  std::unique_ptr<Sgd> sgd_;

  // Baseline-policy inputs.
  std::vector<Tensor> initial_weights_;
  std::vector<Tensor> grad_importance_;

  // Resume state: training continues at result_.history.size(), with
  // result_ pre-seeded from the checkpointed history.
  TrainResult result_;
  bool resumed_ = false;
  bool started_ = false;  ///< begin_training() already ran on this object
};

/// Convenience wrapper: construct + run.
TrainResult train_with_faults(const TrainerConfig& cfg);

/// Bench-calibrated configuration for a model of the zoo: 8 epochs over
/// the 256-sample scaled dataset, with a per-model learning rate (the
/// deepest plain VGG needs a gentler rate at the scaled width).
TrainerConfig recommended_config(const std::string& model);

/// Shared env-var scaling for benches: applies REMAPD_EPOCHS /
/// REMAPD_TRAIN / REMAPD_TEST overrides to a config.
void apply_env_overrides(TrainerConfig& cfg);

}  // namespace remapd
