#include "trainer/metrics.hpp"

#include "nn/loss.hpp"
#include "util/parallel.hpp"

namespace remapd {

double evaluate_accuracy(Model& model, const Dataset& data,
                         std::size_t batch_size) {
  const std::size_t n = data.size();
  if (n == 0) return 0.0;
  const Shape& s = data.images.shape();
  const std::size_t sample_elems = s[1] * s[2] * s[3];
  const std::size_t nbatches = (n + batch_size - 1) / batch_size;

  const auto eval_batch = [&](std::size_t bi) {
    const std::size_t begin = bi * batch_size;
    const std::size_t end = std::min(begin + batch_size, n);
    const std::size_t bn = end - begin;
    Tensor batch(Shape{bn, s[1], s[2], s[3]});
    std::vector<std::int32_t> labels(bn);
    for (std::size_t k = 0; k < bn; ++k) {
      const float* from = data.images.data() + (begin + k) * sample_elems;
      float* to = batch.data() + k * sample_elems;
      for (std::size_t e = 0; e < sample_elems; ++e) to[e] = from[e];
      labels[k] = data.labels[begin + k];
    }
    const Tensor logits = model.forward(batch, /*train=*/false);
    return count_correct(logits, labels);
  };

  // Eval-mode forwards are read-only (layers only cache state when
  // train=true; see Conv2d/Linear local effective-weight buffers), so test
  // batches can run concurrently. Forward has no cross-sample reductions,
  // so per-sample results — and the integer `correct` sum — are identical
  // whether batches run in parallel here or serially with the layer-level
  // sample parallelism inside forward. Prefer batch-level parallelism only
  // when it can occupy every worker; otherwise run batches serially and
  // let the per-sample loops inside the layers use the pool.
  //
  // Memory: each concurrent forward allocates its own intermediate
  // activations (im2col cols buffers, per-layer outputs, and effective-
  // weight copies when fault views are set), so peak eval memory scales
  // with parallel_threads(). Fine for the current model zoo; if larger
  // models land, cap the concurrent batches or add per-worker scratch
  // reuse here.
  std::vector<std::size_t> correct(nbatches, 0);
  if (nbatches >= parallel_threads()) {
    parallel_for(0, nbatches, 1, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t bi = b0; bi < b1; ++bi) correct[bi] = eval_batch(bi);
    });
  } else {
    for (std::size_t bi = 0; bi < nbatches; ++bi) correct[bi] = eval_batch(bi);
  }
  std::size_t total_correct = 0;
  for (std::size_t c : correct) total_correct += c;
  return static_cast<double>(total_correct) / static_cast<double>(n);
}

}  // namespace remapd
