#include "trainer/metrics.hpp"

#include "nn/loss.hpp"

namespace remapd {

double evaluate_accuracy(Model& model, const Dataset& data,
                         std::size_t batch_size) {
  const std::size_t n = data.size();
  if (n == 0) return 0.0;
  const Shape& s = data.images.shape();
  const std::size_t sample_elems = s[1] * s[2] * s[3];

  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, n);
    const std::size_t bn = end - begin;
    Tensor batch(Shape{bn, s[1], s[2], s[3]});
    std::vector<std::int32_t> labels(bn);
    for (std::size_t k = 0; k < bn; ++k) {
      const float* from = data.images.data() + (begin + k) * sample_elems;
      float* to = batch.data() + k * sample_elems;
      for (std::size_t e = 0; e < sample_elems; ++e) to[e] = from[e];
      labels[k] = data.labels[begin + k];
    }
    const Tensor logits = model.forward(batch, /*train=*/false);
    correct += count_correct(logits, labels);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace remapd
