#include "trainer/scenarios.hpp"

#include <stdexcept>

#include "util/env.hpp"

namespace remapd {
namespace {

TransientScenario default_transients() {
  TransientScenario t;
  t.enabled = true;
  // Per-crossbar Poisson mean, as a fraction of cells per epoch. The
  // default is calibrated so an unrefreshed run accumulates a few percent
  // of drifted cells over a short (6-8 epoch) compressed training — the
  // same exposure class as the SAF scenario's wear-out accumulation.
  // REMAPD_UPSET_RATE overrides for sweeps; the value lands in the config
  // fingerprint either way.
  t.upset_rate = env_double_nonneg("REMAPD_UPSET_RATE", 0.004);
  t.toward_on_fraction = 0.5;
  return t;
}

IrDropConfig default_ir_drop() {
  IrDropConfig ir;
  // Per-segment wire resistance. Under single-sided drive at the default
  // 32x32 arrays the calibrated gain (xbar/ir_drop.hpp) spreads from
  // ~1.5x at the driven corner to ~0.5x at the far corner at this value —
  // a distortion that visibly degrades training but doesn't destroy it.
  // REMAPD_WIRE_OHMS overrides for sweeps (fingerprinted via the config
  // field).
  ir.wire_ohms_per_cell = env_double_nonneg("REMAPD_WIRE_OHMS", 40.0);
  return ir;
}

}  // namespace

const std::vector<FaultModelSpec>& fault_model_registry() {
  static const std::vector<FaultModelSpec> specs = {
      {"saf",
       "permanent stuck-at faults: clustered manufacturing defects + "
       "per-epoch wear-out (the paper's scenario; default)"},
      {"transient",
       "transient conductance upsets: Poisson arrivals, cleared only by "
       "verify-and-rewrite (arXiv:2412.03089)"},
      {"ir-drop",
       "finite word/bit-line resistance: position-dependent weight "
       "attenuation, no cell faults (arXiv:1907.00285)"},
      {"saf+transient",
       "permanent faults and transient upsets together"},
      {"saf+ir-drop",
       "permanent faults under resistive lines: the gain spread amplifies "
       "stuck-cell errors near the driven corner"},
      {"ideal", "no faults of any kind (upper-bound reference)"},
  };
  return specs;
}

void apply_fault_model(TrainerConfig& cfg, const std::string& name) {
  // Reset all three axes, then enable what the preset asks for.
  cfg.transients = TransientScenario{};
  cfg.ir_drop = IrDropConfig{};
  if (name == "saf") {
    cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
    return;
  }
  if (name == "transient") {
    cfg.faults = FaultScenario::ideal();
    cfg.transients = default_transients();
    return;
  }
  if (name == "ir-drop") {
    cfg.faults = FaultScenario::ideal();
    cfg.ir_drop = default_ir_drop();
    return;
  }
  if (name == "saf+transient") {
    cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
    cfg.transients = default_transients();
    return;
  }
  if (name == "saf+ir-drop") {
    cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
    cfg.ir_drop = default_ir_drop();
    return;
  }
  if (name == "ideal") {
    cfg.faults = FaultScenario::ideal();
    return;
  }
  throw std::invalid_argument(
      "--fault-model: unknown fault model '" + name +
      "' (see --list-fault-models)");
}

}  // namespace remapd
