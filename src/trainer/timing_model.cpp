#include "trainer/timing_model.hpp"

namespace remapd {

EpochTiming estimate_epoch_timing(const PipelineTimingConfig& cfg) {
  EpochTiming t;
  // Pipelined streaming: one image enters every initiation interval; the
  // pipeline drains once per epoch.
  t.compute_cycles =
      static_cast<std::uint64_t>(cfg.images_per_epoch) *
          cfg.mvm_interval_cycles +
      static_cast<std::uint64_t>(cfg.pipeline_stages) *
          cfg.mvm_interval_cycles;
  // Weight updates: all crossbars write in parallel at each batch boundary
  // (the pipeline stalls for the row-by-row write).
  const std::size_t batches =
      (cfg.images_per_epoch + cfg.batch_size - 1) / cfg.batch_size;
  t.write_cycles =
      static_cast<std::uint64_t>(batches) * cfg.weight_write_cycles;
  t.total_cycles = t.compute_cycles + t.write_cycles;
  t.milliseconds = static_cast<double>(t.total_cycles) * cfg.reram_cycle_ns /
                   1e6;
  return t;
}

}  // namespace remapd
