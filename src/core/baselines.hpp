// Baseline fault-tolerance solutions of Fig. 6 (§IV.A, §IV.C).
#pragma once

#include "core/remap_policy.hpp"

namespace remapd {

/// Unprotected training: every physical fault reaches the arithmetic.
class NoProtection final : public RemapPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Fault-aware mapping performed once at t = 0: critical (backward) tasks
/// are greedily placed on the least-dense crossbars. Static by design — it
/// cannot react to post-deployment faults, which is exactly how it fails in
/// Fig. 6.
class StaticMapping final : public RemapPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "static"; }
  void on_training_start(PolicyContext& ctx) override;
};

/// Remap-WS [12]: remaps the top-5 % most-significant weights (by |w| of
/// the *pre-training* analysis — the method assumes a pretrained model)
/// that land on faulty cells to spare fault-free columns. Implemented as a
/// view filter that absorbs clamps on protected indices; everything else
/// (95 % of the faults) stays.
class RemapWS final : public RemapPolicy {
 public:
  explicit RemapWS(double fraction = 0.05) : fraction_(fraction) {}
  [[nodiscard]] std::string name() const override { return "remap-ws"; }
  [[nodiscard]] FaultView filter_view(std::size_t layer, Phase phase,
                                      FaultView view,
                                      const PolicyContext& ctx) override;
  /// Spare column hardware proportional to the protected fraction.
  [[nodiscard]] double area_overhead_percent() const override {
    return 100.0 * fraction_;
  }

 private:
  double fraction_;
};

/// Remap-T-n %: preemptively remaps the top-n % weights by |gradient| to
/// spare fault-free crossbars every epoch, whether or not they are faulty.
/// Near-ideal accuracy at n = 10 but pays n % spare hardware (§IV.C).
class RemapTopN final : public RemapPolicy {
 public:
  explicit RemapTopN(double fraction) : fraction_(fraction) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] FaultView filter_view(std::size_t layer, Phase phase,
                                      FaultView view,
                                      const PolicyContext& ctx) override;
  [[nodiscard]] double area_overhead_percent() const override {
    return 100.0 * fraction_;
  }

 private:
  double fraction_;
};

/// AN-code ECC [10]: the correction table can absorb the errors of a
/// crossbar only while its fault count stays low — "effective only if the
/// number of faults is low" [5]. Crossbars whose (BIST-estimated) density
/// exceeds the capability keep all their faults uncorrected, which is how
/// the non-uniform distribution (20 % of crossbars at 0.4–1 % plus
/// wear-out accumulation) defeats the code (§IV.C).
class AnCodePolicy final : public RemapPolicy {
 public:
  explicit AnCodePolicy(double correctable_density = 0.001)
      : capability_(correctable_density) {}
  [[nodiscard]] std::string name() const override { return "an-code"; }
  [[nodiscard]] FaultView filter_view(std::size_t layer, Phase phase,
                                      FaultView view,
                                      const PolicyContext& ctx) override;
  [[nodiscard]] double area_overhead_percent() const override {
    return 6.3;  // reported by [10]
  }

 private:
  double capability_;  ///< max crossbar fault density the code corrects
};

}  // namespace remapd
