// Scenario-diversity baselines: policies targeting fault physics beyond
// the paper's permanent stuck-at scenario (see DESIGN.md §14).
//
//   refresh       online detect-and-refresh of transient conductance
//                 upsets (Khezeli & Zarandi, arXiv:2412.03089): every
//                 `interval` epochs, each mapped crossbar is verify-read
//                 row by row against its expected contents and drifted
//                 rows are rewritten. Cost is charged in ReRAM cycles
//                 (last_extra_cycles) and rewrites count against the
//                 endurance budget. A no-op under purely permanent faults
//                 — a stuck cell verifies as wrong forever and rewriting
//                 cannot fix it.
//   xchangr       X-CHANGR-style alternating line drive (arXiv:1907.00285):
//                 one-time interconnect reconfiguration that equalizes
//                 every cell's wire path, flattening the IR-drop gain
//                 field to a benign uniform scale. Needs IR-drop to be
//                 modelled to differ from "none".
//   drop-connect  drop-connect fault-tolerance training (arXiv:2404.15498):
//                 a deterministic per-epoch rotating fraction of each
//                 layer's weights is disconnected (reads as zero, gets no
//                 gradient), training redundancy into the network instead
//                 of repairing hardware. Remap-free: never swaps a task.
#pragma once

#include "core/remap_policy.hpp"

namespace remapd {

/// Detect-and-refresh of transient upsets ("refresh").
class DetectAndRefresh final : public RemapPolicy {
 public:
  struct Config {
    std::size_t interval = 1;  ///< refresh every N epochs (>= 1)
    /// Verify read of one row (column-parallel compare against the
    /// expected image — same per-row cost class as a BIST march element).
    std::uint64_t verify_cycles_per_row = 1;
    /// Rewrite of one drifted row (program pulses are slower than reads).
    std::uint64_t rewrite_cycles_per_row = 4;
  };

  DetectAndRefresh();  // default Config
  explicit DetectAndRefresh(Config cfg);

  [[nodiscard]] std::string name() const override { return "refresh"; }
  void on_epoch_end(PolicyContext& ctx) override;
  [[nodiscard]] std::uint64_t last_extra_cycles() const override {
    return last_cycles_;
  }
  [[nodiscard]] std::size_t last_refreshed_cells() const override {
    return last_refreshed_;
  }

  // Snapshotable: lifetime refresh totals (the per-round counters are
  // recomputed by every on_epoch_end before anything reads them).
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }
  [[nodiscard]] std::size_t total_refreshed() const {
    return total_refreshed_;
  }

 private:
  Config cfg_;
  std::uint64_t last_cycles_ = 0;
  std::size_t last_refreshed_ = 0;
  std::uint64_t total_cycles_ = 0;
  std::size_t total_refreshed_ = 0;
};

/// Alternating line drive against IR-drop ("xchangr").
class XChangrMapping final : public RemapPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "xchangr"; }
  void on_training_start(PolicyContext& ctx) override;
};

/// Drop-connect fault-tolerance training ("drop-connect").
class DropConnect final : public RemapPolicy {
 public:
  explicit DropConnect(double fraction = 0.05);

  [[nodiscard]] std::string name() const override { return "drop-connect"; }
  void on_training_start(PolicyContext& ctx) override;
  [[nodiscard]] FaultView filter_view(std::size_t layer, Phase phase,
                                      FaultView view,
                                      const PolicyContext& ctx) override;

  // Snapshotable: the mask seed, drawn once at training start. Without it
  // a resumed run would rotate through different masks than the
  // uninterrupted one.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  double fraction_;
  bool seeded_ = false;
  std::uint64_t base_seed_ = 0;
};

}  // namespace remapd
