// FaultDensityMap: the RCS-wide view of per-crossbar fault densities as
// *measured by BIST* (estimates, not ground truth — the remap policies only
// ever see what the hardware can observe).
#pragma once

#include <cstddef>
#include <vector>

#include "ckpt/snapshot.hpp"

namespace remapd {

/// Accuracy of a BIST density survey against ground truth (§III.B.3): how
/// well the estimates the policies act on track the physical fault state.
struct DensityErrorStats {
  double mean_abs = 0.0;     ///< mean |estimate - truth|
  double max_abs = 0.0;      ///< worst single-crossbar error
  double mean_signed = 0.0;  ///< bias: mean (estimate - truth)
};

class FaultDensityMap : public ckpt::Snapshotable {
 public:
  FaultDensityMap() = default;
  explicit FaultDensityMap(std::size_t num_crossbars)
      : density_(num_crossbars, 0.0) {}

  /// Re-dimension (zeroing) for a new RCS.
  void reset(std::size_t num_crossbars) {
    density_.assign(num_crossbars, 0.0);
    surveys_ = 0;
  }

  /// Replace the map with a fresh BIST survey.
  void update(std::vector<double> estimates);

  [[nodiscard]] double density(std::size_t xbar) const {
    return density_.at(xbar);
  }
  [[nodiscard]] const std::vector<double>& all() const { return density_; }
  [[nodiscard]] std::size_t size() const { return density_.size(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  /// Crossbars with density strictly above a threshold.
  [[nodiscard]] std::vector<std::size_t> above(double threshold) const;
  /// Estimation-error statistics of the current survey against a
  /// ground-truth density vector (e.g. Rcs::fault_densities()). Throws
  /// std::invalid_argument on a size mismatch.
  [[nodiscard]] DensityErrorStats error_vs(
      const std::vector<double>& truth) const;
  /// Number of surveys applied so far.
  [[nodiscard]] std::size_t surveys() const { return surveys_; }

  // Snapshotable: the current density estimates plus the survey counter.
  void save_state(ckpt::ByteWriter& w) const override {
    w.vec_f64(density_);
    w.u64(surveys_);
  }
  void load_state(ckpt::ByteReader& r) override {
    density_ = r.vec_f64();
    surveys_ = static_cast<std::size_t>(r.u64());
  }

 private:
  std::vector<double> density_;
  std::size_t surveys_ = 0;
};

}  // namespace remapd
