// FaultDensityMap: the RCS-wide view of per-crossbar fault densities as
// *measured by BIST* (estimates, not ground truth — the remap policies only
// ever see what the hardware can observe).
#pragma once

#include <cstddef>
#include <vector>

namespace remapd {

class FaultDensityMap {
 public:
  FaultDensityMap() = default;
  explicit FaultDensityMap(std::size_t num_crossbars)
      : density_(num_crossbars, 0.0) {}

  /// Re-dimension (zeroing) for a new RCS.
  void reset(std::size_t num_crossbars) {
    density_.assign(num_crossbars, 0.0);
    surveys_ = 0;
  }

  /// Replace the map with a fresh BIST survey.
  void update(std::vector<double> estimates);

  [[nodiscard]] double density(std::size_t xbar) const {
    return density_.at(xbar);
  }
  [[nodiscard]] const std::vector<double>& all() const { return density_; }
  [[nodiscard]] std::size_t size() const { return density_.size(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  /// Crossbars with density strictly above a threshold.
  [[nodiscard]] std::vector<std::size_t> above(double threshold) const;
  /// Number of surveys applied so far.
  [[nodiscard]] std::size_t surveys() const { return surveys_; }

 private:
  std::vector<double> density_;
  std::size_t surveys_ = 0;
};

}  // namespace remapd
