#include "core/baselines.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <cmath>
#include <unordered_map>

#include "obs/audit.hpp"

namespace remapd {
namespace {

/// Magnitude above which a value is in the top `fraction` of |values|.
float top_fraction_threshold(const Tensor& values, double fraction) {
  if (values.empty() || fraction <= 0.0)
    return std::numeric_limits<float>::max();
  std::vector<float> mags(values.numel());
  for (std::size_t i = 0; i < values.numel(); ++i)
    mags[i] = std::abs(values[i]);
  auto keep = static_cast<std::size_t>(
      std::floor(fraction * static_cast<double>(mags.size())));
  if (keep == 0) return std::numeric_limits<float>::max();
  if (keep >= mags.size()) return 0.0f;
  std::nth_element(mags.begin(),
                   mags.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   mags.end(), std::greater<float>());
  return mags[keep - 1];
}

}  // namespace

// ------------------------------------------------------------ StaticMapping

void StaticMapping::on_training_start(PolicyContext& ctx) {
  clear_events();
  WeightMapper& mapper = *ctx.mapper;
  const FaultDensityMap& density = *ctx.density;

  // Crossbars sorted by measured density, best first.
  std::vector<XbarId> order(density.size());
  for (XbarId x = 0; x < order.size(); ++x) order[x] = x;
  std::sort(order.begin(), order.end(), [&](XbarId a, XbarId b) {
    return density.density(a) < density.density(b);
  });

  // Critical (backward) tasks first, then forward, each claiming the next
  // best crossbar. Executed as swaps so the mapping stays a bijection.
  std::vector<TaskId> tasks(mapper.num_tasks());
  for (TaskId t = 0; t < tasks.size(); ++t) tasks[t] = t;
  std::stable_sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
    return task_criticality(mapper.task(a).phase) >
           task_criticality(mapper.task(b).phase);
  });

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const XbarId want = order[i];
    const XbarId have = mapper.xbar_of(tasks[i]);
    if (want == have) continue;
    if (ctx.audit) {
      obs::RemapAuditRecord rec;
      rec.epoch = ctx.epoch;
      rec.policy = name();
      rec.at_training_start = ctx.at_training_start;
      rec.sender = have;
      rec.receiver = want;
      rec.reason = "static-placement";
      rec.sender_density = density.density(have);
      rec.receiver_density = density.density(want);
      rec.hops = mapper.hop_distance(have, want);
      ctx.audit->append(std::move(rec));
    }
    mapper.swap_tasks(tasks[i], want);
    record_event(have, want);
  }
}

// ------------------------------------------------------------------ RemapWS

FaultView RemapWS::filter_view(std::size_t layer, Phase phase, FaultView view,
                               const PolicyContext& ctx) {
  (void)phase;
  const LayerSnapshot& snap = ctx.layers.at(layer);
  if (!snap.initial_weights) return view;
  // Significance comes from the t=0 analysis — the method's pretrained-
  // model assumption, which training-from-scratch violates (§IV.C).
  const float thr = top_fraction_threshold(*snap.initial_weights, fraction_);
  std::erase_if(view.clamps, [&](const WeightClamp& c) {
    const float mag = std::abs((*snap.initial_weights)[c.index]);
    return mag >= thr && mag > 0.0f;
  });
  return view;
}

// ---------------------------------------------------------------- RemapTopN

std::string RemapTopN::name() const {
  return "remap-t-" +
         std::to_string(static_cast<int>(std::lround(fraction_ * 100))) + "%";
}

FaultView RemapTopN::filter_view(std::size_t layer, Phase phase,
                                 FaultView view, const PolicyContext& ctx) {
  (void)phase;
  const LayerSnapshot& snap = ctx.layers.at(layer);
  if (!snap.grad_importance) return view;
  // Importance is refreshed every epoch from |gradient| — the preemptive
  // per-epoch remap of the top-n % weights to spare fault-free hardware.
  // A zero threshold (e.g. before the first epoch produces importance
  // data) protects nothing — zero-importance weights are not "top".
  const float thr = top_fraction_threshold(*snap.grad_importance, fraction_);
  std::erase_if(view.clamps, [&](const WeightClamp& c) {
    const float mag = std::abs((*snap.grad_importance)[c.index]);
    return mag >= thr && mag > 0.0f;
  });
  return view;
}

// -------------------------------------------------------------- AnCodePolicy

FaultView AnCodePolicy::filter_view(std::size_t layer, Phase phase,
                                    FaultView view,
                                    const PolicyContext& ctx) {
  const WeightMapper& mapper = *ctx.mapper;
  const auto dims = mapper.layer_dims(layer);

  // Blocks of this layer+phase whose crossbar is within the code's
  // capability (decided on BIST-estimated density — what the correction
  // table builder can observe).
  std::vector<const WeightBlock*> corrected;
  for (TaskId t = 0; t < mapper.num_tasks(); ++t) {
    const WeightBlock& blk = mapper.task(t);
    if (blk.layer != layer || blk.phase != phase) continue;
    if (ctx.density->density(mapper.xbar_of(t)) <= capability_)
      corrected.push_back(&blk);
  }

  std::erase_if(view.clamps, [&](const WeightClamp& c) {
    const std::size_t w_row = c.index / dims.second;
    const std::size_t w_col = c.index % dims.second;
    for (const WeightBlock* blk : corrected)
      if (block_covers(*blk, w_row, w_col)) return true;  // corrected
    return false;
  });
  return view;
}

}  // namespace remapd
