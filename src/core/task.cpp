#include "core/task.hpp"

namespace remapd {

static_assert(task_criticality(Phase::kBackward) >
              task_criticality(Phase::kForward));
static_assert(is_critical(Phase::kBackward) && !is_critical(Phase::kForward));
static_assert(can_receive(Phase::kForward) && !can_receive(Phase::kBackward));

}  // namespace remapd
