#include "core/remap_policy.hpp"

#include <stdexcept>

#include "core/baselines.hpp"
#include "core/remap_d.hpp"
#include "core/scenario_policies.hpp"
#include "util/env.hpp"

namespace remapd {

PolicyPtr make_policy(const std::string& name) {
  if (name == "remap-d") return std::make_unique<RemapD>();
  if (name == "static") return std::make_unique<StaticMapping>();
  if (name == "remap-ws") return std::make_unique<RemapWS>();
  if (name == "remap-t-5") return std::make_unique<RemapTopN>(0.05);
  if (name == "remap-t-10") return std::make_unique<RemapTopN>(0.10);
  if (name == "an-code")
    return std::make_unique<AnCodePolicy>(
        env_double_nonneg("REMAPD_ANCODE_CAP", 0.001));
  if (name == "none") return std::make_unique<NoProtection>();
  if (name == "refresh") {
    DetectAndRefresh::Config cfg;
    cfg.interval = env_size("REMAPD_REFRESH_EVERY", 1);
    return std::make_unique<DetectAndRefresh>(cfg);
  }
  if (name == "xchangr") return std::make_unique<XChangrMapping>();
  if (name == "drop-connect")
    return std::make_unique<DropConnect>(
        env_double_nonneg("REMAPD_DROP_FRACTION", 0.05));
  throw std::invalid_argument("make_policy: unknown policy " + name);
}

const std::vector<PolicySpec>& policy_registry() {
  static const std::vector<PolicySpec> specs = {
      {"remap-d", "dynamic task remapping (the paper's contribution)"},
      {"static", "fault-aware placement once at t = 0"},
      {"remap-ws", "top-5% weight-significance remap [12]"},
      {"remap-t-5", "preemptive top-5% |gradient| remap"},
      {"remap-t-10", "preemptive top-10% |gradient| remap"},
      {"an-code", "AN-code ECC output correction [10]"},
      {"none", "unprotected training"},
      {"refresh",
       "detect-and-refresh of transient upsets every REMAPD_REFRESH_EVERY "
       "epochs (arXiv:2412.03089)"},
      {"xchangr",
       "alternating line drive flattening the IR-drop gain field "
       "(arXiv:1907.00285)"},
      {"drop-connect",
       "drop-connect training, REMAPD_DROP_FRACTION of weights per epoch "
       "(arXiv:2404.15498)"},
  };
  return specs;
}

}  // namespace remapd
