#include "core/remap_policy.hpp"

#include <stdexcept>

#include "core/baselines.hpp"
#include "core/remap_d.hpp"
#include "util/env.hpp"

namespace remapd {

PolicyPtr make_policy(const std::string& name) {
  if (name == "remap-d") return std::make_unique<RemapD>();
  if (name == "static") return std::make_unique<StaticMapping>();
  if (name == "remap-ws") return std::make_unique<RemapWS>();
  if (name == "remap-t-5") return std::make_unique<RemapTopN>(0.05);
  if (name == "remap-t-10") return std::make_unique<RemapTopN>(0.10);
  if (name == "an-code")
    return std::make_unique<AnCodePolicy>(
        env_double_nonneg("REMAPD_ANCODE_CAP", 0.001));
  if (name == "none") return std::make_unique<NoProtection>();
  throw std::invalid_argument("make_policy: unknown policy " + name);
}

}  // namespace remapd
