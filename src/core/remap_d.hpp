// Remap-D: the paper's dynamic task-remapping policy (§III.B.4, Fig. 3).
//
// At each epoch boundary (after the BIST survey):
//  1. Every crossbar whose *estimated* fault density exceeds the threshold
//     and whose task is fault-critical (backward phase) becomes a sender.
//  2. Every crossbar whose density is lower than the sender's and whose
//     task is more fault-tolerant (forward) — or which is idle — is a
//     potential receiver; its tile responds to the broadcast request.
//  3. Each sender picks the nearest responder by NoC hop count (ties broken
//     by lower density); the two crossbars exchange their weights (tasks
//     swap); a receiver serves at most one sender per round.
//
// No spare crossbars, no a-priori weight analysis, no NP-hard solver —
// just density + criticality, which is the paper's whole point.
#pragma once

#include "core/remap_policy.hpp"

namespace remapd {

struct RemapDConfig {
  /// Remap trigger: sender fault-density threshold (user-settable per the
  /// application's accuracy requirement, §III.B.4). The default requests a
  /// remap as soon as BIST can resolve any fault on a backward crossbar.
  double density_threshold = 0.0005;
  /// Safety margin: the receiver must be at least this much less dense.
  double min_improvement = 0.0;
  /// Secondary pass: forward tasks whose crossbar exceeds this (much
  /// higher) density may evacuate to *idle* crossbars. Wear-out
  /// concentrates on a few arrays; once such an array crosses the point
  /// where even the fault-tolerant forward phase suffers, quarantining it
  /// is the judicious move. Set <= 0 to disable (strict
  /// backward-tasks-only protocol).
  double forward_rescue_threshold = 0.01;
};

class RemapD final : public RemapPolicy {
 public:
  explicit RemapD(RemapDConfig cfg = RemapDConfig{}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "remap-d"; }
  /// The first BIST survey after deployment already drives a remap round,
  /// exactly like every later epoch boundary.
  void on_training_start(PolicyContext& ctx) override { on_epoch_end(ctx); }
  void on_epoch_end(PolicyContext& ctx) override;
  /// Only the BIST module: counted by the area model (~0.61 %), reported
  /// there rather than as spare-hardware overhead.
  [[nodiscard]] double area_overhead_percent() const override { return 0.0; }

  [[nodiscard]] const RemapDConfig& config() const { return cfg_; }

 private:
  RemapDConfig cfg_;
};

}  // namespace remapd
