// Fault-tolerance policy interface. The trainer drives every solution of
// Fig. 6 through this interface:
//
//   remap-d     dynamic task remapping (the paper's contribution)
//   static      fault-aware mapping once at t = 0
//   remap-ws    weight-significance remap of [12] (top-5 % |w|, pretrained)
//   remap-t-n%  preemptive remap of the top-n % weights by |gradient|
//   an-code     AN-code ECC output correction [10]
//   none        unprotected training
//
// A policy can act at two points: it may *re-assign tasks to crossbars*
// (on_training_start / on_epoch_end, via the mapper), and it may *filter
// the fault view* a layer receives (modelling correction or spare-hardware
// absorption of individual faulty cells).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fault_density_map.hpp"
#include "core/task.hpp"
#include "telemetry/telemetry.hpp"
#include "tensor/tensor.hpp"

namespace remapd {

namespace obs {
class RemapAuditLog;  // header-only audit sink (obs/audit.hpp); policies
                      // append through the pointer below when one is wired
}

/// Per-layer data some baselines need.
struct LayerSnapshot {
  const Tensor* initial_weights = nullptr;  ///< values at training start
  const Tensor* grad_importance = nullptr;  ///< mean |grad| of last epoch
};

struct PolicyContext {
  WeightMapper* mapper = nullptr;
  const FaultDensityMap* density = nullptr;  ///< BIST estimates
  std::vector<LayerSnapshot> layers;
  std::size_t epoch = 0;
  Rng* rng = nullptr;
  /// Observatory audit sink; null when the observatory is disabled.
  obs::RemapAuditLog* audit = nullptr;
  /// True for the on_training_start round (audit records carry it so the
  /// placement round is not counted against epoch 0's swaps).
  bool at_training_start = false;
};

/// A task swap executed by a policy (consumed by the NoC traffic model).
struct RemapEvent {
  XbarId sender_xbar;
  XbarId receiver_xbar;
};

class RemapPolicy {
 public:
  virtual ~RemapPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once after pre-deployment fault injection, before epoch 0.
  virtual void on_training_start(PolicyContext& ctx) { (void)ctx; }

  /// Called at each epoch boundary, after the BIST survey.
  virtual void on_epoch_end(PolicyContext& ctx) { (void)ctx; }

  /// Transform the fault view a layer is about to receive. Default: no
  /// filtering (all physical faults reach the arithmetic).
  [[nodiscard]] virtual FaultView filter_view(std::size_t layer, Phase phase,
                                              FaultView view,
                                              const PolicyContext& ctx) {
    (void)layer; (void)phase; (void)ctx;
    return view;
  }

  /// Additional hardware area this solution needs, in percent of the RCS.
  [[nodiscard]] virtual double area_overhead_percent() const { return 0.0; }

  /// Task swaps performed by the most recent on_* call.
  [[nodiscard]] const std::vector<RemapEvent>& last_events() const {
    return events_;
  }
  /// Total swaps over the policy's lifetime.
  [[nodiscard]] std::size_t total_remaps() const { return total_remaps_; }

 protected:
  void clear_events() { events_.clear(); }
  void record_event(XbarId sender, XbarId receiver) {
    events_.push_back(RemapEvent{sender, receiver});
    ++total_remaps_;
    if (telemetry::enabled()) {
      telemetry::Registry::instance().counter("core.remap.events").add();
      telemetry::trace_instant(
          "remap", "core",
          "{\"sender\":" + std::to_string(sender) +
              ",\"receiver\":" + std::to_string(receiver) + "}");
    }
  }

 private:
  std::vector<RemapEvent> events_;
  std::size_t total_remaps_ = 0;
};

using PolicyPtr = std::unique_ptr<RemapPolicy>;

/// Factory for every policy of Fig. 6: "remap-d", "static", "remap-ws",
/// "remap-t-5", "remap-t-10", "an-code", "none".
PolicyPtr make_policy(const std::string& name);

}  // namespace remapd
