// Fault-tolerance policy interface. The trainer drives every solution of
// Fig. 6 through this interface:
//
//   remap-d       dynamic task remapping (the paper's contribution)
//   static        fault-aware mapping once at t = 0
//   remap-ws      weight-significance remap of [12] (top-5 % |w|, pretrained)
//   remap-t-n%    preemptive remap of the top-n % weights by |gradient|
//   an-code       AN-code ECC output correction [10]
//   none          unprotected training
//
// plus the scenario-diversity baselines (core/scenario_policies.hpp):
//
//   refresh       detect-and-refresh of transient upsets (arXiv:2412.03089)
//   xchangr       alternating line drive against IR-drop (arXiv:1907.00285)
//   drop-connect  drop-connect fault-tolerance training (arXiv:2404.15498)
//
// A policy can act at two points: it may *re-assign tasks to crossbars*
// (on_training_start / on_epoch_end, via the mapper), and it may *filter
// the fault view* a layer receives (modelling correction or spare-hardware
// absorption of individual faulty cells).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "core/fault_density_map.hpp"
#include "core/task.hpp"
#include "telemetry/telemetry.hpp"
#include "tensor/tensor.hpp"

namespace remapd {

class TransientFaultModel;  // xbar/transient.hpp

namespace obs {
class RemapAuditLog;  // header-only audit sink (obs/audit.hpp); policies
                      // append through the pointer below when one is wired
}

/// Per-layer data some baselines need.
struct LayerSnapshot {
  const Tensor* initial_weights = nullptr;  ///< values at training start
  const Tensor* grad_importance = nullptr;  ///< mean |grad| of last epoch
};

struct PolicyContext {
  WeightMapper* mapper = nullptr;
  const FaultDensityMap* density = nullptr;  ///< BIST estimates
  std::vector<LayerSnapshot> layers;
  std::size_t epoch = 0;
  Rng* rng = nullptr;
  /// Observatory audit sink; null when the observatory is disabled.
  obs::RemapAuditLog* audit = nullptr;
  /// True for the on_training_start round (audit records carry it so the
  /// placement round is not counted against epoch 0's swaps).
  bool at_training_start = false;
  /// Live transient-upset state; null when the scenario is disabled. The
  /// detect-and-refresh policy clears crossbars through this pointer.
  TransientFaultModel* transients = nullptr;
};

/// A task swap executed by a policy (consumed by the NoC traffic model).
struct RemapEvent {
  XbarId sender_xbar;
  XbarId receiver_xbar;
};

class RemapPolicy : public ckpt::Snapshotable {
 public:
  ~RemapPolicy() override = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once after pre-deployment fault injection, before epoch 0.
  virtual void on_training_start(PolicyContext& ctx) { (void)ctx; }

  /// Called at each epoch boundary, after the BIST survey.
  virtual void on_epoch_end(PolicyContext& ctx) { (void)ctx; }

  /// Transform the fault view a layer is about to receive. Default: no
  /// filtering (all physical faults reach the arithmetic).
  [[nodiscard]] virtual FaultView filter_view(std::size_t layer, Phase phase,
                                              FaultView view,
                                              const PolicyContext& ctx) {
    (void)layer; (void)phase; (void)ctx;
    return view;
  }

  /// Additional hardware area this solution needs, in percent of the RCS.
  [[nodiscard]] virtual double area_overhead_percent() const { return 0.0; }

  /// ReRAM cycles the most recent on_epoch_end round spent beyond the
  /// training pipeline itself (verify reads + refresh rewrites); charged
  /// against the epoch through the timing model like BIST cycles.
  [[nodiscard]] virtual std::uint64_t last_extra_cycles() const { return 0; }
  /// Upset cells rewritten by the most recent on_epoch_end round.
  [[nodiscard]] virtual std::size_t last_refreshed_cells() const { return 0; }

  /// Snapshotable hooks for policies with trajectory-shaping internal
  /// state (e.g. drop-connect's mask seed). Stateless policies keep the
  /// empty defaults; the trainer checkpoints whatever is written here
  /// under a "policy" section tagged with the policy's name.
  void save_state(ckpt::ByteWriter& w) const override { (void)w; }
  void load_state(ckpt::ByteReader& r) override { (void)r; }

  /// Task swaps performed by the most recent on_* call.
  [[nodiscard]] const std::vector<RemapEvent>& last_events() const {
    return events_;
  }
  /// Total swaps over the policy's lifetime.
  [[nodiscard]] std::size_t total_remaps() const { return total_remaps_; }

 protected:
  void clear_events() { events_.clear(); }
  void record_event(XbarId sender, XbarId receiver) {
    events_.push_back(RemapEvent{sender, receiver});
    ++total_remaps_;
    if (telemetry::enabled()) {
      telemetry::Registry::instance().counter("core.remap.events").add();
      telemetry::trace_instant(
          "remap", "core",
          "{\"sender\":" + std::to_string(sender) +
              ",\"receiver\":" + std::to_string(receiver) + "}");
    }
  }

 private:
  std::vector<RemapEvent> events_;
  std::size_t total_remaps_ = 0;
};

using PolicyPtr = std::unique_ptr<RemapPolicy>;

/// Factory for every policy of Fig. 6 plus the scenario baselines:
/// "remap-d", "static", "remap-ws", "remap-t-5", "remap-t-10", "an-code",
/// "none", "refresh", "xchangr", "drop-connect". Throws
/// std::invalid_argument for unknown names.
PolicyPtr make_policy(const std::string& name);

/// One row of the policy catalog (`remapd_experiment --list-policies`).
struct PolicySpec {
  std::string name;
  std::string summary;
};

/// Every name make_policy accepts, with a one-line summary. The docs'
/// scenario matrix and the CLI listing are both generated from this table,
/// so they cannot drift from the factory.
const std::vector<PolicySpec>& policy_registry();

}  // namespace remapd
