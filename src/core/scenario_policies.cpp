#include "core/scenario_policies.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "xbar/transient.hpp"

namespace remapd {

// ---------------------------------------------------------------- refresh

DetectAndRefresh::DetectAndRefresh() : DetectAndRefresh(Config{}) {}

DetectAndRefresh::DetectAndRefresh(Config cfg) : cfg_(cfg) {
  if (cfg_.interval == 0)
    throw std::invalid_argument("DetectAndRefresh: interval must be >= 1");
}

void DetectAndRefresh::on_epoch_end(PolicyContext& ctx) {
  last_cycles_ = 0;
  last_refreshed_ = 0;
  if (!ctx.transients || !ctx.mapper) return;
  if ((ctx.epoch + 1) % cfg_.interval != 0) return;

  Rcs& rcs = ctx.mapper->rcs();
  const std::uint64_t rows = rcs.config().xbar_rows;
  // Deterministic crossbar order: the mapper enumerates tasks in a fixed
  // order, so mapped_xbars() is reproducible run-to-run.
  for (XbarId x : ctx.mapper->mapped_xbars()) {
    // Detection: verify-read every row against its expected image. This
    // runs whether or not anything drifted — detection is the standing
    // cost of the policy, paid on every refresh round.
    last_cycles_ += rows * cfg_.verify_cycles_per_row;

    const auto& upsets = ctx.transients->upsets_of(x);
    if (upsets.empty()) continue;
    // Rewrite only the rows that failed verification.
    std::set<std::uint32_t> drifted_rows;
    const std::uint32_t cols =
        static_cast<std::uint32_t>(rcs.crossbar(x).cols());
    for (const UpsetCell& u : upsets) drifted_rows.insert(u.cell / cols);
    last_cycles_ +=
        static_cast<std::uint64_t>(drifted_rows.size()) *
        cfg_.rewrite_cycles_per_row;
    // A refresh rewrite stresses the array like any other write pass:
    // fighting transients accelerates endurance wear-out (§14 trade-off).
    rcs.crossbar(x).record_array_write();
    last_refreshed_ += ctx.transients->clear_crossbar(x);
  }
  total_cycles_ += last_cycles_;
  total_refreshed_ += last_refreshed_;
}

void DetectAndRefresh::save_state(ckpt::ByteWriter& w) const {
  w.u64(total_cycles_);
  w.u64(total_refreshed_);
}

void DetectAndRefresh::load_state(ckpt::ByteReader& r) {
  total_cycles_ = r.u64();
  total_refreshed_ = static_cast<std::size_t>(r.u64());
}

// ---------------------------------------------------------------- xchangr

void XChangrMapping::on_training_start(PolicyContext& ctx) {
  // The whole mitigation is an interconnect decision: drive lines from
  // alternating sides so every cell's wire path equals the mean path the
  // periphery calibrates to — the calibrated gain field collapses to
  // exactly 1. The mapper folds that into every view it builds from now
  // on; the scheme itself is checkpointed with the task map, so a resumed
  // run keeps it without re-running this hook.
  if (ctx.mapper) ctx.mapper->set_line_scheme(LineScheme::kAlternating);
}

// ----------------------------------------------------------- drop-connect

DropConnect::DropConnect(double fraction) : fraction_(fraction) {
  if (fraction_ < 0.0 || fraction_ >= 1.0)
    throw std::invalid_argument(
        "DropConnect: fraction must be in [0, 1)");
}

void DropConnect::on_training_start(PolicyContext& ctx) {
  // One draw from the trainer stream seeds every mask of the run; the
  // per-(epoch, layer) masks are derived statelessly from it so
  // filter_view consumes no shared RNG state (an extra view rebuild — as
  // happens on resume — must not shift the training trajectory).
  seeded_ = true;
  base_seed_ = ctx.rng ? ctx.rng->engine()() : 0x0d70'c0de'5eedULL;
}

FaultView DropConnect::filter_view(std::size_t layer, Phase phase,
                                   FaultView view,
                                   const PolicyContext& ctx) {
  (void)phase;  // forward and backward drop the same logical weights
  if (!seeded_ || fraction_ <= 0.0 || !ctx.mapper) return view;
  const auto& dims = ctx.mapper->layer_dims(layer);
  const std::size_t n = dims.first * dims.second;
  const std::size_t k =
      static_cast<std::size_t>(fraction_ * static_cast<double>(n));
  if (k == 0) return view;

  Rng mask_rng(
      Rng::derive_seed(Rng::derive_seed(base_seed_, ctx.epoch), layer));
  std::vector<std::size_t> dropped =
      mask_rng.sample_without_replacement(n, k);
  std::sort(dropped.begin(), dropped.end());

  // A physically faulty (or upset) cell cannot be "dropped" into a clean
  // zero — its clamp wins; skip such indices.
  std::set<std::uint32_t> clamped;
  for (const WeightClamp& c : view.clamps) clamped.insert(c.index);
  for (std::size_t idx : dropped) {
    const auto index = static_cast<std::uint32_t>(idx);
    if (clamped.count(index)) continue;
    view.clamps.push_back(WeightClamp{index, WeightClampKind::kZeroed});
  }
  return view;
}

void DropConnect::save_state(ckpt::ByteWriter& w) const {
  w.boolean(seeded_);
  w.u64(base_seed_);
}

void DropConnect::load_state(ckpt::ByteReader& r) {
  seeded_ = r.boolean();
  base_seed_ = r.u64();
}

}  // namespace remapd
