// Task-level metadata for remapping decisions.
//
// "Task" is the paper's unit of remapping: the computations of one CNN
// layer block executed on one crossbar. The paper's key empirical finding
// (§III.B.2, Fig. 5) is that backward-phase tasks are consistently less
// fault-tolerant than forward-phase tasks — faulty gradients compound over
// weight updates while forward perturbations are visible to the loss and
// trained around. Criticality encodes exactly that ordering; layer type and
// position showed no consistent trend in the paper and are ignored.
#pragma once

#include "xbar/mapper.hpp"

namespace remapd {

/// Higher means less fault-tolerant (more deserving of a good crossbar).
[[nodiscard]] constexpr double task_criticality(Phase phase) {
  return phase == Phase::kBackward ? 1.0 : 0.0;
}

[[nodiscard]] constexpr bool is_critical(Phase phase) {
  return phase == Phase::kBackward;
}

/// True when a task on `receiver_phase` may accept a swap from a critical
/// sender: the receiving crossbar must currently run a more fault-tolerant
/// task (forward) or be idle.
[[nodiscard]] constexpr bool can_receive(Phase receiver_phase) {
  return receiver_phase == Phase::kForward;
}

}  // namespace remapd
