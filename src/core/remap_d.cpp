#include "core/remap_d.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/audit.hpp"

namespace remapd {

namespace {

/// Audit one sender's decision (observatory enabled only).
void audit_decision(PolicyContext& ctx, const std::string& policy,
                    XbarId sender, XbarId receiver,
                    std::vector<XbarId> candidates, const char* reason,
                    double sender_density, double receiver_density,
                    double threshold, std::size_t hops) {
  if (!ctx.audit) return;
  obs::RemapAuditRecord rec;
  rec.epoch = ctx.epoch;
  rec.policy = policy;
  rec.at_training_start = ctx.at_training_start;
  rec.sender = sender;
  rec.receiver = receiver;
  rec.candidates = std::move(candidates);
  rec.reason = reason;
  rec.sender_density = sender_density;
  rec.receiver_density = receiver_density;
  rec.threshold = threshold;
  rec.hops = hops;
  ctx.audit->append(std::move(rec));
}

}  // namespace

void RemapD::on_epoch_end(PolicyContext& ctx) {
  clear_events();
  WeightMapper& mapper = *ctx.mapper;
  const FaultDensityMap& density = *ctx.density;

  // Step 1: senders — high-density crossbars running critical tasks,
  // worst first so the most endangered task gets first pick.
  std::vector<XbarId> senders;
  for (XbarId x = 0; x < density.size(); ++x) {
    const TaskId t = mapper.task_on(x);
    if (t == kNoTask) continue;
    if (!is_critical(mapper.task(t).phase)) continue;
    if (density.density(x) > cfg_.density_threshold) senders.push_back(x);
  }
  std::sort(senders.begin(), senders.end(), [&](XbarId a, XbarId b) {
    return density.density(a) > density.density(b);
  });

  // Step 2+3: for each sender, gather responders and take the nearest.
  std::vector<bool> taken(density.size(), false);
  for (XbarId s : senders) {
    const double s_density = density.density(s);
    XbarId best = kNoTask;
    std::size_t best_hops = std::numeric_limits<std::size_t>::max();
    double best_density = std::numeric_limits<double>::max();
    std::vector<XbarId> candidates;

    for (XbarId r = 0; r < density.size(); ++r) {
      if (r == s || taken[r]) continue;
      if (density.density(r) + cfg_.min_improvement >= s_density) continue;
      const TaskId rt = mapper.task_on(r);
      if (rt != kNoTask && !can_receive(mapper.task(rt).phase)) continue;

      if (ctx.audit) candidates.push_back(r);
      const std::size_t hops = mapper.hop_distance(s, r);
      if (hops < best_hops ||
          (hops == best_hops && density.density(r) < best_density)) {
        best = r;
        best_hops = hops;
        best_density = density.density(r);
      }
    }
    if (best == kNoTask) {  // no eligible receiver this round
      audit_decision(ctx, name(), s, obs::kNoReceiver, std::move(candidates),
                     "no-eligible-receiver", s_density, 0.0,
                     cfg_.density_threshold, 0);
      continue;
    }

    audit_decision(ctx, name(), s, best, std::move(candidates),
                   "density>threshold", s_density, best_density,
                   cfg_.density_threshold, best_hops);
    mapper.swap_tasks(mapper.task_on(s), best);
    taken[best] = true;
    taken[s] = true;
    record_event(s, best);
  }

  // Secondary pass: quarantine crossbars so degraded that even forward
  // tasks suffer, by evacuating them to idle crossbars (no task is
  // displaced onto the hot array).
  if (cfg_.forward_rescue_threshold > 0.0) {
    for (XbarId s = 0; s < density.size(); ++s) {
      if (taken[s]) continue;
      const TaskId t = mapper.task_on(s);
      if (t == kNoTask || is_critical(mapper.task(t).phase)) continue;
      const double s_density = density.density(s);
      if (s_density <= cfg_.forward_rescue_threshold) continue;

      XbarId best = kNoTask;
      std::size_t best_hops = std::numeric_limits<std::size_t>::max();
      double best_density = std::numeric_limits<double>::max();
      std::vector<XbarId> candidates;
      for (XbarId r = 0; r < density.size(); ++r) {
        if (r == s || taken[r]) continue;
        if (mapper.task_on(r) != kNoTask) continue;  // idle receivers only
        if (density.density(r) + cfg_.min_improvement >= s_density) continue;
        if (ctx.audit) candidates.push_back(r);
        const std::size_t hops = mapper.hop_distance(s, r);
        if (hops < best_hops ||
            (hops == best_hops && density.density(r) < best_density)) {
          best = r;
          best_hops = hops;
          best_density = density.density(r);
        }
      }
      if (best == kNoTask) continue;
      audit_decision(ctx, name(), s, best, std::move(candidates),
                     "forward-rescue", s_density, best_density,
                     cfg_.forward_rescue_threshold, best_hops);
      mapper.swap_tasks(t, best);
      taken[best] = true;
      taken[s] = true;
      record_event(s, best);
    }
  }
}

}  // namespace remapd
