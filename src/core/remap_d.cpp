#include "core/remap_d.hpp"

#include <algorithm>
#include <limits>

namespace remapd {

void RemapD::on_epoch_end(PolicyContext& ctx) {
  clear_events();
  WeightMapper& mapper = *ctx.mapper;
  const FaultDensityMap& density = *ctx.density;

  // Step 1: senders — high-density crossbars running critical tasks,
  // worst first so the most endangered task gets first pick.
  std::vector<XbarId> senders;
  for (XbarId x = 0; x < density.size(); ++x) {
    const TaskId t = mapper.task_on(x);
    if (t == kNoTask) continue;
    if (!is_critical(mapper.task(t).phase)) continue;
    if (density.density(x) > cfg_.density_threshold) senders.push_back(x);
  }
  std::sort(senders.begin(), senders.end(), [&](XbarId a, XbarId b) {
    return density.density(a) > density.density(b);
  });

  // Step 2+3: for each sender, gather responders and take the nearest.
  std::vector<bool> taken(density.size(), false);
  for (XbarId s : senders) {
    const double s_density = density.density(s);
    XbarId best = kNoTask;
    std::size_t best_hops = std::numeric_limits<std::size_t>::max();
    double best_density = std::numeric_limits<double>::max();

    for (XbarId r = 0; r < density.size(); ++r) {
      if (r == s || taken[r]) continue;
      if (density.density(r) + cfg_.min_improvement >= s_density) continue;
      const TaskId rt = mapper.task_on(r);
      if (rt != kNoTask && !can_receive(mapper.task(rt).phase)) continue;

      const std::size_t hops = mapper.hop_distance(s, r);
      if (hops < best_hops ||
          (hops == best_hops && density.density(r) < best_density)) {
        best = r;
        best_hops = hops;
        best_density = density.density(r);
      }
    }
    if (best == kNoTask) continue;  // no eligible receiver this round

    mapper.swap_tasks(mapper.task_on(s), best);
    taken[best] = true;
    taken[s] = true;
    record_event(s, best);
  }

  // Secondary pass: quarantine crossbars so degraded that even forward
  // tasks suffer, by evacuating them to idle crossbars (no task is
  // displaced onto the hot array).
  if (cfg_.forward_rescue_threshold > 0.0) {
    for (XbarId s = 0; s < density.size(); ++s) {
      if (taken[s]) continue;
      const TaskId t = mapper.task_on(s);
      if (t == kNoTask || is_critical(mapper.task(t).phase)) continue;
      const double s_density = density.density(s);
      if (s_density <= cfg_.forward_rescue_threshold) continue;

      XbarId best = kNoTask;
      std::size_t best_hops = std::numeric_limits<std::size_t>::max();
      double best_density = std::numeric_limits<double>::max();
      for (XbarId r = 0; r < density.size(); ++r) {
        if (r == s || taken[r]) continue;
        if (mapper.task_on(r) != kNoTask) continue;  // idle receivers only
        if (density.density(r) + cfg_.min_improvement >= s_density) continue;
        const std::size_t hops = mapper.hop_distance(s, r);
        if (hops < best_hops ||
            (hops == best_hops && density.density(r) < best_density)) {
          best = r;
          best_hops = hops;
          best_density = density.density(r);
        }
      }
      if (best == kNoTask) continue;
      mapper.swap_tasks(t, best);
      taken[best] = true;
      taken[s] = true;
      record_event(s, best);
    }
  }
}

}  // namespace remapd
