#include "core/fault_density_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace remapd {

void FaultDensityMap::update(std::vector<double> estimates) {
  if (estimates.size() != density_.size())
    throw std::invalid_argument("FaultDensityMap::update: size mismatch");
  density_ = std::move(estimates);
  ++surveys_;
}

double FaultDensityMap::mean() const {
  if (density_.empty()) return 0.0;
  double s = 0.0;
  for (double d : density_) s += d;
  return s / static_cast<double>(density_.size());
}

double FaultDensityMap::max() const {
  if (density_.empty()) return 0.0;
  return *std::max_element(density_.begin(), density_.end());
}

DensityErrorStats FaultDensityMap::error_vs(
    const std::vector<double>& truth) const {
  if (truth.size() != density_.size())
    throw std::invalid_argument("FaultDensityMap::error_vs: size mismatch");
  DensityErrorStats s;
  if (density_.empty()) return s;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double err = density_[i] - truth[i];
    s.mean_signed += err;
    s.mean_abs += std::abs(err);
    s.max_abs = std::max(s.max_abs, std::abs(err));
  }
  const auto n = static_cast<double>(density_.size());
  s.mean_abs /= n;
  s.mean_signed /= n;
  return s;
}

std::vector<std::size_t> FaultDensityMap::above(double threshold) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < density_.size(); ++i)
    if (density_[i] > threshold) out.push_back(i);
  return out;
}

}  // namespace remapd
