#include "quant/programmer.hpp"

#include "util/rng.hpp"

namespace remapd {
namespace {

/// One stochastic-rounding write. `x` is the target position in code
/// space (already noise-perturbed); returns the programmed code.
/// Fixed draw order: exactly one uniform per cell when rounding is
/// actually stochastic (interior positions), zero when clipped to an
/// end of the grid — the branch depends only on the weight value, which
/// is itself deterministic, so the stream stays reproducible.
std::uint8_t stochastic_code(float x, std::size_t levels, Rng& rng) {
  const float hi = static_cast<float>(levels - 1);
  if (!(x > 0.0f)) return 0;  // clipped low (also catches NaN)
  if (x >= hi) return static_cast<std::uint8_t>(levels - 1);
  const float lo = static_cast<float>(static_cast<int>(x));
  const float frac = x - lo;
  std::uint8_t code = static_cast<std::uint8_t>(lo);
  if (static_cast<float>(rng.uniform()) < frac) ++code;
  return code;
}

}  // namespace

void StochasticProgrammer::program_span(std::uint64_t xbar, float* w,
                                        std::size_t n, float w_max) const {
  const std::size_t levels = spec_.levels();
  if (levels < 2 || n == 0) return;
  Rng rng(Rng::derive_seed(Rng::derive_seed(base_seed_, rounds_), xbar));
  const float span = 0.5f * static_cast<float>(levels - 1);
  const float sigma = static_cast<float>(spec_.program_noise_sigma);
  for (std::size_t i = 0; i < n; ++i) {
    // Position in code space: 0 at -w_max, levels-1 at +w_max.
    float x = (w[i] / w_max + 1.0f) * span;
    if (sigma > 0.0f) x += sigma * static_cast<float>(rng.normal());
    w[i] = quant::level_decode(stochastic_code(x, levels, rng), levels,
                               w_max);
  }
}

void StochasticProgrammer::program_indexed(std::uint64_t xbar, float* w,
                                           const std::uint32_t* idx,
                                           std::size_t n,
                                           float w_max) const {
  const std::size_t levels = spec_.levels();
  if (levels < 2 || n == 0) return;
  Rng rng(Rng::derive_seed(Rng::derive_seed(base_seed_, rounds_), xbar));
  const float span = 0.5f * static_cast<float>(levels - 1);
  const float sigma = static_cast<float>(spec_.program_noise_sigma);
  for (std::size_t i = 0; i < n; ++i) {
    float& v = w[idx[i]];
    float x = (v / w_max + 1.0f) * span;
    if (sigma > 0.0f) x += sigma * static_cast<float>(rng.normal());
    v = quant::level_decode(stochastic_code(x, levels, rng), levels, w_max);
  }
}

void StochasticProgrammer::save_state(ckpt::ByteWriter& w) const {
  w.u64(base_seed_);
  w.u64(rounds_);
}

void StochasticProgrammer::load_state(ckpt::ByteReader& r) {
  base_seed_ = r.u64();
  rounds_ = r.u64();
}

}  // namespace remapd
