// Multi-bit conductance quantization: the cell-level precision model
// (ROADMAP item 4, DESIGN.md §15).
//
// A QuantSpec describes how many discrete conductance levels a cell can
// hold (1-4 bits), the programming-noise sigma (in units of one level
// step), and whether layers mapped onto quantized cells may take the int8
// GEMM fast path. The spec rides inside CellParams so everything that
// already consumes cell physics (RCS sizing, fault models, the mapper)
// sees the precision model without new plumbing.
//
// Level geometry (single-array bias mapping): the L = 2^bits codes span
// [-w_max, +w_max] uniformly, so codes 0 and L-1 decode to exactly -w_max
// and +w_max. That makes the existing SAF full-scale clamps *identical*
// to stuck levels (a stuck-at-1 cell is stuck at code L-1), and a
// transient upset becomes a level flip (we model the worst single-bit
// disturbance: an MSB flip, code ^ L/2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace remapd {

/// Precision model for one ReRAM cell. Default-constructed = continuous
/// conductances (the historical behaviour); `enabled` switches every
/// write into stochastic-rounding onto the discrete level grid.
struct QuantSpec {
  bool enabled = false;
  std::size_t cell_bits = 4;          ///< 1..4 bits per cell
  double program_noise_sigma = 0.0;   ///< write noise, in level-step units
  bool int8_gemm = false;             ///< allow the int8 GEMM fast path

  /// Number of discrete levels (0 when the spec is disabled, i.e. the
  /// cell is continuous).
  [[nodiscard]] std::size_t levels() const {
    return enabled ? (std::size_t{1} << cell_bits) : 0;
  }

  /// Throws std::invalid_argument for out-of-range fields (cell_bits
  /// outside 1..4, negative noise).
  void validate() const;
};

namespace quant {

/// Decoded weight value of `code` on an L-level grid spanning
/// [-w_max, +w_max]. Requires levels >= 2.
inline float level_decode(std::uint8_t code, std::size_t levels,
                          float w_max) {
  return (2.0f * static_cast<float>(code) /
              static_cast<float>(levels - 1) -
          1.0f) *
         w_max;
}

/// Nearest-level code for `w` (round-half-up in code space, clamped to
/// the grid). Deterministic; used for boundary code commits and
/// re-deriving codes from on-grid master weights.
std::uint8_t level_encode_nearest(float w, std::size_t levels, float w_max);

/// Map a code to the signed integer the int8 GEMM path multiplies with:
/// 2*code - (L-1), in [-(L-1), +(L-1)]. The matching scale is
/// w_max / (L-1).
inline int level_to_int(std::uint8_t code, std::size_t levels) {
  return 2 * static_cast<int>(code) - static_cast<int>(levels - 1);
}

/// The level a transient upset leaves a cell in: the worst single-bit
/// disturbance, an MSB flip.
inline std::uint8_t upset_level(std::uint8_t code, std::size_t levels) {
  return static_cast<std::uint8_t>(code ^
                                   static_cast<std::uint8_t>(levels >> 1));
}

}  // namespace quant
}  // namespace remapd
