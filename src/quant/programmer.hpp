// Stochastic-rounding weight programmer: the write path of the quantized
// conductance model (DESIGN.md §15).
//
// Every optimizer step ends with a *programming round*: each weight is
// re-written onto its cell's discrete level grid with stochastic rounding
// (round up with probability equal to the fractional position between the
// two neighbouring levels), optionally after Gaussian programming noise.
// Stochastic rounding keeps the quantized SGD unbiased — the expected
// programmed value equals the requested one — which is what lets 3-4-bit
// cells track fp32 training closely (cf. popfloat's CastToGfloat32Sr).
//
// Determinism contract: the randomness for (round r, crossbar x) comes
// from a throwaway Rng seeded with
//     derive_seed(derive_seed(base_seed, r), x)
// — the same stateless per-unit derivation the fault injector and the
// transient model use. Streams depend only on (base_seed, round, xbar),
// never on thread count or iteration order, so any REMAPD_THREADS value
// and any checkpoint resume produce bitwise-identical weights. The
// programmer itself is Snapshotable: base seed + round counter.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ckpt/snapshot.hpp"
#include "quant/quant.hpp"

namespace remapd {

class StochasticProgrammer : public ckpt::Snapshotable {
 public:
  StochasticProgrammer(QuantSpec spec, std::uint64_t base_seed)
      : spec_(spec), base_seed_(base_seed) {
    spec_.validate();
  }

  [[nodiscard]] const QuantSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Program `n` weights in place: each is clipped to [-w_max, +w_max],
  /// perturbed by programming noise (if sigma > 0), and stochastically
  /// rounded to the level grid. The weights must be every element mapped
  /// onto crossbar `xbar`, in a fixed caller-side order; the stream is
  /// keyed by (current round, xbar) only.
  void program_span(std::uint64_t xbar, float* w, std::size_t n,
                    float w_max) const;

  /// Gather-style variant for weights that are not contiguous: programs
  /// `w[idx[i]]` for i in [0, n).
  void program_indexed(std::uint64_t xbar, float* w,
                       const std::uint32_t* idx, std::size_t n,
                       float w_max) const;

  /// Advance to the next programming round (call once per optimizer step,
  /// after every crossbar's span has been programmed).
  void advance_round() { ++rounds_; }

  // Snapshotable: base seed + round counter, so a resumed run consumes
  // exactly the streams the interrupted one would have.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  QuantSpec spec_;
  std::uint64_t base_seed_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace remapd
