#include "quant/quant.hpp"

#include <stdexcept>
#include <string>

namespace remapd {

void QuantSpec::validate() const {
  if (!enabled) return;
  if (cell_bits < 1 || cell_bits > 4)
    throw std::invalid_argument(
        "QuantSpec: cell_bits must be in 1..4, got " +
        std::to_string(cell_bits));
  if (program_noise_sigma < 0.0)
    throw std::invalid_argument(
        "QuantSpec: program_noise_sigma must be >= 0");
}

namespace quant {

std::uint8_t level_encode_nearest(float w, std::size_t levels,
                                  float w_max) {
  // Position in code space: 0 at -w_max, L-1 at +w_max.
  const float x =
      (w / w_max + 1.0f) * 0.5f * static_cast<float>(levels - 1);
  if (!(x > 0.0f)) return 0;  // also catches NaN
  const float hi = static_cast<float>(levels - 1);
  if (x >= hi) return static_cast<std::uint8_t>(levels - 1);
  return static_cast<std::uint8_t>(x + 0.5f);
}

}  // namespace quant
}  // namespace remapd
