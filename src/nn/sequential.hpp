// Composition primitives for the model zoo: a sequential container plus the
// two composite blocks the paper's CNNs need — the ResNet basic block
// (skip connection) and the SqueezeNet fire module (squeeze + dual expand
// with channel concatenation).
#pragma once

#include <memory>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace remapd {

/// Runs children in order; backward in reverse.
class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string tag) : tag_(std::move(tag)) {}

  /// Append a layer; returns a raw observer pointer for wiring convenience.
  Layer* add(LayerPtr layer);

  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    add(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override;
  void visit(const std::function<void(Layer&)>& fn) override;
  [[nodiscard]] std::string name() const override { return tag_; }

  [[nodiscard]] const std::vector<LayerPtr>& children() const {
    return layers_;
  }

 private:
  std::vector<LayerPtr> layers_;
  std::string tag_ = "sequential";
};

/// ResNet basic block: conv-bn-relu-conv-bn (+ optional 1x1 conv-bn
/// projection on the skip path when shape changes), final ReLU.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                std::size_t stride, Rng& rng, std::string tag);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override;
  void visit(const std::function<void(Layer&)>& fn) override;
  [[nodiscard]] std::string name() const override { return tag_; }

  /// Faultable convs inside the block (for the crossbar mapper).
  std::vector<FaultableLayer*> faultable();
  std::vector<Layer*> conv_layers();

 private:
  std::string tag_;
  Conv2d conv1_;
  BatchNorm bn1_;
  Conv2d conv2_;
  BatchNorm bn2_;
  std::unique_ptr<Conv2d> proj_;      // nullptr when identity skip works
  std::unique_ptr<BatchNorm> proj_bn_;

  // Saved activations for backward.
  Tensor relu1_mask_, out_mask_;
};

/// SqueezeNet fire module: squeeze 1x1 -> relu -> {expand1x1, expand3x3}
/// -> relu each -> channel concat.
class FireModule final : public Layer {
 public:
  FireModule(std::size_t in_channels, std::size_t squeeze,
             std::size_t expand1, std::size_t expand3, Rng& rng,
             std::string tag);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override;
  void visit(const std::function<void(Layer&)>& fn) override;
  [[nodiscard]] std::string name() const override { return tag_; }

  std::vector<FaultableLayer*> faultable();
  std::vector<Layer*> conv_layers();

  [[nodiscard]] std::size_t out_channels() const { return e1_ + e3_; }

 private:
  std::string tag_;
  std::size_t e1_, e3_;
  Conv2d squeeze_;
  BatchNorm sq_bn_;
  Conv2d expand1_;
  BatchNorm e1_bn_;
  Conv2d expand3_;
  BatchNorm e3_bn_;

  Tensor sq_mask_, e1_mask_, e3_mask_;
  Shape e1_shape_, e3_shape_;
};

/// Recursively collect FaultableLayer interfaces from a layer tree. Knows
/// the concrete composite types of this library.
std::vector<FaultableLayer*> collect_faultable(Layer& root);

}  // namespace remapd
