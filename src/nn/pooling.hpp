// Pooling layers — implemented by the tile's CMOS pooling units (Fig. 1),
// hence fault-free in the simulation.
#pragma once

#include <atomic>
#include <vector>

#include "nn/layer.hpp"

namespace remapd {

/// Max pooling with square window and stride == window.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window) : window_(window) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "maxpool"; }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  ///< flat input index per output element
  Shape input_shape_;
  /// Set by eval-mode forward: the saved argmax no longer corresponds to
  /// the last forward, so backward must throw instead of silently routing
  /// gradients with an older batch's indices. Atomic (not a clear of
  /// argmax_) so concurrent eval-mode forwards — parallel test batches —
  /// stay race-free.
  std::atomic<bool> stale_{true};
};

/// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "gap"; }

 private:
  Shape input_shape_;
};

}  // namespace remapd
