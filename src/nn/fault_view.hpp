// FaultView: the contract between the ReRAM hardware model and the CNN
// layers.
//
// A layer's weight matrix is stored on crossbars as differential conductance
// pairs (G+, G-): w = wpos - wneg with wpos = max(w,0), wneg = max(-w,0),
// each linearly mapped to [g_off, g_on] over [0, w_max]. A stuck-at fault
// pins one physical cell of the pair, which clamps the *effective* weight
// seen by the analog MVM:
//
//   SA1 on G+ : wpos == w_max  ->  w_eff = w_max - max(-w, 0)
//   SA0 on G+ : wpos == 0      ->  w_eff = -max(-w, 0)
//   SA1 on G- : wneg == w_max  ->  w_eff = max(w, 0) - w_max
//   SA0 on G- : wneg == 0      ->  w_eff = max(w, 0)
//
// Forward-pass crossbars (storing W) and backward-pass crossbars (storing
// W^T for the dX = dY * W^T propagation, as in PipeLayer-style training
// accelerators) are physically distinct, so a layer carries two independent
// FaultViews. Remapping moves a *task* (weight block) to a different
// physical crossbar; the view is rebuilt from the new crossbar's fault mask.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace remapd {

/// Which half of the differential pair is stuck, and at which level.
/// (For single-array mapping only the SA0/SA1 distinction matters.)
enum class WeightClampKind : std::uint8_t {
  kPosStuck0,  ///< SA0 in the positive array
  kPosStuck1,  ///< SA1 in the positive array
  kNegStuck0,  ///< SA0 in the negative array
  kNegStuck1,  ///< SA1 in the negative array
  kZeroed,     ///< connection deliberately severed (drop-connect baseline)
  kLevel,      ///< pinned at an explicit decoded level (quantized upsets)
};

[[nodiscard]] constexpr bool is_stuck_at_1(WeightClampKind k) {
  return k == WeightClampKind::kPosStuck1 || k == WeightClampKind::kNegStuck1;
}

/// How logical weights map to cell conductances.
///
/// kSingleArrayBias (default; the PytorX-class model the paper evaluates
/// with): each weight is one cell, w in [-w_max, +w_max] mapped linearly to
/// [g_off, g_on] with a mid-scale reference column subtracted. A stuck cell
/// therefore pins the weight at full scale: SA0 (g_off) -> -w_max, SA1
/// (g_on) -> +w_max.
///
/// kDifferentialPair (ablation): w = w+ - w- over two cells; a fault pins
/// only the half it lands in, so SA0 faults on the inactive half are
/// harmless and the average corruption is far milder.
enum class MappingMode : std::uint8_t { kSingleArrayBias, kDifferentialPair };

/// One faulty cell mapped onto a flattened weight index. `value` is only
/// meaningful for kLevel clamps: the decoded weight the cell is pinned at
/// (a quantized transient upset flips the stored code's MSB; the mapper
/// decodes the flipped level at view-build time).
struct WeightClamp {
  std::uint32_t index;    ///< flattened index into the layer's weight matrix
  WeightClampKind kind;
  float value = 0.0f;     ///< pinned decoded weight (kLevel only)
};

/// The set of clamps a physical crossbar imposes on the logical weights of
/// the task currently mapped to it.
struct FaultView {
  std::vector<WeightClamp> clamps;
  /// Position-dependent IR-drop attenuation per weight (see
  /// xbar/ir_drop.hpp). Empty means unity gain everywhere (ideal
  /// interconnect); otherwise it must hold one factor per weight.
  std::vector<float> gain;
  float w_max = 1.0f;  ///< conductance-mapping full-scale weight
  MappingMode mode = MappingMode::kSingleArrayBias;
  /// Discrete conductance levels of the cells this task is mapped onto
  /// (0 = continuous cells). Weights written by the stochastic programmer
  /// lie on the L-level grid spanning [-w_max, +w_max].
  std::size_t levels = 0;
  /// True when the layer may run its MVMs through the int8 GEMM fast
  /// path (quantized cells + the spec's int8_gemm opt-in). The layer
  /// still falls back to fp32 for non-finite activations.
  bool int8_path = false;

  [[nodiscard]] bool empty() const { return clamps.empty() && gain.empty(); }

  /// Whether the layer holding this view should run the int8 GEMM fast
  /// path for its MVMs (orthogonal to empty(): a fault-free quantized
  /// layer still quantizes its arithmetic).
  [[nodiscard]] bool int8_selected() const {
    return int8_path && levels >= 2;
  }
  /// Weight quantization scale of the int8 path: one level step in the
  /// signed-integer code space (w = qa * scale exactly for on-grid
  /// weights; see tensor/gemm_int8.hpp).
  [[nodiscard]] float int8_weight_scale() const {
    return w_max / static_cast<float>(levels - 1);
  }

  /// Effective weight of a single stuck cell given its digital value.
  /// (kLevel clamps carry their pinned value on the clamp itself and are
  /// resolved in apply().)
  [[nodiscard]] float clamp_value(float w, WeightClampKind kind) const {
    if (kind == WeightClampKind::kZeroed) return 0.0f;
    if (mode == MappingMode::kSingleArrayBias)
      return is_stuck_at_1(kind) ? w_max : -w_max;
    const float wpos = w > 0.0f ? w : 0.0f;
    const float wneg = w < 0.0f ? -w : 0.0f;
    switch (kind) {
      case WeightClampKind::kPosStuck0: return -wneg;
      case WeightClampKind::kPosStuck1: return w_max - wneg;
      case WeightClampKind::kNegStuck0: return wpos;
      case WeightClampKind::kNegStuck1: return wpos - w_max;
      case WeightClampKind::kZeroed: return 0.0f;  // handled above
      case WeightClampKind::kLevel: return w;      // resolved in apply()
    }
    return w;
  }

  /// Copy `n` digital weights into `out`, apply the IR-drop gains, then
  /// the clamps (a stuck cell's full-scale conductance is attenuated by
  /// the same wire path as a healthy one). A clamp index at or past `n` —
  /// or a gain field of the wrong length — means the mapper built this
  /// view for a different layer shape; silently dropping either would make
  /// the crossbar look healthier than it is, so it throws instead.
  void apply(const float* w, float* out, std::size_t n) const {
    if (!gain.empty() && gain.size() != n)
      throw std::out_of_range("FaultView::apply: gain field holds " +
                              std::to_string(gain.size()) +
                              " factors for " + std::to_string(n) +
                              " weights");
    if (gain.empty())
      for (std::size_t i = 0; i < n; ++i) out[i] = w[i];
    else
      for (std::size_t i = 0; i < n; ++i) out[i] = w[i] * gain[i];
    for (const auto& c : clamps) {
      if (c.index >= n)
        throw std::out_of_range("FaultView::apply: clamp index " +
                                std::to_string(c.index) +
                                " >= weight count " + std::to_string(n));
      const float v = c.kind == WeightClampKind::kLevel
                          ? c.value
                          : clamp_value(w[c.index], c.kind);
      out[c.index] = gain.empty() ? v : v * gain[c.index];
    }
  }
};

}  // namespace remapd
