// Fully-connected layer: y = x * W^T + b, the direct crossbar MVM case.
#pragma once

#include <optional>

#include "nn/layer.hpp"
#include "tensor/gemm_int8.hpp"

namespace remapd {

class Linear final : public Layer, public FaultableLayer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         std::string tag = "fc");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return tag_; }

  [[nodiscard]] std::size_t weight_rows() const override { return out_f_; }
  [[nodiscard]] std::size_t weight_cols() const override { return in_f_; }
  void set_fault_views(FaultView forward_view,
                       FaultView backward_view) override;
  void clear_fault_views() override;
  Param& weight_param() override { return weight_; }

 private:
  const Tensor& effective_weights(const std::optional<FaultView>& view,
                                  Tensor& cache) const;

  std::size_t in_f_, out_f_;
  Param weight_;  ///< out x in
  Param bias_;    ///< out
  std::string tag_;

  std::optional<FaultView> fwd_view_, bwd_view_;
  mutable Tensor fwd_eff_, bwd_eff_;
  // Int8 fast-path panels (see conv2d.hpp): members only on the training
  // path; eval forwards pack into call-locals.
  Int8APack fwd_i8_, bwd_i8_;
  Tensor last_x_;  ///< input flattened to {N, in}, saved for backward
  Shape last_input_shape_;
};

}  // namespace remapd
