#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace remapd {

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  if (x.shape().rank() != 4)
    throw std::invalid_argument("maxpool: rank-4 input required");
  const std::size_t n = x.shape()[0], c = x.shape()[1];
  const std::size_t h = x.shape()[2], w = x.shape()[3];
  if (h % window_ != 0 || w % window_ != 0)
    throw std::invalid_argument("maxpool: size not divisible by window");
  const std::size_t oh = h / window_, ow = w / window_;

  Tensor y(Shape{n, c, oh, ow});
  if (train) {
    argmax_.assign(y.numel(), 0);
    input_shape_ = x.shape();
    stale_.store(false, std::memory_order_relaxed);
  } else {
    // Invalidate the training-time state: a backward after an eval-mode
    // forward would otherwise silently reuse argmax_/input_shape_ from an
    // older training batch.
    stale_.store(true, std::memory_order_relaxed);
  }
  std::size_t oi = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::size_t y0 = 0; y0 < oh; ++y0)
        for (std::size_t x0 = 0; x0 < ow; ++x0, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy0 = 0; dy0 < window_; ++dy0)
            for (std::size_t dx0 = 0; dx0 < window_; ++dx0) {
              const std::size_t iy = y0 * window_ + dy0;
              const std::size_t ix = x0 * window_ + dx0;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = (i * c + ch) * h * w + iy * w + ix;
              }
            }
          y[oi] = best;
          if (train) argmax_[oi] = best_idx;
        }
    }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& dy) {
  if (argmax_.empty())
    throw std::logic_error("maxpool: backward before forward");
  if (stale_.load(std::memory_order_relaxed))
    throw std::logic_error(
        "maxpool: backward after eval-mode forward (saved argmax is stale)");
  Tensor dx = Tensor::zeros(input_shape_);
  for (std::size_t i = 0; i < dy.numel(); ++i) dx[argmax_[i]] += dy[i];
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  if (x.shape().rank() != 4)
    throw std::invalid_argument("gap: rank-4 input required");
  const std::size_t n = x.shape()[0], c = x.shape()[1];
  const std::size_t hw = x.shape()[2] * x.shape()[3];
  if (train) input_shape_ = x.shape();
  Tensor y(Shape{n, c});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * hw;
      float s = 0.0f;
      for (std::size_t p = 0; p < hw; ++p) s += plane[p];
      y.at(i, ch) = s / static_cast<float>(hw);
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  const std::size_t n = input_shape_[0], c = input_shape_[1];
  const std::size_t hw = input_shape_[2] * input_shape_[3];
  Tensor dx(input_shape_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = dy.at(i, ch) / static_cast<float>(hw);
      float* plane = dx.data() + (i * c + ch) * hw;
      for (std::size_t p = 0; p < hw; ++p) plane[p] = g;
    }
  return dx;
}

}  // namespace remapd
