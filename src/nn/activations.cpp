#include "nn/activations.hpp"

#include <stdexcept>

namespace remapd {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) mask_ = Tensor::zeros(x.shape());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] > 0.0f) {
      if (train) mask_[i] = 1.0f;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  if (mask_.empty()) throw std::logic_error("relu: backward before forward");
  Tensor dx = dy;
  for (std::size_t i = 0; i < dx.numel(); ++i) dx[i] *= mask_[i];
  return dx;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (train) input_shape_ = x.shape();
  const std::size_t n = x.shape()[0];
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& dy) {
  return dy.reshaped(input_shape_);
}

}  // namespace remapd
