// Stochastic gradient descent with momentum and weight decay — the update
// rule PytorX uses for from-scratch CNN training in the paper's evaluation.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace remapd {

class Sgd : public ckpt::Snapshotable {
 public:
  struct Config {
    float lr = 0.05f;
    float momentum = 0.9f;
    float weight_decay = 5e-4f;
    float grad_clip = 5.0f;  ///< global-norm clip; <=0 disables
  };

  explicit Sgd(std::vector<Param*> params) : Sgd(std::move(params), Config{}) {}
  Sgd(std::vector<Param*> params, Config cfg);

  /// Apply one update from the accumulated gradients, then zero them.
  void step();
  void zero_grad();
  [[nodiscard]] const Config& config() const { return cfg_; }
  void set_lr(float lr) { cfg_.lr = lr; }

  // Snapshotable: the momentum buffers, shape-checked against the
  // registered parameters on load.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  Config cfg_;
};

}  // namespace remapd
