#include "nn/layer.hpp"

#include <cmath>

#include "util/env.hpp"

// Layer is an interface; its virtual destructor anchor lives here so the
// vtable is emitted once.

namespace remapd {

void apply_gradient_pinning(const std::optional<FaultView>& view,
                            Tensor& grad) {
  if (!view || view->empty()) return;
  // Severity of a stuck backward-array cell relative to the healthy
  // gradient scale (REMAPD_GRAD_PIN overrides for ablations).
  static const float kappa =
      static_cast<float>(env_double_nonneg("REMAPD_GRAD_PIN", 12.0));

  // The reference scale is the RMS of the *healthy* gradient components.
  // Clamped positions are excluded: their pre-pinning gradients are the
  // (large) corrective responses to their own drift, and including them
  // would close a positive feedback loop that diverges for small layers
  // (kappa^2 * clamps >= weights).
  double sq = 0.0;
  for (std::size_t i = 0; i < grad.numel(); ++i)
    sq += static_cast<double>(grad[i]) * grad[i];
  std::size_t excluded = 0;
  for (const auto& c : view->clamps)
    if (c.index < grad.numel()) {
      sq -= static_cast<double>(grad[c.index]) * grad[c.index];
      ++excluded;
    }
  const std::size_t healthy =
      grad.numel() > excluded ? grad.numel() - excluded : 1;
  const float rms = static_cast<float>(
      std::sqrt(std::max(sq, 0.0) / static_cast<double>(healthy)));
  const float magnitude = kappa * rms;

  for (const auto& c : view->clamps)
    if (c.index < grad.numel()) {
      // A deliberately severed (drop-connect) weight is a zero, not a
      // full-scale outlier: it contributes nothing forward and receives no
      // gradient, exactly like standard drop-connect regularization.
      if (c.kind == WeightClampKind::kZeroed)
        grad[c.index] = 0.0f;
      else if (c.kind == WeightClampKind::kLevel)
        // A level-flipped (upset) cell drifts toward the sign of its
        // pinned level; pin the gradient the same way a stuck-at of that
        // polarity would be pinned.
        grad[c.index] = c.value >= 0.0f ? magnitude : -magnitude;
      else
        grad[c.index] = is_stuck_at_1(c.kind) ? magnitude : -magnitude;
    }
}

}  // namespace remapd
