// 2-D convolution lowered to GEMM via im2col — mirroring how an RCS unrolls
// a convolution onto crossbar MVMs. Forward uses the forward FaultView's
// effective weights; input-gradient propagation uses the backward
// FaultView's (the physically distinct W^T crossbars).
#pragma once

#include <optional>

#include "nn/layer.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/im2col.hpp"

namespace remapd {

class Conv2d final : public Layer, public FaultableLayer {
 public:
  /// Square kernels only (all the model zoo needs). `pad` is symmetric.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad, Rng& rng,
         std::string tag = "conv");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return tag_; }

  // FaultableLayer
  [[nodiscard]] std::size_t weight_rows() const override { return out_ch_; }
  [[nodiscard]] std::size_t weight_cols() const override {
    return in_ch_ * kernel_ * kernel_;
  }
  void set_fault_views(FaultView forward_view,
                       FaultView backward_view) override;
  void clear_fault_views() override;
  Param& weight_param() override { return weight_; }

  [[nodiscard]] std::size_t in_channels() const { return in_ch_; }
  [[nodiscard]] std::size_t out_channels() const { return out_ch_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }

 private:
  /// Weights with the given view's clamps applied (or the digital weights
  /// when the view is empty).
  const Tensor& effective_weights(const std::optional<FaultView>& view,
                                  Tensor& cache) const;

  std::size_t in_ch_, out_ch_, kernel_, stride_, pad_;
  Param weight_;  ///< rank-2: out_ch x (in_ch*k*k)
  Param bias_;    ///< rank-1: out_ch
  std::string tag_;

  std::optional<FaultView> fwd_view_, bwd_view_;
  mutable Tensor fwd_eff_, bwd_eff_;  // clamped-weight caches

  // Fused-path weight panels: the effective-weight (forward) and
  // effective-weight-transpose (backward) matrices are packed ONCE per
  // layer call and reused across every sample's GEMM, instead of re-reading
  // (and re-packing) the weight matrix per sample. Members are only touched
  // on the training path — eval forwards may run concurrently, so they pack
  // into a call-local panel (mirroring the fwd_eff_ cache rule).
  GemmAPack fwd_pack_, bwd_pack_;
  // Int8 fast path (taken when the FaultView selects it): the effective
  // weights are exact small integers on the cell level grid, so the MVM
  // runs as an exact int32 GEMM with one fp32 dequantization multiply.
  // Same member-vs-local rule as the fp32 panels.
  Int8APack fwd_i8_, bwd_i8_;

  // Saved for backward.
  Tensor last_cols_;  ///< im2col buffers, shape {N, col_rows*col_cols}
  ConvGeom last_geom_{};
  std::size_t last_batch_ = 0;
};

}  // namespace remapd
