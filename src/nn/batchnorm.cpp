#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace remapd {
namespace {

// Iterate a rank-2 {N,C} or rank-4 {N,C,H,W} tensor channel-wise.
struct ChannelGeom {
  std::size_t n, c, spatial;
};

ChannelGeom geom_of(const Shape& s) {
  if (s.rank() == 2) return {s[0], s[1], 1};
  if (s.rank() == 4) return {s[0], s[1], s[2] * s[3]};
  throw std::invalid_argument("batchnorm: rank must be 2 or 4");
}

}  // namespace

BatchNorm::BatchNorm(std::size_t channels, float momentum, float eps,
                     std::string tag)
    : channels_(channels), momentum_(momentum), eps_(eps),
      gamma_(Tensor::ones(Shape{channels}), tag + ".gamma"),
      beta_(Tensor::zeros(Shape{channels}), tag + ".beta"),
      running_mean_(Tensor::zeros(Shape{channels})),
      running_var_(Tensor::ones(Shape{channels})),
      window_mean_(channels, 0.0),
      window_m2_(channels, 0.0),
      tag_(std::move(tag)) {}

void BatchNorm::begin_stats_window() {
  window_mean_.assign(channels_, 0.0);
  window_m2_.assign(channels_, 0.0);
  window_count_ = 0.0;
}

Tensor BatchNorm::forward(const Tensor& x, bool train) {
  const auto g = geom_of(x.shape());
  if (g.c != channels_)
    throw std::invalid_argument(tag_ + ": channel mismatch");
  const std::size_t count = g.n * g.spatial;

  Tensor y(x.shape());
  if (train) {
    xhat_ = Tensor::zeros(x.shape());
    batch_inv_std_.assign(channels_, 0.0f);
    input_shape_ = x.shape();
  }

  for (std::size_t ch = 0; ch < channels_; ++ch) {
    double mean, var;
    if (train) {
      double s = 0.0;
      for (std::size_t i = 0; i < g.n; ++i) {
        const float* p = x.data() + (i * g.c + ch) * g.spatial;
        for (std::size_t k = 0; k < g.spatial; ++k) s += p[k];
      }
      mean = s / static_cast<double>(count);
      double v = 0.0;
      for (std::size_t i = 0; i < g.n; ++i) {
        const float* p = x.data() + (i * g.c + ch) * g.spatial;
        for (std::size_t k = 0; k < g.spatial; ++k)
          v += (p[k] - mean) * (p[k] - mean);
      }
      var = v / static_cast<double>(count);
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] +
                          momentum_ * static_cast<float>(mean);
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                         momentum_ * static_cast<float>(var);
      // Chan et al. parallel merge of (count, mean, M2): the pooled window
      // variance includes the spread of the batch means, exactly matching
      // a direct computation over every sample in the window.
      {
        const double nb = static_cast<double>(count);
        const double nw = window_count_;
        const double delta = mean - window_mean_[ch];
        const double n_new = nw + nb;
        window_mean_[ch] += delta * nb / n_new;
        window_m2_[ch] += var * nb + delta * delta * nw * nb / n_new;
        // Every channel of a batch merges the same sample count; advance
        // the shared counter once per batch, after the last channel.
        if (ch + 1 == channels_) window_count_ = n_new;
      }
    } else if (window_count_ > 0.0) {
      mean = window_mean_[ch];
      var = window_m2_[ch] / window_count_;
    } else {
      mean = running_mean_[ch];
      var = running_var_[ch];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    if (train) batch_inv_std_[ch] = inv_std;
    const float gm = gamma_.value[ch], bt = beta_.value[ch];
    for (std::size_t i = 0; i < g.n; ++i) {
      const float* p = x.data() + (i * g.c + ch) * g.spatial;
      float* q = y.data() + (i * g.c + ch) * g.spatial;
      float* h = train ? xhat_.data() + (i * g.c + ch) * g.spatial : nullptr;
      for (std::size_t k = 0; k < g.spatial; ++k) {
        const float norm = (p[k] - static_cast<float>(mean)) * inv_std;
        if (h) h[k] = norm;
        q[k] = gm * norm + bt;
      }
    }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& dy) {
  if (xhat_.empty()) throw std::logic_error(tag_ + ": backward before fwd");
  const auto g = geom_of(input_shape_);
  const auto count = static_cast<float>(g.n * g.spatial);

  Tensor dx(input_shape_);
  for (std::size_t ch = 0; ch < channels_; ++ch) {
    // Standard BN backward:
    // dx = gamma*inv_std/count * (count*dy - sum(dy) - xhat*sum(dy*xhat))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t i = 0; i < g.n; ++i) {
      const float* d = dy.data() + (i * g.c + ch) * g.spatial;
      const float* h = xhat_.data() + (i * g.c + ch) * g.spatial;
      for (std::size_t k = 0; k < g.spatial; ++k) {
        sum_dy += d[k];
        sum_dy_xhat += static_cast<double>(d[k]) * h[k];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_dy_xhat);
    beta_.grad[ch] += static_cast<float>(sum_dy);

    const float scale = gamma_.value[ch] * batch_inv_std_[ch] / count;
    for (std::size_t i = 0; i < g.n; ++i) {
      const float* d = dy.data() + (i * g.c + ch) * g.spatial;
      const float* h = xhat_.data() + (i * g.c + ch) * g.spatial;
      float* o = dx.data() + (i * g.c + ch) * g.spatial;
      for (std::size_t k = 0; k < g.spatial; ++k) {
        o[k] = scale * (count * d[k] - static_cast<float>(sum_dy) -
                        h[k] * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return dx;
}

void BatchNorm::save_state(ckpt::ByteWriter& w) const {
  save_tensor(w, running_mean_);
  save_tensor(w, running_var_);
  w.vec_f64(window_mean_);
  w.vec_f64(window_m2_);
  w.f64(window_count_);
}

void BatchNorm::load_state(ckpt::ByteReader& r) {
  load_tensor_into(r, running_mean_);
  load_tensor_into(r, running_var_);
  auto mean = r.vec_f64();
  auto m2 = r.vec_f64();
  if (mean.size() != channels_ || m2.size() != channels_)
    throw ckpt::CheckpointError(
        tag_ + ": window accumulator length mismatch: stored " +
        std::to_string(mean.size()) + ", expected " +
        std::to_string(channels_));
  window_mean_ = std::move(mean);
  window_m2_ = std::move(m2);
  window_count_ = r.f64();
}

}  // namespace remapd
