// Softmax cross-entropy loss with integer labels. The final classifier loss
// is computed digitally in the RCS (CMOS), so it is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace remapd {

struct LossResult {
  float loss;        ///< mean cross-entropy over the batch
  Tensor dlogits;    ///< gradient w.r.t. logits (already divided by batch)
  std::size_t correct;  ///< top-1 correct predictions in the batch
};

/// logits: {N, C}; labels: N entries in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int32_t>& labels);

/// Top-1 accuracy helper (no gradient).
std::size_t count_correct(const Tensor& logits,
                          const std::vector<std::int32_t>& labels);

}  // namespace remapd
