#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/gemm.hpp"

namespace remapd {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string tag)
    : in_f_(in_features), out_f_(out_features),
      weight_(Tensor::kaiming(Shape{out_features, in_features}, in_features,
                              rng),
              tag + ".weight"),
      bias_(Tensor::zeros(Shape{out_features}), tag + ".bias"),
      tag_(std::move(tag)) {}

void Linear::set_fault_views(FaultView forward_view, FaultView backward_view) {
  fwd_view_ = std::move(forward_view);
  bwd_view_ = std::move(backward_view);
}

void Linear::clear_fault_views() {
  fwd_view_.reset();
  bwd_view_.reset();
}

const Tensor& Linear::effective_weights(const std::optional<FaultView>& view,
                                        Tensor& cache) const {
  if (!view || view->empty()) return weight_.value;
  if (cache.numel() != weight_.value.numel())
    cache = Tensor::zeros(weight_.value.shape());
  view->apply(weight_.value.data(), cache.data(), weight_.value.numel());
  return cache;
}

Tensor Linear::forward(const Tensor& x, bool train) {
  // Accept any rank: flatten trailing dims into features.
  const std::size_t n = x.shape()[0];
  if (x.numel() != n * in_f_)
    throw std::invalid_argument(tag_ + ": bad input " + x.shape().str());
  Tensor x2 = x.reshaped(Shape{n, in_f_});

  // As in Conv2d: eval-mode forwards may run concurrently, so only the
  // training path writes the member cache.
  Tensor local_eff;
  const Tensor& we =
      effective_weights(fwd_view_, train ? fwd_eff_ : local_eff);
  Tensor y(Shape{n, out_f_});
  // y = x2 (n x in) * We^T (in x out)
  gemm(false, true, n, out_f_, in_f_, 1.0f, x2.data(), in_f_, we.data(),
       in_f_, 0.0f, y.data(), out_f_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t o = 0; o < out_f_; ++o) y.at(i, o) += bias_.value[o];

  if (train) {
    last_x_ = std::move(x2);
    last_input_shape_ = x.shape();
  }
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  if (last_x_.empty())
    throw std::logic_error(tag_ + ": backward without forward(train)");
  const std::size_t n = last_x_.shape()[0];

  // dW += dy^T (out x n) * x (n x in)   — digital accumulation.
  gemm(true, false, out_f_, in_f_, n, 1.0f, dy.data(), out_f_, last_x_.data(),
       in_f_, 1.0f, weight_.grad.data(), in_f_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t o = 0; o < out_f_; ++o) bias_.grad[o] += dy.at(i, o);

  // Stuck backward-array cells pin their gradient components at a fixed
  // sign and full-scale magnitude (see the matching note in conv2d.cpp).
  apply_gradient_pinning(bwd_view_, weight_.grad);

  // dx = dy (n x out) * We_bwd (out x in) — via the backward crossbars.
  const Tensor& wb = effective_weights(bwd_view_, bwd_eff_);
  Tensor dx(Shape{n, in_f_});
  gemm(false, false, n, in_f_, out_f_, 1.0f, dy.data(), out_f_, wb.data(),
       in_f_, 0.0f, dx.data(), in_f_);
  return dx.reshaped(last_input_shape_);
}

}  // namespace remapd
