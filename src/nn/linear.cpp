#include "nn/linear.hpp"

#include <stdexcept>
#include <vector>

#include "tensor/gemm.hpp"

namespace remapd {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string tag)
    : in_f_(in_features), out_f_(out_features),
      weight_(Tensor::kaiming(Shape{out_features, in_features}, in_features,
                              rng),
              tag + ".weight"),
      bias_(Tensor::zeros(Shape{out_features}), tag + ".bias"),
      tag_(std::move(tag)) {}

void Linear::set_fault_views(FaultView forward_view, FaultView backward_view) {
  fwd_view_ = std::move(forward_view);
  bwd_view_ = std::move(backward_view);
}

void Linear::clear_fault_views() {
  fwd_view_.reset();
  bwd_view_.reset();
}

const Tensor& Linear::effective_weights(const std::optional<FaultView>& view,
                                        Tensor& cache) const {
  if (!view || view->empty()) return weight_.value;
  if (cache.numel() != weight_.value.numel())
    cache = Tensor::zeros(weight_.value.shape());
  view->apply(weight_.value.data(), cache.data(), weight_.value.numel());
  return cache;
}

Tensor Linear::forward(const Tensor& x, bool train) {
  // Accept any rank: flatten trailing dims into features.
  const std::size_t n = x.shape()[0];
  if (x.numel() != n * in_f_)
    throw std::invalid_argument(tag_ + ": bad input " + x.shape().str());
  Tensor x2 = x.reshaped(Shape{n, in_f_});

  // As in Conv2d: eval-mode forwards may run concurrently, so only the
  // training path writes the member cache.
  Tensor local_eff;
  const Tensor& we =
      effective_weights(fwd_view_, train ? fwd_eff_ : local_eff);
  Tensor y(Shape{n, out_f_});
  // y = x2 (n x in) * We^T (in x out). On the int8 path the quantized
  // operand must be the A (weight) side, so the product is computed as
  // We (out x in) * x2^T (in x n) and transposed into y (strides express
  // both transposes — no copies).
  bool done = false;
  if (fwd_view_ && fwd_view_->int8_selected()) {
    Int8APack local_i8;
    Int8APack& wi8 = train ? fwd_i8_ : local_i8;
    wi8.pack(out_f_, in_f_, StridedOperand{we.data(), in_f_, 1},
             fwd_view_->int8_weight_scale());
    std::vector<float> ct(out_f_ * n);
    if (wi8.multiply(n, StridedOperand{x2.data(), 1, in_f_}, ct.data(), n)) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t o = 0; o < out_f_; ++o)
          y.at(i, o) = ct[o * n + i];
      done = true;
    }
  }
  if (!done)
    gemm(false, true, n, out_f_, in_f_, 1.0f, x2.data(), in_f_, we.data(),
         in_f_, 0.0f, y.data(), out_f_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t o = 0; o < out_f_; ++o) y.at(i, o) += bias_.value[o];

  if (train) {
    last_x_ = std::move(x2);
    last_input_shape_ = x.shape();
  }
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  if (last_x_.empty())
    throw std::logic_error(tag_ + ": backward without forward(train)");
  const std::size_t n = last_x_.shape()[0];

  // dW += dy^T (out x n) * x (n x in)   — digital accumulation.
  gemm(true, false, out_f_, in_f_, n, 1.0f, dy.data(), out_f_, last_x_.data(),
       in_f_, 1.0f, weight_.grad.data(), in_f_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t o = 0; o < out_f_; ++o) bias_.grad[o] += dy.at(i, o);

  // Stuck backward-array cells pin their gradient components at a fixed
  // sign and full-scale magnitude (see the matching note in conv2d.cpp).
  apply_gradient_pinning(bwd_view_, weight_.grad);

  // dx = dy (n x out) * We_bwd (out x in) — via the backward crossbars.
  // Int8 path: A = We_bwd^T (in x out), B = dy^T (out x n), transposed back.
  const Tensor& wb = effective_weights(bwd_view_, bwd_eff_);
  Tensor dx(Shape{n, in_f_});
  bool done = false;
  if (bwd_view_ && bwd_view_->int8_selected()) {
    bwd_i8_.pack(in_f_, out_f_, StridedOperand{wb.data(), 1, in_f_},
                 bwd_view_->int8_weight_scale());
    std::vector<float> ct(in_f_ * n);
    if (bwd_i8_.multiply(n, StridedOperand{dy.data(), 1, out_f_}, ct.data(),
                         n)) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < in_f_; ++j)
          dx.at(i, j) = ct[j * n + i];
      done = true;
    }
  }
  if (!done)
    gemm(false, false, n, in_f_, out_f_, 1.0f, dy.data(), out_f_, wb.data(),
         in_f_, 0.0f, dx.data(), in_f_);
  return dx.reshaped(last_input_shape_);
}

}  // namespace remapd
