#include "nn/sgd.hpp"

#include <cmath>

namespace remapd {

Sgd::Sgd(std::vector<Param*> params, Config cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_)
    velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  // Global-norm gradient clipping keeps training stable when faulty
  // backward crossbars inject large spurious gradient components.
  float scale = 1.0f;
  if (cfg_.grad_clip > 0.0f) {
    double sq = 0.0;
    for (const Param* p : params_)
      for (std::size_t i = 0; i < p->grad.numel(); ++i)
        sq += static_cast<double>(p->grad[i]) * p->grad[i];
    const double norm = std::sqrt(sq);
    if (norm > cfg_.grad_clip)
      scale = static_cast<float>(cfg_.grad_clip / norm);
  }

  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    Tensor& v = velocity_[k];
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float g =
          p->grad[i] * scale + cfg_.weight_decay * p->value[i];
      v[i] = cfg_.momentum * v[i] + g;
      p->value[i] -= cfg_.lr * v[i];
    }
    p->zero_grad();
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void Sgd::save_state(ckpt::ByteWriter& w) const {
  w.u64(velocity_.size());
  for (const Tensor& v : velocity_) save_tensor(w, v);
}

void Sgd::load_state(ckpt::ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count != velocity_.size())
    throw ckpt::CheckpointError(
        "SGD velocity count mismatch: stored " + std::to_string(count) +
        ", optimizer has " + std::to_string(velocity_.size()));
  for (Tensor& v : velocity_) load_tensor_into(r, v);
}

}  // namespace remapd
