// Stateless activation layers. These run on CMOS functional units in the
// target RCS tile (Fig. 1) and are therefore assumed fault-free.
#pragma once

#include "nn/layer.hpp"

namespace remapd {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor mask_;  ///< 1 where x > 0
};

/// Flattens (N, C, H, W) to (N, C*H*W); identity on rank-2 input.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace remapd
