// Layer interface of the CNN training substrate.
//
// Layers own their parameters and gradients and implement explicit
// forward/backward passes (define-by-run is unnecessary for a fixed model
// zoo). Weight-bearing layers (Conv2d, Linear) expose their weights as a
// 2-D matrix — the unit the crossbar mapper tiles into 128x128 blocks — and
// accept independent forward/backward FaultViews (see fault_view.hpp).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/fault_view.hpp"
#include "tensor/tensor.hpp"

namespace remapd {

/// A learnable parameter: value + gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
  std::string tag;

  explicit Param(Tensor v, std::string t = "")
      : value(std::move(v)), grad(Tensor::zeros(value.shape())),
        tag(std::move(t)) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class of all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` selects training-mode behaviour (batch statistics,
  /// activation caching for backward).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: consumes dL/dy, accumulates parameter gradients,
  /// returns dL/dx. Must follow a forward(..., train=true).
  virtual Tensor backward(const Tensor& dy) = 0;

  /// All parameters of the layer (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Visit this layer and (for composites) every descendant.
  virtual void visit(const std::function<void(Layer&)>& fn) { fn(*this); }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Interface of layers whose weights live on ReRAM crossbars.
///
/// The weight matrix is logically `weight_rows() x weight_cols()`
/// (output-major, row-major storage). Conv2d flattens its filter bank to
/// C_out x (C_in*KH*KW); Linear is O x I. The trainer installs fault views
/// rebuilt by the crossbar mapper whenever faults change or tasks remap.
class FaultableLayer {
 public:
  virtual ~FaultableLayer() = default;

  [[nodiscard]] virtual std::size_t weight_rows() const = 0;
  [[nodiscard]] virtual std::size_t weight_cols() const = 0;

  /// Install fault views (copied). Either may be empty.
  virtual void set_fault_views(FaultView forward_view,
                               FaultView backward_view) = 0;
  virtual void clear_fault_views() = 0;

  /// Digital weight parameter of the layer (for mapping / analysis).
  virtual Param& weight_param() = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Pin the gradient components whose positions traverse stuck cells of the
/// backward array. The pinned value has the fault's sign (SA1 -> +, SA0 ->
/// -) and a magnitude of `kappa` times the gradient RMS of the layer — the
/// full-scale output of a stuck column relative to the healthy MVM range.
/// `kappa` defaults to REMAPD_GRAD_PIN (12): large enough that pinned
/// positions drift decisively, small enough that the healthy-gradient
/// pull-back equilibrates once the fault is remapped away.
void apply_gradient_pinning(const std::optional<FaultView>& view,
                            Tensor& grad);

}  // namespace remapd
