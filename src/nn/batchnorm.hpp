// Batch normalization over channels of a rank-4 tensor (or features of a
// rank-2 tensor). Scale/shift parameters live in CMOS functional units in
// the target RCS, so they are never faulted or remapped.
#pragma once

#include "nn/layer.hpp"

namespace remapd {

class BatchNorm final : public Layer, public ckpt::Snapshotable {
 public:
  explicit BatchNorm(std::size_t channels, float momentum = 0.1f,
                     float eps = 1e-5f, std::string tag = "bn");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override { return tag_; }

  /// Start a fresh statistics window. Inference uses the exact statistics
  /// of all samples seen in the window (aggregated as count/mean/M2 per
  /// channel, so the variance of the batch means is included — averaging
  /// per-batch variances would under-estimate the pooled variance for
  /// small batches); the trainer opens a window per epoch so evaluation
  /// sees the activation distribution of the *current* weights (important
  /// when faulted weights shift activations over training — stale EMA
  /// statistics would misnormalize).
  void begin_stats_window();

  // Snapshotable: EMA running statistics plus the double-precision Chan
  // window accumulators (gamma/beta are ordinary params and are saved with
  // the model weights, not here).
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  std::size_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;   ///< EMA fallback (empty window)
  // Window accumulators are statistics, not hot-path tensors: kept in
  // double so the Chan merge never truncates between batches and the pooled
  // statistics stay exact over arbitrarily long windows.
  std::vector<double> window_mean_, window_m2_;  ///< Chan pooled mean / M2
  double window_count_ = 0.0;           ///< samples merged into the window
  std::string tag_;

  // Saved batch statistics / normalized activations for backward.
  Tensor xhat_;
  std::vector<float> batch_inv_std_;
  Shape input_shape_;
};

}  // namespace remapd
