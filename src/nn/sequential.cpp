#include "nn/sequential.hpp"

#include <stdexcept>

namespace remapd {

// ---------------------------------------------------------------- Sequential

Layer* Sequential::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& dy) {
  Tensor cur = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

void Sequential::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  for (auto& l : layers_) l->visit(fn);
}

// ------------------------------------------------------------ ResidualBlock

ResidualBlock::ResidualBlock(std::size_t in_channels,
                             std::size_t out_channels, std::size_t stride,
                             Rng& rng, std::string tag)
    : tag_(tag),
      conv1_(in_channels, out_channels, 3, stride, 1, rng, tag + ".conv1"),
      bn1_(out_channels, 0.1f, 1e-5f, tag + ".bn1"),
      conv2_(out_channels, out_channels, 3, 1, 1, rng, tag + ".conv2"),
      bn2_(out_channels, 0.1f, 1e-5f, tag + ".bn2") {
  if (stride != 1 || in_channels != out_channels) {
    proj_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0,
                                     rng, tag + ".proj");
    proj_bn_ = std::make_unique<BatchNorm>(out_channels, 0.1f, 1e-5f,
                                           tag + ".proj_bn");
  }
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main = bn1_.forward(conv1_.forward(x, train), train);
  if (train) relu1_mask_ = Tensor::zeros(main.shape());
  for (std::size_t i = 0; i < main.numel(); ++i) {
    if (main[i] > 0.0f) {
      if (train) relu1_mask_[i] = 1.0f;
    } else {
      main[i] = 0.0f;
    }
  }
  main = bn2_.forward(conv2_.forward(main, train), train);

  Tensor skip =
      proj_ ? proj_bn_->forward(proj_->forward(x, train), train) : x;
  if (!(skip.shape() == main.shape()))
    throw std::logic_error(tag_ + ": skip/main shape mismatch");
  main.add_(skip);

  if (train) out_mask_ = Tensor::zeros(main.shape());
  for (std::size_t i = 0; i < main.numel(); ++i) {
    if (main[i] > 0.0f) {
      if (train) out_mask_[i] = 1.0f;
    } else {
      main[i] = 0.0f;
    }
  }
  return main;
}

Tensor ResidualBlock::backward(const Tensor& dy) {
  if (out_mask_.empty())
    throw std::logic_error(tag_ + ": backward before forward");
  Tensor d = dy;
  for (std::size_t i = 0; i < d.numel(); ++i) d[i] *= out_mask_[i];

  // Skip path gradient.
  Tensor dskip =
      proj_ ? proj_->backward(proj_bn_->backward(d)) : d;

  // Main path gradient.
  Tensor dmain = conv2_.backward(bn2_.backward(d));
  for (std::size_t i = 0; i < dmain.numel(); ++i) dmain[i] *= relu1_mask_[i];
  dmain = conv1_.backward(bn1_.backward(dmain));

  dmain.add_(dskip);
  return dmain;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out;
  for (Param* p : conv1_.params()) out.push_back(p);
  for (Param* p : bn1_.params()) out.push_back(p);
  for (Param* p : conv2_.params()) out.push_back(p);
  for (Param* p : bn2_.params()) out.push_back(p);
  if (proj_) {
    for (Param* p : proj_->params()) out.push_back(p);
    for (Param* p : proj_bn_->params()) out.push_back(p);
  }
  return out;
}

void ResidualBlock::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  conv1_.visit(fn);
  bn1_.visit(fn);
  conv2_.visit(fn);
  bn2_.visit(fn);
  if (proj_) {
    proj_->visit(fn);
    proj_bn_->visit(fn);
  }
}

std::vector<FaultableLayer*> ResidualBlock::faultable() {
  std::vector<FaultableLayer*> out{&conv1_, &conv2_};
  if (proj_) out.push_back(proj_.get());
  return out;
}

std::vector<Layer*> ResidualBlock::conv_layers() {
  std::vector<Layer*> out{&conv1_, &conv2_};
  if (proj_) out.push_back(proj_.get());
  return out;
}

// --------------------------------------------------------------- FireModule

FireModule::FireModule(std::size_t in_channels, std::size_t squeeze,
                       std::size_t expand1, std::size_t expand3, Rng& rng,
                       std::string tag)
    : tag_(tag), e1_(expand1), e3_(expand3),
      squeeze_(in_channels, squeeze, 1, 1, 0, rng, tag + ".squeeze"),
      sq_bn_(squeeze, 0.1f, 1e-5f, tag + ".sq_bn"),
      expand1_(squeeze, expand1, 1, 1, 0, rng, tag + ".expand1"),
      e1_bn_(expand1, 0.1f, 1e-5f, tag + ".e1_bn"),
      expand3_(squeeze, expand3, 3, 1, 1, rng, tag + ".expand3"),
      e3_bn_(expand3, 0.1f, 1e-5f, tag + ".e3_bn") {}

Tensor FireModule::forward(const Tensor& x, bool train) {
  Tensor s = sq_bn_.forward(squeeze_.forward(x, train), train);
  if (train) sq_mask_ = Tensor::zeros(s.shape());
  for (std::size_t i = 0; i < s.numel(); ++i) {
    if (s[i] > 0.0f) {
      if (train) sq_mask_[i] = 1.0f;
    } else {
      s[i] = 0.0f;
    }
  }

  Tensor a = e1_bn_.forward(expand1_.forward(s, train), train);
  Tensor b = e3_bn_.forward(expand3_.forward(s, train), train);
  if (train) {
    e1_shape_ = a.shape();
    e3_shape_ = b.shape();
    e1_mask_ = Tensor::zeros(a.shape());
    e3_mask_ = Tensor::zeros(b.shape());
  }
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (a[i] > 0.0f) {
      if (train) e1_mask_[i] = 1.0f;
    } else {
      a[i] = 0.0f;
    }
  }
  for (std::size_t i = 0; i < b.numel(); ++i) {
    if (b[i] > 0.0f) {
      if (train) e3_mask_[i] = 1.0f;
    } else {
      b[i] = 0.0f;
    }
  }

  // Channel concatenation.
  const std::size_t n = a.shape()[0];
  const std::size_t h = a.shape()[2], w = a.shape()[3];
  Tensor y(Shape{n, e1_ + e3_, h, w});
  const std::size_t hw = h * w;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < e1_; ++c)
      for (std::size_t p = 0; p < hw; ++p)
        y.data()[((i * (e1_ + e3_) + c) * hw) + p] =
            a.data()[(i * e1_ + c) * hw + p];
    for (std::size_t c = 0; c < e3_; ++c)
      for (std::size_t p = 0; p < hw; ++p)
        y.data()[((i * (e1_ + e3_) + e1_ + c) * hw) + p] =
            b.data()[(i * e3_ + c) * hw + p];
  }
  return y;
}

Tensor FireModule::backward(const Tensor& dy) {
  if (sq_mask_.empty())
    throw std::logic_error(tag_ + ": backward before forward");
  const std::size_t n = dy.shape()[0];
  const std::size_t h = dy.shape()[2], w = dy.shape()[3];
  const std::size_t hw = h * w;

  // Split channel gradient.
  Tensor da(e1_shape_), db(e3_shape_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < e1_; ++c)
      for (std::size_t p = 0; p < hw; ++p)
        da.data()[(i * e1_ + c) * hw + p] =
            dy.data()[((i * (e1_ + e3_) + c) * hw) + p];
    for (std::size_t c = 0; c < e3_; ++c)
      for (std::size_t p = 0; p < hw; ++p)
        db.data()[(i * e3_ + c) * hw + p] =
            dy.data()[((i * (e1_ + e3_) + e1_ + c) * hw) + p];
  }
  for (std::size_t i = 0; i < da.numel(); ++i) da[i] *= e1_mask_[i];
  for (std::size_t i = 0; i < db.numel(); ++i) db[i] *= e3_mask_[i];

  Tensor ds = expand1_.backward(e1_bn_.backward(da));
  ds.add_(expand3_.backward(e3_bn_.backward(db)));
  for (std::size_t i = 0; i < ds.numel(); ++i) ds[i] *= sq_mask_[i];
  return squeeze_.backward(sq_bn_.backward(ds));
}

std::vector<Param*> FireModule::params() {
  std::vector<Param*> out;
  for (Param* p : squeeze_.params()) out.push_back(p);
  for (Param* p : sq_bn_.params()) out.push_back(p);
  for (Param* p : expand1_.params()) out.push_back(p);
  for (Param* p : e1_bn_.params()) out.push_back(p);
  for (Param* p : expand3_.params()) out.push_back(p);
  for (Param* p : e3_bn_.params()) out.push_back(p);
  return out;
}

void FireModule::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  squeeze_.visit(fn);
  sq_bn_.visit(fn);
  expand1_.visit(fn);
  e1_bn_.visit(fn);
  expand3_.visit(fn);
  e3_bn_.visit(fn);
}

std::vector<FaultableLayer*> FireModule::faultable() {
  return {&squeeze_, &expand1_, &expand3_};
}

std::vector<Layer*> FireModule::conv_layers() {
  return {&squeeze_, &expand1_, &expand3_};
}

// --------------------------------------------------------- collect_faultable

std::vector<FaultableLayer*> collect_faultable(Layer& root) {
  std::vector<FaultableLayer*> out;
  if (auto* f = dynamic_cast<FaultableLayer*>(&root)) {
    out.push_back(f);
    return out;
  }
  if (auto* seq = dynamic_cast<Sequential*>(&root)) {
    for (const auto& child : seq->children())
      for (FaultableLayer* f : collect_faultable(*child)) out.push_back(f);
    return out;
  }
  if (auto* rb = dynamic_cast<ResidualBlock*>(&root)) return rb->faultable();
  if (auto* fm = dynamic_cast<FireModule*>(&root)) return fm->faultable();
  return out;
}

}  // namespace remapd
