#include "nn/conv2d.hpp"

#include <stdexcept>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "tensor/gemm.hpp"
#include "util/parallel.hpp"

namespace remapd {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               Rng& rng, std::string tag)
    : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel),
      stride_(stride), pad_(pad),
      weight_(Tensor::kaiming(Shape{out_channels,
                                    in_channels * kernel * kernel},
                              in_channels * kernel * kernel, rng),
              tag + ".weight"),
      bias_(Tensor::zeros(Shape{out_channels}), tag + ".bias"),
      tag_(std::move(tag)) {}

void Conv2d::set_fault_views(FaultView forward_view, FaultView backward_view) {
  fwd_view_ = std::move(forward_view);
  bwd_view_ = std::move(backward_view);
}

void Conv2d::clear_fault_views() {
  fwd_view_.reset();
  bwd_view_.reset();
}

const Tensor& Conv2d::effective_weights(const std::optional<FaultView>& view,
                                        Tensor& cache) const {
  if (!view || view->empty()) return weight_.value;
  if (cache.numel() != weight_.value.numel())
    cache = Tensor::zeros(weight_.value.shape());
  view->apply(weight_.value.data(), cache.data(), weight_.value.numel());
  return cache;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.shape().rank() != 4 || x.shape()[1] != in_ch_)
    throw std::invalid_argument(tag_ + ": bad input shape " + x.shape().str());
  const std::size_t n = x.shape()[0];
  const ConvGeom g{in_ch_, x.shape()[2], x.shape()[3],
                   kernel_, kernel_, stride_, pad_};
  const std::size_t cr = g.col_rows(), cc = g.col_cols();
  const std::size_t oh = g.out_h(), ow = g.out_w();

  Tensor cols(Shape{n, cr * cc});
  Tensor y(Shape{n, out_ch_, oh, ow});
  // Eval-mode forwards may run concurrently (parallel test-set batches), so
  // the clamped-weight cache member and the packed panel member are only
  // written on the single-threaded training path; eval uses call-locals.
  Tensor local_eff;
  const Tensor& we =
      effective_weights(fwd_view_, train ? fwd_eff_ : local_eff);

  // Fused path: pack the effective-weight panel once, reuse it across every
  // sample's GEMM (the old path re-read — and the packed kernel would have
  // re-packed — We per sample). Packing does not change the per-sample
  // arithmetic: multiply() performs exactly gemm()'s FP operations, and a
  // non-finite effective weight (diverged or full-scale-stuck cell) still
  // reaches C as 0 * NaN/Inf = NaN — the products are always issued, so the
  // ZeroSkipGate contract (sparsity must never mask NaN/Inf) holds by
  // construction.
  const bool int8 = fwd_view_ && fwd_view_->int8_selected();
  GemmAPack local_pack;
  Int8APack local_i8;
  GemmAPack& wpack = train ? fwd_pack_ : local_pack;
  Int8APack& wi8 = train ? fwd_i8_ : local_i8;
  if (int8) {
    wi8.pack(out_ch_, cr, StridedOperand{we.data(), cr, 1},
             fwd_view_->int8_weight_scale());
    telemetry::count("nn.conv.int8_flops", 2ull * out_ch_ * cc * cr * n);
  } else {
    wpack.pack(out_ch_, cr, 1.0f, StridedOperand{we.data(), cr, 1});
    // Fused multiplies bypass gemm()'s counters; account for them here so
    // the flops trajectory stays complete.
    telemetry::count("nn.conv.fused_flops", 2ull * out_ch_ * cc * cr * n);
  }

  // Samples are independent (disjoint cols/y slices, no reduction), so the
  // batch loop parallelizes without any change to per-sample arithmetic.
  parallel_for(0, n, 1, [&](std::size_t s0, std::size_t s1) {
    for (std::size_t i = s0; i < s1; ++i) {
      float* col = cols.data() + i * cr * cc;
      im2col(x.data() + i * in_ch_ * g.height * g.width, g, col);
      // y_i = We (out x cr) * col (cr x cc)
      float* yi = y.data() + i * out_ch_ * cc;
      if (int8) {
        // Non-finite activations take the fp32 route so divergence is
        // never clamped away by quantization.
        if (!wi8.multiply(cc, StridedOperand{col, cc, 1}, yi, cc))
          gemm(false, false, out_ch_, cc, cr, 1.0f, we.data(), cr, col, cc,
               0.0f, yi, cc);
      } else {
        wpack.multiply(cc, col, cc, 0.0f, yi, cc);
      }
      // Bias broadcast over spatial positions.
      for (std::size_t o = 0; o < out_ch_; ++o) {
        float* plane = y.data() + (i * out_ch_ + o) * cc;
        const float b = bias_.value[o];
        for (std::size_t p = 0; p < cc; ++p) plane[p] += b;
      }
    }
  });

  if (train) {
    last_cols_ = std::move(cols);
    last_geom_ = g;
    last_batch_ = n;
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
  if (last_batch_ == 0)
    throw std::logic_error(tag_ + ": backward without forward(train)");
  const ConvGeom& g = last_geom_;
  const std::size_t n = last_batch_;
  const std::size_t cr = g.col_rows(), cc = g.col_cols();

  // Parameter gradients are accumulated digitally: the weight-update path
  // in the target RCS aggregates dW in CMOS peripherals; only the analog
  // MVMs (forward y = W*x, backward dx = W^T*dy) traverse faulty crossbars.
  Tensor dx(Shape{n, in_ch_, g.height, g.width});
  const Tensor& wb = effective_weights(bwd_view_, bwd_eff_);
  // Fused path: pack We_bwd^T once (strides express the transpose — no
  // transposed copy is ever materialized) and reuse across all samples.
  const bool int8 = bwd_view_ && bwd_view_->int8_selected();
  if (int8) {
    bwd_i8_.pack(cr, out_ch_, StridedOperand{wb.data(), 1, cr},
                 bwd_view_->int8_weight_scale());
    telemetry::count("nn.conv.int8_flops", 2ull * cr * cc * out_ch_ * n);
  } else {
    bwd_pack_.pack(cr, out_ch_, 1.0f, StridedOperand{wb.data(), 1, cr});
    telemetry::count("nn.conv.fused_flops", 2ull * cr * cc * out_ch_ * n);
  }

  // dW/db accumulate across samples — a reduction. Each block of samples
  // sums into its own scratch, and the scratches are merged in block-index
  // order below. The block structure depends only on the batch size, so
  // the FP summation grouping (and thus the result) is identical at any
  // thread count, including the serial path.
  const std::size_t grain = reduction_grain(n);
  const std::size_t nb = num_blocks(0, n, grain);
  std::vector<Tensor> dw_scratch(nb);
  std::vector<std::vector<float>> db_scratch(
      nb, std::vector<float>(out_ch_, 0.0f));
  for (Tensor& t : dw_scratch) t = Tensor::zeros(weight_.grad.shape());

  parallel_for_blocks(0, n, grain,
                      [&](std::size_t s0, std::size_t s1, std::size_t blk) {
    Tensor dcol(Shape{cr, cc});
    Tensor& dw = dw_scratch[blk];
    std::vector<float>& db = db_scratch[blk];
    for (std::size_t i = s0; i < s1; ++i) {
      const float* dyi = dy.data() + i * out_ch_ * cc;
      const float* col = last_cols_.data() + i * cr * cc;
      // dW_blk += dy_i (out x cc) * col^T (cc x cr); dy_i differs per
      // sample, so this one goes through gemm (whose packing layer absorbs
      // the col^T transpose without a copy).
      gemm(false, true, out_ch_, cr, cc, 1.0f, dyi, cc, col, cc, 1.0f,
           dw.data(), cr);
      // dcol = We_bwd^T (cr x out) * dy_i (out x cc) — shared packed panel.
      if (int8) {
        if (!bwd_i8_.multiply(cc, StridedOperand{dyi, cc, 1}, dcol.data(), cc))
          gemm(true, false, cr, cc, out_ch_, 1.0f, wb.data(), cr, dyi, cc,
               0.0f, dcol.data(), cc);
      } else {
        bwd_pack_.multiply(cc, dyi, cc, 0.0f, dcol.data(), cc);
      }
      col2im(dcol.data(), g, dx.data() + i * in_ch_ * g.height * g.width);
      // db_blk += sum over spatial.
      for (std::size_t o = 0; o < out_ch_; ++o) {
        const float* plane = dyi + o * cc;
        float s = 0.0f;
        for (std::size_t p = 0; p < cc; ++p) s += plane[p];
        db[o] += s;
      }
    }
  });

  // Fixed-order merge of the per-block partials.
  for (std::size_t blk = 0; blk < nb; ++blk) {
    const Tensor& dw = dw_scratch[blk];
    for (std::size_t e = 0; e < weight_.grad.numel(); ++e)
      weight_.grad[e] += dw[e];
    for (std::size_t o = 0; o < out_ch_; ++o)
      bias_.grad[o] += db_scratch[blk][o];
  }
  // Gradient components that traverse stuck backward-array cells are
  // pinned at a fixed sign and full-scale magnitude relative to the MVM's
  // healthy outputs: this is the "incorrect gradients accumulate after
  // each weight update" failure mode of §III.B.2 — a persistent
  // directional error at fixed positions, not zero-mean noise.
  apply_gradient_pinning(bwd_view_, weight_.grad);
  return dx;
}

}  // namespace remapd
