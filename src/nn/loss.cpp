#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace remapd {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int32_t>& labels) {
  if (logits.shape().rank() != 2)
    throw std::invalid_argument("softmax_ce: logits must be rank-2");
  const std::size_t n = logits.shape()[0], c = logits.shape()[1];
  if (labels.size() != n)
    throw std::invalid_argument("softmax_ce: label count mismatch");

  LossResult res{0.0f, Tensor(Shape{n, c}), 0};
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float mx = row[0];
    std::size_t arg = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (row[j] > mx) { mx = row[j]; arg = j; }
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const auto label = static_cast<std::size_t>(labels[i]);
    if (label >= c) throw std::invalid_argument("softmax_ce: label range");
    if (arg == label) ++res.correct;
    total += -(row[label] - mx - std::log(denom));
    float* drow = res.dlogits.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) {
      const float p = static_cast<float>(std::exp(row[j] - mx) / denom);
      drow[j] = (p - (j == label ? 1.0f : 0.0f)) / static_cast<float>(n);
    }
  }
  res.loss = static_cast<float>(total / static_cast<double>(n));
  return res;
}

std::size_t count_correct(const Tensor& logits,
                          const std::vector<std::int32_t>& labels) {
  const std::size_t n = logits.shape()[0], c = logits.shape()[1];
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    std::size_t arg = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (row[j] > row[arg]) arg = j;
    if (arg == static_cast<std::size_t>(labels[i])) ++correct;
  }
  return correct;
}

}  // namespace remapd
