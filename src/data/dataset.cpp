#include "data/dataset.hpp"

#include <stdexcept>

namespace remapd {

Batcher::Batcher(const Dataset& data, std::size_t batch_size, Rng& rng)
    : data_(data), batch_size_(batch_size), rng_(rng) {
  if (batch_size_ == 0) throw std::invalid_argument("Batcher: batch_size 0");
  order_.resize(data_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

std::size_t Batcher::batches_per_epoch() const {
  return (data_.size() + batch_size_ - 1) / batch_size_;
}

void Batcher::start_epoch() { order_ = rng_.permutation(data_.size()); }

Batch Batcher::get(std::size_t i) const {
  const std::size_t begin = i * batch_size_;
  if (begin >= data_.size()) throw std::out_of_range("Batcher::get");
  const std::size_t end = std::min(begin + batch_size_, data_.size());
  const std::size_t n = end - begin;

  const Shape& s = data_.images.shape();
  const std::size_t sample_elems = s[1] * s[2] * s[3];
  Batch b;
  b.images = Tensor(Shape{n, s[1], s[2], s[3]});
  b.labels.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order_[begin + k];
    const float* from = data_.images.data() + src * sample_elems;
    float* to = b.images.data() + k * sample_elems;
    for (std::size_t e = 0; e < sample_elems; ++e) to[e] = from[e];
    b.labels[k] = data_.labels[src];
  }
  return b;
}

}  // namespace remapd
