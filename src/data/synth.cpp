#include "data/synth.hpp"

#include <cmath>
#include <stdexcept>

namespace remapd {
namespace {

constexpr std::size_t kChannels = 3;

// ------------------------------------------------------------- prototypes

struct SinusoidComponent {
  double fx, fy, phase, amp;
};

/// A class prototype: three sinusoid components per channel.
struct Prototype {
  SinusoidComponent comp[kChannels][3];
};

Prototype make_prototype(Rng& rng, double freq_lo, double freq_hi) {
  Prototype p{};
  for (std::size_t c = 0; c < kChannels; ++c)
    for (int k = 0; k < 3; ++k) {
      p.comp[c][k].fx = rng.uniform(freq_lo, freq_hi) *
                        (rng.bernoulli(0.5) ? 1.0 : -1.0);
      p.comp[c][k].fy = rng.uniform(freq_lo, freq_hi) *
                        (rng.bernoulli(0.5) ? 1.0 : -1.0);
      p.comp[c][k].phase = rng.uniform(0.0, 2.0 * 3.14159265358979);
      p.comp[c][k].amp = rng.uniform(0.4, 1.0);
    }
  return p;
}

float proto_value(const Prototype& p, std::size_t c, double x, double y) {
  double v = 0.0;
  for (int k = 0; k < 3; ++k) {
    const auto& s = p.comp[c][k];
    v += s.amp * std::sin(2.0 * 3.14159265358979 * (s.fx * x + s.fy * y) +
                          s.phase);
  }
  return static_cast<float>(v / 3.0);
}

void render_sinusoid_sample(const Prototype& p, std::size_t size,
                            double noise, Rng& rng, float* out) {
  // Random cyclic shift (up to a quarter period) models the translation
  // jitter of natural data while keeping the task learnable from a few
  // hundred samples.
  const double sx = rng.uniform(0.0, 0.25);
  const double sy = rng.uniform(0.0, 0.25);
  for (std::size_t c = 0; c < kChannels; ++c)
    for (std::size_t y = 0; y < size; ++y)
      for (std::size_t x = 0; x < size; ++x) {
        const double u = static_cast<double>(x) / size + sx;
        const double v = static_cast<double>(y) / size + sy;
        out[(c * size + y) * size + x] =
            proto_value(p, c, u, v) + static_cast<float>(rng.normal(0.0, noise));
      }
}

// ---------------------------------------------------------------- digits

// 5x7 glyph bitmaps for digits 0-9 (classic seven-row font).
const char* kGlyphs[10] = {
    "01110"
    "10001"
    "10011"
    "10101"
    "11001"
    "10001"
    "01110",  // 0
    "00100"
    "01100"
    "00100"
    "00100"
    "00100"
    "00100"
    "01110",  // 1
    "01110"
    "10001"
    "00001"
    "00010"
    "00100"
    "01000"
    "11111",  // 2
    "11111"
    "00010"
    "00100"
    "00010"
    "00001"
    "10001"
    "01110",  // 3
    "00010"
    "00110"
    "01010"
    "10010"
    "11111"
    "00010"
    "00010",  // 4
    "11111"
    "10000"
    "11110"
    "00001"
    "00001"
    "10001"
    "01110",  // 5
    "00110"
    "01000"
    "10000"
    "11110"
    "10001"
    "10001"
    "01110",  // 6
    "11111"
    "00001"
    "00010"
    "00100"
    "01000"
    "01000"
    "01000",  // 7
    "01110"
    "10001"
    "10001"
    "01110"
    "10001"
    "10001"
    "01110",  // 8
    "01110"
    "10001"
    "10001"
    "01111"
    "00001"
    "00010"
    "01100",  // 9
};

void render_digit_sample(int digit, std::size_t size, double noise, Rng& rng,
                         float* out) {
  // Cluttered background: low-amplitude random blobs.
  for (std::size_t i = 0; i < kChannels * size * size; ++i)
    out[i] = static_cast<float>(rng.normal(0.0, 0.2));

  // Place the glyph with random offset and per-sample contrast/colour.
  // The glyph fills most of the frame (as SVHN's cropped digits do).
  const std::size_t gw = 5, gh = 7;
  const std::size_t scale = std::max<std::size_t>(1, size / 8);
  const std::size_t w = gw * scale, h = gh * scale;
  const auto ox = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(size - w)));
  const auto oy = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(size - h)));
  const float contrast = static_cast<float>(rng.uniform(1.2, 2.0));
  float chan_gain[kChannels];
  for (std::size_t c = 0; c < kChannels; ++c)
    chan_gain[c] = static_cast<float>(rng.uniform(0.6, 1.0));

  const char* glyph = kGlyphs[digit];
  for (std::size_t gy = 0; gy < gh; ++gy)
    for (std::size_t gx = 0; gx < gw; ++gx) {
      if (glyph[gy * gw + gx] != '1') continue;
      for (std::size_t dy = 0; dy < scale; ++dy)
        for (std::size_t dx = 0; dx < scale; ++dx) {
          const std::size_t y = oy + gy * scale + dy;
          const std::size_t x = ox + gx * scale + dx;
          for (std::size_t c = 0; c < kChannels; ++c)
            out[(c * size + y) * size + x] = contrast * chan_gain[c];
        }
    }
  for (std::size_t i = 0; i < kChannels * size * size; ++i)
    out[i] += static_cast<float>(rng.normal(0.0, noise * 0.5));
}

Dataset generate(const SynthSpec& spec, std::size_t count, Rng& rng,
                 const std::vector<Prototype>& protos) {
  const std::size_t classes = synth_num_classes(spec.kind);
  Dataset d;
  d.num_classes = classes;
  d.images = Tensor(
      Shape{count, kChannels, spec.image_size, spec.image_size});
  d.labels.resize(count);
  const std::size_t sample_elems =
      kChannels * spec.image_size * spec.image_size;
  for (std::size_t i = 0; i < count; ++i) {
    const auto label = static_cast<int>(i % classes);  // balanced classes
    d.labels[i] = label;
    float* out = d.images.data() + i * sample_elems;
    if (spec.kind == SynthKind::kSvhn) {
      render_digit_sample(label, spec.image_size, spec.noise, rng, out);
    } else {
      render_sinusoid_sample(protos[static_cast<std::size_t>(label)],
                             spec.image_size, spec.noise, rng, out);
    }
  }
  return d;
}

}  // namespace

std::size_t synth_num_classes(SynthKind kind) {
  switch (kind) {
    case SynthKind::kCifar10: return 10;
    case SynthKind::kCifar100: return 20;  // superclass granularity
    case SynthKind::kSvhn: return 10;
  }
  throw std::invalid_argument("synth_num_classes: bad kind");
}

const char* synth_name(SynthKind kind) {
  switch (kind) {
    case SynthKind::kCifar10: return "cifar10-like";
    case SynthKind::kCifar100: return "cifar100-like";
    case SynthKind::kSvhn: return "svhn-like";
  }
  return "?";
}

TrainTest make_synthetic(const SynthSpec& spec) {
  Rng rng(spec.seed ^ 0xda7aULL);
  const std::size_t classes = synth_num_classes(spec.kind);

  std::vector<Prototype> protos;
  if (spec.kind != SynthKind::kSvhn) {
    // CIFAR-100-like uses a narrower frequency band, so class prototypes sit
    // closer together and the task is harder (more confusable classes).
    const double lo = spec.kind == SynthKind::kCifar100 ? 1.0 : 0.5;
    const double hi = spec.kind == SynthKind::kCifar100 ? 2.0 : 2.5;
    protos.reserve(classes);
    for (std::size_t k = 0; k < classes; ++k)
      protos.push_back(make_prototype(rng, lo, hi));
  }

  TrainTest tt;
  tt.train = generate(spec, spec.train, rng, protos);
  tt.test = generate(spec, spec.test, rng, protos);
  return tt;
}

}  // namespace remapd
