// Synthetic stand-ins for the paper's datasets (CIFAR-10, CIFAR-100, SVHN).
//
// The reproduction cannot ship the original datasets, and the phenomenon
// under study — how stuck-at faults in forward/backward crossbars perturb
// training dynamics — depends on gradient flow, not natural-image
// statistics. Each generator produces class-conditionally structured RGB
// images that a scaled CNN can learn to high accuracy in a few epochs, yet
// which degrade sharply when gradients are corrupted:
//
//  * kCifar10  — 10 classes; per-class low-frequency sinusoid prototypes
//                (class-specific frequency/phase per channel) + shift + noise.
//  * kCifar100 — 20 classes (CIFAR-100's superclass granularity), prototypes
//                drawn closer together so the task is harder, mirroring the
//                paper's "more challenging to learn" characterization.
//  * kSvhn     — 10 classes; a 5x7 digit-glyph renderer places the class
//                digit at a random position/contrast over clutter —
//                digit-recognition in (synthetic) natural scenes.
#pragma once

#include "data/dataset.hpp"

namespace remapd {

enum class SynthKind { kCifar10, kCifar100, kSvhn };

struct SynthSpec {
  SynthKind kind = SynthKind::kCifar10;
  std::size_t image_size = 16;
  std::size_t train = 256;
  std::size_t test = 128;
  double noise = 0.25;       ///< additive Gaussian sample noise (stddev)
  std::uint64_t seed = 1;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Number of classes produced by a generator kind.
std::size_t synth_num_classes(SynthKind kind);

/// Human-readable dataset name ("cifar10-like", ...).
const char* synth_name(SynthKind kind);

/// Deterministic for a given spec (seed included).
TrainTest make_synthetic(const SynthSpec& spec);

}  // namespace remapd
