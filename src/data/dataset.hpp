// In-memory labelled image dataset plus a shuffling mini-batch iterator.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace remapd {

struct Dataset {
  Tensor images;  ///< {N, C, H, W}
  std::vector<std::int32_t> labels;
  std::size_t num_classes = 0;

  [[nodiscard]] std::size_t size() const {
    return images.empty() ? 0 : images.shape()[0];
  }
};

/// One mini-batch view (copies — batch sizes are small).
struct Batch {
  Tensor images;
  std::vector<std::int32_t> labels;
};

/// Shuffling batcher: reshuffles sample order each epoch.
class Batcher {
 public:
  Batcher(const Dataset& data, std::size_t batch_size, Rng& rng);

  /// Number of batches per epoch (last partial batch included).
  [[nodiscard]] std::size_t batches_per_epoch() const;

  /// Begin a new epoch (reshuffles).
  void start_epoch();

  /// Fetch batch `i` of the current epoch.
  [[nodiscard]] Batch get(std::size_t i) const;

 private:
  const Dataset& data_;
  std::size_t batch_size_;
  Rng& rng_;
  std::vector<std::size_t> order_;
};

}  // namespace remapd
