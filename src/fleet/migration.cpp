#include "fleet/migration.hpp"

#include <memory>
#include <string>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace remapd {
namespace fleet {

namespace {

std::string chip_args(const SimChip& from, const SimChip& to) {
  return "\"from\":\"" + from.name() + "\",\"to\":\"" + to.name() + "\"";
}

}  // namespace

std::size_t migrate_job(FleetJob& job, std::size_t job_index, SimChip& from,
                        SimChip& to) {
  if (!job.trainer || job.state != JobState::kRunning)
    throw FleetError("migrate: job '" + job.spec.name + "' is not running");
  if (from.bound_job() != job_index)
    throw FleetError("migrate: job '" + job.spec.name +
                     "' is not bound to chip '" + from.name() + "'");
  if (!to.free())
    throw FleetError("migrate: target chip '" + to.name() + "' is busy");
  if (from.id() == to.id())
    throw FleetError("migrate: source and target are both '" + from.name() +
                     "'");

  telemetry::JobLabelScope label("job:" + job.spec.name, job.trace_id);
  // One flow id per migration arrow: the job's trace id in the high bits,
  // the (1-based) migration ordinal in the low bits. Deterministic, unique
  // within a run, and greppable back to the job.
  const std::uint64_t flow = (job.trace_id << 16) + job.migrations + 1;

  // Freeze the job where it stands. The image carries the RCS fault state,
  // injector round counters, and density map, so the job's own fault
  // schedule travels with it — migration changes which chip degrades the
  // job from here on, never the faults it has already accumulated.
  std::string image;
  {
    telemetry::TraceSpan span("fleet.migrate.save", "fleet",
                              "{" + chip_args(from, to) + "}");
    telemetry::trace_flow_start("migrate", "fleet", flow,
                                "{" + chip_args(from, to) + "}");
    image = job.trainer->save_checkpoint_bytes();
  }

  auto fresh = std::make_unique<FaultAwareTrainer>(job.cfg);
  {
    telemetry::TraceSpan span("fleet.migrate.restore", "fleet",
                              "{" + chip_args(from, to) + "}");
    telemetry::trace_flow_finish("migrate", "fleet", flow,
                                 "{" + chip_args(from, to) + "}");
    fresh->restore_from_bytes(image);
    // The target's native pattern lands before the deployment prologue so
    // the rebuilt fault views (and the policies, after their next survey)
    // see the new chip's defects immediately.
    to.imprint_native(fresh->rcs());
    fresh->begin_training();
  }

  job.trainer = std::move(fresh);
  from.release();
  to.bind(job_index);
  job.chip = to.id();
  ++job.migrations;
  return image.size();
}

}  // namespace fleet
}  // namespace remapd
