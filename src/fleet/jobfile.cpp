#include "fleet/jobfile.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

namespace remapd {
namespace fleet {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw FleetError(where + ": " + what);
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Full-string integer parse; anything else (empty, trailing junk, out of
/// range) is an error naming the field — same contract as util/env.
long long parse_int(const std::string& where, const std::string& field,
                    const std::string& value, long long lo, long long hi) {
  const std::string v = trimmed(value);
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE)
    fail(where, "field '" + field + "': cannot parse '" + value +
                    "' (expected integer)");
  if (n < lo || n > hi)
    fail(where, "field '" + field + "': value " + std::to_string(n) +
                    " out of range [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + "]");
  return n;
}

/// Assign one (field, value) pair onto a spec. The single authority for
/// which fields a job file may set, shared by the CSV and JSON paths.
void set_field(JobSpec& s, const std::string& where, const std::string& field,
               const std::string& value) {
  if (field == "name") {
    s.name = trimmed(value);
  } else if (field == "model") {
    s.model = trimmed(value);
  } else if (field == "policy") {
    s.policy = trimmed(value);
  } else if (field == "epochs") {
    s.epochs = static_cast<std::size_t>(
        parse_int(where, field, value, 1, 1'000'000));
  } else if (field == "train") {
    s.train = static_cast<std::size_t>(
        parse_int(where, field, value, 1, 100'000'000));
  } else if (field == "test") {
    s.test = static_cast<std::size_t>(
        parse_int(where, field, value, 1, 100'000'000));
  } else if (field == "seed") {
    s.seed = static_cast<std::uint64_t>(
        parse_int(where, field, value, 0, INT64_MAX));
  } else if (field == "priority") {
    s.priority =
        static_cast<int>(parse_int(where, field, value, -1'000'000, 1'000'000));
  } else if (field == "cell_bits") {
    s.cell_bits =
        static_cast<std::size_t>(parse_int(where, field, value, 0, 4));
  } else if (field == "int8") {
    s.int8 = parse_int(where, field, value, 0, 1) != 0;
  } else {
    fail(where, "unknown field '" + field + "'");
  }
}

void check_unique_names(const std::vector<JobSpec>& jobs,
                        const std::string& ctx) {
  std::set<std::string> seen;
  for (const JobSpec& j : jobs)
    if (!seen.insert(j.name).second)
      fail(ctx, "duplicate job name '" + j.name + "'");
}

// --- minimal line-tracking JSON reader (flat arrays of flat objects) ---

class JsonCursor {
 public:
  JsonCursor(const std::string& text, const std::string& ctx)
      : text_(text), ctx_(ctx) {}

  [[nodiscard]] std::string where() const {
    return ctx_ + " line " + std::to_string(line_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail(where(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(where(), std::string("expected '") + c + "', got '" + text_[pos_] +
                        "'");
    ++pos_;
  }

  [[nodiscard]] bool consume_if(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  /// Quoted string; supports the \" \\ \/ \n \t escapes (enough for job
  /// names — anything fancier is rejected loudly).
  [[nodiscard]] std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\n') fail(where(), "unterminated string");
      if (c == '\\') {
        if (pos_ >= text_.size()) fail(where(), "unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            fail(where(), std::string("unsupported escape '\\") + e + "'");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail(where(), "unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  /// A scalar value rendered back to text: string contents, or the literal
  /// digits of an integer. Floats / booleans / nested containers are not
  /// valid JobSpec field values.
  [[nodiscard]] std::string scalar_value() {
    const char c = peek();
    if (c == '"') return string_value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      std::string out;
      if (consume_if('-')) out.push_back('-');
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        out.push_back(text_[pos_++]);
      if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e'))
        fail(where(), "expected integer, got a float");
      return out;
    }
    fail(where(), std::string("expected string or integer, got '") + c + "'");
  }

 private:
  const std::string& text_;
  std::string ctx_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

std::vector<JobSpec> parse_jobs_csv(const std::string& text,
                                    const std::string& ctx) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  std::vector<std::string> header;
  std::vector<JobSpec> jobs;

  auto split = [](const std::string& s) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(s);
    while (std::getline(ls, cell, ',')) cells.push_back(trimmed(cell));
    if (!s.empty() && s.back() == ',') cells.emplace_back();
    return cells;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trimmed(line);
    if (t.empty() || t[0] == '#') continue;
    const std::string where = ctx + " line " + std::to_string(lineno);

    if (header.empty()) {
      header = split(t);
      // Validate the column set up front so a typoed header is reported on
      // its own line, not as a bogus value error on line 2.
      JobSpec probe;
      for (const std::string& col : header) {
        if (col.empty()) fail(where, "empty column name in header");
        if (col == "name") continue;
        set_field(probe, where, col, col == "model" || col == "policy"
                                         ? "x"
                                         : "1");
      }
      continue;
    }

    const std::vector<std::string> cells = split(t);
    if (cells.size() != header.size())
      fail(where, "expected " + std::to_string(header.size()) +
                      " fields (per header), got " +
                      std::to_string(cells.size()));
    JobSpec spec;
    for (std::size_t i = 0; i < header.size(); ++i)
      set_field(spec, where, header[i], cells[i]);
    spec.validate(where);
    jobs.push_back(std::move(spec));
  }
  if (header.empty()) fail(ctx, "missing CSV header row");
  if (jobs.empty()) fail(ctx, "no jobs in file");
  check_unique_names(jobs, ctx);
  return jobs;
}

std::vector<JobSpec> parse_jobs_json(const std::string& text,
                                     const std::string& ctx) {
  JsonCursor cur(text, ctx);
  std::vector<JobSpec> jobs;

  cur.expect('[');
  if (!cur.consume_if(']')) {
    do {
      cur.expect('{');
      const std::string obj_where = cur.where();
      JobSpec spec;
      if (!cur.consume_if('}')) {
        do {
          // Land the cursor on the key before capturing the location, so
          // the error names the line the field is actually on.
          (void)cur.peek();
          const std::string where = cur.where();
          const std::string key = cur.string_value();
          cur.expect(':');
          const std::string value = cur.scalar_value();
          set_field(spec, where, key, value);
        } while (cur.consume_if(','));
        cur.expect('}');
      }
      spec.validate(obj_where);
      jobs.push_back(std::move(spec));
    } while (cur.consume_if(','));
    cur.expect(']');
  }
  if (!cur.at_end()) fail(cur.where(), "trailing content after job array");
  if (jobs.empty()) fail(ctx, "no jobs in file");
  check_unique_names(jobs, ctx);
  return jobs;
}

std::vector<JobSpec> load_job_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FleetError(path + ": cannot open job file");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) throw FleetError(path + ": empty job file");
  return text[first] == '[' ? parse_jobs_json(text, path)
                            : parse_jobs_csv(text, path);
}

}  // namespace fleet
}  // namespace remapd
