// Fleet job model: what a user submits (JobSpec, parsed from a job file by
// fleet/jobfile.cpp) and the runtime record the scheduler keeps for it
// (FleetJob). A job is one complete fault-aware training run — model,
// remap policy, epoch horizon, fault scenario — that the fleet scheduler
// multiplexes across the chip pool in epoch-granularity slices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "trainer/fault_aware_trainer.hpp"

namespace remapd {
namespace fleet {

/// "no chip" / "no job" sentinel for the fleet's index-based handles.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Error of the fleet layer: job-file parse failures (strict, naming line
/// and field), scheduler misuse, impossible fleets.
class FleetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One training job as submitted: the trainer parameters that matter at
/// fleet scale plus scheduling attributes. Everything not listed here uses
/// recommended_config(model) defaults; the fault scenario is the paper
/// default, time-compressed to the job's epoch horizon.
struct JobSpec {
  std::string name;              ///< unique within a job file
  std::string model = "resnet12";
  std::string policy = "remap-d";
  std::size_t epochs = 8;
  std::size_t train = 256;       ///< training samples (synthetic CIFAR)
  std::size_t test = 128;
  std::uint64_t seed = 42;
  int priority = 0;              ///< higher runs first under `priority`
  /// Multi-bit cell quantization: 0 = continuous fp32 cells (default),
  /// 1..4 = quantized cells of that many bits with stochastic-rounding
  /// array writes. Carried through migration inside the config fingerprint.
  std::size_t cell_bits = 0;
  /// Route the job's MVMs through the int8 GEMM fast path (needs cell_bits).
  bool int8 = false;

  /// Throws FleetError (prefixed with `ctx`) unless the spec is runnable.
  void validate(const std::string& ctx) const;

  /// The full trainer configuration this spec stands for. Identical specs
  /// produce identical configs — the config fingerprint the checkpoint
  /// layer compares on migration restore.
  [[nodiscard]] TrainerConfig trainer_config() const;
};

enum class JobState {
  kQueued,     ///< admitted, waiting for a chip
  kRejected,   ///< refused at submission (admission control)
  kRunning,    ///< bound to a chip
  kCompleted,  ///< reached its epoch horizon
  kFailed,     ///< trainer threw; see FleetJob::failure
};

[[nodiscard]] const char* job_state_name(JobState s);

/// Scheduler-side runtime record of one job. Time fields count scheduler
/// steps (one step = one slice of one job), the fleet's virtual clock —
/// deterministic, unlike wall time.
struct FleetJob {
  JobSpec spec;
  TrainerConfig cfg;
  /// Constructed at admission, retained after completion so callers can
  /// read result().history (the fleet CLI dumps it as per-job CSV).
  std::unique_ptr<FaultAwareTrainer> trainer;
  JobState state = JobState::kQueued;
  std::size_t chip = kNoIndex;  ///< bound chip (kNoIndex while not running)
  /// Stable trace-correlation id, assigned at submission (1-based submit
  /// ordinal — deterministic) and carried across migrations: every span
  /// and flow event of this job is tagged with it, so the job reads as one
  /// continuous story in chrome://tracing no matter how many chips it
  /// crossed.
  std::uint64_t trace_id = 0;

  std::size_t submit_step = 0;
  std::size_t admit_step = 0;   ///< first bound to a chip
  std::size_t finish_step = 0;  ///< completed or failed
  std::size_t slices = 0;       ///< scheduling quanta consumed
  std::size_t migrations = 0;
  double busy_seconds = 0.0;    ///< wall time spent inside this job's slices
  std::string failure;          ///< nonempty when state == kFailed
};

}  // namespace fleet
}  // namespace remapd
