// Fleet scheduler: admits jobs from a queue onto a ChipPool, time-slices
// the running set at epoch granularity, and live-migrates jobs off
// degrading chips. One Scheduler::run() drives the whole fleet to
// completion as a serial discrete-event loop over a virtual step clock
// (one step = one slice of one job); each slice's *inner* work — GEMMs,
// BIST, NoC — still uses the shared deterministic thread pool. That split
// is the determinism contract: scheduling decisions depend only on job
// specs, chip seeds, and the step counter, so a fleet run is
// bitwise-reproducible at any REMAPD_THREADS setting.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "fleet/chip.hpp"
#include "fleet/job.hpp"
#include "fleet/migration.hpp"
#include "fleet/stats.hpp"
#include "fleet/status.hpp"

namespace remapd {
namespace fleet {

enum class SchedPolicy {
  kFifo,      ///< admit in submission order
  kPriority,  ///< admit by JobSpec::priority (ties: submission order)
};

/// Parse "fifo" / "priority" (throws FleetError otherwise).
[[nodiscard]] SchedPolicy sched_policy_from(const std::string& name);

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Epochs one job trains per scheduling quantum before yielding.
  std::size_t slice_epochs = 1;
  /// Admission control: reject a submission when this many jobs are
  /// already waiting (0 = unbounded queue).
  std::size_t max_queued = 0;
  /// Migrate a job when its chip's health score falls below this
  /// (0 disables health-driven migration).
  double migrate_below = 0.0;
  /// ...and only onto a chip at least this much healthier — hysteresis so
  /// two equally bad chips don't trade jobs forever.
  double min_target_advantage = 0.05;
  /// Safety valve against migration thrashing.
  std::size_t max_migrations_per_job = 4;

  // Health-score shape (see obs::health_score).
  std::size_t health_window = 4;
  double health_full_scale = 0.05;
  double health_horizon = 2.0;

  /// Test/CI hook: unconditionally migrate each job once when it reaches
  /// this many completed epochs, health regardless (kNoIndex disables).
  /// This is what the determinism tests use to force a mid-training
  /// migration on otherwise pristine chips.
  std::size_t force_migrate_at_epoch = kNoIndex;

  /// Live observability (daemon mode): when set, the scheduler publishes a
  /// FleetStatus snapshot here before the first step, after every step,
  /// and when run() returns. Publication is write-only for the scheduler —
  /// nothing a reader does can feed back into a scheduling decision.
  StatusBoard* status_board = nullptr;

  /// Graceful-shutdown hook (SIGINT in the daemon): when set and it reads
  /// true at a step boundary, run() stops scheduling further slices and
  /// returns the partial summary. Checked only between steps, so a slice
  /// in flight always completes and per-epoch outputs stay well-formed.
  const std::atomic<bool>* stop_requested = nullptr;

  bool verbose = false;
};

class Scheduler {
 public:
  Scheduler(ChipPool& pool, SchedulerConfig cfg);

  /// Submit a job. Admission control applies immediately: the returned
  /// index refers to jobs() and the job is kQueued, or kRejected when the
  /// queue is full. Jobs submitted before run() all carry submit step 0.
  std::size_t submit(JobSpec spec);

  /// Drive every admitted job to completion (or failure). Callable once.
  FleetSummary run();

  [[nodiscard]] const std::vector<FleetJob>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<MigrationRecord>& migrations() const {
    return migrations_;
  }
  [[nodiscard]] const ChipPool& pool() const { return pool_; }

  /// Assemble the current status snapshot (also what gets published to
  /// cfg.status_board). `done` marks run() as returned.
  [[nodiscard]] FleetStatus status(bool done = false) const;
  /// Push status(done) to cfg.status_board if one is configured — the
  /// daemon calls this once before run() so /status is valid immediately.
  void publish_status(bool done = false) const;

 private:
  /// Bind queued jobs to free chips in policy order.
  void admit();
  /// Policy-ordered pick among queued jobs; kNoIndex when none.
  [[nodiscard]] std::size_t pick_queued() const;
  /// Construct the trainer and deploy it on `chip` (native-fault imprint +
  /// deployment prologue).
  void bind_job(std::size_t job_index, std::size_t chip_index);
  /// One scheduling quantum of `job_index`: train a slice, apply chip
  /// wear, feed the chip's health series, then completion / migration
  /// bookkeeping.
  void run_slice_of(std::size_t job_index);
  /// Health check + forced-migration hook for one running job.
  void maybe_migrate(std::size_t job_index);
  void finish_job(FleetJob& job, JobState state, const std::string& why);

  ChipPool& pool_;
  SchedulerConfig cfg_;
  std::vector<FleetJob> jobs_;
  std::vector<MigrationRecord> migrations_;
  std::vector<std::size_t> queue_;    ///< indices of kQueued jobs, FIFO order
  std::vector<std::size_t> running_;  ///< indices of kRunning jobs
  std::size_t step_ = 0;
  std::size_t rr_cursor_ = 0;  ///< round-robin position within running_
  bool ran_ = false;
};

}  // namespace fleet
}  // namespace remapd
