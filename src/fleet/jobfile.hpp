// Job-file ingestion for the fleet tool: a batch of JobSpecs from CSV
// (header row + one job per line) or a flat JSON array of objects. Parsing
// is strict in the spirit of the env-override layer: any malformed entry
// aborts the whole load with a FleetError naming the line and the field —
// a fleet must never silently run a misread job mix.
//
// CSV:   name,model,epochs          # header picks + orders the columns
//        jobA,resnet12,4
// JSON:  [{"name": "jobA", "model": "resnet12", "epochs": 4}]
//
// Recognized fields: name (required), model, policy, epochs, train, test,
// seed, priority. Unknown fields, empty values, non-numeric numbers,
// duplicate job names, and ragged CSV rows are all hard errors.
#pragma once

#include <string>
#include <vector>

#include "fleet/job.hpp"

namespace remapd {
namespace fleet {

/// Load `path`, dispatching on content: a file whose first non-space byte
/// is '[' parses as JSON, anything else as CSV.
[[nodiscard]] std::vector<JobSpec> load_job_file(const std::string& path);

/// Parse CSV text. `ctx` prefixes error messages (usually the file name).
[[nodiscard]] std::vector<JobSpec> parse_jobs_csv(const std::string& text,
                                                  const std::string& ctx);

/// Parse a JSON array of flat objects (string / integer values only).
[[nodiscard]] std::vector<JobSpec> parse_jobs_json(const std::string& text,
                                                   const std::string& ctx);

}  // namespace fleet
}  // namespace remapd
