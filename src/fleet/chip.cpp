#include "fleet/chip.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace remapd {
namespace fleet {

namespace {

// Stream-separation constants so the native-pattern and wear RNG streams
// of one chip never collide (same derivation idiom as FaultInjector).
constexpr std::uint64_t kNativeStream = 0x9a7e'0001;
constexpr std::uint64_t kWearStream = 0x3ea4'0002;

std::size_t cells_for(double fraction, std::size_t cell_count) {
  if (fraction <= 0.0) return 0;
  return static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(cell_count)));
}

}  // namespace

SimChip::SimChip(std::size_t id, ChipSpec spec)
    : id_(id), spec_(std::move(spec)) {}

void SimChip::bind(std::size_t job) {
  if (!free())
    throw FleetError("chip '" + spec_.name + "' is already bound to job #" +
                     std::to_string(bound_job_));
  bound_job_ = job;
}

void SimChip::release() { bound_job_ = kNoIndex; }

std::size_t SimChip::imprint_native(Rcs& rcs) {
  native_faults_ = 0;
  if (spec_.native_fault_density <= 0.0) return 0;
  const std::uint64_t base = Rng::derive_seed(spec_.seed, kNativeStream);
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
    Crossbar& xb = rcs.crossbar(x);
    const std::size_t n = cells_for(spec_.native_fault_density,
                                    xb.cell_count());
    if (n == 0) continue;
    // Keyed by (chip, crossbar) only — the same chip always presents the
    // same native pattern to a same-geometry RCS.
    Rng rng(Rng::derive_seed(base, x));
    native_faults_ +=
        xb.inject_random_faults(n, spec_.native_sa0_fraction, rng);
  }
  return native_faults_;
}

std::size_t SimChip::inject_wear(Rcs& rcs) {
  const std::size_t round = wear_rounds_++;
  if (spec_.wear_xbar_fraction <= 0.0 || spec_.wear_cell_fraction <= 0.0)
    return 0;
  const std::uint64_t base =
      Rng::derive_seed(Rng::derive_seed(spec_.seed, kWearStream), round);
  std::size_t injected = 0;
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
    Rng rng(Rng::derive_seed(base, x));
    if (!rng.bernoulli(spec_.wear_xbar_fraction)) continue;
    Crossbar& xb = rcs.crossbar(x);
    const std::size_t n =
        cells_for(spec_.wear_cell_fraction, xb.cell_count());
    injected += xb.inject_random_faults(n, spec_.native_sa0_fraction, rng);
  }
  return injected;
}

void SimChip::observe(const Rcs& rcs, const FaultDensityMap& density,
                      const WeightMapper& mapper) {
  health_.sample_epoch(observations_++, rcs, density, mapper, {});
}

ChipPool::ChipPool(std::vector<ChipSpec> specs) {
  if (specs.empty()) throw FleetError("chip pool must have at least one chip");
  chips_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    chips_.emplace_back(i, std::move(specs[i]));
}

ChipPool ChipPool::homogeneous(std::size_t n, ChipSpec base) {
  std::vector<ChipSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ChipSpec s = base;
    s.name = base.name + std::to_string(i);
    s.seed = Rng::derive_seed(base.seed, i);
    specs.push_back(std::move(s));
  }
  return ChipPool(std::move(specs));
}

std::size_t ChipPool::free_count() const {
  std::size_t n = 0;
  for (const SimChip& c : chips_) n += c.free() ? 1 : 0;
  return n;
}

std::size_t ChipPool::best_free_chip(std::size_t window, double full_scale,
                                     double horizon,
                                     std::size_t exclude) const {
  std::size_t best = kNoIndex;
  double best_score = -1.0;
  for (const SimChip& c : chips_) {
    if (!c.free() || c.id() == exclude) continue;
    const double s = c.health(window, full_scale, horizon).score;
    if (s > best_score) {
      best_score = s;
      best = c.id();
    }
  }
  return best;
}

}  // namespace fleet
}  // namespace remapd
