#include "fleet/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/log.hpp"

namespace remapd {
namespace fleet {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SchedPolicy sched_policy_from(const std::string& name) {
  if (name == "fifo") return SchedPolicy::kFifo;
  if (name == "priority") return SchedPolicy::kPriority;
  throw FleetError("unknown scheduling policy '" + name +
                   "' (expected fifo or priority)");
}

Scheduler::Scheduler(ChipPool& pool, SchedulerConfig cfg)
    : pool_(pool), cfg_(cfg) {
  if (cfg_.slice_epochs == 0)
    throw FleetError("slice_epochs must be >= 1 (0 would run whole jobs)");
}

std::size_t Scheduler::submit(JobSpec spec) {
  spec.validate("submit('" + spec.name + "')");
  const std::size_t index = jobs_.size();
  FleetJob job;
  job.spec = std::move(spec);
  job.submit_step = step_;
  job.trace_id = static_cast<std::uint64_t>(index) + 1;
  if (cfg_.max_queued != 0 && queue_.size() >= cfg_.max_queued) {
    job.state = JobState::kRejected;
    job.failure = "admission control: queue full (" +
                  std::to_string(cfg_.max_queued) + " waiting)";
    if (cfg_.verbose)
      log_warn("[fleet] rejected '", job.spec.name, "': ", job.failure);
  } else {
    queue_.push_back(index);
  }
  jobs_.push_back(std::move(job));
  return index;
}

std::size_t Scheduler::pick_queued() const {
  if (queue_.empty()) return kNoIndex;
  if (cfg_.policy == SchedPolicy::kFifo) return queue_.front();
  // Priority: highest wins; queue_ is submission-ordered, so the first
  // maximum is also the earliest-submitted.
  std::size_t best = queue_.front();
  for (std::size_t ji : queue_)
    if (jobs_[ji].spec.priority > jobs_[best].spec.priority) best = ji;
  return best;
}

void Scheduler::bind_job(std::size_t job_index, std::size_t chip_index) {
  FleetJob& job = jobs_[job_index];
  SimChip& chip = pool_.chip(chip_index);
  telemetry::JobLabelScope label("job:" + job.spec.name, job.trace_id);
  job.cfg = job.spec.trainer_config();
  job.trainer = std::make_unique<FaultAwareTrainer>(job.cfg);
  // Native faults land before the deployment prologue so the initial BIST
  // survey and the policy's placement round see the chip as it really is.
  chip.imprint_native(job.trainer->rcs());
  job.trainer->begin_training();
  chip.bind(job_index);
  job.chip = chip_index;
  job.admit_step = step_;
  job.state = JobState::kRunning;
  if (cfg_.verbose)
    log_info("[fleet] step ", step_, ": '", job.spec.name, "' -> chip '",
             chip.name(), "'");
}

void Scheduler::admit() {
  while (pool_.free_count() > 0) {
    const std::size_t ji = pick_queued();
    if (ji == kNoIndex) return;
    queue_.erase(std::find(queue_.begin(), queue_.end(), ji));
    const std::size_t chip = pool_.best_free_chip(
        cfg_.health_window, cfg_.health_full_scale, cfg_.health_horizon);
    try {
      bind_job(ji, chip);
      running_.push_back(ji);
    } catch (const std::exception& e) {
      finish_job(jobs_[ji], JobState::kFailed, e.what());
    }
  }
}

void Scheduler::finish_job(FleetJob& job, JobState state,
                           const std::string& why) {
  job.state = state;
  job.failure = why;
  job.finish_step = step_ + 1;
  if (job.chip != kNoIndex) {
    pool_.chip(job.chip).release();
    job.chip = kNoIndex;
  }
  if (cfg_.verbose)
    log_info("[fleet] step ", step_, ": '", job.spec.name, "' ",
             job_state_name(state), why.empty() ? "" : ": ", why);
}

void Scheduler::maybe_migrate(std::size_t job_index) {
  FleetJob& job = jobs_[job_index];
  if (job.migrations >= cfg_.max_migrations_per_job) return;

  const bool forced = cfg_.force_migrate_at_epoch != kNoIndex &&
                      job.trainer->epochs_completed() >=
                          cfg_.force_migrate_at_epoch &&
                      job.migrations == 0;
  SimChip& cur = pool_.chip(job.chip);
  const obs::HealthScore cur_hs = cur.health(
      cfg_.health_window, cfg_.health_full_scale, cfg_.health_horizon);
  if (!forced) {
    if (cfg_.migrate_below <= 0.0) return;
    if (cur_hs.score >= cfg_.migrate_below) return;
  }
  const std::size_t target =
      pool_.best_free_chip(cfg_.health_window, cfg_.health_full_scale,
                           cfg_.health_horizon, /*exclude=*/job.chip);
  if (target == kNoIndex) return;
  SimChip& dst = pool_.chip(target);
  const obs::HealthScore dst_hs = dst.health(
      cfg_.health_window, cfg_.health_full_scale, cfg_.health_horizon);
  if (!forced && dst_hs.score < cur_hs.score + cfg_.min_target_advantage)
    return;

  MigrationRecord rec;
  rec.job = job.spec.name;
  rec.from_chip = cur.id();
  rec.to_chip = dst.id();
  rec.at_epoch = job.trainer->epochs_completed();
  rec.step = step_;
  rec.from_score = cur_hs.score;
  rec.to_score = dst_hs.score;
  rec.image_bytes = migrate_job(job, job_index, cur, dst);
  migrations_.push_back(rec);
  if (telemetry::enabled()) {
    telemetry::Registry::instance().counter("fleet.migrations").add();
    telemetry::Registry::instance()
        .histogram("fleet.migration_image_bytes")
        .record(rec.image_bytes);
  }
  if (cfg_.verbose)
    log_info("[fleet] step ", step_, ": migrated '", job.spec.name,
             "' chip '", cur.name(), "' (", cur_hs.score, ") -> '",
             dst.name(), "' (", dst_hs.score, ") at epoch ", rec.at_epoch);
}

void Scheduler::run_slice_of(std::size_t job_index) {
  FleetJob& job = jobs_[job_index];
  SimChip& chip = pool_.chip(job.chip);
  const auto t0 = std::chrono::steady_clock::now();
  bool done = false;
  try {
    telemetry::JobLabelScope label("job:" + job.spec.name, job.trace_id);
    done = job.trainer->run_slice(cfg_.slice_epochs);
    // The chip degrades while it serves: wear lands after the slice so the
    // next slice (wherever it runs) trains on the degraded array.
    chip.inject_wear(job.trainer->rcs());
    chip.observe(job.trainer->rcs(), job.trainer->density(),
                 job.trainer->mapper());
  } catch (const std::exception& e) {
    job.busy_seconds += seconds_since(t0);
    finish_job(job, JobState::kFailed, e.what());
    return;
  }
  const double secs = seconds_since(t0);
  job.busy_seconds += secs;
  ++job.slices;
  if (telemetry::enabled()) {
    telemetry::Registry::instance().counter("fleet.slices").add();
    telemetry::Registry::instance()
        .histogram("fleet.slice_ns")
        .record(static_cast<std::uint64_t>(secs * 1e9));
  }
  if (done) {
    finish_job(job, JobState::kCompleted, "");
    if (telemetry::enabled())
      telemetry::Registry::instance().counter("fleet.jobs_completed").add();
    return;
  }
  maybe_migrate(job_index);
}

FleetStatus Scheduler::status(bool done) const {
  FleetStatus s;
  s.step = step_;
  s.done = done;
  s.submitted = jobs_.size();
  s.queued = queue_.size();
  s.running = running_.size();
  s.migrations = migrations_.size();
  s.chips.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const SimChip& chip = pool_.chip(i);
    ChipStatus c;
    c.id = chip.id();
    c.name = chip.name();
    c.free = chip.free();
    if (!c.free) c.job = jobs_[chip.bound_job()].spec.name;
    const obs::HealthScore hs = chip.health(
        cfg_.health_window, cfg_.health_full_scale, cfg_.health_horizon);
    c.health = hs.score;
    c.mean_density = hs.latest_mean_density;
    c.trend_per_epoch = hs.trend_per_epoch;
    c.wear_rounds = chip.service_rounds();
    c.native_faults = chip.native_faults_imprinted();
    s.chips.push_back(std::move(c));
  }
  s.jobs.reserve(jobs_.size());
  for (const FleetJob& job : jobs_) {
    JobStatus j;
    j.name = job.spec.name;
    j.model = job.spec.model;
    j.policy = job.spec.policy;
    j.state = job_state_name(job.state);
    j.trace_id = job.trace_id;
    if (job.chip != kNoIndex) {
      j.has_chip = true;
      j.chip = job.chip;
    }
    j.epochs_total = job.spec.epochs;
    j.slices = job.slices;
    j.migrations = job.migrations;
    j.failure = job.failure;
    if (job.trainer) {
      j.epochs_completed = job.trainer->epochs_completed();
      const auto& history = job.trainer->result().history;
      if (!history.empty()) j.last_test_accuracy = history.back().test_accuracy;
    }
    switch (job.state) {
      case JobState::kCompleted:
        ++s.completed;
        break;
      case JobState::kFailed:
        ++s.failed;
        break;
      case JobState::kRejected:
        ++s.rejected;
        break;
      default:
        break;
    }
    s.jobs.push_back(std::move(j));
  }
  return s;
}

void Scheduler::publish_status(bool done) const {
  if (cfg_.status_board) cfg_.status_board->publish(status(done));
}

FleetSummary Scheduler::run() {
  if (ran_) throw FleetError("Scheduler::run() is single-shot");
  ran_ = true;
  const auto t0 = std::chrono::steady_clock::now();

  publish_status();
  while (!queue_.empty() || !running_.empty()) {
    if (cfg_.stop_requested && cfg_.stop_requested->load()) break;
    admit();
    if (running_.empty()) break;  // every remaining submission failed to bind
    if (rr_cursor_ >= running_.size()) rr_cursor_ = 0;
    const std::size_t ji = running_[rr_cursor_];
    run_slice_of(ji);
    ++step_;
    if (jobs_[ji].state == JobState::kRunning) {
      ++rr_cursor_;
    } else {
      running_.erase(running_.begin() +
                     static_cast<std::ptrdiff_t>(rr_cursor_));
    }
    publish_status();
  }

  FleetSummary s;
  s.chips = pool_.size();
  s.submitted = jobs_.size();
  s.steps = step_;
  s.migrations = migrations_.size();
  s.wall_seconds = seconds_since(t0);
  for (const FleetJob& job : jobs_) {
    switch (job.state) {
      case JobState::kRejected:
        ++s.rejected;
        break;
      case JobState::kCompleted:
        ++s.completed;
        break;
      case JobState::kFailed:
        ++s.failed;
        break;
      default:
        break;
    }
    if (job.trainer) s.epochs_trained += job.trainer->epochs_completed();
    if (job.state == JobState::kCompleted || job.state == JobState::kFailed) {
      s.queue_wait_steps.push_back(
          static_cast<double>(job.admit_step - job.submit_step));
      s.latency_steps.push_back(
          static_cast<double>(job.finish_step - job.submit_step));
      s.job_seconds.push_back(job.busy_seconds);
    }
  }
  publish_status(/*done=*/true);
  return s;
}

}  // namespace fleet
}  // namespace remapd
