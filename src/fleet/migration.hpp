// Live migration: move a running training job from one chip to another
// without losing a single epoch of state. Mechanically it is the PR-4
// checkpoint round-trip done in memory — serialize the trainer (model,
// optimizer, RNG streams, fault state, density map, policy, history),
// rebuild a fresh trainer from the same config, restore bitwise, stamp the
// target chip's native faults, and rebind. The restored job continues
// exactly where it stopped; on an identical target chip the continuation
// is bitwise-identical to never having migrated at all (the determinism
// contract tests/test_fleet.cpp pins down).
#pragma once

#include <cstddef>
#include <string>

#include "fleet/chip.hpp"
#include "fleet/job.hpp"

namespace remapd {
namespace fleet {

/// One completed migration, for the fleet report and the tests.
struct MigrationRecord {
  std::string job;
  std::size_t from_chip = kNoIndex;
  std::size_t to_chip = kNoIndex;
  std::size_t at_epoch = 0;      ///< epochs completed at migration time
  std::size_t step = 0;          ///< scheduler step it happened on
  double from_score = 1.0;       ///< source chip health at decision time
  double to_score = 1.0;
  std::size_t image_bytes = 0;   ///< checkpoint image size moved
};

/// Migrate `job` from chip `from` to chip `to`. `to` must be free and
/// distinct from `from`; `job` must be running on `from` with a live
/// trainer. On return the job is bound to `to` with a trainer ready for
/// its next slice. Returns the in-memory checkpoint image size in bytes.
std::size_t migrate_job(FleetJob& job, std::size_t job_index, SimChip& from,
                        SimChip& to);

}  // namespace fleet
}  // namespace remapd
