// Live fleet status: the plain-data snapshot the scheduler publishes at
// every step of its discrete-event clock, and the thread-safe board the
// HTTP endpoints (/status, /jobs) read it from.
//
// The split is the serving-determinism contract: the scheduler writes a
// complete FleetStatus value under the board's mutex at step boundaries
// (its own thread, its own clock) and never reads anything back; the
// server thread copies the latest value out and renders JSON outside the
// lock. A polling client therefore observes only committed scheduler
// state — it cannot perturb a scheduling decision, a fault draw, or a CSV
// byte, which is what lets a served fleet run stay byte-identical to an
// unserved one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace remapd {
namespace fleet {

/// One chip's row in /status: identity, occupancy, and the health verdict
/// the scheduler's migration policy thresholds.
struct ChipStatus {
  std::size_t id = 0;
  std::string name;
  bool free = true;
  std::string job;  ///< bound job name, "" when free
  double health = 1.0;
  double mean_density = 0.0;     ///< latest epoch's mean true fault density
  double trend_per_epoch = 0.0;  ///< health-window density slope
  std::size_t wear_rounds = 0;   ///< service rounds of wear injected
  std::size_t native_faults = 0; ///< cells faulted by the last imprint
};

/// One job's row in /status and /jobs.
struct JobStatus {
  std::string name;
  std::string model;
  std::string policy;
  std::string state;  ///< job_state_name(): queued/running/completed/...
  std::uint64_t trace_id = 0;
  bool has_chip = false;
  std::size_t chip = 0;  ///< valid only when has_chip
  std::size_t epochs_completed = 0;
  std::size_t epochs_total = 0;
  std::size_t slices = 0;
  std::size_t migrations = 0;
  double last_test_accuracy = 0.0;  ///< 0 until the first epoch completes
  std::string failure;              ///< nonempty when state == "failed"
};

struct FleetStatus {
  std::size_t step = 0;  ///< scheduler steps completed (the virtual clock)
  bool done = false;     ///< run() returned (completion or stop request)
  std::size_t submitted = 0;
  std::size_t queued = 0;  ///< current queue depth
  std::size_t running = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  std::size_t migrations = 0;
  std::vector<ChipStatus> chips;
  std::vector<JobStatus> jobs;

  /// The /status payload: one object with scalar fields plus "chips" and
  /// "jobs" arrays.
  [[nodiscard]] std::string json() const;
  /// The /jobs payload: just the jobs array.
  [[nodiscard]] std::string jobs_json() const;
};

/// Single-producer (scheduler step loop) / multi-reader (server thread)
/// snapshot exchange. Readers get a copy; the lock is held only for the
/// copy, never across rendering or socket writes.
class StatusBoard {
 public:
  void publish(FleetStatus s);
  [[nodiscard]] FleetStatus read() const;
  /// Publish count — lets a poller detect staleness cheaply.
  [[nodiscard]] std::uint64_t version() const;

 private:
  mutable std::mutex mu_;
  FleetStatus status_;
  std::uint64_t version_ = 0;
};

}  // namespace fleet
}  // namespace remapd
