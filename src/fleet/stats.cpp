#include "fleet/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace remapd {
namespace fleet {

namespace {

/// Nearest-rank percentile of a sorted sample set.
double pct(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(p * static_cast<double>(sorted.size()))));
  return sorted[rank - 1];
}

void dist_json(std::ostringstream& os, const char* key,
               const DistSummary& d) {
  os << "\"" << key << "\":{\"count\":" << d.count << ",\"mean\":" << d.mean
     << ",\"min\":" << d.min << ",\"max\":" << d.max << ",\"p50\":" << d.p50
     << ",\"p95\":" << d.p95 << ",\"p99\":" << d.p99 << "}";
}

}  // namespace

DistSummary summarize(std::vector<double> samples) {
  DistSummary d;
  d.count = samples.size();
  if (samples.empty()) return d;
  std::sort(samples.begin(), samples.end());
  d.min = samples.front();
  d.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  d.mean = sum / static_cast<double>(samples.size());
  d.p50 = pct(samples, 0.50);
  d.p95 = pct(samples, 0.95);
  d.p99 = pct(samples, 0.99);
  return d;
}

double FleetSummary::jobs_per_min() const {
  return wall_seconds > 0.0
             ? static_cast<double>(completed) * 60.0 / wall_seconds
             : 0.0;
}

double FleetSummary::epochs_per_min() const {
  return wall_seconds > 0.0
             ? static_cast<double>(epochs_trained) * 60.0 / wall_seconds
             : 0.0;
}

std::string FleetSummary::table() const {
  const DistSummary wait = summarize(queue_wait_steps);
  const DistSummary lat = summarize(latency_steps);
  std::ostringstream os;
  os << "fleet: " << chips << " chips, " << submitted << " submitted ("
     << rejected << " rejected), " << completed << " completed, " << failed
     << " failed, " << migrations << " migrations\n";
  os << "work:  " << steps << " slices, " << epochs_trained << " epochs in "
     << wall_seconds << " s  (" << jobs_per_min() << " jobs/min, "
     << epochs_per_min() << " epochs/min)\n";
  os << "queue wait  [steps]: p50=" << wait.p50 << " p95=" << wait.p95
     << " p99=" << wait.p99 << " max=" << wait.max << "\n";
  os << "completion  [steps]: p50=" << lat.p50 << " p95=" << lat.p95
     << " p99=" << lat.p99 << " max=" << lat.max << "\n";
  return os.str();
}

std::string FleetSummary::json() const {
  std::ostringstream os;
  os << "{";
  os << "\"chips\":" << chips << ",\"submitted\":" << submitted
     << ",\"rejected\":" << rejected << ",\"completed\":" << completed
     << ",\"failed\":" << failed << ",\"migrations\":" << migrations
     << ",\"steps\":" << steps << ",\"epochs_trained\":" << epochs_trained
     << ",\"wall_seconds\":" << wall_seconds
     << ",\"jobs_per_min\":" << jobs_per_min()
     << ",\"epochs_per_min\":" << epochs_per_min() << ",";
  dist_json(os, "queue_wait_steps", summarize(queue_wait_steps));
  os << ",";
  dist_json(os, "completion_latency_steps", summarize(latency_steps));
  os << ",";
  dist_json(os, "job_busy_seconds", summarize(job_seconds));
  os << "}";
  return os.str();
}

}  // namespace fleet
}  // namespace remapd
