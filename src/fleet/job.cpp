#include "fleet/job.hpp"

namespace remapd {
namespace fleet {

void JobSpec::validate(const std::string& ctx) const {
  auto fail = [&](const std::string& field, const std::string& why) {
    throw FleetError(ctx + ": field '" + field + "': " + why);
  };
  if (name.empty()) fail("name", "must not be empty");
  if (model.empty()) fail("model", "must not be empty");
  if (policy.empty()) fail("policy", "must not be empty");
  if (epochs == 0) fail("epochs", "must be >= 1");
  if (train == 0) fail("train", "must be >= 1");
  if (test == 0) fail("test", "must be >= 1");
  if (cell_bits > 4) fail("cell_bits", "must be 0 (fp32) or 1..4");
  if (int8 && cell_bits == 0) fail("int8", "requires cell_bits >= 1");
}

TrainerConfig JobSpec::trainer_config() const {
  TrainerConfig cfg = recommended_config(model);
  cfg.policy = policy;
  cfg.epochs = epochs;
  cfg.data.train = train;
  cfg.data.test = test;
  cfg.seed = seed;
  // Compressed to the job's own horizon so short and long jobs see the
  // same cumulative wear exposure (mirrors examples/remapd_experiment).
  cfg.faults = FaultScenario::paper_default_compressed(epochs);
  if (cell_bits > 0) {
    cfg.quant.enabled = true;
    cfg.quant.cell_bits = cell_bits;
    cfg.quant.int8_gemm = int8;
  }
  return cfg;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRejected:
      return "rejected";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace fleet
}  // namespace remapd
