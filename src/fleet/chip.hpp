// SimChip / ChipPool: a farm of simulated RCS chips for the fleet
// scheduler. The trainer owns the job's RCS object (its geometry is sized
// for the job's model), so a SimChip is not a second crossbar array — it is
// the *physical identity* a deployed job runs on: a fixed native stuck-cell
// pattern stamped into whatever RCS is bound here, an optional per-slice
// wear process on top of the job's own fault scenario, and a health
// time-series (obs::HealthTracker) fed from the deployed job's state that
// the scheduler scores to decide migrations.
//
// Everything a chip does to a job is deterministic in (chip seed, service
// round, crossbar id), never in wall time or thread count, preserving the
// deterministic-parallel-layer guarantee at fleet scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_density_map.hpp"
#include "fleet/job.hpp"
#include "obs/health.hpp"
#include "xbar/rcs.hpp"

namespace remapd {
namespace fleet {

struct ChipSpec {
  std::string name;
  /// Fab-time stuck-cell density stamped into any RCS deployed here. The
  /// pattern is a fixed property of the chip (keyed by chip seed and
  /// crossbar id only), so re-deploying onto the same chip re-creates the
  /// same native faults.
  double native_fault_density = 0.0;
  double native_sa0_fraction = 0.9;
  /// Per-slice wear on top of the job's own scenario: fraction of
  /// crossbars hit per service round, and the faulty-cell fraction added
  /// to each selected crossbar. Zero on both = a non-degrading chip.
  double wear_xbar_fraction = 0.0;
  double wear_cell_fraction = 0.0;
  std::uint64_t seed = 1;
};

class SimChip {
 public:
  SimChip(std::size_t id, ChipSpec spec);

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] const ChipSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }

  [[nodiscard]] bool free() const { return bound_job_ == kNoIndex; }
  [[nodiscard]] std::size_t bound_job() const { return bound_job_; }
  void bind(std::size_t job);
  void release();

  /// Stamp the chip's native fault pattern into a freshly deployed (or
  /// migrated-in) job's RCS. Returns the number of cells faulted.
  std::size_t imprint_native(Rcs& rcs);

  /// One service round of wear: inject this chip's degradation into the
  /// deployed RCS. Called once per scheduling slice; advances the wear
  /// round counter, so successive rounds draw distinct fault patterns.
  std::size_t inject_wear(Rcs& rcs);

  /// Feed the chip's health time-series from the deployed job's current
  /// state. Samples are indexed by the chip's own monotone service count,
  /// not the job's epoch — the series spans every job this chip hosts.
  void observe(const Rcs& rcs, const FaultDensityMap& density,
               const WeightMapper& mapper);

  [[nodiscard]] obs::HealthScore health(std::size_t window, double full_scale,
                                        double horizon) const {
    return obs::health_score(health_, window, full_scale, horizon);
  }
  [[nodiscard]] const obs::HealthTracker& tracker() const { return health_; }
  [[nodiscard]] std::size_t service_rounds() const { return wear_rounds_; }
  [[nodiscard]] std::size_t native_faults_imprinted() const {
    return native_faults_;
  }

 private:
  std::size_t id_;
  ChipSpec spec_;
  std::size_t bound_job_ = kNoIndex;
  std::size_t wear_rounds_ = 0;
  std::size_t observations_ = 0;
  std::size_t native_faults_ = 0;  ///< cells faulted by the last imprint
  obs::HealthTracker health_;
};

class ChipPool {
 public:
  explicit ChipPool(std::vector<ChipSpec> specs);

  /// `n` chips sharing `base`'s fault parameters, named "<base.name>0..",
  /// each with a seed derived from base.seed and its index.
  [[nodiscard]] static ChipPool homogeneous(std::size_t n, ChipSpec base);

  [[nodiscard]] std::size_t size() const { return chips_.size(); }
  [[nodiscard]] SimChip& chip(std::size_t i) { return chips_.at(i); }
  [[nodiscard]] const SimChip& chip(std::size_t i) const {
    return chips_.at(i);
  }

  [[nodiscard]] std::size_t free_count() const;
  /// Free chip with the best health score (ties: lowest id); kNoIndex when
  /// none is free. `exclude` skips one chip (the migration source).
  [[nodiscard]] std::size_t best_free_chip(std::size_t window,
                                           double full_scale, double horizon,
                                           std::size_t exclude = kNoIndex) const;

 private:
  std::vector<SimChip> chips_;
};

}  // namespace fleet
}  // namespace remapd
