#include "fleet/status.hpp"

#include <cstdio>
#include <sstream>

#include "telemetry/export.hpp"

namespace remapd {
namespace fleet {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  return "\"" + telemetry::json_escape(s) + "\"";
}

void chip_json(std::ostringstream& os, const ChipStatus& c) {
  os << "{\"id\":" << c.id << ",\"name\":" << quoted(c.name)
     << ",\"free\":" << (c.free ? "true" : "false")
     << ",\"job\":" << quoted(c.job) << ",\"health\":" << num(c.health)
     << ",\"mean_density\":" << num(c.mean_density)
     << ",\"trend_per_epoch\":" << num(c.trend_per_epoch)
     << ",\"wear_rounds\":" << c.wear_rounds
     << ",\"native_faults\":" << c.native_faults << "}";
}

void job_json(std::ostringstream& os, const JobStatus& j) {
  os << "{\"name\":" << quoted(j.name) << ",\"model\":" << quoted(j.model)
     << ",\"policy\":" << quoted(j.policy) << ",\"state\":" << quoted(j.state)
     << ",\"trace_id\":" << j.trace_id << ",\"chip\":";
  if (j.has_chip)
    os << j.chip;
  else
    os << "null";
  os << ",\"epochs_completed\":" << j.epochs_completed
     << ",\"epochs_total\":" << j.epochs_total << ",\"slices\":" << j.slices
     << ",\"migrations\":" << j.migrations
     << ",\"last_test_accuracy\":" << num(j.last_test_accuracy);
  if (!j.failure.empty()) os << ",\"failure\":" << quoted(j.failure);
  os << "}";
}

}  // namespace

std::string FleetStatus::json() const {
  std::ostringstream os;
  os << "{\"step\":" << step << ",\"done\":" << (done ? "true" : "false")
     << ",\"submitted\":" << submitted << ",\"queued\":" << queued
     << ",\"running\":" << running << ",\"completed\":" << completed
     << ",\"failed\":" << failed << ",\"rejected\":" << rejected
     << ",\"migrations\":" << migrations << ",\"chips\":[";
  for (std::size_t i = 0; i < chips.size(); ++i) {
    if (i) os << ",";
    chip_json(os, chips[i]);
  }
  os << "],\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) os << ",";
    job_json(os, jobs[i]);
  }
  os << "]}";
  return os.str();
}

std::string FleetStatus::jobs_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) os << ",";
    job_json(os, jobs[i]);
  }
  os << "]";
  return os.str();
}

void StatusBoard::publish(FleetStatus s) {
  std::lock_guard<std::mutex> lock(mu_);
  status_ = std::move(s);
  ++version_;
}

FleetStatus StatusBoard::read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

std::uint64_t StatusBoard::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

}  // namespace fleet
}  // namespace remapd
