// Fleet-level statistics: exact-percentile summaries of queue wait and
// completion latency (in scheduler steps — the fleet's deterministic
// virtual clock) plus throughput in wall time. Unlike the telemetry
// histograms (power-of-two buckets, process-wide), these are computed from
// the full sample set at end of run, so the reported percentiles are exact
// and reproducible across runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace remapd {
namespace fleet {

/// Exact nearest-rank summary of one sample set.
struct DistSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] DistSummary summarize(std::vector<double> samples);

/// End-of-run fleet report. Step-denominated distributions are
/// deterministic; jobs_per_min / epochs_per_min are wall-clock throughput
/// and vary with the machine.
struct FleetSummary {
  std::size_t chips = 0;
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t migrations = 0;
  std::size_t steps = 0;           ///< scheduler slices executed
  std::size_t epochs_trained = 0;  ///< across all jobs
  double wall_seconds = 0.0;

  std::vector<double> queue_wait_steps;   ///< admit - submit, finished jobs
  std::vector<double> latency_steps;      ///< finish - submit, finished jobs
  std::vector<double> job_seconds;        ///< per-job busy wall time

  [[nodiscard]] double jobs_per_min() const;
  [[nodiscard]] double epochs_per_min() const;

  /// Human-readable multi-line report.
  [[nodiscard]] std::string table() const;
  /// Flat JSON object (the BENCH_fleet.json / CI artifact payload).
  [[nodiscard]] std::string json() const;
};

}  // namespace fleet
}  // namespace remapd
