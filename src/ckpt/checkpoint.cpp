#include "ckpt/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "ckpt/crc32.hpp"

namespace remapd {
namespace ckpt {

ByteWriter& CheckpointWriter::section(const std::string& name) {
  for (const auto& [n, w] : sections_)
    if (n == name) throw CheckpointError("duplicate section '" + name + "'");
  sections_.emplace_back(name, ByteWriter{});
  return sections_.back().second;
}

std::string CheckpointWriter::serialize() const {
  // Table bytes first (offsets need the table size, so lay the table out
  // with placeholder offsets, measure, then fill in real ones).
  ByteWriter table;
  const std::size_t header_fixed = 8 + 4 + 4 + 8 + 4;  // magic..table_crc
  for (const auto& [name, w] : sections_) {
    table.str(name);
    table.u64(0);  // offset placeholder (same width as the real value)
    table.u64(w.size());
    table.u32(crc32(w.bytes().data(), w.bytes().size()));
  }
  const std::size_t payload_base = header_fixed + table.size();

  ByteWriter real_table;
  std::uint64_t offset = payload_base;
  for (const auto& [name, w] : sections_) {
    real_table.str(name);
    real_table.u64(offset);
    real_table.u64(w.size());
    real_table.u32(crc32(w.bytes().data(), w.bytes().size()));
    offset += w.size();
  }

  std::uint64_t file_size = payload_base;
  for (const auto& [name, w] : sections_) file_size += w.size();

  ByteWriter out;
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  out.u64(file_size);
  out.u32(crc32(real_table.bytes().data(), real_table.bytes().size()));

  std::string image = out.bytes();
  image += real_table.bytes();
  for (const auto& [name, w] : sections_) image += w.bytes();
  return image;
}

void CheckpointWriter::write_file(const std::string& path) const {
  const std::string image = serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw CheckpointError("cannot open '" + tmp + "' for writing");
    f.write(image.data(), static_cast<std::streamsize>(image.size()));
    f.flush();
    if (!f) throw CheckpointError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

CheckpointReader::CheckpointReader(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw CheckpointError("cannot open '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  if (!f.good() && !f.eof())
    throw CheckpointError("read error on '" + path + "'");
  bytes_ = std::move(data);
  parse_and_validate();
}

CheckpointReader CheckpointReader::from_bytes(std::string bytes) {
  CheckpointReader r;
  r.bytes_ = std::move(bytes);
  r.parse_and_validate();
  return r;
}

void CheckpointReader::parse_and_validate() {
  const std::size_t header_fixed = 8 + 4 + 4 + 8 + 4;
  if (bytes_.size() < header_fixed)
    throw CheckpointError("file shorter than header (" +
                          std::to_string(bytes_.size()) + " bytes)");
  if (std::memcmp(bytes_.data(), kMagic, sizeof(kMagic)) != 0)
    throw CheckpointError("bad magic (not a remapd checkpoint)");

  ByteReader head(bytes_.data() + 8, header_fixed - 8);
  const std::uint32_t version = head.u32();
  if (version != kFormatVersion)
    throw CheckpointError("format version " + std::to_string(version) +
                          " unsupported (reader speaks " +
                          std::to_string(kFormatVersion) + ")");
  const std::uint32_t count = head.u32();
  const std::uint64_t declared_size = head.u64();
  const std::uint32_t table_crc = head.u32();
  if (declared_size != bytes_.size())
    throw CheckpointError("file truncated: header declares " +
                          std::to_string(declared_size) + " bytes, got " +
                          std::to_string(bytes_.size()));

  // The table ends where the first payload begins; parse entries off a
  // reader over the whole remainder, then CRC exactly the span consumed.
  ByteReader table(bytes_.data() + header_fixed,
                   bytes_.size() - header_fixed);
  toc_.clear();
  toc_.reserve(count);
  std::size_t table_bytes = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    SectionInfo s;
    s.name = table.str();
    s.offset = table.u64();
    s.size = table.u64();
    s.crc = table.u32();
    table_bytes = bytes_.size() - header_fixed - table.remaining();
    toc_.push_back(std::move(s));
  }
  if (crc32(bytes_.data() + header_fixed, table_bytes) != table_crc)
    throw CheckpointError("section table checksum mismatch");

  for (const SectionInfo& s : toc_) {
    if (s.offset > bytes_.size() || s.size > bytes_.size() - s.offset)
      throw CheckpointError("section '" + s.name + "' overruns the file");
    if (crc32(bytes_.data() + s.offset, static_cast<std::size_t>(s.size)) !=
        s.crc)
      throw CheckpointError("section '" + s.name + "' checksum mismatch");
  }
}

bool CheckpointReader::has(const std::string& name) const {
  for (const SectionInfo& s : toc_)
    if (s.name == name) return true;
  return false;
}

ByteReader CheckpointReader::open(const std::string& name) const {
  for (const SectionInfo& s : toc_)
    if (s.name == name)
      return {bytes_.data() + s.offset, static_cast<std::size_t>(s.size)};
  throw CheckpointError("no section '" + name + "'");
}

void RunMeta::save(ByteWriter& w) const {
  w.str(model);
  w.str(policy);
  w.str(dataset);
  w.u64(seed);
  w.u64(epochs_total);
  w.u64(epochs_completed);
  w.u64(crossbars);
  w.u64(tasks);
}

void RunMeta::load(ByteReader& r) {
  model = r.str();
  policy = r.str();
  dataset = r.str();
  seed = r.u64();
  epochs_total = r.u64();
  epochs_completed = r.u64();
  crossbars = r.u64();
  tasks = r.u64();
}

void save_string_pairs(
    ByteWriter& w,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  w.u64(pairs.size());
  for (const auto& [k, v] : pairs) {
    w.str(k);
    w.str(v);
  }
}

std::vector<std::pair<std::string, std::string>> load_string_pairs(
    ByteReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    pairs.emplace_back(std::move(k), std::move(v));
  }
  return pairs;
}

}  // namespace ckpt
}  // namespace remapd
