// Versioned, checksummed container format for training checkpoints.
//
// File layout (all integers little-endian):
//
//   offset 0   magic            8 bytes  "RMDCKPT1"
//              format_version   u32      kFormatVersion
//              section_count    u32
//              file_size        u64      total bytes (truncation check)
//              table_crc        u32      CRC-32 of the section table bytes
//              section table    section_count entries:
//                                 name   (u64 length + bytes)
//                                 offset u64   (from start of file)
//                                 size   u64
//                                 crc    u32   (CRC-32 of the payload)
//              payloads         concatenated section byte blobs
//
// Every read path validates magic, version, declared file size, the table
// CRC and *every* section CRC before any section is handed out, so a
// truncated file or a single flipped byte is rejected up front with a
// CheckpointError — a corrupt checkpoint can never produce a silent
// partial load.
//
// Writes are atomic: the image is assembled in memory, written to
// `<path>.tmp`, flushed, and renamed over `<path>`. A crash mid-write
// leaves the previous checkpoint intact.
//
// Section payloads are produced by the components themselves through the
// Snapshotable hook (ckpt/snapshot.hpp); this container neither knows nor
// cares what a section means. The trainer's section inventory is
// documented in trainer/trainer_ckpt.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"

namespace remapd {
namespace ckpt {

inline constexpr char kMagic[8] = {'R', 'M', 'D', 'C', 'K', 'P', 'T', '1'};
// v2: crossbar sections gained a cell-bits marker + packed level codes
// (quantized conductances), and the trainer fingerprint gained the quant
// fields — older files are rejected with a clear version error.
inline constexpr std::uint32_t kFormatVersion = 2;

struct SectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

class CheckpointWriter {
 public:
  /// Open a new named section and return its writer. Section names must be
  /// unique per checkpoint; re-opening one throws.
  ByteWriter& section(const std::string& name);

  /// Assemble the full file image (header + table + payloads).
  [[nodiscard]] std::string serialize() const;

  /// Atomically write serialize() to `path` via `<path>.tmp` + rename.
  /// Throws CheckpointError on any I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, ByteWriter>> sections_;
};

class CheckpointReader {
 public:
  /// Load `path` and validate magic, version, size, and every CRC.
  explicit CheckpointReader(const std::string& path);

  /// Parse an in-memory image (tests / pipes). Same validation.
  static CheckpointReader from_bytes(std::string bytes);

  [[nodiscard]] const std::vector<SectionInfo>& sections() const {
    return toc_;
  }
  [[nodiscard]] bool has(const std::string& name) const;
  /// Reader over a section's payload; throws if the section is absent.
  [[nodiscard]] ByteReader open(const std::string& name) const;

 private:
  CheckpointReader() = default;
  void parse_and_validate();

  std::string bytes_;
  std::vector<SectionInfo> toc_;
};

/// Checkpoint identity card: the always-first "meta" section, readable by
/// the `remapd_ckpt` inspector without any trainer knowledge.
struct RunMeta {
  std::string model;
  std::string policy;
  std::string dataset;
  std::uint64_t seed = 0;
  std::uint64_t epochs_total = 0;      ///< configured training horizon
  std::uint64_t epochs_completed = 0;  ///< epochs finished at save time
  std::uint64_t crossbars = 0;
  std::uint64_t tasks = 0;

  void save(ByteWriter& w) const;
  void load(ByteReader& r);
};

/// Ordered (name, value) string pairs — the trainer's config fingerprint
/// section uses these so a resume can report exactly which field diverged.
void save_string_pairs(
    ByteWriter& w,
    const std::vector<std::pair<std::string, std::string>>& pairs);
std::vector<std::pair<std::string, std::string>> load_string_pairs(
    ByteReader& r);

}  // namespace ckpt
}  // namespace remapd
