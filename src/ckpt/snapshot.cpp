#include "ckpt/snapshot.hpp"

#include <cstring>

namespace remapd {
namespace ckpt {

namespace {

constexpr std::uint64_t kMaxVecLen = 1ULL << 32;  // 4 Gi elements: sanity cap

template <typename T>
void append_le(std::string& buf, T v) {
  char tmp[sizeof(T)];
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(tmp, &v, sizeof(T));
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  buf.append(tmp, sizeof(T));
}

template <typename T>
T read_le(const char* p) {
  T v{};
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, p, sizeof(T));
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void ByteWriter::u32(std::uint32_t v) { append_le(buf_, v); }
void ByteWriter::u64(std::uint64_t v) { append_le(buf_, v); }

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

void ByteWriter::vec_u8(const std::vector<std::uint8_t>& v) {
  u64(v.size());
  buf_.append(reinterpret_cast<const char*>(v.data()), v.size());
}

void ByteWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

void ByteWriter::vec_f32(const std::vector<float>& v) {
  u64(v.size());
  f32_array(v.data(), v.size());
}

void ByteWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void ByteWriter::f32_array(const float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) f32(p[i]);
}

const char* ByteReader::take(std::size_t n) {
  if (n > size_ - pos_)
    throw CheckpointError("read of " + std::to_string(n) +
                          " bytes past end of section (" +
                          std::to_string(size_ - pos_) + " left)");
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(*take(1));
}

std::uint32_t ByteReader::u32() { return read_le<std::uint32_t>(take(4)); }
std::uint64_t ByteReader::u64() { return read_le<std::uint64_t>(take(8)); }

bool ByteReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CheckpointError("boolean field holds " + std::to_string(v));
  return v != 0;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > size_ - pos_) throw CheckpointError("string length overruns section");
  return std::string(take(static_cast<std::size_t>(n)), n);
}

std::vector<std::uint8_t> ByteReader::vec_u8() {
  const std::uint64_t n = u64();
  if (n > kMaxVecLen || n > size_ - pos_)
    throw CheckpointError("byte-vector length overruns section");
  const char* p = take(static_cast<std::size_t>(n));
  return {reinterpret_cast<const std::uint8_t*>(p),
          reinterpret_cast<const std::uint8_t*>(p) + n};
}

std::vector<std::uint64_t> ByteReader::vec_u64() {
  const std::uint64_t n = u64();
  if (n > kMaxVecLen || n * 8 > size_ - pos_)
    throw CheckpointError("u64-vector length overruns section");
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = u64();
  return v;
}

std::vector<float> ByteReader::vec_f32() {
  const std::uint64_t n = u64();
  if (n > kMaxVecLen || n * 4 > size_ - pos_)
    throw CheckpointError("f32-vector length overruns section");
  std::vector<float> v(static_cast<std::size_t>(n));
  f32_array(v.data(), v.size());
  return v;
}

std::vector<double> ByteReader::vec_f64() {
  const std::uint64_t n = u64();
  if (n > kMaxVecLen || n * 8 > size_ - pos_)
    throw CheckpointError("f64-vector length overruns section");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = f64();
  return v;
}

void ByteReader::f32_array(float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f32();
}

void ByteReader::expect_end() const {
  if (pos_ != size_)
    throw CheckpointError(std::to_string(size_ - pos_) +
                          " unread bytes at end of section");
}

}  // namespace ckpt
}  // namespace remapd
