#include "ckpt/crc32.hpp"

#include <array>

namespace remapd {
namespace ckpt {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* p, std::size_t n, std::uint32_t seed) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = kTable[(c ^ b[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ckpt
}  // namespace remapd
