// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) used to
// checksum every checkpoint section. Table-driven, one pass per section —
// checkpoints are written once per epoch, so integrity wins over speed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace remapd {
namespace ckpt {

/// CRC-32 of `n` bytes starting at `p`. `seed` allows incremental updates:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* p, std::size_t n, std::uint32_t seed = 0);

}  // namespace ckpt
}  // namespace remapd
