// Serialization primitives of the checkpoint subsystem.
//
// ByteWriter / ByteReader move primitive values in and out of a flat byte
// buffer in a fixed little-endian layout, so a checkpoint written on any
// supported host reads back bit-identically. Floating-point values travel
// as their IEEE-754 bit patterns (std::bit_cast), never through text — the
// whole point of the subsystem is that a resumed training run continues
// *bitwise* where the interrupted one stopped.
//
// Snapshotable is the serialization hook every stateful component of the
// trainer implements (RNG streams, crossbar fault state, optimizer
// momentum, BatchNorm statistics, the task map, ...). Components write
// their own layout and validate it on load; structural mismatches raise
// CheckpointError rather than silently absorbing a truncated or foreign
// blob.
//
// This header sits below every other subsystem library (it includes only
// the standard library), so nn/, xbar/, core/ and util/ headers may
// implement Snapshotable without dependency cycles.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace remapd {
namespace ckpt {

/// Any failure of the checkpoint layer: unreadable file, bad magic or
/// version, checksum mismatch, truncated section, or a component rejecting
/// a structurally incompatible blob. Never thrown for a *clean* load.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed string (u64 length + raw bytes).
  void str(const std::string& s);

  void vec_u8(const std::vector<std::uint8_t>& v);
  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_f32(const std::vector<float>& v);
  void vec_f64(const std::vector<double>& v);
  /// Raw float payload with an external length (tensor data).
  void f32_array(const float* p, std::size_t n);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian byte source over a borrowed buffer.
/// Every read past the end throws CheckpointError — a truncated section
/// can never yield a silent partial load.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean();
  std::string str();

  std::vector<std::uint8_t> vec_u8();
  std::vector<std::uint64_t> vec_u64();
  std::vector<float> vec_f32();
  std::vector<double> vec_f64();
  /// Read `n` floats into `out` (caller supplies the expected length).
  void f32_array(float* out, std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// Throws unless the section was consumed exactly — catching layout
  /// drift between writer and reader versions.
  void expect_end() const;

 private:
  const char* take(std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Serialization hook of every stateful training component. save_state
/// writes the component's full mutable state; load_state restores it into
/// an already-constructed component of identical structure (same shapes /
/// dimensions / configuration) and throws CheckpointError when the blob
/// does not match that structure.
class Snapshotable {
 public:
  virtual ~Snapshotable() = default;
  virtual void save_state(ByteWriter& w) const = 0;
  virtual void load_state(ByteReader& r) = 0;
};

}  // namespace ckpt
}  // namespace remapd
