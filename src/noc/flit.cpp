#include "noc/flit.hpp"

namespace remapd {
namespace noc {

const char* packet_kind_name(PacketKind k) {
  switch (k) {
    case PacketKind::kRemapRequest: return "remap-request";
    case PacketKind::kRemapResponse: return "remap-response";
    case PacketKind::kWeightTransfer: return "weight-transfer";
    case PacketKind::kTraining: return "training";
  }
  return "?";
}

}  // namespace noc
}  // namespace remapd
