// Router state of the c-mesh NoC: per-port input FIFOs, wormhole output
// locks, and the bookkeeping for tree-multicast flit replication. Movement
// logic lives in Network (it needs neighbour access); the router owns only
// its local state.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/flit.hpp"
#include "noc/multicast.hpp"

namespace remapd {
namespace noc {

constexpr std::size_t kNoInput = static_cast<std::size_t>(-1);

struct BufferedFlit {
  Flit flit;
  std::uint64_t arrival_cycle = 0;  ///< earliest cycle it may move on
};

/// Per-input-port state.
struct InputPort {
  std::deque<BufferedFlit> fifo;
  // Replication bookkeeping for the head flit: the output ports that still
  // need a copy. Filled when a head flit reaches the FIFO front; body flits
  // inherit the packet's route.
  std::vector<std::size_t> pending_outputs;
  PacketId current_packet = 0;
  std::vector<std::size_t> packet_route;  ///< full route of current packet
  bool route_valid = false;
};

struct Router {
  std::size_t id = 0;
  std::vector<InputPort> in;            ///< kPorts entries
  std::vector<std::size_t> out_lock;    ///< owning input per output, kNoInput
  std::size_t rr_cursor = 0;            ///< round-robin arbitration start

  explicit Router(std::size_t router_id)
      : id(router_id), in(CmeshGeometry::kPorts),
        out_lock(CmeshGeometry::kPorts, kNoInput) {}

  [[nodiscard]] bool empty() const {
    for (const auto& p : in)
      if (!p.fifo.empty()) return false;
    return true;
  }
};

}  // namespace noc
}  // namespace remapd
