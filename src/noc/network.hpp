// Flit-level c-mesh network simulator (the BookSim substitute).
//
// Wormhole switching with credit-style backpressure (bounded input FIFOs),
// dimension-ordered XY unicast, XY-tree broadcast with per-router flit
// replication, one hop per cycle. Tiles inject at most one flit per cycle
// and eject without backpressure (eDRAM buffers absorb arrivals, Fig. 1).
#pragma once

#include <array>
#include <unordered_map>

#include "noc/router.hpp"

namespace remapd {
namespace noc {

struct NocConfig {
  CmeshGeometry geometry{};
  std::size_t fifo_depth = 4;
};

class Network {
 public:
  explicit Network(NocConfig cfg);

  [[nodiscard]] const NocConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  /// Queue a packet for injection at its source tile. Returns the id.
  PacketId inject(PacketKind kind, NodeId src, NodeId dst,
                  std::size_t length_flits);

  /// Advance one cycle.
  void step();

  /// True when no packet is queued, buffered, or in flight.
  [[nodiscard]] bool idle() const;

  /// Step until idle or `max_cycles` more cycles elapse. Returns cycles
  /// actually executed. Throws std::runtime_error on timeout (indicates a
  /// routing deadlock — a bug).
  std::uint64_t run_until_idle(std::uint64_t max_cycles = 10'000'000);

  [[nodiscard]] const PacketStats& stats(PacketId id) const;
  [[nodiscard]] std::size_t packets_injected() const { return next_id_ - 1; }
  [[nodiscard]] std::uint64_t flit_hops() const { return flit_hops_; }
  /// Mean tail latency over completed packets.
  [[nodiscard]] double mean_latency() const;

  // Per-router / per-link utilization (reliability observatory; hotspot
  // heatmaps derive from these). Indexed by router id; links are the four
  // outgoing inter-router directions in N, E, S, W order.
  /// Flit copies each router moved (ejections + neighbour forwards).
  [[nodiscard]] const std::vector<std::uint64_t>& router_flit_counts() const {
    return router_flits_;
  }
  /// Flit copies sent over each outgoing inter-router link.
  [[nodiscard]] const std::vector<std::array<std::uint64_t, 4>>&
  link_flit_counts() const {
    return link_flits_;
  }

 private:
  void inject_phase();
  void route_phase();
  /// Attempt to deliver the head flit of (router, port) to all pending
  /// outputs. Pops the flit when fully replicated.
  void process_input(Router& r, std::size_t port);
  /// Establish route for the packet at the front of an input port.
  void ensure_route(Router& r, std::size_t port);
  /// Send one flit copy through an output. Returns success.
  bool try_send(Router& r, std::size_t in_port, std::size_t out_port,
                const Flit& f);
  void record_ejection(std::size_t tile, const Flit& f);

  NocConfig cfg_;
  std::vector<Router> routers_;
  std::vector<std::deque<Flit>> inject_queues_;  ///< per tile
  std::unordered_map<PacketId, PacketStats> stats_;
  std::uint64_t cycle_ = 0;
  PacketId next_id_ = 1;
  std::uint64_t flit_hops_ = 0;
  std::size_t in_flight_ = 0;  ///< packets not yet fully delivered
  std::vector<std::uint64_t> router_flits_;              ///< per router
  std::vector<std::array<std::uint64_t, 4>> link_flits_; ///< N/E/S/W per router
};

}  // namespace noc
}  // namespace remapd
