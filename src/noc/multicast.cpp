#include "noc/multicast.hpp"

#include <stdexcept>

namespace remapd {
namespace noc {

std::size_t CmeshGeometry::router_of_tile(std::size_t tile) const {
  const std::size_t tx = tile % tiles_x, ty = tile / tiles_x;
  return router_at(tx / 2, ty / 2);
}

std::size_t CmeshGeometry::local_port_of_tile(std::size_t tile) const {
  const std::size_t tx = tile % tiles_x, ty = tile / tiles_x;
  return (ty % 2) * 2 + (tx % 2);
}

std::size_t CmeshGeometry::tile_at(std::size_t router,
                                   std::size_t local_port) const {
  const RouterCoord rc = coord(router);
  const std::size_t tx = rc.x * 2 + (local_port % 2);
  const std::size_t ty = rc.y * 2 + (local_port / 2);
  if (tx >= tiles_x || ty >= tiles_y) return num_tiles();
  return ty * tiles_x + tx;
}

std::size_t CmeshGeometry::hop_count(std::size_t tile_a,
                                     std::size_t tile_b) const {
  const RouterCoord a = coord(router_of_tile(tile_a));
  const RouterCoord b = coord(router_of_tile(tile_b));
  const std::size_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const std::size_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

std::size_t xy_route(const CmeshGeometry& g, std::size_t router,
                     std::size_t dst_tile) {
  const std::size_t dst_router = g.router_of_tile(dst_tile);
  if (dst_router == router) return g.local_port_of_tile(dst_tile);
  const RouterCoord here = g.coord(router);
  const RouterCoord there = g.coord(dst_router);
  // Dimension order: X first, then Y.
  if (there.x > here.x) return CmeshGeometry::kPortE;
  if (there.x < here.x) return CmeshGeometry::kPortW;
  if (there.y > here.y) return CmeshGeometry::kPortS;
  return CmeshGeometry::kPortN;
}

std::vector<std::size_t> xy_tree_route(const CmeshGeometry& g,
                                       std::size_t router,
                                       std::size_t in_port,
                                       std::size_t /*src_tile*/) {
  const RouterCoord rc = g.coord(router);
  std::vector<std::size_t> out;

  // Local delivery: all attached tiles except the one the flit came from.
  for (std::size_t lp = 0; lp < CmeshGeometry::kConcentration; ++lp) {
    if (lp == in_port) continue;
    if (g.tile_at(router, lp) < g.num_tiles()) out.push_back(lp);
  }

  const bool has_n = rc.y > 0;
  const bool has_s = rc.y + 1 < g.routers_y();
  const bool has_e = rc.x + 1 < g.routers_x();
  const bool has_w = rc.x > 0;

  if (in_port < CmeshGeometry::kConcentration) {
    // Origin router: spread along the X axis and both Y directions.
    if (has_e) out.push_back(CmeshGeometry::kPortE);
    if (has_w) out.push_back(CmeshGeometry::kPortW);
    if (has_n) out.push_back(CmeshGeometry::kPortN);
    if (has_s) out.push_back(CmeshGeometry::kPortS);
  } else if (in_port == CmeshGeometry::kPortW) {
    // Travelling east along the trunk: continue, branch both Y ways.
    if (has_e) out.push_back(CmeshGeometry::kPortE);
    if (has_n) out.push_back(CmeshGeometry::kPortN);
    if (has_s) out.push_back(CmeshGeometry::kPortS);
  } else if (in_port == CmeshGeometry::kPortE) {
    if (has_w) out.push_back(CmeshGeometry::kPortW);
    if (has_n) out.push_back(CmeshGeometry::kPortN);
    if (has_s) out.push_back(CmeshGeometry::kPortS);
  } else if (in_port == CmeshGeometry::kPortN) {
    // Travelling south on a branch: keep going.
    if (has_s) out.push_back(CmeshGeometry::kPortS);
  } else if (in_port == CmeshGeometry::kPortS) {
    if (has_n) out.push_back(CmeshGeometry::kPortN);
  } else {
    throw std::invalid_argument("xy_tree_route: bad in_port");
  }
  return out;
}

}  // namespace noc
}  // namespace remapd
