// Routing functions of the c-mesh: dimension-ordered (XY) unicast and the
// XY-tree multicast used for remap-request broadcast (§III.B.4, [5]).
//
// Port numbering at each router: local ports 0..C-1 (the concentrated
// tiles), then N, E, S, W.
#pragma once

#include <cstddef>
#include <vector>

namespace remapd {
namespace noc {

struct RouterCoord {
  std::size_t x = 0, y = 0;
};

/// Geometry of a c-mesh: a routers_x x routers_y mesh, each router
/// concentrating a 2x2 quad of tiles (concentration 4, as in [13]).
struct CmeshGeometry {
  std::size_t tiles_x = 4, tiles_y = 4;

  [[nodiscard]] std::size_t routers_x() const { return (tiles_x + 1) / 2; }
  [[nodiscard]] std::size_t routers_y() const { return (tiles_y + 1) / 2; }
  [[nodiscard]] std::size_t num_routers() const {
    return routers_x() * routers_y();
  }
  [[nodiscard]] std::size_t num_tiles() const { return tiles_x * tiles_y; }
  static constexpr std::size_t kConcentration = 4;
  /// Ports per router: 4 locals + N/E/S/W.
  static constexpr std::size_t kPorts = kConcentration + 4;
  static constexpr std::size_t kPortN = kConcentration + 0;
  static constexpr std::size_t kPortE = kConcentration + 1;
  static constexpr std::size_t kPortS = kConcentration + 2;
  static constexpr std::size_t kPortW = kConcentration + 3;

  [[nodiscard]] std::size_t router_of_tile(std::size_t tile) const;
  /// Local port index (0..3) of a tile at its router.
  [[nodiscard]] std::size_t local_port_of_tile(std::size_t tile) const;
  /// Tile attached to (router, local port), or num_tiles() when the quad
  /// position is beyond the tile grid (odd grid edge).
  [[nodiscard]] std::size_t tile_at(std::size_t router,
                                    std::size_t local_port) const;
  [[nodiscard]] RouterCoord coord(std::size_t router) const {
    return {router % routers_x(), router / routers_x()};
  }
  [[nodiscard]] std::size_t router_at(std::size_t x, std::size_t y) const {
    return y * routers_x() + x;
  }
  /// Router hop distance between two tiles.
  [[nodiscard]] std::size_t hop_count(std::size_t tile_a,
                                      std::size_t tile_b) const;
};

/// XY unicast: the single output port at `router` toward `dst_tile`
/// (a local port when the destination is attached here).
std::size_t xy_route(const CmeshGeometry& g, std::size_t router,
                     std::size_t dst_tile);

/// XY-tree multicast: output ports a broadcast flit entering `router`
/// through `in_port` must be replicated to. `src_tile` is excluded from
/// local delivery at its own router. `in_port == kPorts` means the flit was
/// injected locally at this router.
std::vector<std::size_t> xy_tree_route(const CmeshGeometry& g,
                                       std::size_t router,
                                       std::size_t in_port,
                                       std::size_t src_tile);

}  // namespace noc
}  // namespace remapd
