// Remap-protocol traffic generation (Fig. 3) and the epoch-overhead model.
//
// The protocol has three phases, all simulated flit-by-flit:
//   (a) every sender broadcasts a 1-flit remap request (XY-tree multicast);
//   (b) every potential receiver unicasts a 1-flit response to each sender;
//   (c) each chosen (sender, receiver) pair exchanges weights — two bulk
//       wormhole transfers, which proceed in parallel across pairs when
//       their paths do not overlap.
//
// The performance overhead compares the remap cycles against the NoC
// cycles of one training epoch (§IV.C reports 0.22 % average / 0.36 %
// worst-case over a 50-round Monte Carlo).
#pragma once

#include <array>
#include <vector>

#include "noc/network.hpp"
#include "util/rng.hpp"

namespace remapd {
namespace noc {

/// One sender-receiver weight exchange.
struct RemapPair {
  NodeId sender;
  NodeId receiver;
};

struct RemapTrafficResult {
  std::uint64_t request_cycles = 0;   ///< phase (a) drain time
  std::uint64_t response_cycles = 0;  ///< phase (b)
  std::uint64_t transfer_cycles = 0;  ///< phase (c)
  std::uint64_t total_cycles = 0;
  std::size_t packets = 0;
  std::uint64_t flit_hops = 0;
  /// Per-router / per-link (N,E,S,W) flit counts over the whole round —
  /// the raw material for the observatory's NoC hotspot heatmaps.
  std::vector<std::uint64_t> router_flits;
  std::vector<std::array<std::uint64_t, 4>> link_flits;
};

/// Flits of one crossbar weight transfer: cells * bits / flit width.
/// 128x128 cells x 16-bit weights over 64-bit flits = 4096 flits.
std::size_t weight_transfer_flits(std::size_t xbar_rows,
                                  std::size_t xbar_cols,
                                  std::size_t bits_per_weight = 16,
                                  std::size_t flit_bits = 64);

/// Simulate the full three-phase protocol on a fresh network.
/// `responders_per_sender` models phase (b) fan-in (tiles that satisfy the
/// remap conditions); the chosen pairs drive phase (c).
RemapTrafficResult simulate_remap_protocol(
    const NocConfig& cfg, const std::vector<NodeId>& senders,
    const std::vector<std::vector<NodeId>>& responders_per_sender,
    const std::vector<RemapPair>& pairs, std::size_t transfer_flits);

/// Epoch-length model for the overhead denominator. One training epoch
/// pushes `images * flits_per_image` flits of activation/gradient traffic;
/// at one flit per cycle per tile injection that lower-bounds the epoch at
/// roughly images * flits_per_image / tiles cycles. We use a calibrated
/// constant matching the PipeLayer-class full-system evaluations the paper
/// cites ([3], [14]).
struct EpochTrafficModel {
  std::uint64_t epoch_noc_cycles = 2'000'000;
};

/// Overhead of one remap round against one epoch, in percent.
double remap_overhead_percent(const RemapTrafficResult& remap,
                              const EpochTrafficModel& epoch);

/// Monte Carlo driver (§IV.C: 50 rounds, random fault sites): each round
/// draws a random sender set and receiver assignment, simulates the
/// protocol, and reports per-round overheads.
struct MonteCarloResult {
  std::vector<double> overhead_percent;  ///< one entry per round
  double mean = 0.0;
  double worst = 0.0;
};
MonteCarloResult monte_carlo_remap_overhead(const NocConfig& cfg,
                                            std::size_t rounds,
                                            std::size_t max_senders,
                                            std::size_t transfer_flits,
                                            const EpochTrafficModel& epoch,
                                            Rng& rng);

}  // namespace noc
}  // namespace remapd
