#include "noc/traffic.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace remapd {
namespace noc {

std::size_t weight_transfer_flits(std::size_t xbar_rows,
                                  std::size_t xbar_cols,
                                  std::size_t bits_per_weight,
                                  std::size_t flit_bits) {
  const std::size_t bits = xbar_rows * xbar_cols * bits_per_weight;
  return (bits + flit_bits - 1) / flit_bits;
}

RemapTrafficResult simulate_remap_protocol(
    const NocConfig& cfg, const std::vector<NodeId>& senders,
    const std::vector<std::vector<NodeId>>& responders_per_sender,
    const std::vector<RemapPair>& pairs, std::size_t transfer_flits) {
  if (senders.size() != responders_per_sender.size())
    throw std::invalid_argument("simulate_remap_protocol: size mismatch");

  REMAPD_TRACE_SPAN("remap-round", "noc");
  Network net(cfg);
  RemapTrafficResult res;

  // Phase (a): broadcast requests from all senders simultaneously.
  for (NodeId s : senders) {
    net.inject(PacketKind::kRemapRequest, s, kBroadcast, 1);
    ++res.packets;
  }
  res.request_cycles = net.run_until_idle();

  // Phase (b): each eligible tile unicasts a response to each sender.
  for (std::size_t i = 0; i < senders.size(); ++i) {
    for (NodeId r : responders_per_sender[i]) {
      if (r == senders[i]) continue;
      net.inject(PacketKind::kRemapResponse, r, senders[i], 1);
      ++res.packets;
    }
  }
  res.response_cycles = net.run_until_idle();

  // Phase (c): bulk weight exchange, both directions per pair, all pairs
  // in flight together (parallel remapping over disjoint paths).
  for (const RemapPair& p : pairs) {
    if (p.sender == p.receiver) continue;
    net.inject(PacketKind::kWeightTransfer, p.sender, p.receiver,
               transfer_flits);
    net.inject(PacketKind::kWeightTransfer, p.receiver, p.sender,
               transfer_flits);
    res.packets += 2;
  }
  res.transfer_cycles = net.run_until_idle();

  res.total_cycles =
      res.request_cycles + res.response_cycles + res.transfer_cycles;
  res.flit_hops = net.flit_hops();
  res.router_flits = net.router_flit_counts();
  res.link_flits = net.link_flit_counts();

  telemetry::count("noc.remap_rounds");
  telemetry::count("noc.remap_packets", res.packets);
  // Simulated NoC cycles of the full three-phase round (the quantity behind
  // the paper's 0.22 % overhead claim), as opposed to the span's wall time.
  telemetry::observe("noc.remap_round_cycles", res.total_cycles);
  return res;
}

double remap_overhead_percent(const RemapTrafficResult& remap,
                              const EpochTrafficModel& epoch) {
  return 100.0 * static_cast<double>(remap.total_cycles) /
         static_cast<double>(epoch.epoch_noc_cycles);
}

MonteCarloResult monte_carlo_remap_overhead(const NocConfig& cfg,
                                            std::size_t rounds,
                                            std::size_t max_senders,
                                            std::size_t transfer_flits,
                                            const EpochTrafficModel& epoch,
                                            Rng& rng) {
  const std::size_t tiles = cfg.geometry.num_tiles();
  MonteCarloResult mc;
  mc.overhead_percent.reserve(rounds);

  for (std::size_t round = 0; round < rounds; ++round) {
    // Random fault sites: 1..max_senders sender tiles.
    const auto n_senders = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(
                               std::min(max_senders, tiles - 1))));
    const auto sender_idx = rng.sample_without_replacement(tiles, n_senders);
    std::vector<NodeId> senders(sender_idx.begin(), sender_idx.end());
    std::vector<bool> is_sender(tiles, false);
    for (NodeId s : senders) is_sender[s] = true;

    // Non-sender tiles respond with probability reflecting the non-uniform
    // fault distribution (most tiles are below the sender's density).
    std::vector<std::vector<NodeId>> responders(senders.size());
    for (std::size_t i = 0; i < senders.size(); ++i)
      for (NodeId t = 0; t < tiles; ++t)
        if (!is_sender[t] && rng.bernoulli(0.5)) responders[i].push_back(t);

    // Each sender picks its nearest responder by hop count (Fig. 3(c));
    // a responder serves at most one sender per round.
    std::vector<bool> taken(tiles, false);
    std::vector<RemapPair> pairs;
    for (std::size_t i = 0; i < senders.size(); ++i) {
      NodeId best = kBroadcast;
      std::size_t best_hops = static_cast<std::size_t>(-1);
      for (NodeId r : responders[i]) {
        if (taken[r]) continue;
        const std::size_t h = cfg.geometry.hop_count(senders[i], r);
        if (h < best_hops) {
          best_hops = h;
          best = r;
        }
      }
      if (best != kBroadcast) {
        taken[best] = true;
        pairs.push_back(RemapPair{senders[i], best});
      }
    }

    const RemapTrafficResult res = simulate_remap_protocol(
        cfg, senders, responders, pairs, transfer_flits);
    mc.overhead_percent.push_back(remap_overhead_percent(res, epoch));
  }

  mc.mean = mean_of(mc.overhead_percent);
  mc.worst = mc.overhead_percent.empty()
                 ? 0.0
                 : *std::max_element(mc.overhead_percent.begin(),
                                     mc.overhead_percent.end());
  return mc;
}

}  // namespace noc
}  // namespace remapd
