#include "noc/router.hpp"

// Router is a plain state holder; the movement logic lives in network.cpp.
// This anchor pins the translation unit for the build.

namespace remapd {
namespace noc {

static_assert(CmeshGeometry::kPorts == 8,
              "c-mesh router: 4 local ports + N/E/S/W");

}  // namespace noc
}  // namespace remapd
