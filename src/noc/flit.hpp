// Packet / flit primitives of the c-mesh NoC simulator (the BookSim
// substitute). Packets are wormhole-switched: a head flit opens a path,
// body flits follow, the tail flit releases it.
#pragma once

#include <cstdint>
#include <vector>

namespace remapd {
namespace noc {

using PacketId = std::uint64_t;
using NodeId = std::size_t;  ///< NoC endpoint (== RCS tile id)

constexpr NodeId kBroadcast = static_cast<NodeId>(-1);

enum class PacketKind : std::uint8_t {
  kRemapRequest,    ///< Fig. 3(a): sender -> all tiles, 1 flit, broadcast
  kRemapResponse,   ///< Fig. 3(b): receiver -> sender, 1 flit, unicast
  kWeightTransfer,  ///< Fig. 3(c): bulk weight exchange, many flits
  kTraining,        ///< background CNN traffic (activations/gradients)
};

const char* packet_kind_name(PacketKind k);

struct Packet {
  PacketId id = 0;
  PacketKind kind = PacketKind::kTraining;
  NodeId src = 0;
  NodeId dst = 0;            ///< kBroadcast for multicast-to-all
  std::size_t length_flits = 1;
  std::uint64_t inject_cycle = 0;
};

/// Delivery record kept by the network for every packet.
struct PacketStats {
  Packet packet;
  std::uint64_t first_delivery_cycle = 0;
  std::uint64_t last_delivery_cycle = 0;  ///< tail at the last destination
  std::size_t deliveries = 0;             ///< destinations fully served
  bool complete = false;

  [[nodiscard]] std::uint64_t latency() const {
    return last_delivery_cycle - packet.inject_cycle;
  }
};

struct Flit {
  PacketId packet = 0;
  std::uint32_t seq = 0;
  bool head = false;
  bool tail = false;
};

}  // namespace noc
}  // namespace remapd
