// Analytic topology comparison backing §III.B.1: the paper adopts a
// concentrated mesh because it "reduces the overall number of routers" and
// improves hop count and energy over a plain mesh [13] while still
// supporting XY-tree multicast.
#pragma once

#include <cstddef>

namespace remapd {
namespace noc {

struct TopologyStats {
  std::size_t routers = 0;
  std::size_t ports_per_router = 0;  ///< locals + N/E/S/W
  double avg_hops = 0.0;   ///< mean router-to-router hops over tile pairs
  std::size_t max_hops = 0;
  std::size_t broadcast_tree_links = 0;  ///< inter-router edges of the
                                         ///< XY broadcast tree
  double relative_router_area = 0.0;     ///< total crossbar-switch area,
                                         ///< arbitrary units (~ports^2)
};

/// Plain mesh: one tile per router, 5-port routers.
TopologyStats analyze_mesh(std::size_t tiles_x, std::size_t tiles_y);

/// Concentrated mesh: 2x2 tile quads per router, 8-port routers (the
/// paper's configuration [13]).
TopologyStats analyze_cmesh(std::size_t tiles_x, std::size_t tiles_y);

}  // namespace noc
}  // namespace remapd
