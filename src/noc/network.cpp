#include "noc/network.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace remapd {
namespace noc {

namespace {

// Process-global NoC instruments, shared by every Network instance and
// cached so the per-flit path costs one branch when telemetry is off.
struct NocTelemetry {
  telemetry::Counter& packets;
  telemetry::Counter& flits;
  telemetry::Counter& hops;
  telemetry::Histogram& latency;
};

NocTelemetry& noc_telemetry() {
  auto& reg = telemetry::Registry::instance();
  static NocTelemetry t{reg.counter("noc.packets_injected"),
                        reg.counter("noc.flits_injected"),
                        reg.counter("noc.flit_hops"),
                        reg.histogram("noc.packet_latency_cycles")};
  return t;
}

}  // namespace

Network::Network(NocConfig cfg) : cfg_(cfg) {
  routers_.reserve(cfg_.geometry.num_routers());
  for (std::size_t r = 0; r < cfg_.geometry.num_routers(); ++r)
    routers_.emplace_back(r);
  inject_queues_.resize(cfg_.geometry.num_tiles());
  router_flits_.assign(cfg_.geometry.num_routers(), 0);
  link_flits_.assign(cfg_.geometry.num_routers(), {0, 0, 0, 0});
}

PacketId Network::inject(PacketKind kind, NodeId src, NodeId dst,
                         std::size_t length_flits) {
  if (src >= cfg_.geometry.num_tiles())
    throw std::invalid_argument("Network::inject: bad src");
  if (dst != kBroadcast && dst >= cfg_.geometry.num_tiles())
    throw std::invalid_argument("Network::inject: bad dst");
  if (length_flits == 0)
    throw std::invalid_argument("Network::inject: empty packet");
  if (dst == src)
    throw std::invalid_argument("Network::inject: src == dst");

  Packet p{next_id_++, kind, src, dst, length_flits, cycle_};
  PacketStats st;
  st.packet = p;
  stats_.emplace(p.id, st);
  ++in_flight_;
  if (telemetry::enabled()) {
    NocTelemetry& telem = noc_telemetry();
    telem.packets.add();
    telem.flits.add(length_flits);
  }

  for (std::size_t i = 0; i < length_flits; ++i) {
    Flit f;
    f.packet = p.id;
    f.seq = static_cast<std::uint32_t>(i);
    f.head = (i == 0);
    f.tail = (i + 1 == length_flits);
    inject_queues_[src].push_back(f);
  }
  return p.id;
}

void Network::step() {
  ++cycle_;
  inject_phase();
  route_phase();
}

void Network::inject_phase() {
  for (std::size_t tile = 0; tile < inject_queues_.size(); ++tile) {
    auto& q = inject_queues_[tile];
    if (q.empty()) continue;
    const std::size_t router = cfg_.geometry.router_of_tile(tile);
    const std::size_t port = cfg_.geometry.local_port_of_tile(tile);
    InputPort& in = routers_[router].in[port];
    if (in.fifo.size() >= cfg_.fifo_depth) continue;
    in.fifo.push_back(BufferedFlit{q.front(), cycle_});
    q.pop_front();
  }
}

void Network::route_phase() {
  for (Router& r : routers_) {
    // Round-robin over input ports for fairness.
    const std::size_t ports = r.in.size();
    for (std::size_t k = 0; k < ports; ++k)
      process_input(r, (r.rr_cursor + k) % ports);
    r.rr_cursor = (r.rr_cursor + 1) % ports;
  }
}

void Network::ensure_route(Router& r, std::size_t port) {
  InputPort& in = r.in[port];
  const BufferedFlit& bf = in.fifo.front();
  const Packet& pkt = stats_.at(bf.flit.packet).packet;

  if (!in.route_valid || in.current_packet != bf.flit.packet) {
    // A new packet's head reached the front: compute its route here.
    in.current_packet = bf.flit.packet;
    if (pkt.dst == kBroadcast)
      in.packet_route = xy_tree_route(cfg_.geometry, r.id, port, pkt.src);
    else
      in.packet_route = {xy_route(cfg_.geometry, r.id, pkt.dst)};
    in.route_valid = true;
    in.pending_outputs = in.packet_route;
  } else if (in.pending_outputs.empty()) {
    // Next flit of the same packet: replicate along the same route.
    in.pending_outputs = in.packet_route;
  }
}

void Network::process_input(Router& r, std::size_t port) {
  InputPort& in = r.in[port];
  if (in.fifo.empty()) return;
  BufferedFlit& bf = in.fifo.front();
  if (bf.arrival_cycle >= cycle_) return;  // arrived this cycle; wait one

  ensure_route(r, port);

  // Try to push the flit through every output that still needs a copy.
  auto& pending = in.pending_outputs;
  for (std::size_t i = 0; i < pending.size();) {
    if (try_send(r, port, pending[i], bf.flit))
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    else
      ++i;
  }
  if (pending.empty()) {
    const bool was_tail = bf.flit.tail;
    in.fifo.pop_front();
    if (was_tail) in.route_valid = false;
  }
}

bool Network::try_send(Router& r, std::size_t in_port, std::size_t out_port,
                       const Flit& f) {
  // Wormhole: an output belongs to one input from head to tail.
  std::size_t& lock = r.out_lock[out_port];
  if (lock != kNoInput && lock != in_port) return false;

  if (out_port < CmeshGeometry::kConcentration) {
    // Ejection to a tile: no backpressure (absorbed by eDRAM).
    const std::size_t tile = cfg_.geometry.tile_at(r.id, out_port);
    if (tile >= cfg_.geometry.num_tiles()) return true;  // edge stub: drop
    record_ejection(tile, f);
    ++router_flits_[r.id];
  } else {
    // Forward to the neighbouring router.
    const RouterCoord rc = cfg_.geometry.coord(r.id);
    std::size_t nx = rc.x, ny = rc.y, nin = 0;
    switch (out_port) {
      case CmeshGeometry::kPortN: ny = rc.y - 1; nin = CmeshGeometry::kPortS; break;
      case CmeshGeometry::kPortS: ny = rc.y + 1; nin = CmeshGeometry::kPortN; break;
      case CmeshGeometry::kPortE: nx = rc.x + 1; nin = CmeshGeometry::kPortW; break;
      case CmeshGeometry::kPortW: nx = rc.x - 1; nin = CmeshGeometry::kPortE; break;
      default: throw std::logic_error("try_send: bad out port");
    }
    Router& nb = routers_[cfg_.geometry.router_at(nx, ny)];
    InputPort& nin_port = nb.in[nin];
    if (nin_port.fifo.size() >= cfg_.fifo_depth) return false;
    nin_port.fifo.push_back(BufferedFlit{f, cycle_});
    ++flit_hops_;
    ++router_flits_[r.id];
    ++link_flits_[r.id][out_port - CmeshGeometry::kConcentration];
    if (telemetry::enabled()) noc_telemetry().hops.add();
  }

  // Manage the wormhole lock: head locks, tail releases.
  if (f.head && !f.tail) lock = in_port;
  if (f.tail) lock = kNoInput;
  return true;
}

void Network::record_ejection(std::size_t tile, const Flit& f) {
  PacketStats& st = stats_.at(f.packet);
  if (!f.tail) return;  // completion tracked at tail arrival
  (void)tile;
  ++st.deliveries;
  if (st.deliveries == 1) st.first_delivery_cycle = cycle_;
  st.last_delivery_cycle = cycle_;

  const std::size_t expected = st.packet.dst == kBroadcast
                                   ? cfg_.geometry.num_tiles() - 1
                                   : 1;
  if (st.deliveries >= expected && !st.complete) {
    st.complete = true;
    --in_flight_;
    if (telemetry::enabled()) noc_telemetry().latency.record(st.latency());
  }
}

bool Network::idle() const {
  for (const auto& q : inject_queues_)
    if (!q.empty()) return false;
  for (const auto& r : routers_)
    if (!r.empty()) return false;
  return true;
}

std::uint64_t Network::run_until_idle(std::uint64_t max_cycles) {
  std::uint64_t executed = 0;
  while (!idle()) {
    if (executed++ >= max_cycles)
      throw std::runtime_error("Network::run_until_idle: timeout (deadlock?)");
    step();
  }
  return executed;
}

const PacketStats& Network::stats(PacketId id) const {
  return stats_.at(id);
}

double Network::mean_latency() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, st] : stats_) {
    if (!st.complete) continue;
    sum += static_cast<double>(st.latency());
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace noc
}  // namespace remapd
