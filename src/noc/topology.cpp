#include "noc/topology.hpp"

#include "noc/multicast.hpp"

namespace remapd {
namespace noc {
namespace {

/// Mean and max Manhattan distance between router positions of all ordered
/// tile pairs, for a grid where tile (x, y) maps to router
/// (x / cx, y / cy).
void pairwise_hops(std::size_t tiles_x, std::size_t tiles_y, std::size_t cx,
                   std::size_t cy, double* avg, std::size_t* max) {
  double sum = 0.0;
  std::size_t count = 0, mx = 0;
  for (std::size_t ay = 0; ay < tiles_y; ++ay)
    for (std::size_t ax = 0; ax < tiles_x; ++ax)
      for (std::size_t by = 0; by < tiles_y; ++by)
        for (std::size_t bx = 0; bx < tiles_x; ++bx) {
          if (ax == bx && ay == by) continue;
          const std::size_t dx = (ax / cx > bx / cx) ? ax / cx - bx / cx
                                                     : bx / cx - ax / cx;
          const std::size_t dy = (ay / cy > by / cy) ? ay / cy - by / cy
                                                     : by / cy - ay / cy;
          sum += static_cast<double>(dx + dy);
          mx = std::max(mx, dx + dy);
          ++count;
        }
  *avg = count ? sum / static_cast<double>(count) : 0.0;
  *max = mx;
}

}  // namespace

TopologyStats analyze_mesh(std::size_t tiles_x, std::size_t tiles_y) {
  TopologyStats s;
  s.routers = tiles_x * tiles_y;
  s.ports_per_router = 5;  // 1 local + N/E/S/W
  pairwise_hops(tiles_x, tiles_y, 1, 1, &s.avg_hops, &s.max_hops);
  // The XY broadcast tree spans every router once: routers - 1 edges.
  s.broadcast_tree_links = s.routers - 1;
  s.relative_router_area =
      static_cast<double>(s.routers) *
      static_cast<double>(s.ports_per_router * s.ports_per_router);
  return s;
}

TopologyStats analyze_cmesh(std::size_t tiles_x, std::size_t tiles_y) {
  TopologyStats s;
  const CmeshGeometry g{tiles_x, tiles_y};
  s.routers = g.num_routers();
  s.ports_per_router = CmeshGeometry::kPorts;
  pairwise_hops(tiles_x, tiles_y, 2, 2, &s.avg_hops, &s.max_hops);
  s.broadcast_tree_links = s.routers - 1;
  s.relative_router_area =
      static_cast<double>(s.routers) *
      static_cast<double>(s.ports_per_router * s.ports_per_router);
  return s;
}

}  // namespace noc
}  // namespace remapd
