#include "area/area_model.hpp"

namespace remapd {

double AreaBreakdown::total_without_bist() const {
  return crossbars + dacs + adcs + sample_holds + shift_adds + registers +
         edram + routers + func_units;
}

double AreaBreakdown::bist_overhead_percent() const {
  const double base = total_without_bist();
  return base > 0.0 ? 100.0 * bist / base : 0.0;
}

AreaBreakdown RcsAreaModel::compute() const {
  const auto& a = cfg_.areas;
  const double xbars =
      static_cast<double>(cfg_.xbars_per_ima * cfg_.imas_per_tile *
                          cfg_.num_tiles);
  const double imas =
      static_cast<double>(cfg_.imas_per_tile * cfg_.num_tiles);
  const double tiles = static_cast<double>(cfg_.num_tiles);
  const double cells = static_cast<double>(cfg_.xbar_rows * cfg_.xbar_cols);

  AreaBreakdown b;
  b.crossbars = xbars * cells * a.xbar_cell;
  b.dacs = xbars * static_cast<double>(cfg_.xbar_rows) * a.dac_1bit;
  b.adcs = xbars * a.adc_8bit;
  b.sample_holds = xbars * static_cast<double>(cfg_.xbar_cols) * a.sample_hold;
  b.shift_adds = xbars * a.shift_add;
  b.registers = xbars *
                static_cast<double>((cfg_.xbar_rows + cfg_.xbar_cols) * 16) *
                a.register_bit;
  b.edram = tiles * static_cast<double>(cfg_.edram_kb_per_tile) *
            a.edram_per_kb;
  b.routers = tiles * a.router;
  b.func_units = tiles * a.func_units;
  // One BIST module per IMA (§III.B.3).
  b.bist = imas * static_cast<double>(cfg_.bist.total_gates()) * a.nand2_gate;
  return b;
}

std::vector<std::pair<std::string, double>> RcsAreaModel::report() const {
  const AreaBreakdown b = compute();
  return {
      {"crossbars", b.crossbars},   {"dacs", b.dacs},
      {"adcs", b.adcs},             {"sample_holds", b.sample_holds},
      {"shift_adds", b.shift_adds}, {"registers", b.registers},
      {"edram", b.edram},           {"routers", b.routers},
      {"func_units", b.func_units}, {"bist", b.bist},
  };
}

}  // namespace remapd
