// Energy/power companion to the area model. Per-event energies follow the
// ISAAC/NeuroSim component family; the model answers the paper's final
// power claim — the remapping traffic adds "less than 0.5 % power overhead"
// — by comparing the remap round's energy against one training epoch's
// compute + on-chip traffic energy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace remapd {

/// Per-event energies in picojoules.
struct ComponentEnergies {
  double xbar_mvm_per_cell = 0.0008;  ///< analog MAC through one cell
  double xbar_write_per_cell = 1.1;   ///< SET/RESET pulse
  double dac_conversion = 0.4;        ///< per row, per MVM
  double adc_conversion = 2.0;        ///< 8-bit sample
  double sh_sample = 0.01;
  double shift_add_op = 0.2;
  double edram_access_per_bit = 0.05;
  double router_per_flit = 5.0;       ///< buffer+crossbar+arbitration
  double link_per_flit_hop = 2.0;     ///< inter-router wire
  double bist_cycle = 0.6;            ///< FSM + counter + comparator
};

/// Workload description of one training epoch on the RCS.
struct EpochWorkload {
  std::size_t mvm_ops = 0;           ///< crossbar MVM invocations
  std::size_t xbar_rows = 128;
  std::size_t xbar_cols = 128;
  std::size_t weight_writes = 0;     ///< full-array weight-update writes
  std::size_t noc_flit_hops = 0;     ///< training traffic volume
  std::size_t edram_bits = 0;        ///< activation buffering
};

struct EnergyBreakdown {
  double compute_pj = 0.0;   ///< MVMs incl. DAC/ADC/S&H/S&A
  double write_pj = 0.0;     ///< weight updates
  double traffic_pj = 0.0;   ///< NoC routers + links
  double buffer_pj = 0.0;    ///< eDRAM
  double bist_pj = 0.0;      ///< per-epoch BIST pass

  [[nodiscard]] double total_pj() const {
    return compute_pj + write_pj + traffic_pj + buffer_pj + bist_pj;
  }
};

class RcsEnergyModel {
 public:
  explicit RcsEnergyModel(ComponentEnergies energies = {})
      : e_(energies) {}

  /// Energy of one training epoch under `workload`, including the per-epoch
  /// BIST pass over `num_crossbars` arrays (`bist_cycles` each).
  [[nodiscard]] EnergyBreakdown epoch_energy(const EpochWorkload& workload,
                                             std::size_t num_crossbars,
                                             std::size_t bist_cycles) const;

  /// Energy of one remap round: `flit_hops` of request/response/transfer
  /// traffic plus rewriting the exchanged weight arrays.
  [[nodiscard]] double remap_energy_pj(std::size_t flit_hops,
                                       std::size_t weight_cells) const;

  /// Remap power overhead in percent against the epoch total.
  [[nodiscard]] double remap_overhead_percent(
      const EnergyBreakdown& epoch, double remap_pj) const;

  [[nodiscard]] const ComponentEnergies& energies() const { return e_; }

 private:
  ComponentEnergies e_;
};

/// Canonical epoch workload for a mapped model: every task performs one MVM
/// per image and one weight write per batch; traffic scales with activation
/// volume. Sized to the paper's full-system evaluation scale.
EpochWorkload canonical_epoch_workload(std::size_t num_tasks,
                                       std::size_t images_per_epoch,
                                       std::size_t batches_per_epoch,
                                       std::size_t xbar_rows,
                                       std::size_t xbar_cols);

}  // namespace remapd
