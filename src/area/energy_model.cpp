#include "area/energy_model.hpp"

namespace remapd {

EnergyBreakdown RcsEnergyModel::epoch_energy(const EpochWorkload& w,
                                             std::size_t num_crossbars,
                                             std::size_t bist_cycles) const {
  EnergyBreakdown b;
  const auto cells = static_cast<double>(w.xbar_rows * w.xbar_cols);
  const auto mvms = static_cast<double>(w.mvm_ops);
  // One MVM drives every row DAC, integrates through the array, samples
  // every column, converts (shared ADC, column-serialized), and reduces.
  b.compute_pj = mvms * (cells * e_.xbar_mvm_per_cell +
                         static_cast<double>(w.xbar_rows) * e_.dac_conversion +
                         static_cast<double>(w.xbar_cols) *
                             (e_.sh_sample + e_.adc_conversion) +
                         e_.shift_add_op * static_cast<double>(w.xbar_cols));
  b.write_pj = static_cast<double>(w.weight_writes) * cells *
               e_.xbar_write_per_cell;
  b.traffic_pj = static_cast<double>(w.noc_flit_hops) *
                 (e_.router_per_flit + e_.link_per_flit_hop);
  b.buffer_pj = static_cast<double>(w.edram_bits) * e_.edram_access_per_bit;
  b.bist_pj = static_cast<double>(num_crossbars) *
              static_cast<double>(bist_cycles) * e_.bist_cycle;
  return b;
}

double RcsEnergyModel::remap_energy_pj(std::size_t flit_hops,
                                       std::size_t weight_cells) const {
  return static_cast<double>(flit_hops) *
             (e_.router_per_flit + e_.link_per_flit_hop) +
         static_cast<double>(weight_cells) * e_.xbar_write_per_cell;
}

double RcsEnergyModel::remap_overhead_percent(const EnergyBreakdown& epoch,
                                              double remap_pj) const {
  const double total = epoch.total_pj();
  return total > 0.0 ? 100.0 * remap_pj / total : 0.0;
}

EpochWorkload canonical_epoch_workload(std::size_t num_tasks,
                                       std::size_t images_per_epoch,
                                       std::size_t batches_per_epoch,
                                       std::size_t xbar_rows,
                                       std::size_t xbar_cols) {
  EpochWorkload w;
  w.xbar_rows = xbar_rows;
  w.xbar_cols = xbar_cols;
  // Each mapped task executes one MVM per image (forward or backward).
  w.mvm_ops = num_tasks * images_per_epoch;
  // Each task's array is rewritten once per batch (weight update).
  w.weight_writes = num_tasks * batches_per_epoch;
  // Every MVM output crosses the NoC once, ~2 hops average, 16-bit values
  // over 64-bit flits.
  w.noc_flit_hops = w.mvm_ops * (xbar_cols * 16 / 64) * 2;
  // Activations buffered in eDRAM on write + read.
  w.edram_bits = w.mvm_ops * xbar_cols * 16 * 2;
  return w;
}

}  // namespace remapd
