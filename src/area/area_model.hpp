// NeuroSim-style analytical area model of the RCS (the substitute for the
// NeuroSim macros the paper uses to cost its BIST hardware).
//
// Analog blocks use published per-instance areas of the ISAAC/NeuroSim
// component family at a 32 nm-class node; digital blocks are estimated from
// NAND2-equivalent gate counts. The claims under test are *ratios* — BIST
// adds ~0.61 % to the RCS area, versus 6.3 % for AN-code ECC [10] and n %
// spare crossbars for Remap-T-n % — so calibrated component proportions,
// not absolute um^2, are what matters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace remapd {

/// Per-instance component areas in um^2.
struct ComponentAreas {
  double xbar_cell = 0.04;        ///< 4F^2-class ReRAM cell, F = 100 nm pitch
  double dac_1bit = 1.7;          ///< per-row input driver DAC
  double adc_8bit = 1200.0;       ///< shared SAR ADC (ISAAC-class)
  double sample_hold = 0.6;       ///< per-column S&H
  double shift_add = 1400.0;      ///< shift-and-add reduction tree
  double register_bit = 0.3;      ///< IO register bit
  double edram_per_kb = 560.0;    ///< tile eDRAM buffer
  double router = 48000.0;        ///< c-mesh NoC router share per tile
  double func_units = 24000.0;    ///< pooling/activation CMOS per tile
  double nand2_gate = 0.4;        ///< NAND2-equivalent digital gate
};

/// Gate-count inventory of the BIST module of Fig. 2(a): a 7-state FSM,
/// the row counter, write-value/flip logic, the fault-density comparator
/// and accumulation registers. All CMOS, shared per IMA.
struct BistInventory {
  std::size_t fsm_gates = 220;        ///< state register + transition logic
  std::size_t counter_gates = 180;    ///< 8-bit row counter ('c' signal)
  std::size_t flip_logic_gates = 160; ///< 1's-complement write-value mux
  std::size_t density_accum_gates = 420;  ///< adder + threshold compare
  std::size_t control_regs_gates = 140;

  [[nodiscard]] std::size_t total_gates() const {
    return fsm_gates + counter_gates + flip_logic_gates +
           density_accum_gates + control_regs_gates;
  }
};

struct RcsAreaConfig {
  std::size_t xbar_rows = 128, xbar_cols = 128;
  std::size_t xbars_per_ima = 4;
  std::size_t imas_per_tile = 2;
  std::size_t num_tiles = 16;
  std::size_t edram_kb_per_tile = 64;
  ComponentAreas areas{};
  BistInventory bist{};
};

struct AreaBreakdown {
  double crossbars = 0.0;
  double dacs = 0.0;
  double adcs = 0.0;
  double sample_holds = 0.0;
  double shift_adds = 0.0;
  double registers = 0.0;
  double edram = 0.0;
  double routers = 0.0;
  double func_units = 0.0;
  double bist = 0.0;

  [[nodiscard]] double total_without_bist() const;
  [[nodiscard]] double total_with_bist() const {
    return total_without_bist() + bist;
  }
  /// BIST area as a percentage of the BIST-free RCS.
  [[nodiscard]] double bist_overhead_percent() const;
};

class RcsAreaModel {
 public:
  explicit RcsAreaModel(RcsAreaConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] AreaBreakdown compute() const;

  /// Baseline overheads for the comparison table of §IV.C.
  /// AN code: 6.3 % (reported by [10] — encoder/decoder + widened ADC).
  [[nodiscard]] static double an_code_overhead_percent() { return 6.3; }
  /// Remap-T-n %: n % spare crossbar capacity.
  [[nodiscard]] static double remap_t_overhead_percent(double n) { return n; }

  /// Human-readable report rows: {component, um^2, share-of-total %}.
  [[nodiscard]] std::vector<std::pair<std::string, double>> report() const;

 private:
  RcsAreaConfig cfg_;
};

}  // namespace remapd
