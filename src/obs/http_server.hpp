// Dependency-free embedded HTTP/1.1 server for live observability
// (`remapd_fleet --serve PORT`): blocking POSIX sockets on one dedicated
// accept thread, one request per connection, GET-only routes.
//
// Design constraints:
//   - Serving must never perturb the simulation: handlers only read
//     published snapshots (fleet::StatusBoard, telemetry::Registry
//     atomics), so a polling client cannot change a scheduling decision or
//     a CSV byte. The server owns no simulation state.
//   - No event loop, no worker pool: observability traffic is one curl or
//     one remapd_top at a time, and a blocking accept loop with a poll()
//     stop-check is the simplest thing that cannot break. Slow clients are
//     bounded by a per-connection socket timeout.
//   - Loopback only: the daemon binds 127.0.0.1 — this is an introspection
//     port, not a public API.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace remapd {
namespace obs {

/// Socket/bind/listen failures at server startup.
class HttpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed request head (no body — the observability surface is GET-only,
/// and request bodies are dropped unread).
struct HttpRequest {
  std::string method;   ///< as sent, e.g. "GET"
  std::string target;   ///< raw request target, e.g. "/status?x=1"
  std::string path;     ///< target up to '?', e.g. "/status"
  std::string query;    ///< after '?', "" when absent
  std::string version;  ///< e.g. "HTTP/1.1"
  /// Header fields in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First value of `name` (lowercase), "" when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse text(std::string body);
  static HttpResponse json(std::string body);
  /// Plain-text error body "<status> <reason>: <what>\n".
  static HttpResponse error(int status, const std::string& what);
};

/// Reason phrase for the status codes this server emits (others: "Unknown").
[[nodiscard]] const char* http_status_reason(int status);

/// Parse a request head (request line + header fields, CRLF or bare-LF
/// separated, up to but not including the blank line). Returns false and
/// fills `error` on malformed input; `out` is then unspecified.
bool parse_http_request(std::string_view head, HttpRequest& out,
                        std::string& error);

/// Serialize a response with Content-Type / Content-Length /
/// Connection: close headers (plus Allow: GET on a 405).
[[nodiscard]] std::string render_http_response(const HttpResponse& r);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();  ///< stops the serving thread if still running
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for an exact path. Must be called before start()
  /// (the route map is read without a lock once the thread is up).
  void route(const std::string& path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned, see port()) and start the
  /// accept thread. Throws HttpError on socket failures. Single-shot.
  void start(std::uint16_t port);

  /// Stop accepting, join the thread, close the socket. Idempotent; also
  /// run by the destructor. In-flight requests finish first.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// The bound port (resolves a requested port of 0), 0 before start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load();
  }

  /// Route a parsed request to its handler: 404 unknown path, 405 (with
  /// Allow: GET) for non-GET methods on a known path, 500 from a throwing
  /// handler. Public so tests can drive routing without sockets.
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& req) const;

 private:
  void serve_loop();
  void handle_connection(int fd) const;

  std::map<std::string, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace obs
}  // namespace remapd
