#include "obs/noc_sampler.hpp"

#include <algorithm>

namespace remapd {
namespace obs {

namespace {

NocEpochUtil& bucket_for(std::vector<NocEpochUtil>& epochs,
                         std::size_t epoch) {
  for (NocEpochUtil& e : epochs)
    if (e.epoch == epoch) return e;
  epochs.emplace_back();
  epochs.back().epoch = epoch;
  return epochs.back();
}

void accumulate(std::vector<std::uint64_t>& into,
                const std::vector<std::uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

void accumulate(std::vector<std::array<std::uint64_t, 4>>& into,
                const std::vector<std::array<std::uint64_t, 4>>& from) {
  if (into.size() < from.size()) into.resize(from.size(), {0, 0, 0, 0});
  for (std::size_t i = 0; i < from.size(); ++i)
    for (std::size_t d = 0; d < 4; ++d) into[i][d] += from[i][d];
}

}  // namespace

void NocUtilizationSampler::record_round(std::size_t epoch,
                                         const noc::RemapTrafficResult& res) {
  NocEpochUtil& b = bucket_for(epochs_, epoch);
  b.cycles += res.total_cycles;
  b.packets += res.packets;
  b.flit_hops += res.flit_hops;
  accumulate(b.router_flits, res.router_flits);
  accumulate(b.link_flits, res.link_flits);
}

std::uint64_t NocUtilizationSampler::cycles_in_epoch(std::size_t epoch) const {
  for (const NocEpochUtil& e : epochs_)
    if (e.epoch == epoch) return e.cycles;
  return 0;
}

noc::RemapTrafficResult simulate_round_traffic(
    const std::vector<RemapAuditRecord>& records, std::size_t first,
    const Rcs& rcs) {
  noc::RemapTrafficResult res;
  if (first >= records.size()) return res;

  // One protocol participant per tile: collapse the crossbar-level audit
  // records onto the tile grid the NoC actually connects.
  std::vector<noc::NodeId> senders;
  std::vector<std::vector<noc::NodeId>> responders;
  std::vector<noc::RemapPair> pairs;
  for (std::size_t i = first; i < records.size(); ++i) {
    const RemapAuditRecord& r = records[i];
    const noc::NodeId s = rcs.tile_of(r.sender);
    senders.push_back(s);
    std::vector<noc::NodeId> resp;
    for (XbarId c : r.candidates) {
      const noc::NodeId t = rcs.tile_of(c);
      if (t == s) continue;
      if (std::find(resp.begin(), resp.end(), t) == resp.end())
        resp.push_back(t);
    }
    responders.push_back(std::move(resp));
    if (r.receiver != kNoReceiver) {
      const noc::NodeId d = rcs.tile_of(r.receiver);
      if (d != s) pairs.push_back(noc::RemapPair{s, d});
    }
  }

  noc::NocConfig cfg;
  cfg.geometry.tiles_x = rcs.config().tiles_x;
  cfg.geometry.tiles_y = rcs.config().tiles_y;
  const std::size_t flits = noc::weight_transfer_flits(
      rcs.config().xbar_rows, rcs.config().xbar_cols);
  return noc::simulate_remap_protocol(cfg, senders, responders, pairs, flits);
}

}  // namespace obs
}  // namespace remapd
