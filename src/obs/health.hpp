// HealthTracker: per-crossbar, per-epoch time-series of the reliability
// state the paper reasons about — ground-truth vs BIST-estimated fault
// density (§III.B.3), the SA0/SA1 split of the clustered fault model
// (§IV.A), endurance wear (array writes), cumulative remap involvement,
// and the task currently assigned. Sampled at every epoch boundary by the
// Observatory; consumed by the JSONL exporter, the summary writer, and
// scripts/plot_results.py.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fault_density_map.hpp"
#include "xbar/mapper.hpp"

namespace remapd {
namespace obs {

/// One crossbar's state at one epoch boundary.
struct HealthSample {
  std::size_t epoch = 0;
  XbarId xbar = 0;
  double true_density = 0.0;   ///< ground truth from the fault model
  double est_density = 0.0;    ///< what BIST (and the policies) see
  std::size_t sa0 = 0;         ///< ground-truth stuck-at-0 cells
  std::size_t sa1 = 0;         ///< ground-truth stuck-at-1 cells
  std::size_t writes = 0;      ///< cumulative array writes (endurance wear)
  std::size_t remaps = 0;      ///< cumulative remap rounds this xbar took part in
  TaskId task = kNoTask;       ///< task currently mapped here (kNoTask: idle)
  Phase phase = Phase::kForward;  ///< valid only when task != kNoTask
};

/// Per-epoch aggregate of the BIST estimation error.
struct HealthEpochStats {
  std::size_t epoch = 0;
  DensityErrorStats est_error{};
  double mean_true_density = 0.0;
  double max_true_density = 0.0;
};

class HealthTracker;

/// Scalar chip-health verdict derived from a HealthTracker time-series —
/// the quantity the fleet scheduler (src/fleet/) thresholds to decide when
/// a job must be live-migrated off a degrading chip.
struct HealthScore {
  /// 1 = pristine, 0 = at/beyond full_scale mean fault density. Blends the
  /// current level with the recent trend (a chip degrading fast scores
  /// below a static chip of the same density).
  double score = 1.0;
  double latest_mean_density = 0.0;  ///< last epoch's mean true density
  double latest_max_density = 0.0;   ///< last epoch's worst crossbar
  double trend_per_epoch = 0.0;      ///< slope of mean density over window
  std::size_t epochs_observed = 0;   ///< samples the verdict is based on
};

/// Health score over the last `window` epoch aggregates of `t` (an empty
/// tracker scores 1.0). `full_scale` is the mean density at which the
/// score reaches 0; the trend term extrapolates `horizon` epochs ahead so
/// a climbing fault density is penalized before it arrives.
[[nodiscard]] HealthScore health_score(const HealthTracker& t,
                                       std::size_t window = 4,
                                       double full_scale = 0.05,
                                       double horizon = 2.0);

class HealthTracker {
 public:
  /// Record one sample per crossbar plus the epoch's estimation-error
  /// aggregate. `cum_remaps` is the per-crossbar cumulative remap count
  /// maintained by the caller (may be empty: all counts read as 0).
  void sample_epoch(std::size_t epoch, const Rcs& rcs,
                    const FaultDensityMap& density, const WeightMapper& mapper,
                    const std::vector<std::size_t>& cum_remaps);

  [[nodiscard]] const std::vector<HealthSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] const std::vector<HealthEpochStats>& epoch_stats() const {
    return epoch_stats_;
  }
  [[nodiscard]] std::size_t epochs_sampled() const {
    return epoch_stats_.size();
  }

  /// The `k` most degraded crossbars (by ground-truth density, ties by
  /// estimated density) among the samples of `epoch`.
  [[nodiscard]] std::vector<HealthSample> top_degraded(std::size_t epoch,
                                                       std::size_t k) const;

  void clear();

 private:
  std::vector<HealthSample> samples_;
  std::vector<HealthEpochStats> epoch_stats_;
};

}  // namespace obs
}  // namespace remapd
