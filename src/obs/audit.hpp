// RemapAuditLog: a structured record of *why* each remap decision was
// taken. The telemetry layer (src/telemetry/) answers "how long / how
// many"; this log answers the paper's §III.B.4 question — which sender
// crossbar asked, which tiles were eligible to respond, which receiver was
// chosen and under which threshold — so a run can be audited offline
// (tools/remapd_report) without re-running it.
//
// Policies append through PolicyContext::audit (nullable: the trainer only
// wires a sink when the reliability observatory is enabled, so the
// disabled-mode cost is one pointer test). Header-only on purpose:
// src/core/ appends records without linking remapd_obs, keeping the
// library layering acyclic (obs sits above core).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "xbar/rcs.hpp"

namespace remapd {
namespace obs {

/// Sentinel receiver for a sender whose request found no eligible
/// responder this round (itself a useful signal: the RCS is saturating).
inline constexpr XbarId kNoReceiver = static_cast<XbarId>(-1);

/// One remap decision (or failed request) by a policy.
struct RemapAuditRecord {
  std::size_t epoch = 0;       ///< epoch of the round (0 for training start)
  std::string policy;          ///< RemapPolicy::name()
  bool at_training_start = false;  ///< round before epoch 0 vs epoch end
  XbarId sender = 0;
  XbarId receiver = kNoReceiver;
  std::vector<XbarId> candidates;  ///< eligible receivers considered
  std::string reason;          ///< eligibility rule that fired, e.g.
                               ///< "density>threshold", "forward-rescue",
                               ///< "static-placement", "no-eligible-receiver"
  double sender_density = 0.0;     ///< BIST estimate driving the decision
  double receiver_density = 0.0;   ///< 0 when no receiver was chosen
  double threshold = 0.0;          ///< threshold the sender crossed
  std::size_t hops = 0;            ///< tile hop distance of the chosen pair
};

/// Append-only in-memory log, drained by the Observatory's exporters.
class RemapAuditLog {
 public:
  void append(RemapAuditRecord rec) { records_.push_back(std::move(rec)); }

  [[nodiscard]] const std::vector<RemapAuditRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Swaps (not failed requests) logged for one epoch-end round. The
  /// training-start round is excluded so the count matches the per-epoch
  /// `remaps` column of the trainer's history.
  [[nodiscard]] std::size_t swaps_in_epoch(std::size_t epoch) const {
    std::size_t n = 0;
    for (const RemapAuditRecord& r : records_)
      if (r.epoch == epoch && !r.at_training_start &&
          r.receiver != kNoReceiver)
        ++n;
    return n;
  }

  void clear() { records_.clear(); }

 private:
  std::vector<RemapAuditRecord> records_;
};

}  // namespace obs
}  // namespace remapd
