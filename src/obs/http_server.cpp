#include "obs/http_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/log.hpp"

namespace remapd {
namespace obs {

namespace {

constexpr std::size_t kMaxHeadBytes = 16 * 1024;
constexpr int kPollIntervalMs = 100;
constexpr int kConnTimeoutSec = 5;

std::string lowercased(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Send all of `data`, ignoring SIGPIPE (a client that hung up mid-write
/// is not an error worth more than dropping the response).
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers)
    if (key == name) return value;
  return "";
}

HttpResponse HttpResponse::text(std::string body) {
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::json(std::string body) {
  HttpResponse r;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::error(int status, const std::string& what) {
  HttpResponse r;
  r.status = status;
  r.body = std::to_string(status) + " " + http_status_reason(status) + ": " +
           what + "\n";
  return r;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

bool parse_http_request(std::string_view head, HttpRequest& out,
                        std::string& error) {
  out = HttpRequest{};
  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t line_end = head.find('\n');
  std::string_view line =
      trim_view(line_end == std::string_view::npos ? head
                                                   : head.substr(0, line_end));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    error = "malformed request line (expected 'METHOD TARGET VERSION')";
    return false;
  }
  out.method = std::string(line.substr(0, sp1));
  out.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trim_view(line.substr(sp2 + 1)));
  if (out.method.empty() || out.target.empty()) {
    error = "empty method or target";
    return false;
  }
  if (out.version.rfind("HTTP/", 0) != 0) {
    error = "bad version '" + out.version + "'";
    return false;
  }
  if (out.target[0] != '/') {
    error = "target must be origin-form (leading '/')";
    return false;
  }
  const std::size_t q = out.target.find('?');
  out.path = out.target.substr(0, q);
  out.query = q == std::string::npos ? "" : out.target.substr(q + 1);

  // Header fields until the blank line.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view field = trim_view(head.substr(pos, eol - pos));
    pos = eol + 1;
    if (field.empty()) break;  // end of head
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      error = "header field without ':' (" + std::string(field) + ")";
      return false;
    }
    out.headers.emplace_back(lowercased(trim_view(field.substr(0, colon))),
                             std::string(trim_view(field.substr(colon + 1))));
  }
  return true;
}

std::string render_http_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    http_status_reason(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  if (r.status == 405) out += "Allow: GET\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& path, Handler handler) {
  if (running_.load())
    throw HttpError("route('" + path + "') after start()");
  routes_[path] = std::move(handler);
}

HttpResponse HttpServer::dispatch(const HttpRequest& req) const {
  const auto it = routes_.find(req.path);
  if (it == routes_.end())
    return HttpResponse::error(404, "no route for " + req.path);
  if (req.method != "GET")
    return HttpResponse::error(405, req.method + " not supported (GET only)");
  try {
    return it->second(req);
  } catch (const std::exception& e) {
    return HttpResponse::error(500, e.what());
  }
}

void HttpServer::start(std::uint16_t port) {
  if (running_.load() || listen_fd_ != -1)
    throw HttpError("start() is single-shot");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw HttpError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw HttpError("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (::listen(fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw HttpError("listen: " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw HttpError("getsockname: " + why);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ != -1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void HttpServer::serve_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_warn("http: poll failed: ", std::strerror(errno));
      break;
    }
    if (ready == 0 || !(pfd.revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    served_.fetch_add(1);
    ::close(conn);
  }
  running_.store(false);
}

void HttpServer::handle_connection(int fd) const {
  timeval tv{kConnTimeoutSec, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string head;
  char buf[2048];
  while (head.size() < kMaxHeadBytes &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // client closed / timed out mid-head
    head.append(buf, static_cast<std::size_t>(n));
  }
  if (head.empty()) return;  // connect-and-close probe: nothing to answer

  HttpRequest req;
  std::string error;
  HttpResponse resp;
  if (!parse_http_request(head, req, error))
    resp = HttpResponse::error(400, error);
  else
    resp = dispatch(req);
  send_all(fd, render_http_response(resp));
}

}  // namespace obs
}  // namespace remapd
