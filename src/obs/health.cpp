#include "obs/health.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace remapd {
namespace obs {

HealthScore health_score(const HealthTracker& t, std::size_t window,
                         double full_scale, double horizon) {
  HealthScore hs;
  const std::vector<HealthEpochStats>& es = t.epoch_stats();
  hs.epochs_observed = std::min(window == 0 ? es.size() : window, es.size());
  if (hs.epochs_observed == 0 || full_scale <= 0.0) return hs;

  const std::size_t begin = es.size() - hs.epochs_observed;
  hs.latest_mean_density = es.back().mean_true_density;
  hs.latest_max_density = es.back().max_true_density;

  if (hs.epochs_observed >= 2) {
    std::vector<double> xs, ys;
    xs.reserve(hs.epochs_observed);
    ys.reserve(hs.epochs_observed);
    for (std::size_t i = begin; i < es.size(); ++i) {
      xs.push_back(static_cast<double>(es[i].epoch));
      ys.push_back(es[i].mean_true_density);
    }
    hs.trend_per_epoch = linear_fit(xs, ys).slope;
  }

  // Score against the density the chip is *headed for*: current level plus
  // the window trend extrapolated `horizon` epochs out (a recovering trend
  // never scores above the current level — remaps move tasks, not faults).
  const double projected =
      hs.latest_mean_density +
      std::max(0.0, hs.trend_per_epoch) * std::max(0.0, horizon);
  hs.score = std::clamp(1.0 - projected / full_scale, 0.0, 1.0);
  return hs;
}

void HealthTracker::sample_epoch(std::size_t epoch, const Rcs& rcs,
                                 const FaultDensityMap& density,
                                 const WeightMapper& mapper,
                                 const std::vector<std::size_t>& cum_remaps) {
  const std::size_t n = rcs.total_crossbars();
  samples_.reserve(samples_.size() + n);

  HealthEpochStats stats;
  stats.epoch = epoch;
  std::vector<double> truth = rcs.fault_densities();
  if (density.size() == truth.size()) stats.est_error = density.error_vs(truth);

  for (XbarId x = 0; x < n; ++x) {
    const Crossbar& xb = rcs.crossbar(x);
    HealthSample s;
    s.epoch = epoch;
    s.xbar = x;
    s.true_density = truth[x];
    s.est_density = x < density.size() ? density.density(x) : 0.0;
    s.sa0 = xb.fault_count(CellFault::kStuckAt0);
    s.sa1 = xb.fault_count(CellFault::kStuckAt1);
    s.writes = xb.array_writes();
    s.remaps = x < cum_remaps.size() ? cum_remaps[x] : 0;
    s.task = mapper.task_on(x);
    if (s.task != kNoTask) s.phase = mapper.task(s.task).phase;
    samples_.push_back(s);

    stats.mean_true_density += s.true_density;
    stats.max_true_density = std::max(stats.max_true_density, s.true_density);
  }
  if (n) stats.mean_true_density /= static_cast<double>(n);
  epoch_stats_.push_back(stats);
}

std::vector<HealthSample> HealthTracker::top_degraded(std::size_t epoch,
                                                      std::size_t k) const {
  std::vector<HealthSample> of_epoch;
  for (const HealthSample& s : samples_)
    if (s.epoch == epoch) of_epoch.push_back(s);
  std::stable_sort(of_epoch.begin(), of_epoch.end(),
                   [](const HealthSample& a, const HealthSample& b) {
                     if (a.true_density != b.true_density)
                       return a.true_density > b.true_density;
                     return a.est_density > b.est_density;
                   });
  if (of_epoch.size() > k) of_epoch.resize(k);
  return of_epoch;
}

void HealthTracker::clear() {
  samples_.clear();
  epoch_stats_.clear();
}

}  // namespace obs
}  // namespace remapd
