// NoC utilization sampler: buckets the per-router / per-link flit counts
// of the simulated remap-protocol rounds (Fig. 3) by epoch, so hotspot
// heatmaps (which routers carry the remap traffic, and over which links)
// are derivable offline from the health JSONL.
//
// The trainer itself models remapping as an instantaneous task swap; when
// the observatory is enabled, each round's three-phase protocol traffic is
// reconstructed from the audit log and replayed flit-by-flit on a fresh
// c-mesh (simulate_round_traffic), which is also where the per-round NoC
// cycle cost in the epoch records comes from.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "noc/traffic.hpp"
#include "obs/audit.hpp"

namespace remapd {
namespace obs {

/// Accumulated remap traffic of one epoch (all rounds of that epoch).
struct NocEpochUtil {
  std::size_t epoch = 0;
  std::uint64_t cycles = 0;   ///< simulated protocol cycles
  std::size_t packets = 0;
  std::uint64_t flit_hops = 0;
  std::vector<std::uint64_t> router_flits;
  std::vector<std::array<std::uint64_t, 4>> link_flits;  ///< N,E,S,W
};

class NocUtilizationSampler {
 public:
  /// Fold one simulated round into the bucket of `epoch` (buckets are
  /// created on first use; rounds of the same epoch accumulate).
  void record_round(std::size_t epoch, const noc::RemapTrafficResult& res);

  [[nodiscard]] const std::vector<NocEpochUtil>& epochs() const {
    return epochs_;
  }
  /// Total cycles recorded for `epoch` (0 when the epoch has no bucket).
  [[nodiscard]] std::uint64_t cycles_in_epoch(std::size_t epoch) const;

  void clear() { epochs_.clear(); }

 private:
  std::vector<NocEpochUtil> epochs_;
};

/// Reconstruct one remap round's protocol traffic from the audit records
/// [first, records.size()) and replay it on a c-mesh matching the RCS tile
/// grid: every sender crossbar's tile broadcasts a request, every candidate
/// tile responds, every chosen pair exchanges weights. Returns a
/// zero-initialized result when the slice holds no records.
noc::RemapTrafficResult simulate_round_traffic(
    const std::vector<RemapAuditRecord>& records, std::size_t first,
    const Rcs& rcs);

}  // namespace obs
}  // namespace remapd
