// The reliability observatory: process-wide collection point for the
// domain-level health data of a training run —
//
//   HealthTracker           per-crossbar, per-epoch time-series
//   RemapAuditLog           one structured record per remap decision
//   NocUtilizationSampler   per-router / per-link remap traffic by epoch
//
// plus the epoch-end report pipeline that renders everything as one JSONL
// stream and a human-readable summary (top-K degraded crossbars, BIST
// estimation error, remap churn, NoC hotspots).
//
// Env wiring (read once at startup by init_from_env, mirroring telemetry):
//   REMAPD_HEALTH=<path>  enable collection; at process exit write the
//                         JSONL stream to <path> and the summary to
//                         <path>.summary.txt ("-" streams both to stdout)
//
// Flush guarantee: when REMAPD_HEALTH is set, the reports are written both
// on normal exit (std::atexit) and on uncaught-exception termination (a
// chained std::set_terminate handler), so a crashing run still leaves its
// health stream behind. With the variable unset, enabled() stays false and
// every call site's cost is one relaxed atomic load.
//
// A process may hold several runs (the benches train many models back to
// back): begin_run() seals the previous run's records and starts a fresh
// "run" group in the stream; `remapd_report` regroups on those lines.
//
// Not thread-safe: the trainer samples from a single thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/audit.hpp"
#include "obs/health.hpp"
#include "obs/noc_sampler.hpp"

namespace remapd {
namespace obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Global observatory on/off gate (relaxed: a gate, not a synchronizer).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Identity of one training run, written as the stream's "run" line.
struct RunInfo {
  std::string model;
  std::string policy;
  std::string dataset;
  std::uint64_t seed = 0;
  std::size_t epochs = 0;
  std::size_t crossbars = 0;
  std::size_t tiles_x = 0;
  std::size_t tiles_y = 0;
  std::size_t xbar_rows = 0;
  std::size_t xbar_cols = 0;
};

/// Per-epoch scalars handed over by the trainer (the same numbers it
/// prints in its results table — the JSONL must reproduce them exactly).
struct EpochObs {
  std::size_t epoch = 0;
  std::size_t remaps = 0;
  std::size_t new_faults = 0;
  std::size_t total_faults = 0;
  float train_loss = 0.0f;
  double test_accuracy = 0.0;
  std::uint64_t bist_cycles = 0;
};

class Observatory {
 public:
  /// Leaky singleton: never destroyed, so the exit/terminate flush can
  /// always read it regardless of static-destruction order.
  static Observatory& instance();

  /// Seal the previous run (if any) and start collecting a new one.
  void begin_run(const RunInfo& info);

  RemapAuditLog& audit() { return audit_; }
  HealthTracker& health() { return health_; }
  NocUtilizationSampler& noc() { return noc_; }
  [[nodiscard]] const RemapAuditLog& audit() const { return audit_; }

  /// Epoch-end hook: folds audit records appended since the last call into
  /// the per-crossbar cumulative remap counts, snapshots every crossbar's
  /// health, and stores the trainer's epoch scalars.
  void sample_epoch(const EpochObs& e, const Rcs& rcs,
                    const FaultDensityMap& density, const WeightMapper& mapper);

  /// Full JSONL stream: sealed runs plus the current one.
  [[nodiscard]] std::string jsonl() const;
  /// Human-readable per-run summary. `top_k` bounds the degraded-crossbar
  /// and hotspot tables.
  [[nodiscard]] std::string summary(std::size_t top_k = 8) const;

  /// Write jsonl() to `path` and summary() to `path`.summary.txt
  /// ("-" streams both to stdout). Returns success of the JSONL write.
  bool write_reports(const std::string& path);

  /// Write the REMAPD_HEALTH-configured reports now (what the atexit and
  /// terminate hooks run). No-op when the variable is unset or nothing
  /// was recorded. Idempotent: rewrites the same files.
  void flush_to_env_path();

  /// Drop everything, including sealed runs (tests).
  void reset();

 private:
  Observatory() = default;
  void seal_current_run();
  [[nodiscard]] std::string render_current_jsonl() const;
  [[nodiscard]] std::string render_current_summary(std::size_t top_k) const;
  [[nodiscard]] bool anything_recorded() const;

  RunInfo info_;
  bool run_active_ = false;
  RemapAuditLog audit_;
  HealthTracker health_;
  NocUtilizationSampler noc_;
  std::vector<EpochObs> epoch_obs_;
  std::vector<std::size_t> cum_remaps_;  ///< per crossbar, both swap ends
  std::size_t audit_consumed_ = 0;
  std::string sealed_jsonl_;
  std::string sealed_summary_;
  std::size_t sealed_runs_ = 0;
};

/// Read REMAPD_HEALTH once; if set, enable collection and register the
/// atexit + terminate flush. Idempotent, runs automatically at static-init
/// time of any binary linking the obs library.
void init_from_env();

}  // namespace obs
}  // namespace remapd
