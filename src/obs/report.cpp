#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>

#include "telemetry/export.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace remapd {
namespace obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

const char* phase_str(const HealthSample& s) {
  if (s.task == kNoTask) return "idle";
  return phase_name(s.phase);
}

/// Task id as a JSON number; idle crossbars get -1 (kNoTask is SIZE_MAX,
/// which a double-based JSON reader would mangle).
long long task_json(TaskId t) {
  return t == kNoTask ? -1 : static_cast<long long>(t);
}

}  // namespace

Observatory& Observatory::instance() {
  static Observatory* inst = new Observatory;  // leaky: see header
  return *inst;
}

void Observatory::begin_run(const RunInfo& info) {
  seal_current_run();
  info_ = info;
  run_active_ = true;
  cum_remaps_.assign(info.crossbars, 0);
}

void Observatory::seal_current_run() {
  const bool empty = !run_active_ && audit_.records().empty() &&
                     epoch_obs_.empty() && health_.samples().empty();
  if (!empty) {
    sealed_jsonl_ += render_current_jsonl();
    sealed_summary_ += render_current_summary(8);
    ++sealed_runs_;
  }
  run_active_ = false;
  audit_.clear();
  health_.clear();
  noc_.clear();
  epoch_obs_.clear();
  cum_remaps_.clear();
  audit_consumed_ = 0;
}

void Observatory::sample_epoch(const EpochObs& e, const Rcs& rcs,
                               const FaultDensityMap& density,
                               const WeightMapper& mapper) {
  if (cum_remaps_.size() < rcs.total_crossbars())
    cum_remaps_.resize(rcs.total_crossbars(), 0);
  const auto& recs = audit_.records();
  for (; audit_consumed_ < recs.size(); ++audit_consumed_) {
    const RemapAuditRecord& r = recs[audit_consumed_];
    if (r.receiver == kNoReceiver) continue;
    if (r.sender < cum_remaps_.size()) ++cum_remaps_[r.sender];
    if (r.receiver < cum_remaps_.size()) ++cum_remaps_[r.receiver];
  }
  health_.sample_epoch(e.epoch, rcs, density, mapper, cum_remaps_);
  epoch_obs_.push_back(e);
}

std::string Observatory::render_current_jsonl() const {
  using telemetry::json_escape;
  std::ostringstream os;

  os << "{\"type\":\"run\",\"model\":\"" << json_escape(info_.model)
     << "\",\"policy\":\"" << json_escape(info_.policy) << "\",\"dataset\":\""
     << json_escape(info_.dataset) << "\",\"seed\":" << info_.seed
     << ",\"epochs\":" << info_.epochs << ",\"crossbars\":" << info_.crossbars
     << ",\"tiles_x\":" << info_.tiles_x << ",\"tiles_y\":" << info_.tiles_y
     << ",\"xbar_rows\":" << info_.xbar_rows
     << ",\"xbar_cols\":" << info_.xbar_cols << "}\n";

  for (const RemapAuditRecord& r : audit_.records()) {
    os << "{\"type\":\"remap\",\"epoch\":" << r.epoch << ",\"round\":\""
       << (r.at_training_start ? "start" : "epoch") << "\",\"policy\":\""
       << json_escape(r.policy) << "\",\"sender\":" << r.sender
       << ",\"receiver\":"
       << (r.receiver == kNoReceiver ? -1
                                     : static_cast<long long>(r.receiver))
       << ",\"candidates\":[";
    for (std::size_t i = 0; i < r.candidates.size(); ++i) {
      if (i) os << ",";
      os << r.candidates[i];
    }
    os << "],\"reason\":\"" << json_escape(r.reason)
       << "\",\"sender_density\":" << fmt(r.sender_density)
       << ",\"receiver_density\":" << fmt(r.receiver_density)
       << ",\"threshold\":" << fmt(r.threshold) << ",\"hops\":" << r.hops
       << "}\n";
  }

  for (const HealthSample& s : health_.samples())
    os << "{\"type\":\"health\",\"epoch\":" << s.epoch
       << ",\"xbar\":" << s.xbar
       << ",\"true_density\":" << fmt(s.true_density)
       << ",\"est_density\":" << fmt(s.est_density) << ",\"sa0\":" << s.sa0
       << ",\"sa1\":" << s.sa1 << ",\"writes\":" << s.writes
       << ",\"remaps\":" << s.remaps << ",\"task\":" << task_json(s.task)
       << ",\"phase\":\"" << phase_str(s) << "\"}\n";

  for (const NocEpochUtil& n : noc_.epochs()) {
    for (std::size_t r = 0; r < n.router_flits.size(); ++r) {
      const auto& links = r < n.link_flits.size()
                              ? n.link_flits[r]
                              : std::array<std::uint64_t, 4>{0, 0, 0, 0};
      os << "{\"type\":\"noc\",\"epoch\":" << n.epoch << ",\"router\":" << r
         << ",\"flits\":" << n.router_flits[r] << ",\"north\":" << links[0]
         << ",\"east\":" << links[1] << ",\"south\":" << links[2]
         << ",\"west\":" << links[3] << "}\n";
    }
  }

  const auto& stats = health_.epoch_stats();
  for (const EpochObs& e : epoch_obs_) {
    const HealthEpochStats* st = nullptr;
    for (const HealthEpochStats& s : stats)
      if (s.epoch == e.epoch) st = &s;
    const NocEpochUtil* nu = nullptr;
    for (const NocEpochUtil& n : noc_.epochs())
      if (n.epoch == e.epoch) nu = &n;
    os << "{\"type\":\"epoch\",\"epoch\":" << e.epoch
       << ",\"remaps\":" << e.remaps << ",\"new_faults\":" << e.new_faults
       << ",\"total_faults\":" << e.total_faults
       << ",\"train_loss\":" << fmt(e.train_loss)
       << ",\"test_accuracy\":" << fmt(e.test_accuracy)
       << ",\"est_mean_abs_err\":" << fmt(st ? st->est_error.mean_abs : 0.0)
       << ",\"est_max_abs_err\":" << fmt(st ? st->est_error.max_abs : 0.0)
       << ",\"bist_cycles\":" << e.bist_cycles
       << ",\"noc_cycles\":" << (nu ? nu->cycles : 0)
       << ",\"noc_packets\":" << (nu ? nu->packets : 0) << "}\n";
  }
  return os.str();
}

std::string Observatory::render_current_summary(std::size_t top_k) const {
  std::ostringstream os;
  char line[256];

  os << "== reliability observatory: run " << sealed_runs_ << " ==\n";
  os << "model=" << info_.model << " policy=" << info_.policy
     << " dataset=" << info_.dataset << " seed=" << info_.seed << " ("
     << info_.crossbars << " crossbars on " << info_.tiles_x << "x"
     << info_.tiles_y << " tiles)\n";

  const auto& stats = health_.epoch_stats();
  if (!stats.empty()) {
    const std::size_t last_epoch = stats.back().epoch;
    os << "\ntop-" << top_k << " degraded crossbars (epoch " << last_epoch
       << ", by true fault density)\n";
    std::snprintf(line, sizeof(line), "%6s %10s %10s %6s %6s %8s %7s %s\n",
                  "xbar", "true_dens", "est_dens", "sa0", "sa1", "writes",
                  "remaps", "task");
    os << line;
    for (const HealthSample& s : health_.top_degraded(last_epoch, top_k)) {
      std::snprintf(line, sizeof(line),
                    "%6zu %10.5f %10.5f %6zu %6zu %8zu %7zu ", s.xbar,
                    s.true_density, s.est_density, s.sa0, s.sa1, s.writes,
                    s.remaps);
      os << line;
      if (s.task == kNoTask)
        os << "idle\n";
      else
        os << "#" << s.task << " (" << phase_name(s.phase) << ")\n";
    }

    os << "\nBIST estimation error (est - true, per crossbar)\n";
    std::snprintf(line, sizeof(line), "%6s %10s %10s %12s\n", "epoch",
                  "mean_abs", "max_abs", "mean_signed");
    os << line;
    for (const HealthEpochStats& s : stats) {
      std::snprintf(line, sizeof(line), "%6zu %10.6f %10.6f %12.6f\n", s.epoch,
                    s.est_error.mean_abs, s.est_error.max_abs,
                    s.est_error.mean_signed);
      os << line;
    }
  }

  // Remap churn: per-epoch swap counts from the audit log plus the
  // most-swapped crossbars over the whole run.
  if (audit_.size()) {
    std::size_t start_swaps = 0, no_receiver = 0;
    for (const RemapAuditRecord& r : audit_.records()) {
      if (r.receiver == kNoReceiver)
        ++no_receiver;
      else if (r.at_training_start)
        ++start_swaps;
    }
    os << "\nremap churn (" << audit_.size() << " audited decisions, "
       << no_receiver << " without an eligible receiver)\n";
    if (start_swaps)
      os << "  training-start placement round: " << start_swaps << " swaps\n";
    for (const EpochObs& e : epoch_obs_) {
      std::snprintf(line, sizeof(line), "  epoch %zu: %zu swaps\n", e.epoch,
                    audit_.swaps_in_epoch(e.epoch));
      os << line;
    }

    std::vector<std::pair<std::size_t, XbarId>> churn;
    for (XbarId x = 0; x < cum_remaps_.size(); ++x)
      if (cum_remaps_[x]) churn.emplace_back(cum_remaps_[x], x);
    std::stable_sort(churn.begin(), churn.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    if (churn.size() > top_k) churn.resize(top_k);
    if (!churn.empty()) {
      os << "  most-remapped crossbars:";
      for (const auto& [n, x] : churn) os << " #" << x << "(" << n << ")";
      os << "\n";
    }
  }

  if (!noc_.epochs().empty()) {
    os << "\nNoC remap traffic\n";
    std::snprintf(line, sizeof(line), "%6s %10s %8s %10s %s\n", "epoch",
                  "cycles", "packets", "flit_hops", "hottest router (flits)");
    os << line;
    for (const NocEpochUtil& n : noc_.epochs()) {
      std::size_t hot = 0;
      std::uint64_t hot_flits = 0;
      for (std::size_t r = 0; r < n.router_flits.size(); ++r)
        if (n.router_flits[r] > hot_flits) {
          hot_flits = n.router_flits[r];
          hot = r;
        }
      std::snprintf(line, sizeof(line),
                    "%6zu %10llu %8zu %10llu r%zu (%llu)\n", n.epoch,
                    static_cast<unsigned long long>(n.cycles), n.packets,
                    static_cast<unsigned long long>(n.flit_hops), hot,
                    static_cast<unsigned long long>(hot_flits));
      os << line;
    }
  }

  os << "\n";
  return os.str();
}

bool Observatory::anything_recorded() const {
  return run_active_ || sealed_runs_ > 0 || audit_.size() > 0 ||
         !health_.samples().empty();
}

std::string Observatory::jsonl() const {
  return sealed_jsonl_ + render_current_jsonl();
}

std::string Observatory::summary(std::size_t top_k) const {
  return sealed_summary_ + render_current_summary(top_k);
}

bool Observatory::write_reports(const std::string& path) {
  // On a resumed run the interrupted leg already wrote its epochs; append
  // this leg's stream rather than truncating them away.
  const bool append = telemetry::resume_append();
  const bool ok = telemetry::write_file(path, jsonl(), append);
  const std::string summary_path = path == "-" ? "-" : path + ".summary.txt";
  telemetry::write_file(summary_path, summary(), append);
  return ok;
}

void Observatory::flush_to_env_path() {
  const std::string path = env_str("REMAPD_HEALTH", "");
  if (path.empty() || !anything_recorded()) return;
  if (write_reports(path))
    log_info("obs: wrote health stream to ", path, " (+ ",
             path == "-" ? "stdout" : path + ".summary.txt", ")");
}

void Observatory::reset() {
  run_active_ = false;
  info_ = RunInfo{};
  audit_.clear();
  health_.clear();
  noc_.clear();
  epoch_obs_.clear();
  cum_remaps_.clear();
  audit_consumed_ = 0;
  sealed_jsonl_.clear();
  sealed_summary_.clear();
  sealed_runs_ = 0;
}

namespace {

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_flush() {
  // Uncaught exception / std::terminate path: persist the health stream
  // before handing over to the previous handler (which aborts).
  Observatory::instance().flush_to_env_path();
  if (g_prev_terminate) g_prev_terminate();
  std::abort();
}

void atexit_flush() { Observatory::instance().flush_to_env_path(); }

}  // namespace

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (env_str("REMAPD_HEALTH", "").empty()) return;
    set_enabled(true);
    std::atexit(atexit_flush);
    g_prev_terminate = std::set_terminate(terminate_flush);
  });
}

namespace {
/// Static-init hook: any binary linking the obs library gets REMAPD_HEALTH
/// wiring without an explicit call (same idiom as telemetry/trace.cpp).
const bool g_env_init = (init_from_env(), true);
}  // namespace

}  // namespace obs
}  // namespace remapd
