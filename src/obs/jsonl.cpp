#include "obs/jsonl.hpp"

#include <cctype>
#include <cstdlib>

namespace remapd {
namespace obs {

namespace {

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;
  std::string err;

  [[nodiscard]] bool done() const { return pos >= s.size(); }
  [[nodiscard]] char peek() const { return s[pos]; }

  void skip_ws() {
    while (!done() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }

  bool fail(const std::string& what) {
    err = what + " at column " + std::to_string(pos + 1);
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (done() || s[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (true) {
      if (done()) return fail("unterminated string");
      const char c = s[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (done()) return fail("dangling escape");
        const char e = s[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            // The writer never emits \u escapes; accept and keep the raw
            // code-unit digits so round-trips stay lossless enough.
            if (pos + 4 > s.size()) return fail("truncated \\u escape");
            out->push_back('?');
            pos += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = pos;
    if (!done() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    bool digits = false;
    auto eat_digits = [&] {
      while (!done() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
        ++pos;
        digits = true;
      }
    };
    eat_digits();
    if (!done() && s[pos] == '.') {
      ++pos;
      eat_digits();
    }
    if (!digits) {
      pos = start;
      return fail("expected number");
    }
    if (!done() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (!done() && (s[pos] == '-' || s[pos] == '+')) ++pos;
      bool exp_digits = false;
      while (!done() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
        ++pos;
        exp_digits = true;
      }
      if (!exp_digits) return fail("bad exponent");
    }
    const std::string lit(s.substr(start, pos - start));
    *out = std::strtod(lit.c_str(), nullptr);
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (done()) return fail("expected value");
    if (peek() == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->str);
    }
    if (peek() == '[') {
      ++pos;
      out->kind = JsonValue::Kind::kArray;
      out->arr.clear();
      skip_ws();
      if (!done() && peek() == ']') {
        ++pos;
        return true;
      }
      while (true) {
        double v = 0.0;
        if (!parse_number(&v)) return false;
        out->arr.push_back(v);
        skip_ws();
        if (done()) return fail("unterminated array");
        if (peek() == ']') {
          ++pos;
          return true;
        }
        if (!expect(',')) return false;
      }
    }
    if (peek() == '{')
      return fail("nested objects are not part of the health stream");
    out->kind = JsonValue::Kind::kNumber;
    return parse_number(&out->num);
  }
};

}  // namespace

bool parse_jsonl_line(std::string_view line, JsonObject* out,
                      std::string* error) {
  Cursor c{line};
  out->clear();
  auto set_error = [&] {
    if (error) *error = c.err;
    return false;
  };

  if (!c.expect('{')) return set_error();
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.pos;
  } else {
    while (true) {
      std::string key;
      if (!c.parse_string(&key)) return set_error();
      if (!c.expect(':')) return set_error();
      JsonValue val;
      if (!c.parse_value(&val)) return set_error();
      (*out)[key] = std::move(val);
      c.skip_ws();
      if (c.done()) {
        c.fail("unterminated object");
        return set_error();
      }
      if (c.peek() == '}') {
        ++c.pos;
        break;
      }
      if (!c.expect(',')) return set_error();
    }
  }
  c.skip_ws();
  if (!c.done()) {
    c.fail("trailing characters after object");
    return set_error();
  }
  return true;
}

double number_or(const JsonObject& obj, const std::string& key,
                 double fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_number()) return fallback;
  return it->second.num;
}

std::string string_or(const JsonObject& obj, const std::string& key,
                      const std::string& fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_string()) return fallback;
  return it->second.str;
}

}  // namespace obs
}  // namespace remapd
