// Minimal JSONL line parser for the health stream written by the
// observatory (obs/report.hpp). Handles exactly the subset the writer
// emits — one flat object per line whose values are strings, numbers, or
// arrays of numbers — and reports the first syntax error with a message,
// which is what lets `remapd_report` (and the CI smoke step) fail loudly
// on a truncated or corrupted stream instead of skipping lines.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace remapd {
namespace obs {

struct JsonValue {
  enum class Kind { kString, kNumber, kArray };
  Kind kind = Kind::kNumber;
  std::string str;
  double num = 0.0;
  std::vector<double> arr;

  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
};

/// One parsed line. Keys are unescaped; insertion order is not preserved.
using JsonObject = std::map<std::string, JsonValue>;

/// Parse one line of health JSONL. Returns false (and sets `*error` when
/// non-null) on any syntax violation: non-object line, trailing garbage,
/// nested objects, booleans/null, or a malformed literal. Blank lines are
/// rejected — callers should skip them before parsing.
bool parse_jsonl_line(std::string_view line, JsonObject* out,
                      std::string* error = nullptr);

/// Convenience accessors with defaults (missing key / wrong kind).
double number_or(const JsonObject& obj, const std::string& key,
                 double fallback);
std::string string_or(const JsonObject& obj, const std::string& key,
                      const std::string& fallback);

}  // namespace obs
}  // namespace remapd
