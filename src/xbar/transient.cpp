#include "xbar/transient.hpp"

#include <algorithm>
#include <atomic>
#include <random>

#include "util/parallel.hpp"

namespace remapd {

std::size_t TransientFaultModel::step_epoch(const Rcs& rcs) {
  const std::size_t n = rcs.total_crossbars();
  if (live_.size() < n) live_.resize(n);
  const std::size_t round = ++rounds_;
  if (!scenario_.enabled || scenario_.upset_rate <= 0.0) return 0;

  std::atomic<std::size_t> injected{0};
  parallel_for(0, n, 1, [&](std::size_t x0, std::size_t x1) {
    std::size_t added = 0;
    for (std::size_t x = x0; x < x1; ++x) {
      const Crossbar& xb = rcs.crossbar(static_cast<XbarId>(x));
      Rng child(Rng::derive_seed(Rng::derive_seed(base_seed_, round), x));
      const double lambda =
          scenario_.upset_rate * static_cast<double>(xb.cell_count());
      std::poisson_distribution<std::size_t> arrivals(lambda);
      const std::size_t count = arrivals(child.engine());
      std::vector<UpsetCell>& upsets = live_[x];
      for (std::size_t k = 0; k < count; ++k) {
        const auto cell = static_cast<std::uint32_t>(child.uniform_int(
            0, static_cast<std::int64_t>(xb.cell_count()) - 1));
        const bool toward_on = child.bernoulli(scenario_.toward_on_fraction);
        const bool pos_half = child.bernoulli(0.5);
        // A strike on a permanently stuck cell changes nothing; a second
        // strike on an already-drifted cell is absorbed by the first.
        const std::size_t r = cell / xb.cols(), c = cell % xb.cols();
        if (xb.fault_at(r, c) != CellFault::kNone) continue;
        const auto same = [cell](const UpsetCell& u) { return u.cell == cell; };
        if (std::any_of(upsets.begin(), upsets.end(), same)) continue;
        upsets.push_back(UpsetCell{
            cell, static_cast<std::uint8_t>(toward_on ? 1 : 0),
            static_cast<std::uint8_t>(pos_half ? PairHalf::kPositive
                                               : PairHalf::kNegative)});
        ++added;
      }
      std::sort(upsets.begin(), upsets.end(),
                [](const UpsetCell& a, const UpsetCell& b) {
                  return a.cell < b.cell;
                });
    }
    injected.fetch_add(added, std::memory_order_relaxed);
  });
  return injected.load();
}

const std::vector<UpsetCell>& TransientFaultModel::upsets_of(XbarId x) const {
  static const std::vector<UpsetCell> kEmpty;
  return x < live_.size() ? live_[x] : kEmpty;
}

std::size_t TransientFaultModel::clear_crossbar(XbarId x) {
  if (x >= live_.size()) return 0;
  const std::size_t n = live_[x].size();
  live_[x].clear();
  return n;
}

std::size_t TransientFaultModel::total_upsets() const {
  std::size_t n = 0;
  for (const auto& v : live_) n += v.size();
  return n;
}

void TransientFaultModel::save_state(ckpt::ByteWriter& w) const {
  w.u64(base_seed_);
  w.u64(rounds_);
  w.u64(live_.size());
  for (const auto& upsets : live_) {
    w.u64(upsets.size());
    for (const UpsetCell& u : upsets) {
      w.u32(u.cell);
      w.u8(u.toward_on);
      w.u8(u.half);
    }
  }
}

void TransientFaultModel::load_state(ckpt::ByteReader& r) {
  base_seed_ = r.u64();
  rounds_ = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  live_.assign(static_cast<std::size_t>(n), {});
  for (auto& upsets : live_) {
    const std::uint64_t count = r.u64();
    upsets.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      UpsetCell u;
      u.cell = r.u32();
      u.toward_on = r.u8();
      u.half = r.u8();
      if (u.toward_on > 1)
        throw ckpt::CheckpointError("transient upset with drift code " +
                                    std::to_string(u.toward_on));
      upsets.push_back(u);
    }
  }
}

}  // namespace remapd
