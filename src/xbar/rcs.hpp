// RCS: the full ReRAM crossbar-based computing system — a grid of tiles
// (NoC endpoints), each holding IMAs of crossbars. Provides global crossbar
// ids (the unit of fault tracking and task mapping) and the tile geometry
// the c-mesh NoC and the remap policies use for hop-count decisions.
#pragma once

#include <cstddef>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "xbar/tile.hpp"

namespace remapd {

/// Global crossbar identifier.
using XbarId = std::size_t;
/// Tile identifier (== NoC endpoint id).
using TileId = std::size_t;

struct RcsConfig {
  std::size_t tiles_x = 4;        ///< tile grid width
  std::size_t tiles_y = 4;        ///< tile grid height
  std::size_t imas_per_tile = 2;
  std::size_t xbars_per_ima = 4;
  std::size_t xbar_rows = 128;
  std::size_t xbar_cols = 128;
  CellParams cell{};

  [[nodiscard]] std::size_t num_tiles() const { return tiles_x * tiles_y; }
  [[nodiscard]] std::size_t xbars_per_tile() const {
    return imas_per_tile * xbars_per_ima;
  }
  [[nodiscard]] std::size_t total_crossbars() const {
    return num_tiles() * xbars_per_tile();
  }

  /// Smallest square-ish RCS with at least `needed` crossbars (tile grid
  /// grows; per-tile composition preserved).
  static RcsConfig sized_for(std::size_t needed_crossbars,
                             std::size_t xbar_rows, std::size_t xbar_cols);
};

class Rcs : public ckpt::Snapshotable {
 public:
  explicit Rcs(RcsConfig cfg);

  [[nodiscard]] const RcsConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_tiles() const { return tiles_.size(); }
  [[nodiscard]] std::size_t total_crossbars() const {
    return cfg_.total_crossbars();
  }

  Tile& tile(TileId t) { return tiles_.at(t); }
  [[nodiscard]] const Tile& tile(TileId t) const { return tiles_.at(t); }

  Crossbar& crossbar(XbarId id);
  [[nodiscard]] const Crossbar& crossbar(XbarId id) const;

  [[nodiscard]] TileId tile_of(XbarId id) const {
    return id / cfg_.xbars_per_tile();
  }
  /// Tile grid coordinates.
  [[nodiscard]] std::pair<std::size_t, std::size_t> tile_xy(TileId t) const {
    return {t % cfg_.tiles_x, t / cfg_.tiles_x};
  }
  /// Manhattan distance between two tiles in the tile grid.
  [[nodiscard]] std::size_t tile_distance(TileId a, TileId b) const;

  /// Ground-truth mean fault density over all crossbars.
  [[nodiscard]] double mean_fault_density() const;
  /// Ground-truth per-crossbar densities, indexed by XbarId.
  [[nodiscard]] std::vector<double> fault_densities() const;

  // Snapshotable: crossbar count + every crossbar's cell state, in XbarId
  // order. load_state requires an identically-configured RCS.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  RcsConfig cfg_;
  std::vector<Tile> tiles_;
};

}  // namespace remapd
