// Tile: multiple IMAs plus an eDRAM buffer and CMOS functional units
// (pooling, activation) — Fig. 1. Tiles are the NoC endpoints and the
// granularity at which the remapping protocol exchanges messages.
#pragma once

#include <vector>

#include "xbar/ima.hpp"

namespace remapd {

class Tile {
 public:
  Tile(std::size_t id, std::size_t num_imas, std::size_t xbars_per_ima,
       std::size_t xbar_rows, std::size_t xbar_cols, CellParams params = {});

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] std::size_t num_imas() const { return imas_.size(); }
  Ima& ima(std::size_t i) { return imas_.at(i); }
  [[nodiscard]] const Ima& ima(std::size_t i) const { return imas_.at(i); }

  [[nodiscard]] std::size_t crossbars_per_tile() const;
  /// Crossbar by tile-local flat index.
  Crossbar& crossbar(std::size_t local_index);
  [[nodiscard]] const Crossbar& crossbar(std::size_t local_index) const;

 private:
  std::size_t id_;
  std::vector<Ima> imas_;
};

}  // namespace remapd
