// A single ReRAM crossbar array: the RCS's basic MVM unit (128x128 in the
// paper). The crossbar tracks per-cell permanent fault state (with sampled
// stuck resistances for the analog model), cumulative write counts (for the
// endurance narrative), and exposes the fault queries the BIST and the
// remapping policies need.
#pragma once

#include <cstddef>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "xbar/cell.hpp"

namespace remapd {

class Crossbar : public ckpt::Snapshotable {
 public:
  Crossbar(std::size_t rows, std::size_t cols, CellParams params = {});

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t cell_count() const { return rows_ * cols_; }
  [[nodiscard]] const CellParams& params() const { return params_; }

  [[nodiscard]] CellFault fault_at(std::size_t r, std::size_t c) const {
    return faults_[r * cols_ + c];
  }
  [[nodiscard]] PairHalf fault_half_at(std::size_t r, std::size_t c) const {
    return halves_[r * cols_ + c];
  }
  /// Stuck resistance of a faulty cell; r_off for healthy cells.
  [[nodiscard]] double stuck_resistance_at(std::size_t r,
                                           std::size_t c) const {
    return stuck_r_[r * cols_ + c];
  }

  /// Mark a cell faulty (idempotent; an existing fault is not re-typed).
  /// Returns true if the cell was newly marked.
  bool inject_fault(std::size_t r, std::size_t c, CellFault type, Rng& rng);

  /// Inject approximately `count` new faults at distinct healthy cells,
  /// SA0:SA1 in the given ratio, uniformly at random. Returns the number
  /// actually injected (saturates when the array runs out of healthy cells).
  std::size_t inject_random_faults(std::size_t count, double sa0_fraction,
                                   Rng& rng);

  /// Clustered injection: faults are spread around `clusters` random
  /// centers with geometric radius decay — modelling the defect clustering
  /// of [16] where ~2/3 of fabrication faults are spatially clustered.
  std::size_t inject_clustered_faults(std::size_t count, double sa0_fraction,
                                      std::size_t clusters, Rng& rng);

  [[nodiscard]] std::size_t fault_count() const { return fault_count_; }
  [[nodiscard]] std::size_t fault_count(CellFault type) const;
  /// Ground-truth fault density in [0, 1].
  [[nodiscard]] double fault_density() const {
    return static_cast<double>(fault_count_) /
           static_cast<double>(cell_count());
  }

  /// All faulty cells as (row, col) pairs.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  faulty_cells() const;

  /// Account writes (one full-array weight update or BIST write pass).
  void record_array_write() { ++array_writes_; }
  [[nodiscard]] std::size_t array_writes() const { return array_writes_; }

  // Level-coded weight storage (quantized-cell mode; DESIGN.md §15).
  // When CellParams::quant is enabled the crossbar additionally stores the
  // discrete level code of every cell — the value the fault models act on
  // (stuck cell = stuck level, transient upset = level flip) and what the
  // checkpoint serializes as a packed-nibble section (~8x smaller than
  // fp32 conductances). Codes are committed by the mapper at view-refresh
  // boundaries; continuous-mode crossbars carry no code storage.
  [[nodiscard]] bool has_codes() const { return code_bits_ != 0; }
  [[nodiscard]] std::size_t code_bits() const { return code_bits_; }
  [[nodiscard]] std::uint8_t code_at(std::size_t r, std::size_t c) const {
    return codes_[r * cols_ + c];
  }
  void set_code(std::size_t r, std::size_t c, std::uint8_t code) {
    codes_[r * cols_ + c] = code;
  }

  // Snapshotable: per-cell fault types / pair halves / stuck resistances
  // plus the fault and write counters. load_state validates dimensions and
  // recounts faults against the stored counter.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

  /// What the `remapd_ckpt` inspector reads out of one serialized
  /// crossbar without constructing it.
  struct SnapshotSummary {
    std::size_t rows = 0, cols = 0;
    std::size_t fault_count = 0, sa0 = 0, sa1 = 0;
    std::size_t array_writes = 0;
    // Level-coded section (zero / empty when the crossbar is continuous).
    std::size_t cell_bits = 0;
    std::size_t coded_bytes = 0;       ///< packed on-disk size of the codes
    std::size_t fp32_equiv_bytes = 0;  ///< what fp32 storage would cost
    std::vector<std::size_t> code_hist;  ///< per-level cell counts
  };
  /// Consume one crossbar's save_state blob from `r` and summarize it.
  static SnapshotSummary summarize_snapshot(ckpt::ByteReader& r);

 private:
  std::size_t rows_, cols_;
  CellParams params_;
  std::vector<CellFault> faults_;
  std::vector<PairHalf> halves_;
  std::vector<double> stuck_r_;
  std::vector<std::uint8_t> codes_;  ///< per-cell level codes (quant mode)
  std::uint8_t code_bits_ = 0;       ///< bits/cell; 0 = continuous
  std::size_t fault_count_ = 0;
  std::size_t array_writes_ = 0;
};

}  // namespace remapd
