// In-situ multiply-accumulate (IMA) unit: a group of crossbars sharing
// input/output registers, DACs, S&H, ADCs, shift-and-add units — and, in
// this work, one BIST module (Fig. 1 / Fig. 2). The peripheral inventory
// feeds the area model; the crossbars carry the fault state.
#pragma once

#include <vector>

#include "xbar/crossbar.hpp"

namespace remapd {

/// Peripheral inventory of one IMA (counts used by the area model).
struct ImaPeripherals {
  std::size_t dacs;            ///< one per crossbar row
  std::size_t adcs;            ///< shared across columns (ISAAC-style)
  std::size_t sample_holds;    ///< one per crossbar column
  std::size_t shift_add_units;
  std::size_t io_register_bits;
  bool has_bist = true;        ///< the paper adds one BIST per IMA
};

class Ima {
 public:
  Ima(std::size_t num_crossbars, std::size_t xbar_rows, std::size_t xbar_cols,
      CellParams params = {});

  [[nodiscard]] std::size_t size() const { return xbars_.size(); }
  Crossbar& crossbar(std::size_t i) { return xbars_.at(i); }
  [[nodiscard]] const Crossbar& crossbar(std::size_t i) const {
    return xbars_.at(i);
  }

  [[nodiscard]] const ImaPeripherals& peripherals() const { return periph_; }

  /// Mean ground-truth fault density over the IMA's crossbars.
  [[nodiscard]] double mean_fault_density() const;

 private:
  std::vector<Crossbar> xbars_;
  ImaPeripherals periph_{};
};

}  // namespace remapd
