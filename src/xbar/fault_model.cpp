#include "xbar/fault_model.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/parallel.hpp"

namespace remapd {

FaultScenario FaultScenario::uniform(double density) {
  FaultScenario s;
  s.enable_pre = true;
  s.high_density_fraction = 1.0;
  s.high_density_lo = s.high_density_hi = density;
  s.low_density_lo = s.low_density_hi = density;
  s.clusters_per_xbar = 0;  // uniform spread
  s.enable_post = false;
  return s;
}

FaultScenario FaultScenario::paper_default() { return FaultScenario{}; }

FaultScenario FaultScenario::paper_default_compressed(
    std::size_t epochs, std::size_t paper_epochs) {
  FaultScenario s;
  if (epochs == 0) epochs = 1;
  s.post_xbar_fraction *= static_cast<double>(paper_epochs) /
                          static_cast<double>(epochs);
  if (s.post_xbar_fraction > 1.0) s.post_xbar_fraction = 1.0;
  return s;
}

FaultScenario FaultScenario::ideal() {
  FaultScenario s;
  s.enable_pre = false;
  s.enable_post = false;
  return s;
}

std::size_t FaultInjector::inject_pre_deployment(Rcs& rcs) {
  if (!scenario_.enable_pre) return 0;
  const std::size_t total = rcs.total_crossbars();
  const auto high_count = static_cast<std::size_t>(
      std::llround(scenario_.high_density_fraction *
                   static_cast<double>(total)));
  const auto high_set = rng_.sample_without_replacement(total, high_count);
  std::vector<bool> is_high(total, false);
  for (std::size_t id : high_set) is_high[id] = true;

  // Each crossbar draws its density and fault pattern from its own child
  // RNG (round 0 = pre-deployment), so the loop parallelizes over disjoint
  // crossbars with patterns that are identical at any thread count. The
  // count is an order-free integer sum, so a relaxed atomic suffices.
  std::atomic<std::size_t> injected{0};
  parallel_for(0, total, 1, [&](std::size_t x0, std::size_t x1) {
    for (XbarId id = x0; id < x1; ++id) {
      Crossbar& xb = rcs.crossbar(id);
      Rng xrng = crossbar_rng(/*round=*/0, id);
      const double density =
          is_high[id]
              ? xrng.uniform(scenario_.high_density_lo,
                             scenario_.high_density_hi)
              : xrng.uniform(scenario_.low_density_lo,
                             scenario_.low_density_hi);
      const auto count = static_cast<std::size_t>(
          std::llround(density * static_cast<double>(xb.cell_count())));
      if (count == 0) continue;
      const std::size_t got =
          scenario_.clusters_per_xbar > 0
              ? xb.inject_clustered_faults(count, scenario_.sa0_fraction,
                                           scenario_.clusters_per_xbar, xrng)
              : xb.inject_random_faults(count, scenario_.sa0_fraction, xrng);
      injected.fetch_add(got, std::memory_order_relaxed);
    }
  });
  return injected.load(std::memory_order_relaxed);
}

std::size_t FaultInjector::inject_post_deployment(Rcs& rcs) {
  if (!scenario_.enable_post) return 0;
  const std::size_t round = ++post_rounds_;  // round 0 is pre-deployment
  if (scenario_.mechanistic_endurance) {
    if (!endurance_initialized_) {
      endurance_model_ = EnduranceModel(scenario_.endurance);
      endurance_initialized_ = true;
    }
    return endurance_model_.advance_epoch(rcs, rng_);
  }
  const std::size_t total = rcs.total_crossbars();
  auto count = static_cast<std::size_t>(std::llround(
      scenario_.post_xbar_fraction * static_cast<double>(total)));
  if (count == 0 && scenario_.post_xbar_fraction > 0.0) count = 1;
  if (count == 0) return 0;

  // Wear-out is write-driven and *sticky*: cells near already-degraded
  // cells fail preferentially (the same physical stress that produced the
  // first faults keeps acting), so crossbars that have started to wear out
  // keep accumulating faults. Selection weight couples accumulated writes
  // with the existing fault count.
  std::vector<double> weight(total);
  for (XbarId id = 0; id < total; ++id) {
    const Crossbar& xb = rcs.crossbar(id);
    weight[id] = (1.0 + static_cast<double>(xb.array_writes())) *
                 (1.0 + static_cast<double>(xb.fault_count()));
  }

  std::vector<XbarId> chosen;
  chosen.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    double sum = 0.0;
    for (double w : weight) sum += w;
    if (sum <= 0.0) break;
    double pick = rng_.uniform(0.0, sum);
    for (XbarId id = 0; id < total; ++id) {
      pick -= weight[id];
      if (pick <= 0.0) {
        chosen.push_back(id);
        weight[id] = 0.0;  // without replacement
        break;
      }
    }
  }

  // The weighted selection above is inherently sequential (tiny) and stays
  // on the shared RNG; the injections themselves are per-crossbar and use
  // round-keyed child RNGs, so they parallelize deterministically.
  std::atomic<std::size_t> injected{0};
  parallel_for(0, chosen.size(), 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t ci = c0; ci < c1; ++ci) {
      const XbarId id = chosen[ci];
      Crossbar& xb = rcs.crossbar(id);
      Rng xrng = crossbar_rng(round, id);
      const auto n = static_cast<std::size_t>(std::llround(
          scenario_.post_cell_fraction *
          static_cast<double>(xb.cell_count())));
      // Post-deployment (endurance) faults are not spatially clustered the
      // way forming defects are — they follow cell usage.
      injected.fetch_add(
          xb.inject_random_faults(std::max<std::size_t>(n, 1),
                                  scenario_.sa0_fraction, xrng),
          std::memory_order_relaxed);
    }
  });
  return injected.load(std::memory_order_relaxed);
}

void FaultInjector::save_state(ckpt::ByteWriter& w) const {
  w.u64(base_seed_);
  w.u64(post_rounds_);
  w.boolean(endurance_initialized_);
  endurance_model_.save_state(w);
}

void FaultInjector::load_state(ckpt::ByteReader& r) {
  base_seed_ = r.u64();
  post_rounds_ = static_cast<std::size_t>(r.u64());
  endurance_initialized_ = r.boolean();
  if (endurance_initialized_)
    endurance_model_ = EnduranceModel(scenario_.endurance);
  endurance_model_.load_state(r);
}

}  // namespace remapd
