#include "xbar/ir_drop.hpp"

namespace remapd {

double ir_path_segments(std::size_t row, std::size_t col, std::size_t rows,
                        std::size_t cols, LineScheme scheme) {
  if (scheme == LineScheme::kSingleSided)
    return static_cast<double>(row + 1) + static_cast<double>(col + 1);
  // Alternating drive: each line's path is the mean of the two directions,
  // (k + 1) and (n - k), which is (n + 1) / 2 independent of k.
  return (static_cast<double>(rows) + 1.0) / 2.0 +
         (static_cast<double>(cols) + 1.0) / 2.0;
}

namespace {

/// Raw (uncalibrated) divider gain for a path of `segments` segments.
double raw_gain(double segments, const IrDropConfig& cfg) {
  const double wire = cfg.wire_ohms_per_cell * segments;
  return cfg.reference_ohms / (cfg.reference_ohms + wire);
}

}  // namespace

double ir_cell_gain(std::size_t row, std::size_t col, std::size_t rows,
                    std::size_t cols, const IrDropConfig& cfg,
                    LineScheme scheme) {
  if (!cfg.enabled()) return 1.0;
  // Calibration reference: the mean path over the array — identical for
  // both schemes ((rows + 1)/2 + (cols + 1)/2 segments), and exactly every
  // alternating-drive cell's own path, so alternating calibrates to 1.
  const double mean_segments = (static_cast<double>(rows) + 1.0) / 2.0 +
                               (static_cast<double>(cols) + 1.0) / 2.0;
  if (scheme == LineScheme::kAlternating) return 1.0;
  return raw_gain(ir_path_segments(row, col, rows, cols, scheme), cfg) /
         raw_gain(mean_segments, cfg);
}

std::vector<float> ir_gain_field(std::size_t rows, std::size_t cols,
                                 const IrDropConfig& cfg, LineScheme scheme) {
  std::vector<float> field(rows * cols, 1.0f);
  if (!cfg.enabled()) return field;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      field[r * cols + c] =
          static_cast<float>(ir_cell_gain(r, c, rows, cols, cfg, scheme));
  return field;
}

}  // namespace remapd
