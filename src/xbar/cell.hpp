// ReRAM cell model. Electrical parameters follow Grossi et al. [4] (the
// fault-behaviour reference the paper uses): a healthy cell switches between
// R_on (LRS) and R_off (HRS); a stuck-at-1 cell is pinned at a low
// resistance in [1.5 kΩ, 3 kΩ]; a stuck-at-0 cell is pinned at a high
// resistance in [0.8 MΩ, 3 MΩ].
#pragma once

#include <cstdint>
#include <stdexcept>

#include "quant/quant.hpp"
#include "util/rng.hpp"

namespace remapd {

enum class CellFault : std::uint8_t {
  kNone = 0,
  kStuckAt0 = 1,  ///< open-ish: pinned at high resistance
  kStuckAt1 = 2,  ///< short-ish: pinned at low resistance
};

/// Electrical constants of the ReRAM technology.
struct CellParams {
  double r_on = 1.0e4;    ///< LRS resistance (Ω), logic "1"
  double r_off = 1.0e6;   ///< HRS resistance (Ω), logic "0"
  double sa1_r_lo = 1.5e3;  ///< stuck-at-1 resistance band [4]
  double sa1_r_hi = 3.0e3;
  double sa0_r_lo = 0.8e6;  ///< stuck-at-0 resistance band [4]
  double sa0_r_hi = 3.0e6;
  double read_voltage = 0.3;  ///< BIST read voltage (V)

  /// Conductance precision model (disabled = continuous, the historical
  /// behaviour). Rides here so RCS sizing, the fault models, and the
  /// mapper all see the level grid without extra plumbing.
  QuantSpec quant{};

  /// Sample a stuck resistance for a fault of the given type. Callers
  /// must pass a real fault: kNone used to silently alias HRS here, which
  /// would let a future enum value masquerade as a stuck-at-0 cell.
  [[nodiscard]] double sample_stuck_resistance(CellFault f, Rng& rng) const {
    switch (f) {
      case CellFault::kStuckAt1: return rng.uniform(sa1_r_lo, sa1_r_hi);
      case CellFault::kStuckAt0: return rng.uniform(sa0_r_lo, sa0_r_hi);
      case CellFault::kNone: break;
    }
    throw std::invalid_argument(
        "CellParams::sample_stuck_resistance: not a stuck fault");
  }

  /// Nominal (mid-band) stuck resistance, used by BIST calibration.
  /// Like sample_stuck_resistance, only real faults are accepted.
  [[nodiscard]] double nominal_stuck_resistance(CellFault f) const {
    switch (f) {
      case CellFault::kStuckAt1: return 0.5 * (sa1_r_lo + sa1_r_hi);
      case CellFault::kStuckAt0: return 0.5 * (sa0_r_lo + sa0_r_hi);
      case CellFault::kNone: break;
    }
    throw std::invalid_argument(
        "CellParams::nominal_stuck_resistance: not a stuck fault");
  }
};

/// Which device of the differential weight pair a fault hits. The mapper
/// stores each logical weight as a (G+, G-) pair; the fault injector tags
/// every fault with the half it lands in.
enum class PairHalf : std::uint8_t { kPositive = 0, kNegative = 1 };

}  // namespace remapd
