// Mechanistic write-endurance model — the physical story behind the
// paper's post-deployment faults ("limited write endurance of ReRAMs"
// [4]), as an alternative to the phenomenological (m, n)-per-epoch
// scenario.
//
// Each cell's lifetime (in array write cycles) follows a Weibull
// distribution with shape k > 1 (wear-out: hazard grows with accumulated
// writes). Rather than sampling per-cell lifetimes, the model tracks each
// crossbar's write count and converts the Weibull hazard over the last
// epoch into a binomial draw of newly-failed cells — statistically
// identical for the small failure fractions involved, and O(crossbars)
// instead of O(cells).
//
// Because fault arrivals derive from *actual* write counts, crossbars that
// are written more (mapped vs idle; BIST passes included) genuinely wear
// faster — the paper's non-uniform wear emerges instead of being assumed.
#pragma once

#include "xbar/rcs.hpp"

namespace remapd {

struct EnduranceConfig {
  /// Weibull shape; > 1 gives an increasing hazard (wear-out regime).
  double weibull_shape = 3.0;
  /// Characteristic lifetime in array writes. Real ReRAM endures 1e6-1e9
  /// writes over months of training; our scaled runs compress the horizon
  /// so that the *fraction* of cells failing during training matches the
  /// paper's cumulative post-deployment exposure (~0.25 % on written
  /// arrays).
  double characteristic_writes = 400.0;
  /// End-of-life state: worn cells overwhelmingly fail toward the
  /// high-resistance (SA0) state, as in the pre-deployment 9:1 ratio.
  double sa0_fraction = 0.9;
};

class EnduranceModel : public ckpt::Snapshotable {
 public:
  explicit EnduranceModel(EnduranceConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const EnduranceConfig& config() const { return cfg_; }

  /// Weibull CDF: probability a cell has failed by `writes` array writes.
  [[nodiscard]] double failure_cdf(double writes) const;

  /// Probability a cell that survived `w0` writes fails by `w1` writes
  /// (the per-epoch conditional hazard).
  [[nodiscard]] double interval_failure_probability(double w0,
                                                    double w1) const;

  /// Advance one epoch: for each crossbar, convert the write count
  /// accumulated since the last call into newly-failed cells. Returns the
  /// number of faults injected.
  std::size_t advance_epoch(Rcs& rcs, Rng& rng);

  // Snapshotable: the per-crossbar write counts seen at the last
  // advance_epoch call (the w0 baseline of the conditional hazard).
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  EnduranceConfig cfg_;
  std::vector<std::size_t> writes_seen_;  ///< per-crossbar, last call
};

}  // namespace remapd
