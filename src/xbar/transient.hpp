// Transient soft-error (conductance upset) model.
//
// Permanent stuck-at faults (xbar/fault_model.hpp) are device *failures*:
// once a cell breaks it stays broken, and a march-style BIST finds it.
// Transient upsets are a different physics (Khezeli & Zarandi,
// arXiv:2412.03089): radiation strikes, read/write disturbs and
// random-telegraph-noise drift flip a healthy cell's *stored conductance*
// without damaging the device. The cell still programs correctly — but
// until somebody verifies and rewrites it, the array computes with the
// drifted value. Three consequences shape the model:
//
//  * arrivals are memoryless in time: each crossbar accrues a
//    Poisson-distributed number of new upsets per epoch;
//  * blind SGD write pulses do NOT clear an upset here (worst-case
//    assumption: incremental +/- delta pulses move the drifted conductance
//    by the same delta instead of re-anchoring it), and the stuck-at BIST
//    is oblivious — its march patterns rewrite the array, but detection
//    targets manufacturing faults, not stored data. Only an explicit
//    verify-and-rewrite pass (the detect-and-refresh policy) removes one;
//  * a refreshed cell is fully healthy again — no permanent damage.
//
// While live, an upset pins the cell at full-scale conductance (toward G_on
// or G_off), so it enters the layer arithmetic through the same
// WeightClamp mechanism as a stuck-at fault; the WeightMapper merges live
// upsets into every FaultView it builds.
//
// Determinism contract (same as FaultInjector): each (round, crossbar)
// draws from a child RNG derived statelessly from a base seed via
// Rng::derive_seed, so the upset schedule is bitwise identical for any
// REMAPD_THREADS and across checkpoint resume (the base seed and the full
// live-upset state are Snapshotable).
#pragma once

#include <cstdint>
#include <vector>

#include "xbar/rcs.hpp"

namespace remapd {

struct TransientScenario {
  bool enabled = false;
  /// Poisson mean of new upsets per crossbar per epoch, as a fraction of
  /// the crossbar's cell count (lambda = upset_rate * cells).
  double upset_rate = 0.002;
  /// Fraction of upsets drifting toward G_on (reads as +full-scale in the
  /// single-array mapping); the rest drift toward G_off.
  double toward_on_fraction = 0.5;
};

/// One live (undetected, unrefreshed) conductance upset.
struct UpsetCell {
  std::uint32_t cell = 0;    ///< flattened row * cols + col within the array
  std::uint8_t toward_on = 0;  ///< 1: drifted to G_on, 0: to G_off
  std::uint8_t half = 0;       ///< differential-pair half (PairHalf code)
};

class TransientFaultModel : public ckpt::Snapshotable {
 public:
  /// Draws the base seed from `rng` (one engine call), like FaultInjector.
  TransientFaultModel(TransientScenario scenario, Rng& rng)
      : scenario_(scenario), base_seed_(rng.engine()()) {}

  [[nodiscard]] const TransientScenario& scenario() const { return scenario_; }

  /// Accrue one epoch of Poisson upset arrivals on every crossbar of `rcs`
  /// (parallel over crossbars, deterministic per the contract above).
  /// Cells that are permanently faulty or already upset are skipped.
  /// Returns the number of new upsets.
  std::size_t step_epoch(const Rcs& rcs);

  /// Live upsets on one crossbar, sorted by cell index.
  [[nodiscard]] const std::vector<UpsetCell>& upsets_of(XbarId x) const;

  /// Verify-and-rewrite: clear every live upset on `x`. Returns how many
  /// cells were refreshed.
  std::size_t clear_crossbar(XbarId x);

  /// Live upsets across the whole RCS.
  [[nodiscard]] std::size_t total_upsets() const;
  /// Completed arrival rounds (== epochs stepped).
  [[nodiscard]] std::size_t rounds() const { return rounds_; }

  // Snapshotable: base seed, completed rounds, and every live upset.
  // Restoring reproduces both the remaining arrival schedule and the
  // exact set of drifted cells the interrupted run computed with.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  TransientScenario scenario_;
  std::uint64_t base_seed_;  ///< drawn once from the trainer RNG
  std::size_t rounds_ = 0;
  /// Live upsets per crossbar, each vector sorted by cell index. Sized on
  /// first step / first query.
  std::vector<std::vector<UpsetCell>> live_;
};

}  // namespace remapd
