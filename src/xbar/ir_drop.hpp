// Line-resistance (IR-drop) model of a crossbar.
//
// The ideal-crossbar assumption treats word/bit lines as perfect
// conductors; in a real array every segment between two adjacent cells has
// a finite wire resistance, so the effective read path of cell (i, j) grows
// with its distance from the row driver and the column sense amplifier.
// The farther a cell sits from the periphery, the more wire is in series
// with it and the smaller its current contribution — a *position-dependent*
// attenuation of the stored weight (X-CHANGR, arXiv:1907.00285).
//
// The model here is the standard first-order linearization: cell (i, j)
// sees an extra series resistance of `wire_ohms_per_cell * segments(i, j)`
// where segments counts the wire segments on its drive + sense path, and
// its contribution is scaled by
//
//   gain(i, j) = g(segments(i, j)) / g(mean segments),
//   g(s) = R_ref / (R_ref + wire_ohms_per_cell * s)
//
// with R_ref a representative cell resistance (R_on — the low-resistance
// state dominates the voltage divider in the worst case). The division
// models the one knob the periphery always has: the ADC full-scale /
// sense-amp reference is calibrated to the array's *mean* path once at
// bring-up, so a uniform attenuation is invisible and only the *residual
// position spread* around the mean reaches the arithmetic. This ignores
// sneak paths and the current-dependence of the drop (all-rows-driven BIST
// reads keep the raw, uncalibrated physics — see analog/column_current.*),
// but reproduces the two properties the mitigation literature relies on:
//
//  * single-sided drive: calibrated gain decays monotonically from > 1 at
//    the driven corner to < 1 at the far corner — a spread no single
//    calibration constant can remove, and the forward and backward copies
//    of a weight (stored transposed on different crossbars) see
//    *different* gains, corrupting gradients;
//  * alternating (X-CHANGR-style) drive: driving lines from alternating /
//    both sides equalizes every cell's path to exactly the mean, so the
//    calibrated gain field is identically 1 — ideal-interconnect
//    arithmetic, bit for bit.
//
// Lives in src/xbar (not src/analog) because the WeightMapper folds these
// gains into every FaultView; the analog BIST current model layers the same
// config onto its Kirchhoff sums in analog/column_current.*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace remapd {

/// How word/bit lines are driven / sensed.
enum class LineScheme : std::uint8_t {
  kSingleSided = 0,  ///< all drivers on one edge: monotone position gain
  kAlternating = 1,  ///< X-CHANGR alternating drive: uniform average gain
};

[[nodiscard]] constexpr const char* line_scheme_name(LineScheme s) {
  return s == LineScheme::kSingleSided ? "single-sided" : "alternating";
}

struct IrDropConfig {
  /// Series wire resistance per cell-to-cell segment, in ohms. 0 disables
  /// the model entirely (ideal interconnect — the pre-scenario default).
  double wire_ohms_per_cell = 0.0;
  /// Representative cell resistance for the gain linearization (R_on: the
  /// low-resistance state draws the most current and sees the worst drop).
  double reference_ohms = 1.0e4;

  [[nodiscard]] bool enabled() const { return wire_ohms_per_cell > 0.0; }
};

/// Wire segments in series with cell (row, col) of a rows x cols array.
/// Single-sided: the row line is driven from the col-0 edge and the bit
/// line sensed at the row-0 edge, so the path grows with both indices.
/// Alternating: the average over both drive directions per line — a
/// position-independent constant ((rows + 1)/2 + (cols + 1)/2).
[[nodiscard]] double ir_path_segments(std::size_t row, std::size_t col,
                                      std::size_t rows, std::size_t cols,
                                      LineScheme scheme);

/// Calibrated gain of cell (row, col)'s contribution: the raw path gain
/// divided by the mean-path gain the periphery calibrates its full-scale
/// to. 1.0 exactly when the model is off or the scheme is alternating;
/// spread around 1.0 (driven corner > 1, far corner < 1) single-sided.
[[nodiscard]] double ir_cell_gain(std::size_t row, std::size_t col,
                                  std::size_t rows, std::size_t cols,
                                  const IrDropConfig& cfg, LineScheme scheme);

/// Dense row-major rows x cols field of ir_cell_gain values.
[[nodiscard]] std::vector<float> ir_gain_field(std::size_t rows,
                                               std::size_t cols,
                                               const IrDropConfig& cfg,
                                               LineScheme scheme);

}  // namespace remapd
