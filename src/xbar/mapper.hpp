// WeightMapper: tiles every layer's weight matrix into crossbar-sized
// blocks and assigns each block ("task") to a physical crossbar of the RCS.
//
// Training accelerators in the PipeLayer/ISAAC family keep two physical
// copies of each weight block: the forward copy (computes y = W x) and the
// backward copy (stores W^T, computes dx = W^T dy). Both are tasks in the
// paper's sense — "the computations associated with a CNN layer which are
// executed on a ReRAM crossbar" — and both are mapped here, to distinct
// crossbars.
//
// The mapper owns the task->crossbar assignment (mutable: remapping swaps
// it) and builds the per-layer FaultViews that couple each physical
// crossbar's stuck cells into the layer arithmetic (see nn/fault_view.hpp).
#pragma once

#include <optional>
#include <vector>

#include "nn/fault_view.hpp"
#include "xbar/ir_drop.hpp"
#include "xbar/rcs.hpp"

namespace remapd {

class TransientFaultModel;  // xbar/transient.hpp

enum class Phase : std::uint8_t { kForward = 0, kBackward = 1 };

[[nodiscard]] constexpr const char* phase_name(Phase p) {
  return p == Phase::kForward ? "forward" : "backward";
}

using TaskId = std::size_t;
constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

/// One crossbar-sized block of a layer's (possibly transposed) weights.
struct WeightBlock {
  std::size_t layer;   ///< index into the model's faultable-layer list
  Phase phase;
  std::size_t row0, col0;  ///< offset in the stored matrix (W or W^T)
  std::size_t rows, cols;  ///< extent (<= crossbar dimensions)
};

/// Whether a block covers element (w_row, w_col) of the layer's weight
/// matrix W (accounting for the transposed storage of backward blocks).
[[nodiscard]] constexpr bool block_covers(const WeightBlock& blk,
                                          std::size_t w_row,
                                          std::size_t w_col) {
  if (blk.phase == Phase::kForward)
    return w_row >= blk.row0 && w_row < blk.row0 + blk.rows &&
           w_col >= blk.col0 && w_col < blk.col0 + blk.cols;
  return w_row >= blk.col0 && w_row < blk.col0 + blk.cols &&
         w_col >= blk.row0 && w_col < blk.row0 + blk.rows;
}

class WeightMapper : public ckpt::Snapshotable {
 public:
  /// `rcs` must outlive the mapper; crossbars must be square.
  explicit WeightMapper(Rcs& rcs);

  /// Tile `layer_dims[i] = (rows, cols)` of every faultable layer into
  /// forward + backward tasks and assign them to crossbars in id order.
  /// Throws if the RCS has fewer crossbars than tasks.
  void map_layers(const std::vector<std::pair<std::size_t, std::size_t>>&
                      layer_dims);

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] const WeightBlock& task(TaskId t) const {
    return tasks_.at(t);
  }
  [[nodiscard]] XbarId xbar_of(TaskId t) const { return task_to_xbar_.at(t); }
  /// Task currently on a crossbar, or kNoTask when idle.
  [[nodiscard]] TaskId task_on(XbarId x) const { return xbar_to_task_.at(x); }

  /// Exchange the crossbars of two tasks, or move a task to an idle
  /// crossbar (the remapping primitive — Fig. 3(c) weight exchange).
  void swap_tasks(TaskId a, XbarId target_xbar);

  /// Crossbar ids currently holding tasks of a phase.
  [[nodiscard]] std::vector<XbarId> xbars_of_phase(Phase p) const;
  /// All crossbar ids holding any task.
  [[nodiscard]] std::vector<XbarId> mapped_xbars() const;

  /// Union of fault clamps over all blocks of `layer` in `phase`, using
  /// each block's currently assigned crossbar. `w_max` is the layer's
  /// conductance full-scale (typically max |w| at write time). Live
  /// transient upsets (set_transients) are merged as clamps; an enabled
  /// IR-drop config (set_ir_drop) additionally populates the view's
  /// position-gain field under the current line scheme.
  [[nodiscard]] FaultView build_fault_view(
      std::size_t layer, Phase phase, float w_max,
      MappingMode mode = MappingMode::kSingleArrayBias) const;

  /// Couple a transient-fault model into every subsequently built view
  /// (nullptr detaches). The model must outlive the mapper.
  void set_transients(const TransientFaultModel* transients) {
    transients_ = transients;
  }
  /// Interconnect parasitics for subsequently built views.
  void set_ir_drop(const IrDropConfig& cfg) { ir_drop_ = cfg; }
  [[nodiscard]] const IrDropConfig& ir_drop() const { return ir_drop_; }
  /// Line-drive scheme (the X-CHANGR mitigation flips this to
  /// kAlternating). Survives checkpoints via save_state.
  void set_line_scheme(LineScheme scheme) { line_scheme_ = scheme; }
  [[nodiscard]] LineScheme line_scheme() const { return line_scheme_; }

  /// Ground-truth fault count that lands inside the occupied extent of the
  /// crossbar currently holding `t` (the portion that perturbs weights).
  [[nodiscard]] std::size_t effective_fault_count(TaskId t) const;

  /// Hop distance (tile Manhattan) between the tiles of two crossbars.
  [[nodiscard]] std::size_t hop_distance(XbarId a, XbarId b) const {
    return rcs_->tile_distance(rcs_->tile_of(a), rcs_->tile_of(b));
  }

  /// Account one weight-update write pass on every mapped crossbar
  /// (endurance bookkeeping driving post-deployment wear-out bias).
  void record_weight_update();

  /// Flat indices (into the layer's W storage) of every weight element of
  /// task `t`, in fixed cell-row-major order — the per-crossbar write
  /// order of the stochastic programmer. Depends only on the block
  /// geometry (never on the crossbar assignment), so callers may cache
  /// the result across remaps.
  [[nodiscard]] std::vector<std::uint32_t> task_weight_indices(
      TaskId t) const;

  /// Commit the level codes of every crossbar holding a task of `layer`
  /// (both phases) from the layer's current weights: code = nearest level
  /// of w on the L-level grid spanning [-w_max, +w_max]. No-op on
  /// continuous crossbars. Idempotent for fixed (weights, w_max) — called
  /// at every view-refresh boundary, including the re-refresh after a
  /// checkpoint resume.
  void commit_level_codes(std::size_t layer, const float* w, float w_max);

  [[nodiscard]] Rcs& rcs() { return *rcs_; }
  [[nodiscard]] const Rcs& rcs() const { return *rcs_; }

  /// Dimensions (rows, cols) of layer `l`'s weight matrix as mapped.
  [[nodiscard]] const std::pair<std::size_t, std::size_t>& layer_dims(
      std::size_t l) const {
    return layer_dims_.at(l);
  }

  // Snapshotable: every task's block geometry plus its current crossbar
  // assignment (the swaps Remap-D has performed live here), followed by
  // the line-drive scheme (a policy decision that must survive resume
  // because on_training_start is skipped then). load_state verifies the
  // stored blocks match the mapped model task-for-task, then applies the
  // assignment and rebuilds the inverse map.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

  /// One row of the serialized task map, as read back by the
  /// `remapd_ckpt` inspector without reconstructing a mapper.
  struct TaskMapEntry {
    std::size_t layer = 0;
    Phase phase = Phase::kForward;
    std::size_t row0 = 0, col0 = 0, rows = 0, cols = 0;
    XbarId xbar = 0;
  };
  /// Parse a full save_state blob into inspector rows (the trailing line
  /// scheme is consumed and returned through `scheme` when non-null).
  static std::vector<TaskMapEntry> read_task_map(ckpt::ByteReader& r,
                                                 LineScheme* scheme = nullptr);

 private:
  /// Flat W-storage index of crossbar cell (r, c) of `blk` (transposing
  /// back for backward tasks) — the single indexing convention shared by
  /// view building, code commits, and the programmer's write order.
  [[nodiscard]] std::size_t weight_flat_index(const WeightBlock& blk,
                                              std::size_t r,
                                              std::size_t c) const;

  Rcs* rcs_;
  std::vector<std::pair<std::size_t, std::size_t>> layer_dims_;
  std::vector<WeightBlock> tasks_;
  std::vector<XbarId> task_to_xbar_;
  std::vector<TaskId> xbar_to_task_;
  const TransientFaultModel* transients_ = nullptr;
  IrDropConfig ir_drop_{};
  LineScheme line_scheme_ = LineScheme::kSingleSided;
};

}  // namespace remapd
