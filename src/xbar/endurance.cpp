#include "xbar/endurance.hpp"

#include <cmath>

namespace remapd {

double EnduranceModel::failure_cdf(double writes) const {
  if (writes <= 0.0) return 0.0;
  return 1.0 -
         std::exp(-std::pow(writes / cfg_.characteristic_writes,
                            cfg_.weibull_shape));
}

double EnduranceModel::interval_failure_probability(double w0,
                                                    double w1) const {
  const double s0 = 1.0 - failure_cdf(w0);
  if (s0 <= 0.0) return 1.0;
  const double s1 = 1.0 - failure_cdf(w1);
  return 1.0 - s1 / s0;
}

std::size_t EnduranceModel::advance_epoch(Rcs& rcs, Rng& rng) {
  if (writes_seen_.size() != rcs.total_crossbars())
    writes_seen_.assign(rcs.total_crossbars(), 0);

  std::size_t injected = 0;
  for (XbarId id = 0; id < rcs.total_crossbars(); ++id) {
    Crossbar& xb = rcs.crossbar(id);
    const std::size_t w1 = xb.array_writes();
    const std::size_t w0 = writes_seen_[id];
    writes_seen_[id] = w1;
    if (w1 <= w0) continue;

    const double p = interval_failure_probability(static_cast<double>(w0),
                                                  static_cast<double>(w1));
    if (p <= 0.0) continue;
    const std::size_t healthy = xb.cell_count() - xb.fault_count();
    // Binomial draw via per-cell Bernoulli is O(cells); for the small p of
    // interest a normal/Poisson shortcut suffices and keeps determinism.
    const double expected = p * static_cast<double>(healthy);
    double draw = expected + rng.normal() * std::sqrt(std::max(
                                 expected * (1.0 - p), 0.0));
    if (draw < 0.0) draw = 0.0;
    const auto count = static_cast<std::size_t>(std::llround(draw));
    injected += xb.inject_random_faults(count, cfg_.sa0_fraction, rng);
  }
  return injected;
}

void EnduranceModel::save_state(ckpt::ByteWriter& w) const {
  std::vector<std::uint64_t> counts(writes_seen_.begin(), writes_seen_.end());
  w.vec_u64(counts);
}

void EnduranceModel::load_state(ckpt::ByteReader& r) {
  const auto counts = r.vec_u64();
  writes_seen_.assign(counts.begin(), counts.end());
}

}  // namespace remapd
