#include "xbar/tile.hpp"

#include <stdexcept>

namespace remapd {

Tile::Tile(std::size_t id, std::size_t num_imas, std::size_t xbars_per_ima,
           std::size_t xbar_rows, std::size_t xbar_cols, CellParams params)
    : id_(id) {
  imas_.reserve(num_imas);
  for (std::size_t i = 0; i < num_imas; ++i)
    imas_.emplace_back(xbars_per_ima, xbar_rows, xbar_cols, params);
}

std::size_t Tile::crossbars_per_tile() const {
  std::size_t n = 0;
  for (const auto& ima : imas_) n += ima.size();
  return n;
}

Crossbar& Tile::crossbar(std::size_t local_index) {
  for (auto& ima : imas_) {
    if (local_index < ima.size()) return ima.crossbar(local_index);
    local_index -= ima.size();
  }
  throw std::out_of_range("Tile::crossbar");
}

const Crossbar& Tile::crossbar(std::size_t local_index) const {
  for (const auto& ima : imas_) {
    if (local_index < ima.size()) return ima.crossbar(local_index);
    local_index -= ima.size();
  }
  throw std::out_of_range("Tile::crossbar");
}

}  // namespace remapd
