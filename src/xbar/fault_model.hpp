// System-level fault scenarios (§III.A, §IV.A).
//
// Pre-deployment: clustered manufacturing defects with a non-uniform spatial
// distribution — 20 % of crossbars draw a high fault density (0.4–1 %), the
// remaining 80 % a low density (0–0.4 %); SA0:SA1 = 9:1.
//
// Post-deployment: endurance wear-out — after each training epoch, n % of
// the crossbars gain m % new faulty cells (worst-case "every epoch"
// assumption of the paper). Selection is biased toward crossbars that have
// already been written more (wear-out follows write traffic).
#pragma once

#include "xbar/endurance.hpp"
#include "xbar/rcs.hpp"

namespace remapd {

struct FaultScenario {
  // --- pre-deployment ---
  bool enable_pre = true;
  double high_density_fraction = 0.20;  ///< fraction of crossbars hit hard
  double high_density_lo = 0.004, high_density_hi = 0.010;
  double low_density_lo = 0.000, low_density_hi = 0.004;
  double sa0_fraction = 0.9;            ///< SA0:SA1 = 9:1 [11]
  std::size_t clusters_per_xbar = 2;

  // --- post-deployment ---
  bool enable_post = true;
  double post_xbar_fraction = 0.01;     ///< n: fraction of crossbars / epoch
  double post_cell_fraction = 0.005;    ///< m: new faulty cells per crossbar
  /// Alternative wear generator: derive fault arrivals from each
  /// crossbar's actual write count via the Weibull endurance model instead
  /// of the phenomenological (m, n) rates (ablation).
  bool mechanistic_endurance = false;
  EnduranceConfig endurance{};

  /// Uniform (non-clustered) variant used by ablations / Fig. 5.
  static FaultScenario uniform(double density);
  /// The Fig. 6 default configuration (per-epoch rates as in §IV.C,
  /// assuming the paper's 50-epoch training).
  static FaultScenario paper_default();
  /// Time-compressed variant: our CPU-scale runs train for `epochs`
  /// (typically 6–10) instead of the paper's 50, so the per-epoch
  /// post-deployment rate is scaled to keep the *cumulative* wear-out
  /// exposure equal: n_eff = n * paper_epochs / epochs.
  static FaultScenario paper_default_compressed(std::size_t epochs,
                                                std::size_t paper_epochs = 50);
  /// No faults at all (ideal hardware).
  static FaultScenario ideal();
};

/// Applies a FaultScenario to an Rcs over the training timeline.
///
/// Each crossbar's faults are drawn from a child RNG deterministically
/// derived from (base seed, injection round, crossbar id), so the injected
/// patterns are identical no matter how many threads process the
/// per-crossbar loops (REMAPD_THREADS) or in which order.
class FaultInjector : public ckpt::Snapshotable {
 public:
  FaultInjector(FaultScenario scenario, Rng& rng)
      : scenario_(scenario), rng_(rng), base_seed_(rng.engine()()) {}

  [[nodiscard]] const FaultScenario& scenario() const { return scenario_; }

  /// Inject pre-deployment faults into every crossbar. Returns the number
  /// of faults injected.
  std::size_t inject_pre_deployment(Rcs& rcs);

  /// Inject one epoch's worth of post-deployment faults. Crossbar
  /// selection is weighted by accumulated array writes when available.
  /// With `mechanistic_endurance` set, delegates to the Weibull endurance
  /// model instead. Returns the number of new faults.
  std::size_t inject_post_deployment(Rcs& rcs);

  // Snapshotable: base seed, completed post-deployment rounds, and the
  // endurance model's write baselines. Restoring the base seed keeps the
  // child-RNG streams of the remaining rounds identical to an
  // uninterrupted run.
  void save_state(ckpt::ByteWriter& w) const override;
  void load_state(ckpt::ByteReader& r) override;

 private:
  /// Child RNG for crossbar `id` in injection round `round` (round 0 =
  /// pre-deployment, then one per post-deployment epoch).
  [[nodiscard]] Rng crossbar_rng(std::size_t round, XbarId id) const {
    return Rng(Rng::derive_seed(Rng::derive_seed(base_seed_, round), id));
  }

  FaultScenario scenario_;
  Rng& rng_;
  std::uint64_t base_seed_;   ///< drawn once from rng_ at construction
  std::size_t post_rounds_ = 0;
  EnduranceModel endurance_model_{EnduranceConfig{}};
  bool endurance_initialized_ = false;
};

}  // namespace remapd
