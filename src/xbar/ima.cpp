#include "xbar/ima.hpp"

namespace remapd {

Ima::Ima(std::size_t num_crossbars, std::size_t xbar_rows,
         std::size_t xbar_cols, CellParams params) {
  xbars_.reserve(num_crossbars);
  for (std::size_t i = 0; i < num_crossbars; ++i)
    xbars_.emplace_back(xbar_rows, xbar_cols, params);
  // ISAAC-style sharing: a DAC per row, an 8-bit ADC per crossbar, a sample
  // and hold per column, one shift-and-add tree per crossbar.
  periph_.dacs = num_crossbars * xbar_rows;
  periph_.adcs = num_crossbars;
  periph_.sample_holds = num_crossbars * xbar_cols;
  periph_.shift_add_units = num_crossbars;
  periph_.io_register_bits = num_crossbars * (xbar_rows + xbar_cols) * 16;
}

double Ima::mean_fault_density() const {
  if (xbars_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& xb : xbars_) s += xb.fault_density();
  return s / static_cast<double>(xbars_.size());
}

}  // namespace remapd
