#include "xbar/cell.hpp"

// CellParams is header-only; this translation unit pins compile-time
// consistency checks for the electrical constants from [4].

namespace remapd {

static_assert(static_cast<int>(CellFault::kNone) == 0);
static_assert(sizeof(CellFault) == 1, "fault flags are stored per cell");
static_assert(sizeof(PairHalf) == 1);

}  // namespace remapd
