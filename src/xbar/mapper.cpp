#include "xbar/mapper.hpp"

#include <stdexcept>

#include "xbar/transient.hpp"

namespace remapd {
namespace {

WeightClampKind clamp_kind(CellFault fault, PairHalf half) {
  if (fault == CellFault::kStuckAt0)
    return half == PairHalf::kPositive ? WeightClampKind::kPosStuck0
                                       : WeightClampKind::kNegStuck0;
  return half == PairHalf::kPositive ? WeightClampKind::kPosStuck1
                                     : WeightClampKind::kNegStuck1;
}

}  // namespace

WeightMapper::WeightMapper(Rcs& rcs) : rcs_(&rcs) {
  if (rcs.config().xbar_rows != rcs.config().xbar_cols)
    throw std::invalid_argument("WeightMapper: crossbars must be square");
}

void WeightMapper::map_layers(
    const std::vector<std::pair<std::size_t, std::size_t>>& layer_dims) {
  tasks_.clear();
  layer_dims_ = layer_dims;
  const std::size_t s = rcs_->config().xbar_rows;

  auto tile_matrix = [&](std::size_t layer, Phase phase, std::size_t rows,
                         std::size_t cols) {
    for (std::size_t r0 = 0; r0 < rows; r0 += s)
      for (std::size_t c0 = 0; c0 < cols; c0 += s)
        tasks_.push_back(WeightBlock{layer, phase, r0, c0,
                                     std::min(s, rows - r0),
                                     std::min(s, cols - c0)});
  };

  for (std::size_t l = 0; l < layer_dims.size(); ++l)
    tile_matrix(l, Phase::kForward, layer_dims[l].first,
                layer_dims[l].second);
  for (std::size_t l = 0; l < layer_dims.size(); ++l)
    // Backward copy stores W^T: tiled over the transposed dimensions.
    tile_matrix(l, Phase::kBackward, layer_dims[l].second,
                layer_dims[l].first);

  if (tasks_.size() > rcs_->total_crossbars())
    throw std::runtime_error(
        "WeightMapper: RCS too small: " + std::to_string(tasks_.size()) +
        " tasks > " + std::to_string(rcs_->total_crossbars()) +
        " crossbars");

  task_to_xbar_.resize(tasks_.size());
  xbar_to_task_.assign(rcs_->total_crossbars(), kNoTask);
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    task_to_xbar_[t] = t;  // identity initial placement
    xbar_to_task_[t] = t;
  }
}

void WeightMapper::swap_tasks(TaskId a, XbarId target_xbar) {
  const XbarId src = task_to_xbar_.at(a);
  const TaskId other = xbar_to_task_.at(target_xbar);
  task_to_xbar_[a] = target_xbar;
  xbar_to_task_[target_xbar] = a;
  xbar_to_task_[src] = other;
  if (other != kNoTask) task_to_xbar_[other] = src;
}

std::vector<XbarId> WeightMapper::xbars_of_phase(Phase p) const {
  std::vector<XbarId> out;
  for (TaskId t = 0; t < tasks_.size(); ++t)
    if (tasks_[t].phase == p) out.push_back(task_to_xbar_[t]);
  return out;
}

std::vector<XbarId> WeightMapper::mapped_xbars() const {
  std::vector<XbarId> out;
  out.reserve(tasks_.size());
  for (TaskId t = 0; t < tasks_.size(); ++t) out.push_back(task_to_xbar_[t]);
  return out;
}

FaultView WeightMapper::build_fault_view(std::size_t layer, Phase phase,
                                         float w_max,
                                         MappingMode mode) const {
  FaultView view;
  view.w_max = w_max;
  view.mode = mode;
  const QuantSpec& quant_spec = rcs_->config().cell.quant;
  view.levels = quant_spec.levels();
  view.int8_path = quant_spec.enabled && quant_spec.int8_gemm &&
                   mode == MappingMode::kSingleArrayBias;
  if (ir_drop_.enabled())
    view.gain.assign(layer_dims_[layer].first * layer_dims_[layer].second,
                     1.0f);

  const auto weight_index = [&](const WeightBlock& blk, std::size_t r,
                                std::size_t c) {
    return weight_flat_index(blk, r, c);
  };

  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const WeightBlock& blk = tasks_[t];
    if (blk.layer != layer || blk.phase != phase) continue;
    const Crossbar& xb = rcs_->crossbar(task_to_xbar_[t]);

    for (const auto& [r, c] : xb.faulty_cells()) {
      if (r >= blk.cols || c >= blk.rows) continue;  // outside occupancy
      view.clamps.push_back(WeightClamp{
          static_cast<std::uint32_t>(weight_index(blk, r, c)),
          clamp_kind(xb.fault_at(r, c), xb.fault_half_at(r, c))});
    }

    // Live transient upsets. Continuous cells read as full-scale drift
    // until refreshed — same clamp semantics as a stuck-at, different
    // lifetime. Quantized cells instead suffer a *level flip*: the worst
    // single-bit disturbance (MSB) of the committed level code, delivered
    // as a kLevel clamp whose pinned value is decoded here. (Differential
    // mapping keeps the continuous full-scale model: its per-half code
    // semantics are out of scope for the single-array level grid.)
    if (transients_)
      for (const UpsetCell& u : transients_->upsets_of(task_to_xbar_[t])) {
        const std::size_t r = u.cell / xb.cols(), c = u.cell % xb.cols();
        if (r >= blk.cols || c >= blk.rows) continue;
        if (view.levels != 0 && xb.has_codes() &&
            mode == MappingMode::kSingleArrayBias) {
          const std::uint8_t flipped =
              quant::upset_level(xb.code_at(r, c), view.levels);
          view.clamps.push_back(WeightClamp{
              static_cast<std::uint32_t>(weight_index(blk, r, c)),
              WeightClampKind::kLevel,
              quant::level_decode(flipped, view.levels, w_max)});
          continue;
        }
        view.clamps.push_back(WeightClamp{
            static_cast<std::uint32_t>(weight_index(blk, r, c)),
            clamp_kind(u.toward_on ? CellFault::kStuckAt1
                                   : CellFault::kStuckAt0,
                       static_cast<PairHalf>(u.half))});
      }

    // IR-drop: every occupied cell's weight is attenuated by its wire
    // path under the current line scheme. Crossbar cell (r, c) has row
    // index r (word line) and column index c (bit line).
    if (ir_drop_.enabled())
      for (std::size_t r = 0; r < blk.cols; ++r)
        for (std::size_t c = 0; c < blk.rows; ++c)
          view.gain[weight_index(blk, r, c)] = static_cast<float>(
              ir_cell_gain(r, c, xb.rows(), xb.cols(), ir_drop_,
                           line_scheme_));
  }
  return view;
}

// Layer weight matrix is R x C. Crossbar cell (i, j) holds stored matrix
// element (blk.row0 + j, blk.col0 + i): matrix columns map onto crossbar
// rows (inputs) and matrix rows onto crossbar columns (outputs). The
// stored matrix is W for forward tasks and W^T for backward tasks; the
// returned index always addresses W's flat layout, so backward blocks
// transpose back.
std::size_t WeightMapper::weight_flat_index(const WeightBlock& blk,
                                            std::size_t r,
                                            std::size_t c) const {
  const std::size_t stored_row = blk.row0 + c;
  const std::size_t stored_col = blk.col0 + r;
  const std::size_t w_row =
      blk.phase == Phase::kForward ? stored_row : stored_col;
  const std::size_t w_col =
      blk.phase == Phase::kForward ? stored_col : stored_row;
  return w_row * layer_dims_[blk.layer].second + w_col;
}

std::vector<std::uint32_t> WeightMapper::task_weight_indices(
    TaskId t) const {
  const WeightBlock& blk = tasks_.at(t);
  std::vector<std::uint32_t> out;
  out.reserve(blk.rows * blk.cols);
  for (std::size_t r = 0; r < blk.cols; ++r)
    for (std::size_t c = 0; c < blk.rows; ++c)
      out.push_back(
          static_cast<std::uint32_t>(weight_flat_index(blk, r, c)));
  return out;
}

void WeightMapper::commit_level_codes(std::size_t layer, const float* w,
                                      float w_max) {
  const std::size_t levels = rcs_->config().cell.quant.levels();
  if (levels < 2) return;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const WeightBlock& blk = tasks_[t];
    if (blk.layer != layer) continue;
    Crossbar& xb = rcs_->crossbar(task_to_xbar_[t]);
    if (!xb.has_codes()) continue;
    for (std::size_t r = 0; r < blk.cols; ++r)
      for (std::size_t c = 0; c < blk.rows; ++c)
        xb.set_code(r, c,
                    quant::level_encode_nearest(
                        w[weight_flat_index(blk, r, c)], levels, w_max));
  }
}

std::size_t WeightMapper::effective_fault_count(TaskId t) const {
  const WeightBlock& blk = tasks_.at(t);
  const Crossbar& xb = rcs_->crossbar(task_to_xbar_.at(t));
  std::size_t n = 0;
  for (const auto& [r, c] : xb.faulty_cells())
    if (r < blk.cols && c < blk.rows) ++n;
  return n;
}

void WeightMapper::record_weight_update() {
  for (XbarId x : mapped_xbars()) rcs_->crossbar(x).record_array_write();
}

// Serialized layout (read_task_map must stay in sync): u64 num_tasks, then
// per task: u64 layer, u8 phase, u64 row0/col0/rows/cols, u64 xbar;
// trailed by u8 line scheme.
void WeightMapper::save_state(ckpt::ByteWriter& w) const {
  w.u64(tasks_.size());
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const WeightBlock& b = tasks_[t];
    w.u64(b.layer);
    w.u8(static_cast<std::uint8_t>(b.phase));
    w.u64(b.row0);
    w.u64(b.col0);
    w.u64(b.rows);
    w.u64(b.cols);
    w.u64(task_to_xbar_[t]);
  }
  w.u8(static_cast<std::uint8_t>(line_scheme_));
}

void WeightMapper::load_state(ckpt::ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count != tasks_.size())
    throw ckpt::CheckpointError(
        "task count mismatch: stored " + std::to_string(count) +
        ", mapped model has " + std::to_string(tasks_.size()));
  std::vector<XbarId> assignment(tasks_.size());
  std::vector<TaskId> inverse(rcs_->total_crossbars(), kNoTask);
  for (TaskId t = 0; t < count; ++t) {
    const WeightBlock& b = tasks_[t];
    const auto layer = static_cast<std::size_t>(r.u64());
    const auto phase = r.u8();
    const auto row0 = static_cast<std::size_t>(r.u64());
    const auto col0 = static_cast<std::size_t>(r.u64());
    const auto rows = static_cast<std::size_t>(r.u64());
    const auto cols = static_cast<std::size_t>(r.u64());
    if (layer != b.layer || phase != static_cast<std::uint8_t>(b.phase) ||
        row0 != b.row0 || col0 != b.col0 || rows != b.rows || cols != b.cols)
      throw ckpt::CheckpointError("task " + std::to_string(t) +
                                  " block geometry does not match the "
                                  "mapped model");
    const auto xbar = static_cast<XbarId>(r.u64());
    if (xbar >= rcs_->total_crossbars())
      throw ckpt::CheckpointError("task " + std::to_string(t) +
                                  " assigned to out-of-range crossbar " +
                                  std::to_string(xbar));
    if (inverse[xbar] != kNoTask)
      throw ckpt::CheckpointError("crossbar " + std::to_string(xbar) +
                                  " assigned to two tasks");
    assignment[t] = xbar;
    inverse[xbar] = t;
  }
  const std::uint8_t scheme = r.u8();
  if (scheme > static_cast<std::uint8_t>(LineScheme::kAlternating))
    throw ckpt::CheckpointError("invalid line-scheme code " +
                                std::to_string(scheme));
  task_to_xbar_ = std::move(assignment);
  xbar_to_task_ = std::move(inverse);
  line_scheme_ = static_cast<LineScheme>(scheme);
}

std::vector<WeightMapper::TaskMapEntry> WeightMapper::read_task_map(
    ckpt::ByteReader& r, LineScheme* scheme) {
  const std::uint64_t count = r.u64();
  std::vector<TaskMapEntry> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t t = 0; t < count; ++t) {
    TaskMapEntry e;
    e.layer = static_cast<std::size_t>(r.u64());
    const std::uint8_t phase = r.u8();
    if (phase > static_cast<std::uint8_t>(Phase::kBackward))
      throw ckpt::CheckpointError("invalid phase code " +
                                  std::to_string(phase));
    e.phase = static_cast<Phase>(phase);
    e.row0 = static_cast<std::size_t>(r.u64());
    e.col0 = static_cast<std::size_t>(r.u64());
    e.rows = static_cast<std::size_t>(r.u64());
    e.cols = static_cast<std::size_t>(r.u64());
    e.xbar = static_cast<XbarId>(r.u64());
    out.push_back(e);
  }
  const std::uint8_t code = r.u8();
  if (code > static_cast<std::uint8_t>(LineScheme::kAlternating))
    throw ckpt::CheckpointError("invalid line-scheme code " +
                                std::to_string(code));
  if (scheme) *scheme = static_cast<LineScheme>(code);
  return out;
}

}  // namespace remapd
