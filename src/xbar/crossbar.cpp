#include "xbar/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace remapd {

Crossbar::Crossbar(std::size_t rows, std::size_t cols, CellParams params)
    : rows_(rows), cols_(cols), params_(params),
      faults_(rows * cols, CellFault::kNone),
      halves_(rows * cols, PairHalf::kPositive),
      stuck_r_(rows * cols, params.r_off) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("Crossbar: zero dimension");
  params.quant.validate();
  if (params.quant.enabled) {
    code_bits_ = static_cast<std::uint8_t>(params.quant.cell_bits);
    codes_.assign(rows * cols, 0);
  }
}

bool Crossbar::inject_fault(std::size_t r, std::size_t c, CellFault type,
                            Rng& rng) {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Crossbar::inject_fault");
  if (type == CellFault::kNone) return false;
  CellFault& f = faults_[r * cols_ + c];
  if (f != CellFault::kNone) return false;
  f = type;
  halves_[r * cols_ + c] =
      rng.bernoulli(0.5) ? PairHalf::kPositive : PairHalf::kNegative;
  stuck_r_[r * cols_ + c] = params_.sample_stuck_resistance(type, rng);
  ++fault_count_;
  return true;
}

std::size_t Crossbar::inject_random_faults(std::size_t count,
                                           double sa0_fraction, Rng& rng) {
  const std::size_t healthy = cell_count() - fault_count_;
  count = std::min(count, healthy);
  std::size_t injected = 0;
  // Rejection sampling over cells; fault densities in the paper are <= a few
  // percent, so collisions are rare.
  while (injected < count) {
    const auto r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(rows_) - 1));
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cols_) - 1));
    const CellFault type = rng.bernoulli(sa0_fraction) ? CellFault::kStuckAt0
                                                       : CellFault::kStuckAt1;
    if (inject_fault(r, c, type, rng)) ++injected;
  }
  return injected;
}

std::size_t Crossbar::inject_clustered_faults(std::size_t count,
                                              double sa0_fraction,
                                              std::size_t clusters,
                                              Rng& rng) {
  if (clusters == 0) clusters = 1;
  const std::size_t healthy = cell_count() - fault_count_;
  count = std::min(count, healthy);

  // Two thirds of the faults gather around cluster centers (c.f. [16]);
  // the rest are uniform background defects.
  const std::size_t clustered = count * 2 / 3;
  std::size_t injected = inject_random_faults(count - clustered,
                                              sa0_fraction, rng);

  std::vector<std::pair<double, double>> centers;
  centers.reserve(clusters);
  for (std::size_t k = 0; k < clusters; ++k)
    centers.emplace_back(rng.uniform(0.0, static_cast<double>(rows_)),
                         rng.uniform(0.0, static_cast<double>(cols_)));
  const double sigma =
      std::max(1.0, std::sqrt(static_cast<double>(cell_count())) / 16.0);

  std::size_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = clustered * 64 + 256;
  while (placed < clustered && attempts++ < max_attempts) {
    const auto& ctr = centers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clusters) - 1))];
    const double rr = ctr.first + rng.normal(0.0, sigma);
    const double cc = ctr.second + rng.normal(0.0, sigma);
    if (rr < 0 || cc < 0 || rr >= static_cast<double>(rows_) ||
        cc >= static_cast<double>(cols_))
      continue;
    const CellFault type = rng.bernoulli(sa0_fraction) ? CellFault::kStuckAt0
                                                       : CellFault::kStuckAt1;
    if (inject_fault(static_cast<std::size_t>(rr),
                     static_cast<std::size_t>(cc), type, rng))
      ++placed;
  }
  // Fall back to uniform placement if cluster sampling saturated locally.
  if (placed < clustered)
    placed += inject_random_faults(clustered - placed, sa0_fraction, rng);
  return injected + placed;
}

std::size_t Crossbar::fault_count(CellFault type) const {
  std::size_t n = 0;
  for (CellFault f : faults_)
    if (f == type) ++n;
  return n;
}

std::vector<std::pair<std::size_t, std::size_t>> Crossbar::faulty_cells()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(fault_count_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (faults_[r * cols_ + c] != CellFault::kNone) out.emplace_back(r, c);
  return out;
}

// Serialized layout (see also summarize_snapshot, which must stay in
// sync): rows u64, cols u64, fault_count u64, array_writes u64, faults
// u8vec, halves u8vec, stuck_r f64vec, code_bits u8, then (only when
// code_bits > 0) the level codes packed two-per-byte (low nibble first) as
// a u8vec — the level-coded section that shrinks quantized crossbar
// snapshots vs fp32 conductance storage.
void Crossbar::save_state(ckpt::ByteWriter& w) const {
  w.u64(rows_);
  w.u64(cols_);
  w.u64(fault_count_);
  w.u64(array_writes_);
  std::vector<std::uint8_t> f(faults_.size()), h(halves_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i)
    f[i] = static_cast<std::uint8_t>(faults_[i]);
  for (std::size_t i = 0; i < halves_.size(); ++i)
    h[i] = static_cast<std::uint8_t>(halves_[i]);
  w.vec_u8(f);
  w.vec_u8(h);
  w.vec_f64(stuck_r_);
  w.u8(code_bits_);
  if (code_bits_ != 0) {
    std::vector<std::uint8_t> packed((codes_.size() + 1) / 2, 0);
    for (std::size_t i = 0; i < codes_.size(); ++i)
      packed[i / 2] |= static_cast<std::uint8_t>((codes_[i] & 0x0f)
                                                 << (4 * (i % 2)));
    w.vec_u8(packed);
  }
}

void Crossbar::load_state(ckpt::ByteReader& r) {
  const auto rows = static_cast<std::size_t>(r.u64());
  const auto cols = static_cast<std::size_t>(r.u64());
  if (rows != rows_ || cols != cols_)
    throw ckpt::CheckpointError(
        "crossbar dimension mismatch: stored " + std::to_string(rows) + "x" +
        std::to_string(cols) + ", expected " + std::to_string(rows_) + "x" +
        std::to_string(cols_));
  const auto stored_faults = static_cast<std::size_t>(r.u64());
  const auto writes = static_cast<std::size_t>(r.u64());
  const auto f = r.vec_u8();
  const auto h = r.vec_u8();
  auto stuck = r.vec_f64();
  if (f.size() != cell_count() || h.size() != cell_count() ||
      stuck.size() != cell_count())
    throw ckpt::CheckpointError("crossbar cell-vector length mismatch");
  std::size_t count = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i] > static_cast<std::uint8_t>(CellFault::kStuckAt1))
      throw ckpt::CheckpointError("invalid cell-fault code " +
                                  std::to_string(f[i]));
    if (h[i] > static_cast<std::uint8_t>(PairHalf::kNegative))
      throw ckpt::CheckpointError("invalid pair-half code " +
                                  std::to_string(h[i]));
    if (f[i] != 0) ++count;
  }
  if (count != stored_faults)
    throw ckpt::CheckpointError("crossbar fault count disagrees with cells");
  for (std::size_t i = 0; i < f.size(); ++i) {
    faults_[i] = static_cast<CellFault>(f[i]);
    halves_[i] = static_cast<PairHalf>(h[i]);
  }
  stuck_r_ = std::move(stuck);
  fault_count_ = count;
  array_writes_ = writes;
  const std::uint8_t bits = r.u8();
  if (bits != code_bits_)
    throw ckpt::CheckpointError(
        "crossbar cell-bits mismatch: stored " + std::to_string(bits) +
        ", expected " + std::to_string(code_bits_));
  if (bits != 0) {
    const auto packed = r.vec_u8();
    if (packed.size() != (cell_count() + 1) / 2)
      throw ckpt::CheckpointError("crossbar level-code length mismatch");
    const std::uint8_t max_code =
        static_cast<std::uint8_t>((1u << bits) - 1);
    for (std::size_t i = 0; i < codes_.size(); ++i) {
      const std::uint8_t code =
          (packed[i / 2] >> (4 * (i % 2))) & 0x0f;
      if (code > max_code)
        throw ckpt::CheckpointError("invalid level code " +
                                    std::to_string(code) + " for " +
                                    std::to_string(bits) + "-bit cells");
      codes_[i] = code;
    }
  }
}

Crossbar::SnapshotSummary Crossbar::summarize_snapshot(ckpt::ByteReader& r) {
  SnapshotSummary s;
  s.rows = static_cast<std::size_t>(r.u64());
  s.cols = static_cast<std::size_t>(r.u64());
  s.fault_count = static_cast<std::size_t>(r.u64());
  s.array_writes = static_cast<std::size_t>(r.u64());
  const auto f = r.vec_u8();
  r.vec_u8();   // halves
  r.vec_f64();  // stuck resistances
  for (std::uint8_t c : f) {
    if (c == static_cast<std::uint8_t>(CellFault::kStuckAt0)) ++s.sa0;
    if (c == static_cast<std::uint8_t>(CellFault::kStuckAt1)) ++s.sa1;
  }
  s.cell_bits = r.u8();
  if (s.cell_bits != 0) {
    const auto packed = r.vec_u8();
    s.coded_bytes = packed.size();
    s.fp32_equiv_bytes = s.rows * s.cols * sizeof(float);
    s.code_hist.assign(std::size_t{1} << s.cell_bits, 0);
    const std::size_t cells = s.rows * s.cols;
    for (std::size_t i = 0; i < cells; ++i) {
      const std::uint8_t code = (packed[i / 2] >> (4 * (i % 2))) & 0x0f;
      if (code < s.code_hist.size()) ++s.code_hist[code];
    }
  }
  return s;
}

}  // namespace remapd
