#include "xbar/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace remapd {

Crossbar::Crossbar(std::size_t rows, std::size_t cols, CellParams params)
    : rows_(rows), cols_(cols), params_(params),
      faults_(rows * cols, CellFault::kNone),
      halves_(rows * cols, PairHalf::kPositive),
      stuck_r_(rows * cols, params.r_off) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("Crossbar: zero dimension");
}

bool Crossbar::inject_fault(std::size_t r, std::size_t c, CellFault type,
                            Rng& rng) {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Crossbar::inject_fault");
  if (type == CellFault::kNone) return false;
  CellFault& f = faults_[r * cols_ + c];
  if (f != CellFault::kNone) return false;
  f = type;
  halves_[r * cols_ + c] =
      rng.bernoulli(0.5) ? PairHalf::kPositive : PairHalf::kNegative;
  stuck_r_[r * cols_ + c] = params_.sample_stuck_resistance(type, rng);
  ++fault_count_;
  return true;
}

std::size_t Crossbar::inject_random_faults(std::size_t count,
                                           double sa0_fraction, Rng& rng) {
  const std::size_t healthy = cell_count() - fault_count_;
  count = std::min(count, healthy);
  std::size_t injected = 0;
  // Rejection sampling over cells; fault densities in the paper are <= a few
  // percent, so collisions are rare.
  while (injected < count) {
    const auto r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(rows_) - 1));
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cols_) - 1));
    const CellFault type = rng.bernoulli(sa0_fraction) ? CellFault::kStuckAt0
                                                       : CellFault::kStuckAt1;
    if (inject_fault(r, c, type, rng)) ++injected;
  }
  return injected;
}

std::size_t Crossbar::inject_clustered_faults(std::size_t count,
                                              double sa0_fraction,
                                              std::size_t clusters,
                                              Rng& rng) {
  if (clusters == 0) clusters = 1;
  const std::size_t healthy = cell_count() - fault_count_;
  count = std::min(count, healthy);

  // Two thirds of the faults gather around cluster centers (c.f. [16]);
  // the rest are uniform background defects.
  const std::size_t clustered = count * 2 / 3;
  std::size_t injected = inject_random_faults(count - clustered,
                                              sa0_fraction, rng);

  std::vector<std::pair<double, double>> centers;
  centers.reserve(clusters);
  for (std::size_t k = 0; k < clusters; ++k)
    centers.emplace_back(rng.uniform(0.0, static_cast<double>(rows_)),
                         rng.uniform(0.0, static_cast<double>(cols_)));
  const double sigma =
      std::max(1.0, std::sqrt(static_cast<double>(cell_count())) / 16.0);

  std::size_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = clustered * 64 + 256;
  while (placed < clustered && attempts++ < max_attempts) {
    const auto& ctr = centers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clusters) - 1))];
    const double rr = ctr.first + rng.normal(0.0, sigma);
    const double cc = ctr.second + rng.normal(0.0, sigma);
    if (rr < 0 || cc < 0 || rr >= static_cast<double>(rows_) ||
        cc >= static_cast<double>(cols_))
      continue;
    const CellFault type = rng.bernoulli(sa0_fraction) ? CellFault::kStuckAt0
                                                       : CellFault::kStuckAt1;
    if (inject_fault(static_cast<std::size_t>(rr),
                     static_cast<std::size_t>(cc), type, rng))
      ++placed;
  }
  // Fall back to uniform placement if cluster sampling saturated locally.
  if (placed < clustered)
    placed += inject_random_faults(clustered - placed, sa0_fraction, rng);
  return injected + placed;
}

std::size_t Crossbar::fault_count(CellFault type) const {
  std::size_t n = 0;
  for (CellFault f : faults_)
    if (f == type) ++n;
  return n;
}

std::vector<std::pair<std::size_t, std::size_t>> Crossbar::faulty_cells()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(fault_count_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (faults_[r * cols_ + c] != CellFault::kNone) out.emplace_back(r, c);
  return out;
}

}  // namespace remapd
