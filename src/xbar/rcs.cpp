#include "xbar/rcs.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace remapd {

RcsConfig RcsConfig::sized_for(std::size_t needed_crossbars,
                               std::size_t xbar_rows, std::size_t xbar_cols) {
  RcsConfig cfg;
  cfg.xbar_rows = xbar_rows;
  cfg.xbar_cols = xbar_cols;
  const std::size_t per_tile = cfg.xbars_per_tile();
  std::size_t tiles = (needed_crossbars + per_tile - 1) / per_tile;
  // The RCS is a fixed chip: small workloads run on the same silicon and
  // leave crossbars idle. Keep at least the 4x4 tile mesh of Fig. 3 so a
  // small model still sees a realistic pool of potential receivers.
  if (tiles < 16) tiles = 16;
  auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(tiles))));
  cfg.tiles_x = side;
  cfg.tiles_y = (tiles + side - 1) / side;
  return cfg;
}

Rcs::Rcs(RcsConfig cfg) : cfg_(cfg) {
  if (cfg_.num_tiles() == 0) throw std::invalid_argument("Rcs: zero tiles");
  tiles_.reserve(cfg_.num_tiles());
  for (std::size_t t = 0; t < cfg_.num_tiles(); ++t)
    tiles_.emplace_back(t, cfg_.imas_per_tile, cfg_.xbars_per_ima,
                        cfg_.xbar_rows, cfg_.xbar_cols, cfg_.cell);
}

Crossbar& Rcs::crossbar(XbarId id) {
  const std::size_t per_tile = cfg_.xbars_per_tile();
  return tiles_.at(id / per_tile).crossbar(id % per_tile);
}

const Crossbar& Rcs::crossbar(XbarId id) const {
  const std::size_t per_tile = cfg_.xbars_per_tile();
  return tiles_.at(id / per_tile).crossbar(id % per_tile);
}

std::size_t Rcs::tile_distance(TileId a, TileId b) const {
  const auto [ax, ay] = tile_xy(a);
  const auto [bx, by] = tile_xy(b);
  const auto dx = ax > bx ? ax - bx : bx - ax;
  const auto dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

double Rcs::mean_fault_density() const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& t : tiles_)
    for (std::size_t i = 0; i < t.crossbars_per_tile(); ++i, ++n)
      s += t.crossbar(i).fault_density();
  return n ? s / static_cast<double>(n) : 0.0;
}

std::vector<double> Rcs::fault_densities() const {
  std::vector<double> out;
  out.reserve(total_crossbars());
  for (XbarId id = 0; id < total_crossbars(); ++id)
    out.push_back(crossbar(id).fault_density());
  return out;
}

void Rcs::save_state(ckpt::ByteWriter& w) const {
  w.u64(total_crossbars());
  for (XbarId id = 0; id < total_crossbars(); ++id)
    crossbar(id).save_state(w);
}

void Rcs::load_state(ckpt::ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count != total_crossbars())
    throw ckpt::CheckpointError(
        "RCS crossbar count mismatch: stored " + std::to_string(count) +
        ", configured " + std::to_string(total_crossbars()));
  for (XbarId id = 0; id < total_crossbars(); ++id)
    crossbar(id).load_state(r);
}

}  // namespace remapd
