#include "analog/column_current.hpp"

namespace remapd {
namespace {

double healthy_resistance(const CellParams& p, TestPattern pattern) {
  return pattern == TestPattern::kAllZero ? p.r_off : p.r_on;
}

}  // namespace

double column_current(const Crossbar& xb, std::size_t col,
                      TestPattern pattern) {
  // A stuck cell ignores writes entirely: it contributes its stuck
  // resistance under *both* test patterns. SA0 cells (0.8-3 MΩ) are nearly
  // indistinguishable from a healthy R_off cell in the all-zero read, and
  // SA1 cells (1.5-3 kΩ) conduct even more than a healthy R_on cell in the
  // all-one read — the calibration clamps such excess to a zero SA0 count.
  const CellParams& p = xb.params();
  const double r_healthy = healthy_resistance(p, pattern);
  double conductance = 0.0;
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    const CellFault f = xb.fault_at(r, col);
    if (f != CellFault::kNone)
      conductance += 1.0 / xb.stuck_resistance_at(r, col);
    else
      conductance += 1.0 / r_healthy;
  }
  return p.read_voltage * conductance;
}

double column_current(const Crossbar& xb, std::size_t col,
                      TestPattern pattern, const IrDropConfig& ir,
                      LineScheme scheme) {
  const CellParams& p = xb.params();
  const double r_healthy = healthy_resistance(p, pattern);
  double current = 0.0;
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    const CellFault f = xb.fault_at(r, col);
    const double r_cell = f != CellFault::kNone
                              ? xb.stuck_resistance_at(r, col)
                              : r_healthy;
    const double r_wire =
        ir.wire_ohms_per_cell *
        ir_path_segments(r, col, xb.rows(), xb.cols(), scheme);
    current += p.read_voltage / (r_cell + r_wire);
  }
  return current;
}

std::vector<double> all_column_currents(const Crossbar& xb,
                                        TestPattern pattern) {
  std::vector<double> out;
  out.reserve(xb.cols());
  for (std::size_t c = 0; c < xb.cols(); ++c)
    out.push_back(column_current(xb, c, pattern));
  return out;
}

double fault_free_column_current(const CellParams& p, std::size_t rows,
                                 TestPattern pattern) {
  return p.read_voltage * static_cast<double>(rows) /
         healthy_resistance(p, pattern);
}

double synthetic_column_current(const CellParams& p, std::size_t rows,
                                std::size_t faults, double stuck_r,
                                TestPattern pattern) {
  const double r_healthy = healthy_resistance(p, pattern);
  const double g = static_cast<double>(rows - faults) / r_healthy +
                   static_cast<double>(faults) / stuck_r;
  return p.read_voltage * g;
}

}  // namespace remapd
