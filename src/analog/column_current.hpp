// Resistor-network model of a crossbar column during a BIST read — the
// HSpice substitute behind Fig. 4.
//
// During the SA1 test, every cell has been written to logic "0" (R_off);
// during the SA0 test, to logic "1" (R_on). A read voltage V is applied to
// all rows simultaneously and the column output is the Kirchhoff sum of the
// per-cell currents I = Σ V / R_i, where faulty cells contribute their
// stuck resistance (sampled within the variation bands of [4]). Sneak
// paths are second-order at BIST's all-rows-driven-equally condition and
// are not modelled; finite wire resistance optionally is — the IR-drop
// overloads put `wire_ohms_per_cell * path_segments` in series with every
// cell (first-order X-CHANGR model, xbar/ir_drop.hpp), making a column's
// current — and a fault's visibility in it — depend on the faulty cell's
// position along the line.
#pragma once

#include <cstddef>
#include <vector>

#include "xbar/crossbar.hpp"
#include "xbar/ir_drop.hpp"

namespace remapd {

/// Which BIST pattern is applied to the array.
enum class TestPattern : std::uint8_t {
  kAllZero,  ///< SA1 test: healthy cells at R_off
  kAllOne,   ///< SA0 test: healthy cells at R_on
};

/// Current (A) of column `col` of `xb` under `pattern` at the cell
/// parameters' read voltage.
double column_current(const Crossbar& xb, std::size_t col,
                      TestPattern pattern);

/// IR-drop-aware variant: each cell's read path carries its wire
/// resistance under `scheme` in series. With `ir` disabled this reduces
/// exactly to the ideal-interconnect model above.
double column_current(const Crossbar& xb, std::size_t col,
                      TestPattern pattern, const IrDropConfig& ir,
                      LineScheme scheme = LineScheme::kSingleSided);

/// All column currents of a crossbar under a pattern.
std::vector<double> all_column_currents(const Crossbar& xb,
                                        TestPattern pattern);

/// Ideal (fault-free) column current for an array with `rows` cells.
double fault_free_column_current(const CellParams& p, std::size_t rows,
                                 TestPattern pattern);

/// Current of a synthetic column with `rows` cells of which `faults` are
/// stuck at `stuck_r` ohms — the sweep primitive behind Fig. 4.
double synthetic_column_current(const CellParams& p, std::size_t rows,
                                std::size_t faults, double stuck_r,
                                TestPattern pattern);

}  // namespace remapd
