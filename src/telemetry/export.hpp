// Exporters for the telemetry registry and trace buffer:
//
//   chrome_trace_json()  chrome://tracing / Perfetto-loadable JSON array of
//                        "ph":"X" (span) and "ph":"i" (instant) events
//   jsonl()              one JSON object per line: every span/instant event,
//                        then a metrics snapshot (counters, gauges,
//                        histograms), each line tagged with a "type" field
//   summary_table()      plain-text table: per-span-name count / total /
//                        p50 / p95 / max, then counters, gauges, histograms
//
// Env wiring (read once at startup by init_from_env):
//   REMAPD_TRACE=<path>    enable collection; write the Chrome trace to
//                          <path> at process exit
//   REMAPD_METRICS=<path>  enable collection; write the metrics to <path>
//                          at exit — JSONL when <path> ends in ".jsonl",
//                          plain-text summary otherwise
#pragma once

#include <string>
#include <string_view>

namespace remapd {
namespace telemetry {

[[nodiscard]] std::string chrome_trace_json();
[[nodiscard]] std::string jsonl();
[[nodiscard]] std::string summary_table();

/// Write `contents` to `path` ("-" for stdout). Returns success.
bool write_file(const std::string& path, const std::string& contents);
/// Same, but with append=true adds to an existing file instead of
/// replacing it (resumed runs; "-" still streams to stdout).
bool write_file(const std::string& path, const std::string& contents,
                bool append);
bool write_chrome_trace(const std::string& path);
bool write_jsonl(const std::string& path);
bool write_summary(const std::string& path);

/// Read REMAPD_TRACE / REMAPD_METRICS once; if either is set, enable
/// collection and register the exit-time flush. Idempotent and cheap, runs
/// automatically at static-init time of any instrumented binary.
///
/// Flush guarantee: the configured files are written on BOTH exit paths —
/// normal termination (std::atexit) and uncaught-exception termination (a
/// std::set_terminate handler that flushes, then chains to the previously
/// installed handler before aborting). Writes truncate-and-rewrite the
/// same paths, so running both hooks, or calling flush_to_env_paths()
/// manually beforehand, is harmless. Not covered: abnormal termination
/// that bypasses the C++ runtime (std::abort, _exit, fatal signals).
void init_from_env();

/// Write the env-configured outputs now (also what the exit hooks run).
/// Idempotent with live serving: truncate-mode writes rewrite the same
/// bytes on every call, and append-mode writes (resumed runs) land exactly
/// once even when the daemon's final flush, std::atexit, and the terminate
/// handler all fire in one shutdown. Safe to call while a serving thread
/// (obs::HttpServer) is concurrently reading the registry.
void flush_to_env_paths();

/// Resumed-run mode, set when a training run restores a checkpoint: the
/// exit-time flush appends line-oriented outputs (JSONL, summaries, the
/// obs health stream) to whatever the interrupted leg already wrote, and
/// writes the Chrome trace — a JSON array that cannot be appended to — to
/// a fresh versioned sibling path instead of truncating the original.
void set_resume_append(bool on);
[[nodiscard]] bool resume_append();
/// First "<stem>.resumeN<ext>" sibling of `path` (N >= 1) that does not
/// exist yet.
[[nodiscard]] std::string versioned_resume_path(const std::string& path);

/// Clear the trace buffer and zero every registry instrument (tests).
void reset_all();

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace telemetry
}  // namespace remapd
