// RAII trace spans feeding an in-memory event buffer, with thread ids and
// nesting depth, for Chrome-trace / JSONL export (telemetry/export.hpp).
//
// Collection is disabled by default. When disabled, every instrumentation
// point costs one relaxed atomic load and branch — cheap enough to leave in
// the GEMM inner-call path. Setting REMAPD_TRACE=<path> and/or
// REMAPD_METRICS=<path> (see util/env.hpp) enables collection at startup
// and registers an atexit flush to those paths; tests drive the same
// machinery through set_enabled() + the exporters directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace remapd {
namespace telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Master switch, read on every instrumentation hit.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Nanoseconds on the steady clock since the process's telemetry epoch
/// (first use). Monotonic; shared by every span so traces line up.
std::uint64_t now_ns();

/// Small dense id for the calling thread (assigned on first use, starting
/// at 1), used as the Chrome-trace tid.
std::uint32_t current_thread_id();

/// One completed span ('X'), instant ('i'), or flow ('s' start / 'f'
/// finish) event. Flow events render as an arrow in chrome://tracing from
/// the span enclosing the 's' to the span enclosing the matching 'f'
/// (same name, cat, and flow_id) — how a migrated fleet job's
/// save-checkpoint span on the source chip is linked to the restore span
/// on the target.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::string args_json;  ///< "" or a JSON object, e.g. {"epoch":3}
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< 0 for instant events
  std::uint64_t flow_id = 0;  ///< nonzero only for 's'/'f' events
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< span nesting depth on its thread
  char ph = 'X';
};

/// Bounded in-memory event sink. Overflow increments a drop counter rather
/// than growing without bound (a traced training run emits a few thousand
/// events; the cap only matters if someone traces a huge sweep).
class TraceBuffer {
 public:
  static constexpr std::size_t kMaxEvents = 1u << 20;

  static TraceBuffer& instance();

  void record(TraceEvent ev);
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

 private:
  TraceBuffer() = default;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Scoped timer: records an 'X' event covering its lifetime. Inert (one
/// atomic load, no allocation) when telemetry is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, std::string_view cat = "remapd",
                     std::string args_json = "");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::string cat_;
  std::string args_;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Record an instant event (zero duration), e.g. one remap decision.
void trace_instant(std::string_view name, std::string_view cat,
                   std::string args_json = "");

/// Record the start / finish of a flow. Emit the start inside the source
/// span and the finish inside the destination span; both halves must share
/// (name, cat, flow_id), and the id must be unique per arrow (the fleet
/// derives it from the job's trace id and its migration ordinal). A finish
/// binds to its enclosing slice ("bp":"e"), the Perfetto-recommended form.
void trace_flow_start(std::string_view name, std::string_view cat,
                      std::uint64_t flow_id, std::string args_json = "");
void trace_flow_finish(std::string_view name, std::string_view cat,
                       std::uint64_t flow_id, std::string args_json = "");

}  // namespace telemetry
}  // namespace remapd
