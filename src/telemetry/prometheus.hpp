// Prometheus text-exposition renderer (format version 0.0.4) over a
// telemetry RegistrySnapshot — what the fleet daemon's /metrics endpoint
// serves.
//
// Registry names are free-form ("gemm.calls", "fleet.slice_ns") and, under
// a JobLabelScope, qualified as "job:<name>/metric" — both contain
// characters that are illegal in a Prometheus metric name. The renderer
// maps them losslessly onto the exposition's own structure:
//
//   gemm.calls                ->  remapd_gemm_calls
//   job:alpha/fleet.slices    ->  remapd_fleet_slices{job="alpha"}
//
// so the same logical metric from many jobs lands in one metric family,
// split by a "job" label, instead of exploding into per-job families.
// Histograms render as Prometheus summaries (quantile series + _sum +
// _count) since the pow2 buckets track p50/p95/p99, not le-buckets.
#pragma once

#include <string>

#include "telemetry/registry.hpp"

namespace remapd {
namespace telemetry {

/// A registry name split back into its logical parts: "job:<job>/<metric>"
/// (the JobLabelScope qualified form) -> {metric, job}; any other name is
/// {name, ""}. The job segment extends to the *last* '/', since job names
/// are user-controlled and may themselves contain slashes, while metric
/// names (code-controlled) never do.
struct MetricKey {
  std::string metric;
  std::string job;
};
[[nodiscard]] MetricKey metric_key(const std::string& registry_name);

/// "remapd_" + metric with every character outside [a-zA-Z0-9_] mapped to
/// '_' (the exposition's legal name charset, minus ':' which is reserved
/// for recording rules).
[[nodiscard]] std::string prometheus_metric_name(const std::string& metric);

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline.
[[nodiscard]] std::string prometheus_label_value(const std::string& raw);

/// Render a snapshot: one "# TYPE" block per metric family, families
/// name-sorted, job-labelled series grouped with their unlabelled
/// siblings. Counters/gauges map directly; histograms become summaries.
[[nodiscard]] std::string prometheus_text(const RegistrySnapshot& snap);

/// Render the live registry (Registry::instance().snapshot()).
[[nodiscard]] std::string prometheus_text();

/// The Content-Type the exposition format mandates.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace telemetry
}  // namespace remapd
