#include "telemetry/export.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace remapd {
namespace telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Microseconds with ns resolution, the unit chrome://tracing expects.
std::string us_from_ns(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void append_event_fields(std::ostringstream& os, const TraceEvent& ev) {
  os << "\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
     << json_escape(ev.cat) << "\",\"ph\":\"" << ev.ph << "\"";
}

/// Exact nearest-rank percentile over a sorted sample vector.
std::uint64_t exact_percentile(const std::vector<std::uint64_t>& sorted,
                               double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(std::max<double>(
      1.0, std::ceil(p * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

struct SpanSummary {
  std::vector<std::uint64_t> durations_ns;
  std::uint64_t total_ns = 0;
};

std::map<std::string, SpanSummary> summarize_spans(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, SpanSummary> by_name;
  for (const TraceEvent& ev : events) {
    if (ev.ph != 'X') continue;
    SpanSummary& s = by_name[ev.name];
    s.durations_ns.push_back(ev.dur_ns);
    s.total_ns += ev.dur_ns;
  }
  for (auto& [name, s] : by_name)
    std::sort(s.durations_ns.begin(), s.durations_ns.end());
  return by_name;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = TraceBuffer::instance().snapshot();
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{";
    append_event_fields(os, ev);
    os << ",\"ts\":" << us_from_ns(ev.ts_ns);
    if (ev.ph == 'X') os << ",\"dur\":" << us_from_ns(ev.dur_ns);
    if (ev.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (ev.ph == 's' || ev.ph == 'f') os << ",\"id\":" << ev.flow_id;
    if (ev.ph == 'f') os << ",\"bp\":\"e\"";  // bind to enclosing slice
    os << ",\"pid\":1,\"tid\":" << ev.tid;
    if (!ev.args_json.empty())
      os << ",\"args\":" << ev.args_json;
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

std::string jsonl() {
  std::ostringstream os;
  for (const TraceEvent& ev : TraceBuffer::instance().snapshot()) {
    const char* type = ev.ph == 'X'   ? "span"
                       : ev.ph == 's' ? "flow_start"
                       : ev.ph == 'f' ? "flow_finish"
                                      : "instant";
    os << "{\"type\":\"" << type << "\",";
    append_event_fields(os, ev);
    os << ",\"ts_ns\":" << ev.ts_ns << ",\"dur_ns\":" << ev.dur_ns
       << ",\"tid\":" << ev.tid << ",\"depth\":" << ev.depth;
    if (ev.flow_id) os << ",\"flow_id\":" << ev.flow_id;
    if (!ev.args_json.empty()) os << ",\"args\":" << ev.args_json;
    os << "}\n";
  }
  Registry& reg = Registry::instance();
  for (const auto& [name, value] : reg.counters())
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << value << "}\n";
  for (const auto& [name, value] : reg.gauges())
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << format_double(value) << "}\n";
  for (const auto& [name, h] : reg.histograms())
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(name)
       << "\",\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"p50\":" << h.p50
       << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}\n";
  return os.str();
}

std::string summary_table() {
  std::ostringstream os;
  os << "== telemetry summary ==\n";

  const auto spans = summarize_spans(TraceBuffer::instance().snapshot());
  if (!spans.empty()) {
    char line[256];
    os << "\nspans (wall time)\n";
    std::snprintf(line, sizeof(line), "%-32s %8s %12s %10s %10s %10s\n",
                  "name", "count", "total(ms)", "p50(ms)", "p95(ms)",
                  "max(ms)");
    os << line;
    for (const auto& [name, s] : spans) {
      std::snprintf(line, sizeof(line),
                    "%-32s %8zu %12.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                    s.durations_ns.size(), ms(s.total_ns),
                    ms(exact_percentile(s.durations_ns, 0.50)),
                    ms(exact_percentile(s.durations_ns, 0.95)),
                    ms(s.durations_ns.empty() ? 0 : s.durations_ns.back()));
      os << line;
    }
  }

  Registry& reg = Registry::instance();
  const auto counters = reg.counters();
  if (!counters.empty()) {
    os << "\ncounters\n";
    for (const auto& [name, value] : counters) {
      char line[256];
      std::snprintf(line, sizeof(line), "%-48s %16llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      os << line;
    }
  }

  const auto gauges = reg.gauges();
  if (!gauges.empty()) {
    os << "\ngauges\n";
    for (const auto& [name, value] : gauges) {
      char line[256];
      std::snprintf(line, sizeof(line), "%-48s %16.6g\n", name.c_str(), value);
      os << line;
    }
  }

  const auto hists = reg.histograms();
  if (!hists.empty()) {
    char line[256];
    os << "\nhistograms\n";
    std::snprintf(line, sizeof(line), "%-32s %8s %12s %12s %12s %12s\n",
                  "name", "count", "mean", "p50", "p95", "max");
    os << line;
    for (const auto& [name, h] : hists) {
      std::snprintf(line, sizeof(line),
                    "%-32s %8llu %12.1f %12llu %12llu %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(h.count), h.mean(),
                    static_cast<unsigned long long>(h.p50),
                    static_cast<unsigned long long>(h.p95),
                    static_cast<unsigned long long>(h.max));
      os << line;
    }
  }

  const std::uint64_t dropped = TraceBuffer::instance().dropped();
  if (dropped)
    os << "\n(" << dropped << " trace events dropped at the buffer cap)\n";
  return os.str();
}

bool write_file(const std::string& path, const std::string& contents,
                bool append) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::ofstream f(path,
                  std::ios::binary | (append ? std::ios::app : std::ios::trunc));
  if (!f) {
    log_warn("telemetry: cannot open ", path, " for writing");
    return false;
  }
  f << contents;
  return static_cast<bool>(f);
}

bool write_file(const std::string& path, const std::string& contents) {
  return write_file(path, contents, false);
}

namespace {
std::atomic<bool> g_resume_append{false};
}  // namespace

void set_resume_append(bool on) {
  g_resume_append.store(on, std::memory_order_relaxed);
}

bool resume_append() {
  return g_resume_append.load(std::memory_order_relaxed);
}

std::string versioned_resume_path(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    dot = path.size();
  for (unsigned n = 1;; ++n) {
    std::string candidate = path.substr(0, dot) + ".resume" +
                            std::to_string(n) + path.substr(dot);
    if (!std::ifstream(candidate).good()) return candidate;
  }
}

bool write_chrome_trace(const std::string& path) {
  // A Chrome trace is one JSON array; a resumed run cannot append to the
  // interrupted leg's array, so it versions the path instead.
  const std::string target =
      resume_append() && path != "-" ? versioned_resume_path(path) : path;
  return write_file(target, chrome_trace_json());
}

bool write_jsonl(const std::string& path) {
  return write_file(path, jsonl(), resume_append());
}

bool write_summary(const std::string& path) {
  return write_file(path, summary_table(), resume_append());
}

namespace {
/// Guards the append-mode flush: with resume_append() set, every call past
/// the first would append a second copy of the same lines (the manual
/// daemon flush, std::atexit, and the terminate handler can all fire in
/// one shutdown). Truncate-mode flushes rewrite the same bytes and stay
/// unguarded — re-running them is how a daemon's final flush overrides an
/// earlier mid-run flush.
std::atomic<bool> g_append_flush_done{false};
}  // namespace

void flush_to_env_paths() {
  if (resume_append() && g_append_flush_done.exchange(true)) return;
  const std::string trace = env_str("REMAPD_TRACE", "");
  if (!trace.empty() && write_chrome_trace(trace))
    log_info("telemetry: wrote Chrome trace to ", trace, " (",
             TraceBuffer::instance().size(), " events)");
  const std::string metrics = env_str("REMAPD_METRICS", "");
  if (!metrics.empty()) {
    const bool as_jsonl =
        metrics.size() >= 6 && metrics.ends_with(".jsonl");
    if (as_jsonl ? write_jsonl(metrics) : write_summary(metrics))
      log_info("telemetry: wrote metrics to ", metrics);
  }
}

namespace {

std::terminate_handler g_prev_terminate = nullptr;

/// std::terminate path (uncaught exception, etc.): flush before chaining to
/// the previous handler, so a crashing run still leaves its trace behind.
[[noreturn]] void terminate_flush() {
  flush_to_env_paths();
  if (g_prev_terminate) g_prev_terminate();
  std::abort();
}

}  // namespace

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string trace = env_str("REMAPD_TRACE", "");
    const std::string metrics = env_str("REMAPD_METRICS", "");
    if (trace.empty() && metrics.empty()) return;
    set_enabled(true);
    std::atexit(flush_to_env_paths);
    g_prev_terminate = std::set_terminate(terminate_flush);
  });
}

void reset_all() {
  TraceBuffer::instance().clear();
  Registry::instance().reset();
  g_append_flush_done.store(false, std::memory_order_relaxed);
}

}  // namespace telemetry
}  // namespace remapd
