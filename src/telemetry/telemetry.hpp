// Umbrella header for the telemetry subsystem: registry (counters, gauges,
// histograms), RAII trace spans, and exporters, plus the small gated
// helpers call sites actually use.
//
//   REMAPD_TRACE_SPAN("bist-survey", "trainer");           // scoped timer
//   telemetry::count("core.remap.events");                 // cold-path add
//   telemetry::KernelTimer t(calls, ns_hist);              // hot-path timer
//
// Everything is a no-op behind one relaxed atomic load until collection is
// enabled (REMAPD_TRACE / REMAPD_METRICS env vars, or set_enabled(true)).
#pragma once

#include "telemetry/export.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace remapd {
namespace telemetry {

/// Bump a named counter iff telemetry is enabled. Does a registry lookup;
/// fine for per-epoch / per-round paths, use cached handles + KernelTimer
/// for per-call hot loops.
inline void count(const std::string& name, std::uint64_t n = 1) {
  if (enabled()) Registry::instance().counter(name).add(n);
}

/// Set a named gauge iff telemetry is enabled.
inline void gauge_set(const std::string& name, double v) {
  if (enabled()) Registry::instance().gauge(name).set(v);
}

/// Record into a named histogram iff telemetry is enabled.
inline void observe(const std::string& name, std::uint64_t v) {
  if (enabled()) Registry::instance().histogram(name).record(v);
}

/// Hot-path scoped timer over cached handles: bumps `calls` on entry and
/// records elapsed ns into `latency` on exit. Call sites keep the handles
/// in function-local statics so the per-call cost when disabled is the
/// single enabled() branch.
class KernelTimer {
 public:
  KernelTimer(Counter& calls, Histogram& latency)
      : latency_(latency), armed_(enabled()) {
    if (armed_) {
      calls.add();
      start_ = now_ns();
    }
  }
  ~KernelTimer() {
    if (armed_) latency_.record(now_ns() - start_);
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  Histogram& latency_;
  std::uint64_t start_ = 0;
  bool armed_ = false;
};

}  // namespace telemetry
}  // namespace remapd

// Scoped span with a unique variable name; forwards to the TraceSpan ctor
// (name, optional category, optional args-JSON).
#define REMAPD_TELEMETRY_CONCAT_INNER(a, b) a##b
#define REMAPD_TELEMETRY_CONCAT(a, b) REMAPD_TELEMETRY_CONCAT_INNER(a, b)
#define REMAPD_TRACE_SPAN(...)                               \
  ::remapd::telemetry::TraceSpan REMAPD_TELEMETRY_CONCAT(    \
      remapd_trace_span_, __LINE__)(__VA_ARGS__)
