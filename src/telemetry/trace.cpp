#include "telemetry/trace.hpp"

#include <chrono>

#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"

namespace remapd {
namespace telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Env autoconfiguration: runs during static initialization of any binary
// that links an instrumented translation unit, so REMAPD_TRACE /
// REMAPD_METRICS work without per-main() wiring.
const bool g_env_init = [] {
  init_from_env();
  return true;
}();

// Per-thread span nesting depth.
thread_local std::uint32_t t_depth = 0;

/// Fold the active job label and trace id (if any) into an event's args
/// JSON so every span/instant of a multiplexed fleet job is attributable
/// in the trace, and a migrated job's spans share one id across chips.
std::string with_job_label(std::string args_json) {
  std::string label = job_label();
  const std::uint64_t trace_id = job_trace_id();
  if (label.empty() && trace_id == 0) return args_json;
  // The registry label is the metric qualifier ("job:<name>"); the trace
  // tag carries just the name.
  if (label.rfind("job:", 0) == 0) label.erase(0, 4);
  std::string tag;
  if (!label.empty()) tag = "\"job\":\"" + json_escape(label) + "\"";
  if (trace_id != 0) {
    if (!tag.empty()) tag += ",";
    tag += "\"trace_id\":" + std::to_string(trace_id);
  }
  if (args_json.empty()) return "{" + tag + "}";
  // args_json is a JSON object by contract; splice the tag in as its
  // first member.
  const std::size_t brace = args_json.find('{');
  if (brace == std::string::npos) return args_json;  // malformed: leave as-is
  const std::size_t first = args_json.find_first_not_of(" \t\r\n", brace + 1);
  const bool empty_obj = first == std::string::npos || args_json[first] == '}';
  args_json.insert(brace + 1, empty_obj ? tag : tag + ",");
  return args_json;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceBuffer& TraceBuffer::instance() {
  // Leaked so atexit exporters outlive static destruction (see Registry).
  static TraceBuffer* b = new TraceBuffer();
  return *b;
}

void TraceBuffer::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

TraceSpan::TraceSpan(std::string_view name, std::string_view cat,
                     std::string args_json) {
  if (!enabled()) return;
  active_ = true;
  name_.assign(name);
  cat_.assign(cat);
  args_ = with_job_label(std::move(args_json));
  depth_ = t_depth++;
  start_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end = now_ns();
  --t_depth;
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.cat = std::move(cat_);
  ev.args_json = std::move(args_);
  ev.ts_ns = start_;
  ev.dur_ns = end - start_;
  ev.tid = current_thread_id();
  ev.depth = depth_;
  ev.ph = 'X';
  TraceBuffer::instance().record(std::move(ev));
}

void trace_instant(std::string_view name, std::string_view cat,
                   std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.args_json = with_job_label(std::move(args_json));
  ev.ts_ns = now_ns();
  ev.tid = current_thread_id();
  ev.depth = t_depth;
  ev.ph = 'i';
  TraceBuffer::instance().record(std::move(ev));
}

namespace {

void record_flow(char ph, std::string_view name, std::string_view cat,
                 std::uint64_t flow_id, std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.args_json = with_job_label(std::move(args_json));
  ev.ts_ns = now_ns();
  ev.flow_id = flow_id;
  ev.tid = current_thread_id();
  ev.depth = t_depth;
  ev.ph = ph;
  TraceBuffer::instance().record(std::move(ev));
}

}  // namespace

void trace_flow_start(std::string_view name, std::string_view cat,
                      std::uint64_t flow_id, std::string args_json) {
  record_flow('s', name, cat, flow_id, std::move(args_json));
}

void trace_flow_finish(std::string_view name, std::string_view cat,
                       std::uint64_t flow_id, std::string args_json) {
  record_flow('f', name, cat, flow_id, std::move(args_json));
}

}  // namespace telemetry
}  // namespace remapd
