// Process-wide registry of named counters, gauges, and fixed-bucket
// histograms. Instruments the hot paths of the stack (GEMM/im2col, BIST
// surveys, remap rounds, NoC traffic) so every bench and experiment can
// report a perf trajectory.
//
// Design constraints:
//   - Handles returned by the registry (`Counter&` etc.) are stable for the
//     process lifetime, so call sites may cache them across calls.
//   - All mutation is thread-safe with relaxed atomics: values are only read
//     at export time, so no ordering is needed.
//   - Collection is opt-in (see telemetry/trace.hpp): call sites gate their
//     updates on `telemetry::enabled()`, a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace remapd {
namespace telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Summary of a histogram at one point in time (for exporters).
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket power-of-two histogram of non-negative integer samples
/// (nanoseconds, cycles, hop counts...). Bucket b >= 1 holds the values
/// whose bit width is b, i.e. [2^(b-1), 2^b - 1]; bucket 0 holds zeros.
/// Quantiles are therefore upper bounds with at most 2x relative error,
/// which is plenty for p50/p95 reporting; exact sum/min/max are kept
/// alongside.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const;
  [[nodiscard]] std::uint64_t min() const;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const;
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]),
  /// clamped to the observed max. 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] HistogramStats stats() const;
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Largest value bucket `b` can hold.
  static std::uint64_t bucket_upper_bound(std::size_t b);
  static std::size_t bucket_index(std::uint64_t v);
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide job label for metric attribution. While a label is set,
/// Registry lookups resolve "name" to "<label>/name" and TraceSpans tag
/// their events with {"job": "<label>"}, so the instrument streams of many
/// jobs multiplexed through one process (src/fleet/) stay separate and
/// attributable instead of interleaving into one blended stream.
///
/// Call sites that cache an instrument handle (the GEMM/im2col/NoC hot
/// paths hold function-local static references) keep the identity they
/// resolved first — by design those remain process-wide aggregates; the
/// per-epoch trainer metrics and any fleet-level instruments resolve fresh
/// on every use and therefore split per job.
void set_job_label(std::string label);  ///< empty string clears the label
[[nodiscard]] std::string job_label();

/// Numeric trace-correlation id accompanying the job label. While nonzero,
/// every span/instant/flow event is additionally tagged with
/// {"trace_id": N}, so all of one fleet job's spans — across chips and
/// migrations — share one stable id in the Chrome trace.
void set_job_trace_id(std::uint64_t id);  ///< 0 clears the id
[[nodiscard]] std::uint64_t job_trace_id();

/// RAII job-label scope wrapping one job's slice of work. Restores the
/// previous label and trace id (usually empty/0) on destruction, so nested
/// scopes and non-fleet callers compose.
class JobLabelScope {
 public:
  explicit JobLabelScope(std::string label, std::uint64_t trace_id = 0);
  ~JobLabelScope();
  JobLabelScope(const JobLabelScope&) = delete;
  JobLabelScope& operator=(const JobLabelScope&) = delete;

 private:
  std::string prev_;
  std::uint64_t prev_id_ = 0;
};

/// Point-in-time copy of every instrument, taken under one lock so the
/// three sections are mutually consistent. This is the read API the live
/// observability surfaces (Prometheus /metrics, /status) render from —
/// serving readers never hold registry locks across rendering.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
};

/// Name -> instrument map. Instruments are created on first access and live
/// for the process lifetime (the singleton is intentionally leaked so
/// atexit-time exporters never race instrument destruction).
class Registry {
 public:
  static Registry& instance();

  /// Lookup by name, qualified by the active job label (see job_label()).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All instruments in one locked pass (name-sorted within each kind).
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Name-sorted snapshots for the exporters.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramStats>>
  histograms() const;

  /// Zero every instrument (registrations survive; cached handles stay
  /// valid). Intended for tests.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace remapd
