#include "telemetry/prometheus.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace remapd {
namespace telemetry {

namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// One rendered series: the optional label set and the value text.
struct Series {
  std::string labels;  ///< "" or "job=\"alpha\"" (no braces)
  std::string suffix;  ///< "" or "_sum" / "_count" for summaries
  std::string value;
};

struct Family {
  const char* type = "counter";
  std::vector<Series> series;
};

std::string label_set(const MetricKey& key, const std::string& extra = "") {
  std::string out;
  if (!key.job.empty())
    out = "job=\"" + prometheus_label_value(key.job) + "\"";
  if (!extra.empty()) {
    if (!out.empty()) out += ",";
    out += extra;
  }
  return out;
}

void emit(std::ostringstream& os, const std::string& family_name,
          const Family& fam) {
  os << "# TYPE " << family_name << " " << fam.type << "\n";
  for (const Series& s : fam.series) {
    os << family_name << s.suffix;
    if (!s.labels.empty()) os << "{" << s.labels << "}";
    os << " " << s.value << "\n";
  }
}

}  // namespace

MetricKey metric_key(const std::string& registry_name) {
  if (registry_name.rfind("job:", 0) == 0) {
    const std::size_t slash = registry_name.find_last_of('/');
    if (slash != std::string::npos && slash > 4)
      return {registry_name.substr(slash + 1), registry_name.substr(4, slash - 4)};
  }
  return {registry_name, ""};
}

std::string prometheus_metric_name(const std::string& metric) {
  std::string out = "remapd_";
  out.reserve(out.size() + metric.size());
  for (const char c : metric) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_label_value(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_text(const RegistrySnapshot& snap) {
  // Group by family first: the exposition format requires every series of
  // one metric name to sit in one block, and the registry interleaves
  // job-qualified names ("job:a/x") with their plain siblings ("x").
  std::map<std::string, Family> families;

  for (const auto& [name, value] : snap.counters) {
    const MetricKey key = metric_key(name);
    Family& fam = families[prometheus_metric_name(key.metric)];
    fam.type = "counter";
    fam.series.push_back({label_set(key), "", std::to_string(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    const MetricKey key = metric_key(name);
    Family& fam = families[prometheus_metric_name(key.metric)];
    fam.type = "gauge";
    fam.series.push_back({label_set(key), "", format_value(value)});
  }
  std::ostringstream os;
  for (const auto& [fname, fam] : families) emit(os, fname, fam);

  // Histograms render as summaries; a summary's quantile/_sum/_count lines
  // form their own family block, so they are grouped separately.
  std::map<std::string, Family> summaries;
  for (const auto& [name, h] : snap.histograms) {
    const MetricKey key = metric_key(name);
    Family& fam = summaries[prometheus_metric_name(key.metric)];
    fam.type = "summary";
    fam.series.push_back(
        {label_set(key, "quantile=\"0.5\""), "", std::to_string(h.p50)});
    fam.series.push_back(
        {label_set(key, "quantile=\"0.95\""), "", std::to_string(h.p95)});
    fam.series.push_back(
        {label_set(key, "quantile=\"0.99\""), "", std::to_string(h.p99)});
    fam.series.push_back({label_set(key), "_sum", std::to_string(h.sum)});
    fam.series.push_back({label_set(key), "_count", std::to_string(h.count)});
  }
  for (const auto& [fname, fam] : summaries) emit(os, fname, fam);
  return os.str();
}

std::string prometheus_text() {
  return prometheus_text(Registry::instance().snapshot());
}

}  // namespace telemetry
}  // namespace remapd
