#include "telemetry/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace remapd {
namespace telemetry {

namespace {

std::mutex& label_mutex() {
  static std::mutex mu;
  return mu;
}

std::string& label_storage() {
  static std::string label;
  return label;
}

std::atomic<std::uint64_t>& trace_id_storage() {
  static std::atomic<std::uint64_t> id{0};
  return id;
}

/// "<label>/name" under an active job label, plain name otherwise.
std::string qualified(const std::string& name) {
  std::lock_guard<std::mutex> lock(label_mutex());
  const std::string& label = label_storage();
  return label.empty() ? name : label + "/" + name;
}

}  // namespace

void set_job_label(std::string label) {
  std::lock_guard<std::mutex> lock(label_mutex());
  label_storage() = std::move(label);
}

std::string job_label() {
  std::lock_guard<std::mutex> lock(label_mutex());
  return label_storage();
}

void set_job_trace_id(std::uint64_t id) {
  trace_id_storage().store(id, std::memory_order_relaxed);
}

std::uint64_t job_trace_id() {
  return trace_id_storage().load(std::memory_order_relaxed);
}

JobLabelScope::JobLabelScope(std::string label, std::uint64_t trace_id)
    : prev_(job_label()), prev_id_(job_trace_id()) {
  set_job_label(std::move(label));
  set_job_trace_id(trace_id);
}

JobLabelScope::~JobLabelScope() {
  set_job_label(std::move(prev_));
  set_job_trace_id(prev_id_);
}

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return std::min(b, kBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t b) {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the quantile sample, 1-based; ceil so p=0.5 of 2 samples is the
  // first, matching the nearest-rank definition.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(p * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum >= rank) return std::min(bucket_upper_bound(b), max());
  }
  return max();
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b)
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Leaked on purpose: atexit exporters must be able to read the registry
  // after static destruction has begun.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  const std::string q = qualified(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[q];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::string q = qualified(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[q];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::string q = qualified(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[q];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h->stats());
  return s;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramStats>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramStats>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->stats());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace telemetry
}  // namespace remapd
