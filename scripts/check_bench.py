#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory records.

Runs `bench_gemm --json`, `bench_kernels --json`, `bench_fleet --json`,
`bench_scenarios --json` and `bench_quant --json` from a build tree and
compares the fresh records
against the committed baselines in bench/baselines/. Three classes of
field, three rules:

* Deterministic fields (scheduler step counts, job outcomes, latency
  percentiles measured on the fleet's virtual step clock, the gemm/kernels
  determinism verdicts, the scenario-ordering booleans) are
  machine-independent by the repo's determinism contract — they must match
  the baseline EXACTLY. A drift here is a behavior change smuggled in as a
  perf delta.
* Wall-clock fields (median_ms, wall_seconds, ...) track machine speed:
  the fresh value must stay under baseline * --slack (default 3.0 — CI
  runners are noisy; the gate is for order-of-magnitude regressions, the
  archived artifacts are for trend analysis).
* Throughput fields (gflops, jobs_per_min, ...) regress downward: the
  fresh value must stay above baseline / --slack.

Usage:
  check_bench.py [--build-dir build] [--baseline-dir bench/baselines]
                 [--slack 3.0] [--out-dir .] [--update]

--update rewrites the baselines from the fresh run (commit the result).
Fresh records are always written to --out-dir as BENCH_gemm.json /
BENCH_fleet.json so CI can archive them per commit.

Exit codes: 0 pass, 1 regression, 2 bad usage / missing binaries.
"""

import argparse
import json
import os
import subprocess
import sys

# (bench, json-path-in-record) -> exact match required.
# Paths use '.' for object fields; 'points[]' compares point lists matched
# on (workload, threads).
GEMM_EXACT = ["deterministic"]
GEMM_POINT_WALL = ["median_ms"]  # per-point wall-clock fields
GEMM_POINT_FLOOR = ["gflops"]    # per-point throughput floors (if present)

KERNELS_EXACT = ["deterministic"]
KERNELS_POINT_WALL = ["median_ms"]
KERNELS_POINT_FLOOR = ["gflops"]

FLEET_EXACT = [
    "summary.chips",
    "summary.submitted",
    "summary.rejected",
    "summary.completed",
    "summary.failed",
    "summary.migrations",
    "summary.steps",
    "summary.epochs_trained",
    "summary.queue_wait_steps.count",
    "summary.queue_wait_steps.mean",
    "summary.queue_wait_steps.p50",
    "summary.queue_wait_steps.p95",
    "summary.queue_wait_steps.p99",
    "summary.completion_latency_steps.count",
    "summary.completion_latency_steps.mean",
    "summary.completion_latency_steps.p50",
    "summary.completion_latency_steps.p95",
    "summary.completion_latency_steps.p99",
]
FLEET_WALL = [
    "summary.wall_seconds",
    "summary.jobs_per_min",
    "summary.epochs_per_min",
]

# Scenario head-to-heads: the ordering verdicts are the point of the bench
# — a flipped ordering is a scenario-model or policy regression, not a perf
# delta. The float accuracy points are machine-shaped (kernel dispatch) and
# deliberately not gated.
SCENARIOS_EXACT = [
    "deterministic",
    "orderings.refresh_beats_none_transient",
    "orderings.altmap_beats_static_irdrop",
    "orderings.remapd_beats_none_saf",
]
SCENARIOS_WALL = ["wall_seconds"]

# Quantized-conductance bench: the determinism verdict (1-vs-4-thread int8
# GEMM byte identity) and the ordering booleans (int8 >= 2x fp32
# single-thread; 4-bit within 1pt of fp32 under each scenario) are the
# contract — exact. GEMM point timings get the usual wall/floor treatment;
# the accuracy points carry no timing fields and are gated through the
# ordering booleans instead of raw floats.
QUANT_EXACT = [
    "deterministic",
    "orderings.int8_2x_fp32_1t",
    "orderings.four_bit_within_1pt_saf",
    "orderings.four_bit_within_1pt_saf_transient",
    "orderings.four_bit_within_1pt_saf_irdrop",
]
QUANT_POINT_WALL = ["median_ms"]
QUANT_POINT_FLOOR = ["gflops"]
QUANT_WALL = ["wall_seconds"]


def dig(record, path):
    cur = record
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


class Gate:
    def __init__(self, slack):
        self.slack = slack
        self.rows = []  # (bench, field, baseline, fresh, rule, ok)
        self.failed = False

    def exact(self, bench, field, baseline, fresh):
        ok = baseline == fresh
        self.rows.append((bench, field, baseline, fresh, "exact", ok))
        if not ok:
            self.failed = True

    def wall(self, bench, field, baseline, fresh):
        if baseline is None or fresh is None:
            self.exact(bench, field, baseline, fresh)  # force a visible FAIL
            return
        limit = baseline * self.slack
        ok = fresh <= limit
        rule = f"<= {self.slack:g}x"
        self.rows.append((bench, field, baseline, fresh, rule, ok))
        if not ok:
            self.failed = True

    def floor(self, bench, field, baseline, fresh):
        """Throughput: fresh must stay above baseline / slack."""
        if baseline is None or fresh is None:
            self.exact(bench, field, baseline, fresh)  # force a visible FAIL
            return
        ok = fresh >= baseline / self.slack
        rule = f">= /{self.slack:g}"
        self.rows.append((bench, field, baseline, fresh, rule, ok))
        if not ok:
            self.failed = True

    def report(self):
        wf = max((len(r[1]) for r in self.rows), default=10)
        print(f"{'bench':<6} {'field':<{wf}} {'baseline':>14} "
              f"{'fresh':>14} {'rule':>8}  verdict")
        for bench, field, baseline, fresh, rule, ok in self.rows:
            print(f"{bench:<6} {field:<{wf}} {str(baseline):>14} "
                  f"{str(fresh):>14} {rule:>8}  "
                  f"{'PASS' if ok else 'FAIL'}")
        print()
        if self.failed:
            print("check_bench: REGRESSION — see FAIL rows above")
        else:
            print(f"check_bench: PASS ({len(self.rows)} checks)")


def run_bench(binary, out_path):
    if not os.path.exists(binary):
        sys.exit(f"check_bench: missing bench binary {binary} "
                 f"(build the repo first) [exit 2]")
    res = subprocess.run([binary, "--json", out_path],
                         stdout=subprocess.DEVNULL)
    if res.returncode != 0:
        sys.exit(f"check_bench: {binary} exited {res.returncode} [exit 2]")
    with open(out_path) as f:
        return json.load(f)


def check_points(gate, bench, baseline, fresh, exact_fields, wall_fields,
                 floor_fields):
    """Point lists matched on (workload, threads): wall fields bounded
    above, throughput floors bounded below. Both are checked only where
    the baseline point reports them — benches mix timing points with
    accuracy points that carry neither field."""
    for field in exact_fields:
        gate.exact(bench, field, dig(baseline, field), dig(fresh, field))
    base_points = {(p["workload"], p["threads"]): p
                   for p in baseline.get("points", [])}
    fresh_points = {(p["workload"], p["threads"]): p
                    for p in fresh.get("points", [])}
    # Every baseline point must still exist — a silently dropped workload
    # is not a pass.
    for key, bp in sorted(base_points.items()):
        fp = fresh_points.get(key)
        label = f"points[{key[0]},t{key[1]}]"
        if fp is None:
            gate.exact(bench, label, "present", "missing")
            continue
        for field in wall_fields:
            if field in bp:
                gate.wall(bench, f"{label}.{field}", bp.get(field),
                          fp.get(field))
        for field in floor_fields:
            if field in bp:
                gate.floor(bench, f"{label}.{field}", bp.get(field),
                           fp.get(field))


def check_gemm(gate, baseline, fresh):
    check_points(gate, "gemm", baseline, fresh, GEMM_EXACT,
                 GEMM_POINT_WALL, GEMM_POINT_FLOOR)


def check_kernels(gate, baseline, fresh):
    check_points(gate, "kernels", baseline, fresh, KERNELS_EXACT,
                 KERNELS_POINT_WALL, KERNELS_POINT_FLOOR)


def check_scenarios(gate, baseline, fresh):
    for field in SCENARIOS_EXACT:
        gate.exact("scen", field, dig(baseline, field), dig(fresh, field))
    for field in SCENARIOS_WALL:
        gate.wall("scen", field, dig(baseline, field), dig(fresh, field))


def check_quant(gate, baseline, fresh):
    check_points(gate, "quant", baseline, fresh, QUANT_EXACT,
                 QUANT_POINT_WALL, QUANT_POINT_FLOOR)
    for field in QUANT_WALL:
        gate.wall("quant", field, dig(baseline, field), dig(fresh, field))


def check_fleet(gate, baseline, fresh):
    for field in FLEET_EXACT:
        gate.exact("fleet", field, dig(baseline, field), dig(fresh, field))
    for field in FLEET_WALL:
        b, f = dig(baseline, field), dig(fresh, field)
        if field == "summary.wall_seconds":
            gate.wall("fleet", field, b, f)
        else:
            # Throughputs regress downward.
            gate.floor("fleet", field, b, f)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--out-dir", default=".")
    ap.add_argument("--slack", type=float, default=3.0,
                    help="wall-clock tolerance multiplier (default 3.0)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite baselines from the fresh run")
    args = ap.parse_args()

    benches = [
        ("gemm", os.path.join(args.build_dir, "bench", "bench_gemm"),
         check_gemm),
        ("kernels", os.path.join(args.build_dir, "bench", "bench_kernels"),
         check_kernels),
        ("fleet", os.path.join(args.build_dir, "bench", "bench_fleet"),
         check_fleet),
        ("scenarios",
         os.path.join(args.build_dir, "bench", "bench_scenarios"),
         check_scenarios),
        ("quant", os.path.join(args.build_dir, "bench", "bench_quant"),
         check_quant),
    ]

    gate = Gate(args.slack)
    for name, binary, checker in benches:
        fresh_path = os.path.join(args.out_dir, f"BENCH_{name}.json")
        fresh = run_bench(binary, fresh_path)
        baseline_path = os.path.join(args.baseline_dir,
                                     f"BENCH_{name}.json")
        if args.update:
            with open(baseline_path, "w") as f:
                json.dump(fresh, f)
                f.write("\n")
            print(f"check_bench: rewrote {baseline_path}")
            continue
        if not os.path.exists(baseline_path):
            sys.exit(f"check_bench: no baseline {baseline_path} "
                     f"(run with --update to create) [exit 2]")
        with open(baseline_path) as f:
            baseline = json.load(f)
        checker(gate, baseline, fresh)

    if args.update:
        return 0
    gate.report()
    return 1 if gate.failed else 0


if __name__ == "__main__":
    sys.exit(main())
