#!/usr/bin/env python3
"""Plot the CSV outputs of the figure benches (matplotlib, optional).

Each bench writes its series next to the working directory it ran in:
  fig4_bist_current.csv, fig5_phase_tolerance.csv, fig6_solutions.csv,
  fig7_postfault_sweep.csv, fig8_scalability.csv, noc_overhead.csv,
  area_breakdown.csv, ablation.csv

Usage: plot_results.py [csv_dir] [out_dir]
Produces one PNG per figure in out_dir (default: csv_dir).

Health mode: plot_results.py --health run.jsonl [out_dir]
Reads the reliability-observatory stream written under REMAPD_HEALTH (see
src/obs/ and tools/remapd_report) and produces, per run in the stream:
  health_density_run<N>.png  fault-density-over-epochs time-series (true vs
                             BIST estimate) for the most degraded crossbars
  health_noc_run<N>.png      per-router NoC flit heatmap of the remap rounds
"""

import csv
import json
import os
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def read_health_runs(path):
    """Group a health JSONL stream into runs: [{type: [records...]}, ...]."""
    runs = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: parse error: {e}")
            kind = rec.get("type", "")
            if kind == "run" or not runs:
                runs.append({"run": [], "health": [], "noc": [],
                             "remap": [], "epoch": []})
            if kind in runs[-1]:
                runs[-1][kind].append(rec)
    return runs


def plot_health(path, out_dir, plt, save, top_k=6):
    for n, run in enumerate(read_health_runs(path)):
        info = run["run"][0] if run["run"] else {}
        title = "{} / {}".format(info.get("model", "?"),
                                 info.get("policy", "?"))

        health = run["health"]
        if health:
            last_epoch = max(h["epoch"] for h in health)
            worst = sorted((h for h in health if h["epoch"] == last_epoch),
                           key=lambda h: -h["true_density"])[:top_k]
            fig, ax = plt.subplots(figsize=(8, 4))
            for w in worst:
                series = sorted((h for h in health if h["xbar"] == w["xbar"]),
                                key=lambda h: h["epoch"])
                es = [h["epoch"] for h in series]
                (ln,) = ax.plot(es, [h["true_density"] for h in series],
                                "o-", label="xbar {}".format(w["xbar"]))
                ax.plot(es, [h["est_density"] for h in series], "--",
                        color=ln.get_color(), alpha=0.6)
            ax.set_xlabel("epoch")
            ax.set_ylabel("fault density (solid: true, dashed: BIST est.)")
            ax.set_title(f"{title}: top-{len(worst)} degraded crossbars")
            ax.legend(fontsize=8)
            save(fig, f"health_density_run{n}.png")

        noc = run["noc"]
        if noc:
            routers = sorted({int(r["router"]) for r in noc})
            epochs = sorted({int(r["epoch"]) for r in noc})
            # Router grid of the c-mesh: ceil(tiles/2) per axis.
            rx = max(1, (int(info.get("tiles_x", 2)) + 1) // 2)
            grid = [[0.0] * rx for _ in range(max(routers) // rx + 1)]
            per_epoch = [[0.0] * len(routers) for _ in epochs]
            for r in noc:
                flits = r.get("flits", 0)
                grid[int(r["router"]) // rx][int(r["router"]) % rx] += flits
                per_epoch[epochs.index(int(r["epoch"]))][
                    routers.index(int(r["router"]))] += flits
            fig, axes = plt.subplots(1, 2, figsize=(10, 4))
            im = axes[0].imshow(grid, cmap="inferno", origin="lower")
            axes[0].set_title(f"{title}: total flits per router")
            axes[0].set_xlabel("router x")
            axes[0].set_ylabel("router y")
            fig.colorbar(im, ax=axes[0])
            im = axes[1].imshow(per_epoch, cmap="inferno", aspect="auto",
                                origin="lower")
            axes[1].set_yticks(range(len(epochs)), epochs)
            axes[1].set_xlabel("router id")
            axes[1].set_ylabel("epoch")
            axes[1].set_title("flits per router per remap round")
            fig.colorbar(im, ax=axes[1])
            save(fig, f"health_noc_run{n}.png")


def main():
    args = [a for a in sys.argv[1:]]
    health_path = None
    if "--health" in args:
        i = args.index("--health")
        try:
            health_path = args[i + 1]
        except IndexError:
            sys.exit("usage: plot_results.py --health run.jsonl [out_dir]")
        del args[i:i + 2]
        csv_dir = None
        out_dir = args[0] if args else os.path.dirname(health_path) or "."
    else:
        csv_dir = args[0] if args else "."
        out_dir = args[1] if len(args) > 1 else csv_dir

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; install it to plot", file=sys.stderr)
        return 1

    def save(fig, name):
        path = os.path.join(out_dir, name)
        fig.tight_layout()
        fig.savefig(path, dpi=150)
        print("wrote", path)

    if health_path is not None:
        plot_health(health_path, out_dir, plt, save)
        return 0

    # Fig. 4: current vs fault count.
    p = os.path.join(csv_dir, "fig4_bist_current.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, axes = plt.subplots(1, 2, figsize=(9, 3.5))
        for ax, test in zip(axes, ("SA0", "SA1")):
            sel = [r for r in rows if r["test"] == test and r["rows"] == "4"]
            ks = [int(r["faults"]) for r in sel]
            ax.plot(ks, [float(r["mean_uA"]) for r in sel], "o-", label="mean")
            ax.fill_between(ks, [float(r["min_uA"]) for r in sel],
                            [float(r["max_uA"]) for r in sel], alpha=0.3)
            ax.set_xlabel(f"# {test} faults in column")
            ax.set_ylabel("output current (uA)")
            ax.set_title(f"{test} test (4x4 array)")
        save(fig, "fig4.png")

    # Fig. 5: phase tolerance bars.
    p = os.path.join(csv_dir, "fig5_phase_tolerance.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, ax = plt.subplots(figsize=(7, 3.5))
        models = [r["model"] for r in rows]
        x = range(len(models))
        w = 0.27
        for i, key in enumerate(("ideal", "forward", "backward")):
            ax.bar([xi + (i - 1) * w for xi in x],
                   [float(r[key]) for r in rows], w, label=key)
        ax.set_xticks(list(x), models)
        ax.set_ylabel("test accuracy")
        ax.legend()
        ax.set_title("Fig. 5: 2% faults in forward vs backward crossbars")
        save(fig, "fig5.png")

    # Fig. 6: solution comparison.
    p = os.path.join(csv_dir, "fig6_solutions.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        keys = [k for k in rows[0] if k != "model"]
        fig, ax = plt.subplots(figsize=(10, 4))
        x = range(len(rows))
        w = 0.8 / len(keys)
        for i, key in enumerate(keys):
            ax.bar([xi + i * w for xi in x], [float(r[key]) for r in rows],
                   w, label=key)
        ax.set_xticks([xi + 0.4 for xi in x], [r["model"] for r in rows])
        ax.set_ylabel("test accuracy")
        ax.legend(ncol=4, fontsize=8)
        ax.set_title("Fig. 6: fault-tolerance solutions under pre+post faults")
        save(fig, "fig6.png")

    # Fig. 7: (m, n) sweep heat lines.
    p = os.path.join(csv_dir, "fig7_postfault_sweep.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        models = sorted({r["model"] for r in rows})
        fig, axes = plt.subplots(1, len(models), figsize=(9, 3.5))
        if len(models) == 1:
            axes = [axes]
        for ax, model in zip(axes, models):
            sel = [r for r in rows if r["model"] == model]
            for n in sorted({r["n_pct"] for r in sel}, key=float):
                pts = [r for r in sel if r["n_pct"] == n]
                ax.plot([float(r["m_pct"]) for r in pts],
                        [float(r["accuracy"]) for r in pts], "o-",
                        label=f"n={n}%")
            ax.axhline(float(sel[0]["ideal"]), ls="--", c="gray")
            ax.set_xlabel("m (% new cells/epoch)")
            ax.set_ylabel("accuracy")
            ax.set_title(model)
            ax.legend(fontsize=8)
        save(fig, "fig7.png")

    # Fig. 8: scalability bars.
    p = os.path.join(csv_dir, "fig8_scalability.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, ax = plt.subplots(figsize=(8, 3.5))
        labels = [f'{r["dataset"]}\n{r["model"]}' for r in rows]
        x = range(len(rows))
        w = 0.27
        for i, key in enumerate(("ideal", "none", "remap_d")):
            ax.bar([xi + (i - 1) * w for xi in x],
                   [float(r[key]) for r in rows], w, label=key)
        ax.set_xticks(list(x), labels, fontsize=7)
        ax.set_ylabel("test accuracy")
        ax.legend()
        ax.set_title("Fig. 8: scalability (harder datasets)")
        save(fig, "fig8.png")

    return 0


if __name__ == "__main__":
    sys.exit(main())
