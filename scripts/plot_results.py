#!/usr/bin/env python3
"""Plot the CSV outputs of the figure benches (matplotlib, optional).

Each bench writes its series next to the working directory it ran in:
  fig4_bist_current.csv, fig5_phase_tolerance.csv, fig6_solutions.csv,
  fig7_postfault_sweep.csv, fig8_scalability.csv, noc_overhead.csv,
  area_breakdown.csv, ablation.csv

Usage: plot_results.py [csv_dir] [out_dir]
Produces one PNG per figure in out_dir (default: csv_dir).
"""

import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    out_dir = sys.argv[2] if len(sys.argv) > 2 else csv_dir

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; install it to plot", file=sys.stderr)
        return 1

    def save(fig, name):
        path = os.path.join(out_dir, name)
        fig.tight_layout()
        fig.savefig(path, dpi=150)
        print("wrote", path)

    # Fig. 4: current vs fault count.
    p = os.path.join(csv_dir, "fig4_bist_current.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, axes = plt.subplots(1, 2, figsize=(9, 3.5))
        for ax, test in zip(axes, ("SA0", "SA1")):
            sel = [r for r in rows if r["test"] == test and r["rows"] == "4"]
            ks = [int(r["faults"]) for r in sel]
            ax.plot(ks, [float(r["mean_uA"]) for r in sel], "o-", label="mean")
            ax.fill_between(ks, [float(r["min_uA"]) for r in sel],
                            [float(r["max_uA"]) for r in sel], alpha=0.3)
            ax.set_xlabel(f"# {test} faults in column")
            ax.set_ylabel("output current (uA)")
            ax.set_title(f"{test} test (4x4 array)")
        save(fig, "fig4.png")

    # Fig. 5: phase tolerance bars.
    p = os.path.join(csv_dir, "fig5_phase_tolerance.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, ax = plt.subplots(figsize=(7, 3.5))
        models = [r["model"] for r in rows]
        x = range(len(models))
        w = 0.27
        for i, key in enumerate(("ideal", "forward", "backward")):
            ax.bar([xi + (i - 1) * w for xi in x],
                   [float(r[key]) for r in rows], w, label=key)
        ax.set_xticks(list(x), models)
        ax.set_ylabel("test accuracy")
        ax.legend()
        ax.set_title("Fig. 5: 2% faults in forward vs backward crossbars")
        save(fig, "fig5.png")

    # Fig. 6: solution comparison.
    p = os.path.join(csv_dir, "fig6_solutions.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        keys = [k for k in rows[0] if k != "model"]
        fig, ax = plt.subplots(figsize=(10, 4))
        x = range(len(rows))
        w = 0.8 / len(keys)
        for i, key in enumerate(keys):
            ax.bar([xi + i * w for xi in x], [float(r[key]) for r in rows],
                   w, label=key)
        ax.set_xticks([xi + 0.4 for xi in x], [r["model"] for r in rows])
        ax.set_ylabel("test accuracy")
        ax.legend(ncol=4, fontsize=8)
        ax.set_title("Fig. 6: fault-tolerance solutions under pre+post faults")
        save(fig, "fig6.png")

    # Fig. 7: (m, n) sweep heat lines.
    p = os.path.join(csv_dir, "fig7_postfault_sweep.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        models = sorted({r["model"] for r in rows})
        fig, axes = plt.subplots(1, len(models), figsize=(9, 3.5))
        if len(models) == 1:
            axes = [axes]
        for ax, model in zip(axes, models):
            sel = [r for r in rows if r["model"] == model]
            for n in sorted({r["n_pct"] for r in sel}, key=float):
                pts = [r for r in sel if r["n_pct"] == n]
                ax.plot([float(r["m_pct"]) for r in pts],
                        [float(r["accuracy"]) for r in pts], "o-",
                        label=f"n={n}%")
            ax.axhline(float(sel[0]["ideal"]), ls="--", c="gray")
            ax.set_xlabel("m (% new cells/epoch)")
            ax.set_ylabel("accuracy")
            ax.set_title(model)
            ax.legend(fontsize=8)
        save(fig, "fig7.png")

    # Fig. 8: scalability bars.
    p = os.path.join(csv_dir, "fig8_scalability.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, ax = plt.subplots(figsize=(8, 3.5))
        labels = [f'{r["dataset"]}\n{r["model"]}' for r in rows]
        x = range(len(rows))
        w = 0.27
        for i, key in enumerate(("ideal", "none", "remap_d")):
            ax.bar([xi + (i - 1) * w for xi in x],
                   [float(r[key]) for r in rows], w, label=key)
        ax.set_xticks(list(x), labels, fontsize=7)
        ax.set_ylabel("test accuracy")
        ax.legend()
        ax.set_title("Fig. 8: scalability (harder datasets)")
        save(fig, "fig8.png")

    return 0


if __name__ == "__main__":
    sys.exit(main())
