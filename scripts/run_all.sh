#!/bin/sh
# Build, test, and regenerate every figure/table of the paper.
# Usage: scripts/run_all.sh [build_dir]
set -e
BUILD=${1:-build}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee test_output.txt

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *.cmake) continue ;; esac
  echo "===== $(basename "$b") ====="
  "$b"
done 2>&1 | tee bench_output.txt

# Optional: PNG plots from the bench CSVs (needs matplotlib).
python3 "$(dirname "$0")/plot_results.py" . . || true
