#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/remap_d.hpp"
#include "core/remap_policy.hpp"

namespace remapd {
namespace {

/// Fixture: a 4x4-tile RCS (128 crossbars of 32x32), one layer of 64x64
/// weights -> 4 forward + 4 backward tasks on crossbars 0..7.
class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : rng_(7) {
    RcsConfig cfg;
    cfg.tiles_x = cfg.tiles_y = 4;
    cfg.xbar_rows = cfg.xbar_cols = 32;
    rcs_ = std::make_unique<Rcs>(cfg);
    mapper_ = std::make_unique<WeightMapper>(*rcs_);
    mapper_->map_layers({{64, 64}});
    density_.reset(rcs_->total_crossbars());
    weights_ = Tensor::randn(Shape{64, 64}, rng_);
    importance_ = Tensor::zeros(Shape{64, 64});
  }

  PolicyContext context() {
    PolicyContext ctx;
    ctx.mapper = mapper_.get();
    ctx.density = &density_;
    ctx.rng = &rng_;
    ctx.layers.resize(1);
    ctx.layers[0].initial_weights = &weights_;
    ctx.layers[0].grad_importance = &importance_;
    return ctx;
  }

  void set_density(XbarId x, double d) {
    auto all = density_.all();
    all[x] = d;
    density_.update(std::move(all));
  }

  Rng rng_;
  std::unique_ptr<Rcs> rcs_;
  std::unique_ptr<WeightMapper> mapper_;
  FaultDensityMap density_;
  Tensor weights_, importance_;
};

// ------------------------------------------------------- FaultDensityMap

TEST(FaultDensityMap, UpdateAndQueries) {
  FaultDensityMap map(4);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.surveys(), 0u);
  map.update({0.1, 0.0, 0.3, 0.2});
  EXPECT_EQ(map.surveys(), 1u);
  EXPECT_DOUBLE_EQ(map.density(2), 0.3);
  EXPECT_DOUBLE_EQ(map.mean(), 0.15);
  EXPECT_DOUBLE_EQ(map.max(), 0.3);
  EXPECT_EQ(map.above(0.15), (std::vector<std::size_t>{2, 3}));
  EXPECT_THROW(map.update({0.1}), std::invalid_argument);
}

TEST(FaultDensityMap, ResetRedimensions) {
  FaultDensityMap map;
  map.reset(3);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_DOUBLE_EQ(map.mean(), 0.0);
}

TEST(FaultDensityMap, ErrorVsTruthExactStats) {
  FaultDensityMap map(4);
  map.update({0.10, 0.20, 0.05, 0.00});
  // Signed errors vs truth: +0.02, -0.02, +0.05, 0.00.
  const DensityErrorStats s = map.error_vs({0.08, 0.22, 0.00, 0.00});
  EXPECT_NEAR(s.mean_abs, (0.02 + 0.02 + 0.05 + 0.0) / 4.0, 1e-12);
  EXPECT_NEAR(s.max_abs, 0.05, 1e-12);
  EXPECT_NEAR(s.mean_signed, (0.02 - 0.02 + 0.05 + 0.0) / 4.0, 1e-12);
}

TEST(FaultDensityMap, ErrorVsPerfectEstimateIsZero) {
  FaultDensityMap map(3);
  map.update({0.1, 0.2, 0.3});
  const DensityErrorStats s = map.error_vs({0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(s.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_signed, 0.0);
}

TEST(FaultDensityMap, ErrorVsSizeMismatchThrows) {
  FaultDensityMap map(4);
  EXPECT_THROW(static_cast<void>(map.error_vs({0.1, 0.2})),
               std::invalid_argument);
}

// ------------------------------------------------------------ criticality

TEST(TaskCriticality, BackwardIsCritical) {
  EXPECT_TRUE(is_critical(Phase::kBackward));
  EXPECT_FALSE(is_critical(Phase::kForward));
  EXPECT_TRUE(can_receive(Phase::kForward));
  EXPECT_FALSE(can_receive(Phase::kBackward));
}

// ----------------------------------------------------------------- RemapD

TEST_F(PolicyTest, RemapDMovesCriticalTaskOffFaultyCrossbar) {
  // Backward tasks are on crossbars 4..7. Make crossbar 4 hot.
  const TaskId bwd_task = mapper_->task_on(4);
  ASSERT_EQ(mapper_->task(bwd_task).phase, Phase::kBackward);
  set_density(4, 0.01);

  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  ASSERT_EQ(policy.last_events().size(), 1u);
  EXPECT_EQ(policy.last_events()[0].sender_xbar, 4u);
  EXPECT_NE(mapper_->xbar_of(bwd_task), 4u);
  // The receiver has lower estimated density than the sender had.
  EXPECT_LT(density_.density(mapper_->xbar_of(bwd_task)), 0.01);
}

TEST_F(PolicyTest, RemapDIgnoresModeratelyFaultyForwardTasks) {
  // A forward task's crossbar above the *backward* threshold but below the
  // forward-rescue threshold: no request (forward is fault-tolerant).
  set_density(0, 0.005);
  ASSERT_EQ(mapper_->task(mapper_->task_on(0)).phase, Phase::kForward);
  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  EXPECT_TRUE(policy.last_events().empty());
}

TEST_F(PolicyTest, RemapDRescuesForwardTaskFromQuarantinedCrossbar) {
  // Beyond the rescue threshold, even a forward task evacuates — but only
  // to an *idle* crossbar (nothing is displaced onto the hot array).
  const TaskId fwd_task = mapper_->task_on(0);
  set_density(0, 0.05);
  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  ASSERT_EQ(policy.last_events().size(), 1u);
  EXPECT_EQ(policy.last_events()[0].sender_xbar, 0u);
  const XbarId dest = policy.last_events()[0].receiver_xbar;
  EXPECT_EQ(mapper_->xbar_of(fwd_task), dest);
  EXPECT_EQ(mapper_->task_on(0), kNoTask);  // hot crossbar quarantined
  EXPECT_GE(dest, 8u);                      // previously-idle crossbar
}

TEST_F(PolicyTest, RemapDRescueDisabledByConfig) {
  set_density(0, 0.05);
  RemapDConfig cfg;
  cfg.forward_rescue_threshold = 0.0;
  RemapD policy(cfg);
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  EXPECT_TRUE(policy.last_events().empty());
}

TEST_F(PolicyTest, RemapDRespectsThreshold) {
  set_density(5, 0.0001);  // below the default 0.0005 threshold
  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  EXPECT_TRUE(policy.last_events().empty());

  set_density(5, 0.01);
  policy.on_epoch_end(ctx);
  EXPECT_EQ(policy.last_events().size(), 1u);
  EXPECT_EQ(policy.total_remaps(), 1u);
}

TEST_F(PolicyTest, RemapDNeverPicksBackwardReceiver) {
  // All crossbars moderately faulty except backward-task crossbar 6.
  auto all = density_.all();
  for (XbarId x = 0; x < all.size(); ++x) all[x] = 0.005;
  all[6] = 0.0;  // best crossbar, but holds a backward task
  all[10] = 0.001;  // idle crossbar, second best
  density_.update(std::move(all));

  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  for (const RemapEvent& e : policy.last_events())
    EXPECT_NE(e.receiver_xbar, 6u);
}

TEST_F(PolicyTest, RemapDPicksNearestReceiver) {
  // Sender on crossbar 4 (tile 0). Two candidate receivers: idle crossbar
  // on tile 1 (near) and idle crossbar on tile 15 (far), same density.
  const std::size_t per_tile = rcs_->config().xbars_per_tile();
  const XbarId near_x = per_tile;            // tile 1
  const XbarId far_x = 15 * per_tile;        // tile 15
  auto all = density_.all();
  // 0.01 everywhere else: not below the sender's density (so ineligible as
  // receivers) and not above the forward-rescue threshold.
  for (XbarId x = 0; x < all.size(); ++x)
    if (x != near_x && x != far_x) all[x] = 0.01;
  all[4] = 0.01;                              // the (only) sender
  all[5] = all[6] = all[7] = 0.0;             // other backward: no request
  all[near_x] = 0.0;
  all[far_x] = 0.0;
  density_.update(std::move(all));

  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  ASSERT_EQ(policy.last_events().size(), 1u);
  EXPECT_EQ(policy.last_events()[0].receiver_xbar, near_x);
}

TEST_F(PolicyTest, RemapDReceiverServesOneSenderPerRound) {
  set_density(4, 0.01);
  set_density(5, 0.01);
  // Only one eligible receiver.
  auto all = density_.all();
  for (XbarId x = 8; x < all.size(); ++x) all[x] = 0.02;
  all[20] = 0.0;
  density_.update(std::move(all));
  // Forward crossbars 0..3 share density 0 -> also receivers. Force them
  // ineligible to isolate the single-receiver behaviour.
  all = density_.all();
  for (XbarId x = 0; x < 4; ++x) all[x] = 0.02;
  density_.update(std::move(all));

  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  EXPECT_EQ(policy.last_events().size(), 1u);
  EXPECT_EQ(policy.last_events()[0].receiver_xbar, 20u);
}

TEST_F(PolicyTest, RemapDOnTrainingStartActsLikeEpochEnd) {
  set_density(4, 0.01);
  RemapD policy;
  PolicyContext ctx = context();
  policy.on_training_start(ctx);
  EXPECT_EQ(policy.last_events().size(), 1u);
}

// ---------------------------------------------------------- StaticMapping

TEST_F(PolicyTest, StaticPlacesBackwardTasksOnBestCrossbars) {
  // Give every crossbar a distinct density; the 4 backward tasks must end
  // on the 4 least-dense crossbars.
  auto all = density_.all();
  for (XbarId x = 0; x < all.size(); ++x)
    all[x] = 0.001 * static_cast<double>(all.size() - x);
  density_.update(std::move(all));

  StaticMapping policy;
  PolicyContext ctx = context();
  policy.on_training_start(ctx);

  std::vector<XbarId> backward = mapper_->xbars_of_phase(Phase::kBackward);
  std::sort(backward.begin(), backward.end());
  // Least dense crossbars are the highest ids under this ramp.
  const std::size_t total = rcs_->total_crossbars();
  EXPECT_EQ(backward,
            (std::vector<XbarId>{total - 4, total - 3, total - 2, total - 1}));
}

TEST_F(PolicyTest, StaticDoesNothingAtEpochEnd) {
  StaticMapping policy;
  PolicyContext ctx = context();
  policy.on_training_start(ctx);
  const std::size_t initial = policy.total_remaps();
  policy.on_epoch_end(ctx);
  EXPECT_EQ(policy.total_remaps(), initial);
}

// ----------------------------------------------------------- view filters

FaultView make_view(std::initializer_list<std::uint32_t> indices) {
  FaultView v;
  v.w_max = 1.0f;
  for (auto i : indices)
    v.clamps.push_back(WeightClamp{i, WeightClampKind::kPosStuck1});
  return v;
}

TEST_F(PolicyTest, RemapWsDropsClampsOnSignificantWeights) {
  // Mark weight 0 as the most significant, weight 1 as the least.
  weights_.fill(0.01f);
  weights_[0] = 10.0f;
  weights_[1] = 0.001f;

  RemapWS policy(0.05);
  PolicyContext ctx = context();
  FaultView filtered =
      policy.filter_view(0, Phase::kForward, make_view({0, 1}), ctx);
  ASSERT_EQ(filtered.clamps.size(), 1u);
  EXPECT_EQ(filtered.clamps[0].index, 1u);
  EXPECT_DOUBLE_EQ(policy.area_overhead_percent(), 5.0);
}

TEST_F(PolicyTest, RemapTopNUsesGradientImportance) {
  importance_.fill(0.0f);
  importance_[3] = 100.0f;  // hottest gradient
  RemapTopN policy(0.05);
  PolicyContext ctx = context();
  FaultView filtered =
      policy.filter_view(0, Phase::kBackward, make_view({3, 7}), ctx);
  ASSERT_EQ(filtered.clamps.size(), 1u);
  EXPECT_EQ(filtered.clamps[0].index, 7u);
  EXPECT_EQ(policy.name(), "remap-t-5%");
  EXPECT_DOUBLE_EQ(policy.area_overhead_percent(), 5.0);
}

TEST_F(PolicyTest, AnCodeCorrectsOnlyLowDensityCrossbars) {
  // Layer is 64x64 over 4 forward blocks: (0,0)-block on crossbar 0,
  // (0,32)-block on crossbar 1. Weight (0,0) -> index 0 lives on block 0;
  // weight (0,40) -> index 40 on block 1.
  set_density(0, 0.0);    // within capability -> corrected
  set_density(1, 0.05);   // beyond capability -> kept

  AnCodePolicy policy(0.001);
  PolicyContext ctx = context();
  FaultView filtered =
      policy.filter_view(0, Phase::kForward, make_view({0, 40}), ctx);
  ASSERT_EQ(filtered.clamps.size(), 1u);
  EXPECT_EQ(filtered.clamps[0].index, 40u);
  EXPECT_DOUBLE_EQ(policy.area_overhead_percent(), 6.3);
}

TEST_F(PolicyTest, NoProtectionKeepsEverything) {
  NoProtection policy;
  PolicyContext ctx = context();
  FaultView view = make_view({1, 2, 3});
  FaultView filtered = policy.filter_view(0, Phase::kForward, view, ctx);
  EXPECT_EQ(filtered.clamps.size(), 3u);
  EXPECT_DOUBLE_EQ(policy.area_overhead_percent(), 0.0);
}

// ----------------------------------------------------------------- factory

TEST(PolicyFactory, CreatesAllFigSixPolicies) {
  for (const char* name : {"remap-d", "static", "remap-ws", "remap-t-5",
                           "remap-t-10", "an-code", "none"}) {
    PolicyPtr p = make_policy(name);
    ASSERT_NE(p, nullptr) << name;
  }
  EXPECT_EQ(make_policy("remap-d")->name(), "remap-d");
  EXPECT_EQ(make_policy("remap-t-10")->name(), "remap-t-10%");
  EXPECT_THROW(make_policy("magic"), std::invalid_argument);
}

}  // namespace
}  // namespace remapd
