#include <gtest/gtest.h>

#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"

namespace remapd {
namespace {

TEST(ConvGeom, OutputDims) {
  ConvGeom g{3, 16, 16, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 16u);
  EXPECT_EQ(g.out_w(), 16u);
  EXPECT_EQ(g.col_rows(), 27u);
  EXPECT_EQ(g.col_cols(), 256u);

  ConvGeom s{8, 8, 8, 3, 3, 2, 1};
  EXPECT_EQ(s.out_h(), 4u);
  EXPECT_EQ(s.out_w(), 4u);

  ConvGeom one{4, 5, 5, 1, 1, 1, 0};
  EXPECT_EQ(one.out_h(), 5u);
  EXPECT_EQ(one.col_rows(), 4u);
}

/// Reference: direct gather per output position.
void naive_im2col(const float* img, const ConvGeom& g, float* col) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  for (std::size_t c = 0; c < g.channels; ++c)
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh)
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw)
        for (std::size_t y = 0; y < oh; ++y)
          for (std::size_t x = 0; x < ow; ++x) {
            const long iy = static_cast<long>(y * g.stride + kh) -
                            static_cast<long>(g.pad);
            const long ix = static_cast<long>(x * g.stride + kw) -
                            static_cast<long>(g.pad);
            const std::size_t row =
                (c * g.kernel_h + kh) * g.kernel_w + kw;
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<long>(g.height) && ix >= 0 &&
                ix < static_cast<long>(g.width))
              v = img[(c * g.height + static_cast<std::size_t>(iy)) *
                          g.width +
                      static_cast<std::size_t>(ix)];
            col[row * oh * ow + y * ow + x] = v;
          }
}

class Im2ColPropertyTest : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Im2ColPropertyTest, MatchesNaiveGather) {
  const ConvGeom g = GetParam();
  Rng rng(g.channels * 131 + g.height * 17 + g.kernel_h + g.stride);
  Tensor img = Tensor::randn(Shape{g.channels, g.height, g.width}, rng);
  const std::size_t n = g.col_rows() * g.col_cols();
  std::vector<float> fast(n), ref(n);
  im2col(img.data(), g, fast.data());
  naive_im2col(img.data(), g, ref.data());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(fast[i], ref[i]) << "at " << i;
}

TEST_P(Im2ColPropertyTest, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> characterizes the adjoint (the exact
  // property the conv backward pass relies on).
  const ConvGeom g = GetParam();
  Rng rng(g.channels + g.height * 3 + g.kernel_w * 7);
  Tensor x = Tensor::randn(Shape{g.channels, g.height, g.width}, rng);
  const std::size_t n = g.col_rows() * g.col_cols();
  Tensor y = Tensor::randn(Shape{n}, rng);

  std::vector<float> cx(n);
  im2col(x.data(), g, cx.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    lhs += static_cast<double>(cx[i]) * y[i];

  Tensor back = Tensor::zeros(x.shape());
  col2im(y.data(), g, back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, Im2ColPropertyTest,
    ::testing::Values(ConvGeom{1, 4, 4, 3, 3, 1, 1},
                      ConvGeom{3, 8, 8, 3, 3, 1, 1},
                      ConvGeom{2, 8, 8, 3, 3, 2, 1},
                      ConvGeom{4, 6, 6, 1, 1, 1, 0},
                      ConvGeom{2, 5, 7, 3, 3, 1, 0},
                      ConvGeom{1, 16, 16, 5, 5, 1, 2},
                      ConvGeom{3, 16, 16, 3, 3, 2, 1},
                      ConvGeom{8, 2, 2, 1, 1, 1, 0}));

TEST(Im2Col, ZeroPaddingProducesZeros) {
  ConvGeom g{1, 2, 2, 3, 3, 1, 1};
  Tensor img = Tensor::ones(Shape{1, 2, 2});
  std::vector<float> col(g.col_rows() * g.col_cols());
  im2col(img.data(), g, col.data());
  // Top-left kernel tap at output (0,0) reads the padded corner.
  EXPECT_EQ(col[0], 0.0f);
}

}  // namespace
}  // namespace remapd
