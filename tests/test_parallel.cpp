// Tests for the deterministic work-sharing layer (util/parallel) and for
// the thread-count invariance it promises: the same seed must produce
// bitwise-identical results whether REMAPD_THREADS is 1 or 4. Also holds
// the regression tests for the silent-correctness bugs fixed alongside it
// (NaN suppression in gemm, dropped out-of-range clamps, biased BatchNorm
// window variance, stale MaxPool argmax reuse).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "bist/controller.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/fault_view.hpp"
#include "nn/pooling.hpp"
#include "tensor/gemm.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/fault_model.hpp"
#include "xbar/rcs.hpp"

namespace remapd {
namespace {

/// Scoped thread-count override; restores the previous pool on exit so the
/// global configuration never leaks between tests.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~ThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

// ---------------------------------------------------------------------------
// parallel_for mechanics
// ---------------------------------------------------------------------------

TEST(Parallel, EveryIndexVisitedExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadGuard guard(threads);
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, std::size_t{100}}) {
      std::vector<std::atomic<int>> visits(53);
      parallel_for(2, 53, grain, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t i = b0; i < b1; ++i)
          visits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), i >= 2 ? 1 : 0)
            << "threads=" << threads << " grain=" << grain << " i=" << i;
    }
  }
}

TEST(Parallel, BlockStructureIndependentOfThreadCount) {
  // The (block index -> [b0, b1)) map is part of the determinism contract:
  // it may depend on range and grain only.
  const auto collect = [](std::size_t threads) {
    ThreadGuard guard(threads);
    std::map<std::size_t, std::pair<std::size_t, std::size_t>> blocks;
    std::mutex mu;
    parallel_for_blocks(
        5, 47, 4, [&](std::size_t b0, std::size_t b1, std::size_t blk) {
          std::lock_guard<std::mutex> lock(mu);
          EXPECT_TRUE(blocks.emplace(blk, std::make_pair(b0, b1)).second);
        });
    return blocks;
  };
  const auto serial = collect(1);
  const auto parallel = collect(4);
  EXPECT_EQ(serial.size(), num_blocks(5, 47, 4));
  EXPECT_EQ(serial, parallel);
}

TEST(Parallel, EmptyRangeAndZeroGrain) {
  ThreadGuard guard(4);
  bool ran = false;
  parallel_for(10, 10, 4, [&](std::size_t, std::size_t) { ran = true; });
  parallel_for(10, 3, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // grain 0 behaves as grain 1.
  EXPECT_EQ(num_blocks(0, 5, 0), 5u);
  std::atomic<int> count{0};
  parallel_for(0, 5, 0, [&](std::size_t b0, std::size_t b1) {
    count.fetch_add(static_cast<int>(b1 - b0));
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(Parallel, NestedLoopRunsInlineAndCoversRange) {
  ThreadGuard guard(4);
  EXPECT_FALSE(in_parallel_region());
  std::vector<std::atomic<int>> visits(24);
  parallel_for(0, 4, 1, [&](std::size_t o0, std::size_t o1) {
    EXPECT_TRUE(in_parallel_region());
    for (std::size_t o = o0; o < o1; ++o) {
      parallel_for(0, 6, 2, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          visits[o * 6 + i].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_FALSE(in_parallel_region());
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::size_t b0, std::size_t) {
                     if (b0 == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must still be usable after a failed job.
  std::atomic<int> count{0};
  parallel_for(0, 100, 1, [&](std::size_t b0, std::size_t b1) {
    count.fetch_add(static_cast<int>(b1 - b0));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, BackToBackGrowingJobsRunBlocksExactlyOnce) {
  // Regression: a worker that woke late for an already-finished job could
  // race the next job's cursor reset — its stale exhausted claim passed the
  // block-count check of a *larger* new job, running one block twice (and
  // leaving the caller waiting on an overshot done count). Alternate tiny
  // and large jobs back-to-back so stale wakeups from the tiny job overlap
  // the large job's publish.
  ThreadGuard guard(4);
  for (int round = 0; round < 200; ++round) {
    for (const std::size_t nblocks : {std::size_t{1}, std::size_t{64}}) {
      std::vector<std::atomic<int>> visits(nblocks);
      parallel_for_blocks(0, nblocks, 1,
                          [&](std::size_t, std::size_t, std::size_t blk) {
                            visits[blk].fetch_add(1,
                                                  std::memory_order_relaxed);
                          });
      for (std::size_t i = 0; i < nblocks; ++i)
        ASSERT_EQ(visits[i].load(), 1)
            << "round=" << round << " nblocks=" << nblocks << " blk=" << i;
    }
  }
}

TEST(Parallel, ReconfigureThreadCount) {
  ThreadGuard guard(4);
  EXPECT_EQ(parallel_threads(), 4u);
  set_parallel_threads(2);
  EXPECT_EQ(parallel_threads(), 2u);
  set_parallel_threads(0);  // 0 means serial, same as 1
  EXPECT_EQ(parallel_threads(), 1u);
}

TEST(Parallel, ReductionGrainCapsBlockCount) {
  for (const std::size_t range : {std::size_t{1}, std::size_t{7},
                                  std::size_t{16}, std::size_t{17},
                                  std::size_t{1000}}) {
    const std::size_t g = reduction_grain(range);
    EXPECT_LE(num_blocks(0, range, g), 16u) << "range=" << range;
    EXPECT_GE(g, 1u);
  }
}

// ---------------------------------------------------------------------------
// Bitwise thread-count invariance of the parallelized hot paths
// ---------------------------------------------------------------------------

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

TEST(ParallelDeterminism, GemmBitwise) {
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{64, 48}, rng);
  const Tensor b = Tensor::randn(Shape{48, 56}, rng);
  Tensor c1, c4;
  {
    ThreadGuard guard(1);
    c1 = matmul(a, b);
  }
  {
    ThreadGuard guard(4);
    c4 = matmul(a, b);
  }
  EXPECT_TRUE(bitwise_equal(c1, c4));
}

TEST(ParallelDeterminism, Conv2dForwardBackwardBitwise) {
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    Rng rng(23);
    Conv2d conv(3, 8, 3, 1, 1, rng);
    const Tensor x = Tensor::randn(Shape{6, 3, 10, 10}, rng);
    const Tensor y = conv.forward(x, /*train=*/true);
    Tensor dy = Tensor::randn(y.shape(), rng);
    const Tensor dx = conv.backward(dy);
    std::vector<Tensor> out{y, dx};
    for (Param* p : conv.params()) out.push_back(p->grad);
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(bitwise_equal(serial[i], parallel[i])) << "tensor " << i;
}

TEST(ParallelDeterminism, FaultInjectionBitwise) {
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    RcsConfig cfg;
    cfg.tiles_x = cfg.tiles_y = 2;
    cfg.xbar_rows = cfg.xbar_cols = 32;
    Rcs rcs(cfg);
    Rng rng(7);
    FaultInjector injector(FaultScenario::paper_default(), rng);
    injector.inject_pre_deployment(rcs);
    injector.inject_post_deployment(rcs);
    injector.inject_post_deployment(rcs);
    std::vector<std::set<std::pair<std::size_t, std::size_t>>> cells;
    for (XbarId id = 0; id < rcs.total_crossbars(); ++id) {
      const auto faulty = rcs.crossbar(id).faulty_cells();
      cells.emplace_back(faulty.begin(), faulty.end());
    }
    return cells;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelDeterminism, BistSurveyBitwise) {
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    RcsConfig cfg;
    cfg.tiles_x = cfg.tiles_y = 2;
    cfg.xbar_rows = cfg.xbar_cols = 32;
    Rcs rcs(cfg);
    Rng rng(13);
    FaultInjector injector(FaultScenario::paper_default(), rng);
    injector.inject_pre_deployment(rcs);
    std::uint64_t cycles = 0;
    const std::vector<double> densities =
        BistController{}.survey(rcs, &cycles);
    return std::make_pair(densities, cycles);
  };
  EXPECT_EQ(run(1), run(4));
}

// The end-to-end property the layer exists for: a full faulty training run
// (forward/backward gemms, BIST surveys, fault injection, remapping,
// evaluation) is bitwise reproducible across thread counts.
TEST(ParallelDeterminismSlow, TrainerBitwise) {
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    TrainerConfig cfg;
    cfg.model = "vgg11";
    cfg.epochs = 2;
    cfg.batch_size = 16;
    cfg.data.train = 48;
    cfg.data.test = 32;
    cfg.data.image_size = 12;
    cfg.policy = "remap-d";
    cfg.faults = FaultScenario::paper_default();
    FaultAwareTrainer trainer(cfg);
    const TrainResult r = trainer.run();
    std::vector<std::set<std::pair<std::size_t, std::size_t>>> cells;
    for (XbarId id = 0; id < trainer.rcs().total_crossbars(); ++id) {
      const auto faulty = trainer.rcs().crossbar(id).faulty_cells();
      cells.emplace_back(faulty.begin(), faulty.end());
    }
    return std::make_pair(r, cells);
  };
  const auto [r1, cells1] = run(1);
  const auto [r4, cells4] = run(4);
  ASSERT_EQ(r1.history.size(), r4.history.size());
  for (std::size_t e = 0; e < r1.history.size(); ++e) {
    EXPECT_EQ(r1.history[e].train_loss, r4.history[e].train_loss) << e;
    EXPECT_EQ(r1.history[e].train_accuracy, r4.history[e].train_accuracy) << e;
    EXPECT_EQ(r1.history[e].test_accuracy, r4.history[e].test_accuracy) << e;
    EXPECT_EQ(r1.history[e].remaps, r4.history[e].remaps) << e;
    EXPECT_EQ(r1.history[e].total_faults, r4.history[e].total_faults) << e;
    EXPECT_EQ(r1.history[e].new_faults, r4.history[e].new_faults) << e;
  }
  EXPECT_EQ(r1.final_test_accuracy, r4.final_test_accuracy);
  EXPECT_EQ(r1.total_remaps, r4.total_remaps);
  EXPECT_EQ(cells1, cells4);
}

// ---------------------------------------------------------------------------
// Regression: gemm must not suppress NaN/Inf from B via the zero-A skip
// ---------------------------------------------------------------------------

TEST(GemmRegression, NaNInBPropagatesThroughZeroA) {
  // Row of zeros in A times a column containing NaN: 0 * NaN = NaN, so the
  // product must be NaN. The old kernel skipped zero A entries and returned
  // a clean 0 instead.
  Tensor a = Tensor::zeros(Shape{2, 3});
  a[0] = 1.0f;  // a(0,0); row 1 stays all-zero
  Tensor b = Tensor::zeros(Shape{3, 2});
  b[0] = std::numeric_limits<float>::quiet_NaN();   // b(0,0)
  b[3] = std::numeric_limits<float>::infinity();    // b(1,1)
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c[0]));  // 1*NaN
  EXPECT_TRUE(std::isnan(c[1]));  // 1*NaN? no: c(0,1) = 0*Inf = NaN
  EXPECT_TRUE(std::isnan(c[2]));  // 0*NaN
  EXPECT_TRUE(std::isnan(c[3]));  // 0*Inf
}

TEST(GemmRegression, SparseAMatchesReference) {
  // A sparse A panel must produce the same values as the dense reference —
  // within FP tolerance: the packed kernel's accumulation grouping (and its
  // use of FMA where available) legitimately differs from a scalar triple
  // loop, but sparsity must never alter which products are issued.
  Rng rng(31);
  Tensor a = Tensor::randn(Shape{17, 9}, rng);
  for (std::size_t i = 0; i < a.numel(); i += 3) a[i] = 0.0f;
  const Tensor b = Tensor::randn(Shape{9, 13}, rng);
  const Tensor c = matmul(a, b);
  for (std::size_t i = 0; i < 17; ++i)
    for (std::size_t j = 0; j < 13; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 9; ++k)
        acc += static_cast<double>(a[i * 9 + k]) * b[k * 13 + j];
      EXPECT_NEAR(c[i * 13 + j], acc, 1e-5 * (std::abs(acc) + 1.0))
          << i << "," << j;
    }
}

// ---------------------------------------------------------------------------
// Regression: FaultView::apply must reject out-of-range clamps
// ---------------------------------------------------------------------------

TEST(FaultViewRegression, OutOfRangeClampThrows) {
  FaultView view;
  view.clamps.push_back({2, WeightClampKind::kPosStuck1});
  view.clamps.push_back({4, WeightClampKind::kPosStuck0});  // out of range
  const float w[4] = {0.1f, 0.2f, 0.3f, 0.4f};
  float out[4];
  EXPECT_THROW(view.apply(w, out, 4), std::out_of_range);

  view.clamps.pop_back();
  view.apply(w, out, 4);  // in-range clamps still apply cleanly
  EXPECT_EQ(out[2], view.w_max);
  EXPECT_EQ(out[0], w[0]);
}

// ---------------------------------------------------------------------------
// Regression: BatchNorm window statistics must pool variance exactly
// ---------------------------------------------------------------------------

TEST(BatchNormRegression, WindowStatsMatchPooledComputation) {
  // Feed batches whose *means* differ strongly; averaging per-batch
  // variances would ignore the between-batch variance and over-sharpen the
  // eval normalization. The window must reproduce the exact statistics of
  // all samples pooled together.
  const std::size_t channels = 2;
  BatchNorm bn(channels);
  bn.begin_stats_window();

  Rng rng(47);
  std::vector<Tensor> batches;
  const float shifts[3] = {-4.0f, 0.0f, 4.0f};
  for (const float shift : shifts) {
    Tensor x = Tensor::randn(Shape{8, channels}, rng);
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] += shift;
    batches.push_back(x);
    (void)bn.forward(x, /*train=*/true);
  }

  // Pooled per-channel mean/var over every sample of every batch.
  std::vector<double> mean(channels, 0.0), var(channels, 0.0);
  const std::size_t per_ch = 8 * batches.size();
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (const Tensor& x : batches)
      for (std::size_t nidx = 0; nidx < 8; ++nidx)
        mean[ch] += x[nidx * channels + ch];
    mean[ch] /= static_cast<double>(per_ch);
    for (const Tensor& x : batches)
      for (std::size_t nidx = 0; nidx < 8; ++nidx) {
        const double d = x[nidx * channels + ch] - mean[ch];
        var[ch] += d * d;
      }
    var[ch] /= static_cast<double>(per_ch);
  }

  // gamma starts at 1 and beta at 0, so eval output is plain (x-mean)/std.
  Tensor probe = Tensor::zeros(Shape{1, channels});
  for (std::size_t ch = 0; ch < channels; ++ch) probe[ch] = 1.5f;
  const Tensor y = bn.forward(probe, /*train=*/false);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const double expect =
        (1.5 - mean[ch]) / std::sqrt(var[ch] + 1e-5);
    EXPECT_NEAR(y[ch], expect, 1e-4) << "channel " << ch;
  }
}

// ---------------------------------------------------------------------------
// Regression: MaxPool backward after an eval forward must throw
// ---------------------------------------------------------------------------

TEST(MaxPoolRegression, BackwardAfterEvalForwardThrows) {
  Rng rng(5);
  MaxPool2d pool(2);
  const Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);

  Tensor y = pool.forward(x, /*train=*/true);
  EXPECT_NO_THROW((void)pool.backward(Tensor::zeros(y.shape())));

  // An eval forward invalidates the saved argmax; routing gradients with it
  // would silently use the *training* batch's indices.
  (void)pool.forward(x, /*train=*/false);
  EXPECT_THROW((void)pool.backward(Tensor::zeros(y.shape())),
               std::logic_error);

  // A fresh train forward re-arms backward.
  y = pool.forward(x, /*train=*/true);
  EXPECT_NO_THROW((void)pool.backward(Tensor::zeros(y.shape())));
}

}  // namespace
}  // namespace remapd
