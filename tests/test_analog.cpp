#include <gtest/gtest.h>

#include "analog/column_current.hpp"

namespace remapd {
namespace {

TEST(ColumnCurrent, FaultFreeBaseline) {
  CellParams p;
  // All-zero pattern: every cell at R_off.
  EXPECT_NEAR(fault_free_column_current(p, 128, TestPattern::kAllZero),
              p.read_voltage * 128.0 / p.r_off, 1e-12);
  // All-one pattern: every cell at R_on.
  EXPECT_NEAR(fault_free_column_current(p, 128, TestPattern::kAllOne),
              p.read_voltage * 128.0 / p.r_on, 1e-12);
}

TEST(ColumnCurrent, Sa1FaultsIncreaseCurrentUnderAllZero) {
  // Fig. 4(b): stuck-at-1 (low R) cells raise the column current when the
  // array is written to all-zero.
  CellParams p;
  double prev = synthetic_column_current(p, 4, 0, 2e3, TestPattern::kAllZero);
  for (std::size_t k = 1; k <= 4; ++k) {
    const double cur =
        synthetic_column_current(p, 4, k, 2e3, TestPattern::kAllZero);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(ColumnCurrent, Sa0FaultsDecreaseCurrentUnderAllOne) {
  // Fig. 4(a): stuck-at-0 (open) cells reduce the column current when the
  // array is written to all-one.
  CellParams p;
  double prev = synthetic_column_current(p, 4, 0, 1.5e6, TestPattern::kAllOne);
  for (std::size_t k = 1; k <= 4; ++k) {
    const double cur =
        synthetic_column_current(p, 4, k, 1.5e6, TestPattern::kAllOne);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ColumnCurrent, OrderingRobustToStuckResistanceVariation) {
  // The Fig. 4 claim: current remains a reliable fault-count indicator
  // under stuck-R variation. The paper's variation experiment samples SA1
  // in [1.5 kΩ, 2 kΩ] and sweeps 0-4 faults of a 4x4 array; worst case: k
  // faults at the weakest stuck R must still be distinguishable from k-1
  // faults at the strongest.
  CellParams p;
  for (std::size_t k = 1; k <= 3; ++k) {
    const double weak_k =
        synthetic_column_current(p, 128, k, 2.0e3, TestPattern::kAllZero);
    const double strong_km1 = synthetic_column_current(
        p, 128, k - 1, 1.5e3, TestPattern::kAllZero);
    EXPECT_GT(weak_k, strong_km1) << "k=" << k;
  }
}

TEST(ColumnCurrent, MatchesCrossbarStateModel) {
  Crossbar xb(4, 4);
  Rng rng(1);
  xb.inject_fault(1, 2, CellFault::kStuckAt1, rng);
  const CellParams& p = xb.params();

  // Column 2 has one SA1 fault: current = 3 healthy (R_off) + 1 stuck.
  const double expected =
      p.read_voltage * (3.0 / p.r_off + 1.0 / xb.stuck_resistance_at(1, 2));
  EXPECT_NEAR(column_current(xb, 2, TestPattern::kAllZero), expected, 1e-12);
  // Other columns are fault-free.
  EXPECT_NEAR(column_current(xb, 0, TestPattern::kAllZero),
              fault_free_column_current(p, 4, TestPattern::kAllZero), 1e-12);
}

TEST(ColumnCurrent, FaultInvisibleUnderMatchingPattern) {
  // An SA1 cell written to "1" is electrically healthy under the all-one
  // (SA0-test) read, and vice versa.
  Crossbar xb(4, 4);
  Rng rng(2);
  xb.inject_fault(0, 0, CellFault::kStuckAt1, rng);
  const CellParams& p = xb.params();
  const double healthy_allone =
      fault_free_column_current(p, 4, TestPattern::kAllOne);
  // SA1 resistance (1.5-3k) differs from R_on (10k), so the current is not
  // exactly healthy, but the *SA0 estimate* treats only large dips as
  // faults. What must hold: the SA1 fault does not reduce the current.
  EXPECT_GE(column_current(xb, 0, TestPattern::kAllOne),
            healthy_allone * 0.99);
}

TEST(ColumnCurrent, AllColumnsVectorMatchesPerColumn) {
  Crossbar xb(8, 8);
  Rng rng(3);
  xb.inject_random_faults(10, 0.5, rng);
  const auto all = all_column_currents(xb, TestPattern::kAllZero);
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_EQ(all[c], column_current(xb, c, TestPattern::kAllZero));
}

}  // namespace
}  // namespace remapd
