#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace remapd {
namespace {

TEST(Shape, NumelAndRank) {
  EXPECT_EQ((Shape{2, 3}).numel(), 6u);
  EXPECT_EQ((Shape{4}).numel(), 4u);
  EXPECT_EQ((Shape{2, 3, 4, 5}).numel(), 120u);
  EXPECT_EQ((Shape{2, 3}).rank(), 2u);
  EXPECT_EQ(Shape{}.numel(), 0u);
}

TEST(Shape, EqualityAndStr) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{3, 2}));
  EXPECT_EQ((Shape{2, 3}).str(), "[2x3]");
}

TEST(Tensor, ZerosOnesFill) {
  Tensor z = Tensor::zeros(Shape{2, 3});
  Tensor o = Tensor::ones(Shape{2, 3});
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(z[i], 0.0f);
    EXPECT_EQ(o[i], 1.0f);
  }
  z.fill(2.5f);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(z[i], 2.5f);
}

TEST(Tensor, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, At2DAnd4D) {
  Tensor t = Tensor::from_vector(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(1, 2), 5.0f);
  EXPECT_EQ(t.at(0, 1), 1.0f);

  Tensor u = Tensor::zeros(Shape{2, 3, 4, 5});
  u.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(u[(((1 * 3) + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t = Tensor::from_vector(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, AddAxpyScale) {
  Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
  Tensor b = Tensor::from_vector(Shape{3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[1], 22.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a[2], 48.0f);
  a.scale_(2.0f);
  EXPECT_EQ(a[0], 32.0f);
  Tensor wrong = Tensor::zeros(Shape{4});
  EXPECT_THROW(a.add_(wrong), std::invalid_argument);
}

TEST(Tensor, SumAbsMaxArgmax) {
  Tensor t = Tensor::from_vector(Shape{4}, {1, -5, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 1.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_EQ(t.argmax(), 2u);
}

TEST(Tensor, TransposeRoundTrip) {
  Rng rng(7);
  Tensor t = Tensor::randn(Shape{5, 3}, rng);
  Tensor tt = t.transposed().transposed();
  EXPECT_EQ(max_abs_diff(t, tt), 0.0f);
  EXPECT_EQ(t.transposed().shape(), (Shape{3, 5}));
}

TEST(Tensor, RandnStatistics) {
  Rng rng(11);
  Tensor t = Tensor::randn(Shape{10000}, rng, 2.0f);
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) mean += t[i];
  mean /= static_cast<double>(t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i)
    var += (t[i] - mean) * (t[i] - mean);
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Tensor, KaimingScalesWithFanIn) {
  Rng rng(13);
  Tensor t = Tensor::kaiming(Shape{64, 128}, 128, rng);
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) var += t[i] * t[i];
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 2.0 / 128.0, 0.3 * 2.0 / 128.0);
}

// ------------------------------------------------------------------- GEMM

TEST(Gemm, SmallKnownProduct) {
  Tensor a = Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector(Shape{2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{4, 4}, rng);
  Tensor eye = Tensor::zeros(Shape{4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  EXPECT_LT(max_abs_diff(matmul(a, eye), a), 1e-6f);
  EXPECT_LT(max_abs_diff(matmul(eye, a), a), 1e-6f);
}

TEST(Gemm, InnerDimMismatchThrows) {
  Tensor a = Tensor::zeros(Shape{2, 3});
  Tensor b = Tensor::zeros(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Gemm, BetaAccumulates) {
  Tensor a = Tensor::from_vector(Shape{1, 1}, {2});
  Tensor b = Tensor::from_vector(Shape{1, 1}, {3});
  float c = 10.0f;
  gemm(false, false, 1, 1, 1, 1.0f, a.data(), 1, b.data(), 1, 1.0f, &c, 1);
  EXPECT_FLOAT_EQ(c, 16.0f);
  gemm(false, false, 1, 1, 1, 2.0f, a.data(), 1, b.data(), 1, 0.0f, &c, 1);
  EXPECT_FLOAT_EQ(c, 12.0f);
}

/// Naive reference multiply for the property sweep.
Tensor naive_matmul(const Tensor& a, bool ta, const Tensor& b, bool tb) {
  const std::size_t m = ta ? a.shape()[1] : a.shape()[0];
  const std::size_t k = ta ? a.shape()[0] : a.shape()[1];
  const std::size_t n = tb ? b.shape()[0] : b.shape()[1];
  Tensor c(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        s += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(s);
    }
  return c;
}

struct GemmCase {
  std::size_t m, n, k;
  bool ta, tb;
};

class GemmPropertyTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmPropertyTest, MatchesNaiveReference) {
  const GemmCase& p = GetParam();
  Rng rng(1000 + p.m * 31 + p.n * 7 + p.k + (p.ta ? 2 : 0) + (p.tb ? 1 : 0));
  Tensor a = Tensor::randn(p.ta ? Shape{p.k, p.m} : Shape{p.m, p.k}, rng);
  Tensor b = Tensor::randn(p.tb ? Shape{p.n, p.k} : Shape{p.k, p.n}, rng);
  Tensor c = matmul(a, p.ta, b, p.tb);
  Tensor ref = naive_matmul(a, p.ta, b, p.tb);
  EXPECT_LT(max_abs_diff(c, ref), 1e-3f)
      << "m=" << p.m << " n=" << p.n << " k=" << p.k;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmPropertyTest,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false}, GemmCase{3, 5, 7, false, false},
        GemmCase{32, 32, 32, false, false}, GemmCase{33, 65, 70, false, false},
        GemmCase{64, 100, 27, false, false}, GemmCase{5, 3, 9, true, false},
        GemmCase{5, 3, 9, false, true}, GemmCase{5, 3, 9, true, true},
        GemmCase{40, 33, 65, true, false}, GemmCase{40, 33, 65, false, true},
        GemmCase{40, 33, 65, true, true}, GemmCase{1, 128, 50, false, false},
        GemmCase{128, 1, 50, false, true}));

}  // namespace
}  // namespace remapd
