#include <gtest/gtest.h>

#include "xbar/endurance.hpp"

namespace remapd {
namespace {

TEST(Endurance, CdfBasicProperties) {
  EnduranceModel model;
  EXPECT_DOUBLE_EQ(model.failure_cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.failure_cdf(-5.0), 0.0);
  // Monotone increasing toward 1.
  double prev = 0.0;
  for (double w : {50.0, 100.0, 200.0, 400.0, 800.0, 3200.0}) {
    const double c = model.failure_cdf(w);
    EXPECT_GT(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  // At the characteristic lifetime, CDF = 1 - 1/e.
  EXPECT_NEAR(model.failure_cdf(400.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(Endurance, WearOutHazardIncreases) {
  // Shape > 1: the conditional failure probability of an equally long
  // write interval grows with age.
  EnduranceModel model;
  const double young = model.interval_failure_probability(0.0, 50.0);
  const double old_ = model.interval_failure_probability(300.0, 350.0);
  EXPECT_GT(old_, young);
}

TEST(Endurance, NoWritesNoFailures) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 32;
  Rcs rcs(cfg);
  EnduranceModel model;
  Rng rng(1);
  EXPECT_EQ(model.advance_epoch(rcs, rng), 0u);
  EXPECT_EQ(rcs.mean_fault_density(), 0.0);
}

TEST(Endurance, HeavilyWrittenCrossbarsFailMore) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 64;
  Rcs rcs(cfg);
  // Crossbars 0..7 written heavily, the rest lightly.
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    for (int w = 0; w < (x < 8 ? 300 : 10); ++w)
      rcs.crossbar(x).record_array_write();

  EnduranceModel model;
  Rng rng(2);
  const std::size_t injected = model.advance_epoch(rcs, rng);
  EXPECT_GT(injected, 0u);
  std::size_t heavy = 0, light = 0;
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    (x < 8 ? heavy : light) += rcs.crossbar(x).fault_count();
  EXPECT_GT(heavy, light * 3);
}

TEST(Endurance, EpochsAreIncremental) {
  // Calling advance twice without new writes adds nothing the second time.
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 64;
  Rcs rcs(cfg);
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    for (int w = 0; w < 200; ++w) rcs.crossbar(x).record_array_write();

  EnduranceModel model;
  Rng rng(3);
  const std::size_t first = model.advance_epoch(rcs, rng);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(model.advance_epoch(rcs, rng), 0u);

  // More writes -> more failures on the next call.
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    for (int w = 0; w < 100; ++w) rcs.crossbar(x).record_array_write();
  EXPECT_GT(model.advance_epoch(rcs, rng), 0u);
}

TEST(Endurance, WearIsMonotoneOverEpochs) {
  // The observatory's per-crossbar time-series relies on wear being
  // cumulative: across epochs, write counters and fault counts never
  // decrease, and the CDF evaluated at the write counter never decreases.
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 64;
  Rcs rcs(cfg);
  EnduranceModel model;
  Rng rng(5);

  std::vector<std::size_t> prev_writes(rcs.total_crossbars(), 0);
  std::vector<std::size_t> prev_faults(rcs.total_crossbars(), 0);
  double prev_cdf = 0.0;
  for (int e = 0; e < 6; ++e) {
    for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
      for (int w = 0; w < 50; ++w) rcs.crossbar(x).record_array_write();
    model.advance_epoch(rcs, rng);
    for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
      const Crossbar& xb = rcs.crossbar(x);
      EXPECT_GE(xb.array_writes(), prev_writes[x]);
      EXPECT_GE(xb.fault_count(), prev_faults[x]);
      prev_writes[x] = xb.array_writes();
      prev_faults[x] = xb.fault_count();
    }
    const double cdf =
        model.failure_cdf(static_cast<double>(prev_writes[0]));
    EXPECT_GE(cdf, prev_cdf);
    prev_cdf = cdf;
  }
  EXPECT_GT(prev_cdf, 0.0);
}

TEST(Endurance, CumulativeFractionTracksCdf) {
  // After many epochs, the injected fraction approaches the CDF at the
  // total write count.
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 64;
  Rcs rcs(cfg);
  EnduranceModel model;
  Rng rng(4);
  const int epochs = 10, writes_per_epoch = 30;
  for (int e = 0; e < epochs; ++e) {
    for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
      for (int w = 0; w < writes_per_epoch; ++w)
        rcs.crossbar(x).record_array_write();
    model.advance_epoch(rcs, rng);
  }
  const double expect = model.failure_cdf(epochs * writes_per_epoch);
  EXPECT_NEAR(rcs.mean_fault_density(), expect, 0.5 * expect);
}

}  // namespace
}  // namespace remapd
