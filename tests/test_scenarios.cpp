// Scenario-diversity layer: transient upsets + detect-and-refresh, the
// IR-drop interconnect model, and the fault-model / policy catalogs.
//
// The trainer-level tests pin the two properties ISSUE 9 gates on every
// new scenario: bitwise 1-vs-4-thread determinism and bitwise checkpoint
// resume. The unit tests pin the physics the head-to-heads rely on
// (position-dependent IR gain, Poisson upset determinism, refresh
// semantics) at a scale where a regression is attributable to one module.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analog/column_current.hpp"
#include "ckpt/snapshot.hpp"
#include "core/remap_policy.hpp"
#include "nn/fault_view.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "trainer/scenarios.hpp"
#include "util/parallel.hpp"
#include "xbar/ir_drop.hpp"
#include "xbar/rcs.hpp"
#include "xbar/transient.hpp"

namespace remapd {
namespace {

class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~ThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "remapd_scen_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------- IR drop

TEST(IrDrop, DisabledAndAlternatingGainsAreExactlyOne) {
  IrDropConfig off;  // wire_ohms_per_cell = 0
  IrDropConfig on;
  on.wire_ohms_per_cell = 40.0;
  for (std::size_t r : {std::size_t{0}, std::size_t{63}, std::size_t{127}})
    for (std::size_t c : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
      // Model off: unity regardless of scheme.
      EXPECT_EQ(ir_cell_gain(r, c, 128, 64, off, LineScheme::kSingleSided),
                1.0);
      // Alternating drive equalizes every path to the calibration mean, so
      // the calibrated gain is identically (not approximately) one.
      EXPECT_EQ(ir_cell_gain(r, c, 128, 64, on, LineScheme::kAlternating),
                1.0);
    }
}

TEST(IrDrop, SingleSidedGainSpreadsMonotonicallyAroundOne) {
  IrDropConfig ir;
  ir.wire_ohms_per_cell = 40.0;
  const std::size_t rows = 128, cols = 128;
  // Driven corner reads hot, far corner reads cold.
  EXPECT_GT(ir_cell_gain(0, 0, rows, cols, ir, LineScheme::kSingleSided),
            1.0);
  EXPECT_LT(ir_cell_gain(rows - 1, cols - 1, rows, cols, ir,
                         LineScheme::kSingleSided),
            1.0);
  // Monotone decay with distance from the periphery, along both axes.
  double prev = ir_cell_gain(0, 5, rows, cols, ir, LineScheme::kSingleSided);
  for (std::size_t r = 1; r < rows; ++r) {
    const double g =
        ir_cell_gain(r, 5, rows, cols, ir, LineScheme::kSingleSided);
    EXPECT_LT(g, prev) << "row " << r;
    prev = g;
  }
  prev = ir_cell_gain(5, 0, rows, cols, ir, LineScheme::kSingleSided);
  for (std::size_t c = 1; c < cols; ++c) {
    const double g =
        ir_cell_gain(5, c, rows, cols, ir, LineScheme::kSingleSided);
    EXPECT_LT(g, prev) << "col " << c;
    prev = g;
  }
}

TEST(IrDrop, ColumnCurrentIsPositionSensitive) {
  // The same SA1 fault (same sampled stuck resistance, by seeding two
  // identical RNGs) placed near vs far from the periphery must read
  // differently once the lines are resistive — and identically when the
  // model is off (the IR overload reduces to the ideal one).
  Crossbar near(32, 32), far(32, 32);
  Rng rn(5), rf(5);
  ASSERT_TRUE(near.inject_fault(0, 3, CellFault::kStuckAt1, rn));
  ASSERT_TRUE(far.inject_fault(31, 3, CellFault::kStuckAt1, rf));

  IrDropConfig off;
  EXPECT_DOUBLE_EQ(
      column_current(near, 3, TestPattern::kAllZero, off),
      column_current(near, 3, TestPattern::kAllZero, off,
                     LineScheme::kSingleSided));
  // Same fault, different row: with ideal wires the only difference is the
  // float summation order, so the currents agree to rounding.
  const double i_near_off =
      column_current(near, 3, TestPattern::kAllZero, off,
                     LineScheme::kSingleSided);
  const double i_far_off = column_current(
      far, 3, TestPattern::kAllZero, off, LineScheme::kSingleSided);
  EXPECT_NEAR(i_near_off, i_far_off, 1e-12 * i_near_off);

  IrDropConfig ir;
  ir.wire_ohms_per_cell = 50.0;
  // The low-resistance SA1 cell dominates the kAllZero column current;
  // more wire in series with it means less current at the sense amp.
  EXPECT_GT(column_current(near, 3, TestPattern::kAllZero, ir,
                           LineScheme::kSingleSided),
            column_current(far, 3, TestPattern::kAllZero, ir,
                           LineScheme::kSingleSided));
}

// ---------------------------------------------------------- fault view

TEST(FaultViewGain, AppliesGainThenClamps) {
  FaultView view;
  view.mode = MappingMode::kSingleArrayBias;
  view.w_max = 1.0f;
  view.gain = {0.5f, 1.0f, 2.0f};
  view.clamps = {{1, WeightClampKind::kPosStuck1},
                 {2, WeightClampKind::kZeroed}};
  const float w[3] = {0.8f, -0.3f, 0.4f};
  float out[3] = {};
  view.apply(w, out, 3);
  EXPECT_EQ(out[0], 0.8f * 0.5f);       // healthy: gain only
  EXPECT_EQ(out[1], 1.0f);              // SA1 -> +w_max, through gain 1
  EXPECT_EQ(out[2], 0.0f);              // severed connection reads zero
}

TEST(FaultViewGain, WrongGainLengthThrows) {
  FaultView view;
  view.gain = {1.0f, 1.0f};
  const float w[3] = {1.0f, 2.0f, 3.0f};
  float out[3] = {};
  EXPECT_THROW(view.apply(w, out, 3), std::out_of_range);
}

// ---------------------------------------------------- transient upsets

RcsConfig small_rcs_config() {
  RcsConfig rc;
  rc.tiles_x = 1;
  rc.tiles_y = 1;
  rc.imas_per_tile = 1;
  rc.xbars_per_ima = 4;
  rc.xbar_rows = 32;
  rc.xbar_cols = 32;
  return rc;
}

void expect_same_upsets(const TransientFaultModel& a,
                        const TransientFaultModel& b, const Rcs& rcs) {
  ASSERT_EQ(a.total_upsets(), b.total_upsets());
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
    const auto& ua = a.upsets_of(x);
    const auto& ub = b.upsets_of(x);
    ASSERT_EQ(ua.size(), ub.size()) << "xbar " << x;
    for (std::size_t i = 0; i < ua.size(); ++i) {
      EXPECT_EQ(ua[i].cell, ub[i].cell) << "xbar " << x;
      EXPECT_EQ(ua[i].toward_on, ub[i].toward_on) << "xbar " << x;
      EXPECT_EQ(ua[i].half, ub[i].half) << "xbar " << x;
    }
  }
}

TEST(Transient, UpsetScheduleIsThreadCountInvariant) {
  Rcs rcs(small_rcs_config());
  TransientScenario sc;
  sc.enabled = true;
  sc.upset_rate = 0.01;
  Rng ra(99), rb(99);
  TransientFaultModel a(sc, ra), b(sc, rb);
  {
    ThreadGuard g(1);
    for (int i = 0; i < 3; ++i) a.step_epoch(rcs);
  }
  {
    ThreadGuard g(4);
    for (int i = 0; i < 3; ++i) b.step_epoch(rcs);
  }
  EXPECT_GT(a.total_upsets(), 0u);
  expect_same_upsets(a, b, rcs);
}

TEST(Transient, SnapshotRoundTripResumesSchedule) {
  Rcs rcs(small_rcs_config());
  TransientScenario sc;
  sc.enabled = true;
  sc.upset_rate = 0.01;
  Rng ra(7);
  TransientFaultModel a(sc, ra);
  a.step_epoch(rcs);
  a.step_epoch(rcs);

  ckpt::ByteWriter w;
  a.save_state(w);
  Rng rb(424242);  // deliberately different; load_state must overwrite
  TransientFaultModel b(sc, rb);
  ckpt::ByteReader r(w.bytes().data(), w.bytes().size());
  b.load_state(r);
  EXPECT_EQ(a.rounds(), b.rounds());
  expect_same_upsets(a, b, rcs);

  // The restored model must draw the SAME future arrivals: continue both
  // and demand identical upset sets, not merely identical counts.
  a.step_epoch(rcs);
  b.step_epoch(rcs);
  EXPECT_GT(a.total_upsets(), 0u);
  expect_same_upsets(a, b, rcs);
}

TEST(Transient, ClearCrossbarRefreshesEveryLiveUpset) {
  Rcs rcs(small_rcs_config());
  TransientScenario sc;
  sc.enabled = true;
  sc.upset_rate = 0.02;
  Rng rng(11);
  TransientFaultModel m(sc, rng);
  for (int i = 0; i < 3 && m.total_upsets() == 0; ++i) m.step_epoch(rcs);
  ASSERT_GT(m.total_upsets(), 0u);
  XbarId victim = 0;
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    if (!m.upsets_of(x).empty()) victim = x;
  const std::size_t before = m.upsets_of(victim).size();
  const std::size_t total_before = m.total_upsets();
  EXPECT_EQ(m.clear_crossbar(victim), before);
  EXPECT_TRUE(m.upsets_of(victim).empty());
  EXPECT_EQ(m.total_upsets(), total_before - before);
  // Idempotent: a second verify-and-rewrite finds nothing to fix.
  EXPECT_EQ(m.clear_crossbar(victim), 0u);
}

// ----------------------------------------------------------- catalogs

TEST(ScenarioCatalog, FaultModelRegistryNamesAllApply) {
  const auto& reg = fault_model_registry();
  ASSERT_FALSE(reg.empty());
  bool has_transient = false, has_ir = false, has_saf = false;
  for (const FaultModelSpec& spec : reg) {
    has_transient = has_transient || spec.name == "transient";
    has_ir = has_ir || spec.name == "ir-drop";
    has_saf = has_saf || spec.name == "saf";
    TrainerConfig cfg;
    cfg.epochs = 4;
    EXPECT_NO_THROW(apply_fault_model(cfg, spec.name)) << spec.name;
  }
  EXPECT_TRUE(has_transient);
  EXPECT_TRUE(has_ir);
  EXPECT_TRUE(has_saf);
}

TEST(ScenarioCatalog, PresetsSetTheFieldsTheyNameAndNoOthers) {
  TrainerConfig cfg;
  apply_fault_model(cfg, "transient");
  EXPECT_TRUE(cfg.transients.enabled);
  EXPECT_FALSE(cfg.ir_drop.enabled());

  TrainerConfig cfg2;
  apply_fault_model(cfg2, "ir-drop");
  EXPECT_TRUE(cfg2.ir_drop.enabled());
  EXPECT_FALSE(cfg2.transients.enabled);

  TrainerConfig cfg3;
  cfg3.transients.enabled = true;
  cfg3.ir_drop.wire_ohms_per_cell = 40.0;
  apply_fault_model(cfg3, "ideal");
  EXPECT_FALSE(cfg3.transients.enabled);
  EXPECT_FALSE(cfg3.ir_drop.enabled());
}

TEST(ScenarioCatalog, UnknownFaultModelIsRejectedNamingTheFlag) {
  TrainerConfig cfg;
  try {
    apply_fault_model(cfg, "bogus");
    FAIL() << "unknown fault model accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--fault-model"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
  }
}

TEST(ScenarioCatalog, PolicyRegistryNamesRoundTripThroughFactory) {
  const auto& reg = policy_registry();
  ASSERT_FALSE(reg.empty());
  bool has_refresh = false, has_xchangr = false, has_drop = false;
  for (const PolicySpec& spec : reg) {
    has_refresh = has_refresh || spec.name == "refresh";
    has_xchangr = has_xchangr || spec.name == "xchangr";
    has_drop = has_drop || spec.name == "drop-connect";
    PolicyPtr p = make_policy(spec.name);
    ASSERT_NE(p, nullptr) << spec.name;
    // The remap-t policies display a "%" suffix ("remap-t-5%") on top of
    // their factory key; every name() must at least start with the key.
    EXPECT_EQ(p->name().rfind(spec.name, 0), 0u)
        << p->name() << " vs " << spec.name;
  }
  EXPECT_TRUE(has_refresh);
  EXPECT_TRUE(has_xchangr);
  EXPECT_TRUE(has_drop);
}

// ------------------------------------------------- trainer-level runs

/// Small-but-real training config for the transient scenario (same scale
/// as the checkpoint-resume tests in test_ckpt.cpp).
TrainerConfig transient_cfg(const std::string& policy) {
  TrainerConfig cfg;
  cfg.model = "vgg11";
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.data.train = 48;
  cfg.data.test = 32;
  cfg.data.image_size = 12;
  cfg.faults = FaultScenario::ideal();
  cfg.transients.enabled = true;
  cfg.transients.upset_rate = 0.01;
  cfg.policy = policy;
  return cfg;
}

TrainerConfig ir_drop_cfg() {
  TrainerConfig cfg = transient_cfg("none");
  cfg.transients = TransientScenario{};
  cfg.ir_drop.wire_ohms_per_cell = 400.0;
  return cfg;
}

void expect_same_history(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const EpochRecord& x = a.history[i];
    const EpochRecord& y = b.history[i];
    EXPECT_EQ(x.train_loss, y.train_loss) << "epoch " << i;
    EXPECT_EQ(x.train_accuracy, y.train_accuracy) << "epoch " << i;
    EXPECT_EQ(x.test_accuracy, y.test_accuracy) << "epoch " << i;
    EXPECT_EQ(x.remaps, y.remaps) << "epoch " << i;
    EXPECT_EQ(x.total_faults, y.total_faults) << "epoch " << i;
    EXPECT_EQ(x.new_upsets, y.new_upsets) << "epoch " << i;
    EXPECT_EQ(x.live_upsets, y.live_upsets) << "epoch " << i;
    EXPECT_EQ(x.refreshed_cells, y.refreshed_cells) << "epoch " << i;
    EXPECT_EQ(x.refresh_cycles, y.refresh_cycles) << "epoch " << i;
  }
  EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
}

TEST(ScenarioTrainer, RefreshPolicyDetectsAndRepairsUpsets) {
  ThreadGuard g(4);
  const TrainResult none = train_with_faults(transient_cfg("none"));
  const TrainResult refresh = train_with_faults(transient_cfg("refresh"));

  // Without a verify-and-rewrite pass upsets only accumulate.
  EXPECT_GT(none.last().live_upsets, 0u);
  EXPECT_EQ(none.last().refreshed_cells, 0u);
  EXPECT_EQ(none.last().refresh_cycles, 0u);

  // The refresh policy repairs cells and charges cycles for doing so.
  std::size_t refreshed = 0;
  std::uint64_t cycles = 0;
  for (const EpochRecord& e : refresh.history) {
    refreshed += e.refreshed_cells;
    cycles += e.refresh_cycles;
  }
  EXPECT_GT(refreshed, 0u);
  EXPECT_GT(cycles, 0u);
  // Spare (unmapped) crossbars still accrue upsets the policy never needs
  // to touch, so the live count is lower, not necessarily zero.
  EXPECT_LT(refresh.last().live_upsets, none.last().live_upsets);
}

TEST(ScenarioTrainer, TransientRefreshIsThreadCountInvariant) {
  const TrainerConfig cfg = transient_cfg("refresh");
  TrainResult serial, parallel4;
  {
    ThreadGuard g(1);
    serial = train_with_faults(cfg);
  }
  {
    ThreadGuard g(4);
    parallel4 = train_with_faults(cfg);
  }
  expect_same_history(serial, parallel4);
}

TEST(ScenarioTrainer, IrDropTrainingIsThreadCountInvariant) {
  const TrainerConfig cfg = ir_drop_cfg();
  TrainResult serial, parallel4;
  {
    ThreadGuard g(1);
    serial = train_with_faults(cfg);
  }
  {
    ThreadGuard g(4);
    parallel4 = train_with_faults(cfg);
  }
  expect_same_history(serial, parallel4);
}

TEST(ScenarioTrainer, TransientRefreshResumesBitwise) {
  ThreadGuard g(4);
  TrainerConfig cfg = transient_cfg("refresh");
  cfg.epochs = 4;

  // Leg A: uninterrupted.
  FaultAwareTrainer full(cfg);
  const TrainResult a = full.run();
  const std::string end_a = tmp_path("transient_end_a.ckpt");
  full.save_checkpoint(end_a);

  // Leg B: stop after 2 epochs, leaving a mid-run checkpoint.
  TrainerConfig part = cfg;
  part.checkpoint_every = 1;
  part.checkpoint_path = tmp_path("transient_mid.ckpt");
  part.stop_after_epochs = 2;
  train_with_faults(part);

  // Leg C: resume and finish; the upset schedule, live-upset set and
  // refresh accounting must all continue exactly where leg B stopped.
  TrainerConfig rest = cfg;
  rest.resume_from = part.checkpoint_path;
  FaultAwareTrainer resumed(rest);
  const TrainResult b = resumed.run();
  const std::string end_b = tmp_path("transient_end_b.ckpt");
  resumed.save_checkpoint(end_b);

  expect_same_history(a, b);
  EXPECT_EQ(slurp(end_a), slurp(end_b));

  std::remove(part.checkpoint_path.c_str());
  std::remove(end_a.c_str());
  std::remove(end_b.c_str());
}

}  // namespace
}  // namespace remapd
