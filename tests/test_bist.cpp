#include <gtest/gtest.h>

#include "bist/controller.hpp"
#include "xbar/rcs.hpp"

namespace remapd {
namespace {

// --------------------------------------------------------------------- FSM

TEST(BistFsm, StateSequenceMatchesFig2) {
  BistFsm fsm(4);
  fsm.start();
  std::vector<BistState> trace;
  while (!fsm.finished()) trace.push_back(fsm.step());

  // 4 write-zero, read, process, 4 write-one, read, process.
  const std::vector<BistState> expected = {
      BistState::kS1WriteZero, BistState::kS1WriteZero,
      BistState::kS1WriteZero, BistState::kS1WriteZero,
      BistState::kS2ReadSa1,   BistState::kS3ProcessSa1,
      BistState::kS4WriteOne,  BistState::kS4WriteOne,
      BistState::kS4WriteOne,  BistState::kS4WriteOne,
      BistState::kS5ReadSa0,   BistState::kS6ProcessSa0};
  EXPECT_EQ(trace, expected);
  EXPECT_EQ(fsm.state(), BistState::kS0Idle);
}

class BistCycleCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BistCycleCountTest, TotalCyclesIsTwoTimesRowsPlusTwo) {
  const std::size_t rows = GetParam();
  BistFsm fsm(rows);
  fsm.start();
  while (!fsm.finished()) fsm.step();
  EXPECT_EQ(fsm.cycles_elapsed(), 2 * (rows + 2));
  EXPECT_EQ(fsm.cycles_elapsed(), BistFsm::total_cycles(rows));
}

INSTANTIATE_TEST_SUITE_P(RowSweep, BistCycleCountTest,
                         ::testing::Values(1, 4, 16, 64, 128, 256));

TEST(BistFsm, Paper128x128Takes260Cycles) {
  // §III.B.3: 128 + 1 + 1 per fault type = 130; SA1 + SA0 = 260 cycles.
  EXPECT_EQ(BistFsm::total_cycles(128), 260u);
  // One ReRAM cycle is 100 ns -> 26 us per crossbar test.
  EXPECT_DOUBLE_EQ(260 * kReramCycleNs, 26000.0);
}

TEST(BistFsm, StepWithoutStartIsNoOp) {
  BistFsm fsm(8);
  EXPECT_EQ(fsm.step(), BistState::kS0Idle);
  EXPECT_EQ(fsm.cycles_elapsed(), 0u);
  EXPECT_FALSE(fsm.finished());
}

TEST(BistFsm, StateNamesAreDistinct) {
  std::set<std::string> names;
  for (auto s : {BistState::kS0Idle, BistState::kS1WriteZero,
                 BistState::kS2ReadSa1, BistState::kS3ProcessSa1,
                 BistState::kS4WriteOne, BistState::kS5ReadSa0,
                 BistState::kS6ProcessSa0})
    names.insert(bist_state_name(s));
  EXPECT_EQ(names.size(), 7u);
}

// -------------------------------------------------------------- Calibration

TEST(BistCalibration, ExactAtNominalResistance) {
  CellParams p;
  BistCalibration cal(p, 128);
  for (std::size_t k : {0u, 1u, 3u, 10u, 50u}) {
    EXPECT_EQ(cal.estimate_fault_count(
                  cal.expected_current(k, TestPattern::kAllZero),
                  TestPattern::kAllZero),
              k);
    EXPECT_EQ(cal.estimate_fault_count(
                  cal.expected_current(k, TestPattern::kAllOne),
                  TestPattern::kAllOne),
              k);
  }
}

TEST(BistCalibration, ClampsToValidRange) {
  CellParams p;
  BistCalibration cal(p, 16);
  EXPECT_EQ(cal.estimate_fault_count(0.0, TestPattern::kAllZero), 0u);
  EXPECT_EQ(cal.estimate_fault_count(1e9, TestPattern::kAllZero), 16u);
  // Excess current under the SA0 test (negative deficit) clamps to zero.
  EXPECT_EQ(cal.estimate_fault_count(
                cal.expected_current(0, TestPattern::kAllOne) * 2.0,
                TestPattern::kAllOne),
            0u);
}

class BistEstimationAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(BistEstimationAccuracy, DensityEstimateTracksGroundTruth) {
  // Property: across densities and the stuck-R variation bands of [4], the
  // BIST density estimate stays within 40% relative error (plus one cell
  // of quantization slack) of ground truth.
  const double density = GetParam();
  BistController bist;
  double est_sum = 0.0, true_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Crossbar xb(64, 64);
    Rng rng(seed * 17 + 3);
    xb.inject_random_faults(
        static_cast<std::size_t>(density * static_cast<double>(xb.cell_count())),
        0.9, rng);
    const BistReport rep = bist.run(xb);
    est_sum += rep.density_estimate;
    true_sum += xb.fault_density();
  }
  const double slack = 1.0 / (64.0 * 64.0);
  EXPECT_NEAR(est_sum / 5.0, true_sum / 5.0, 0.4 * true_sum / 5.0 + slack);
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, BistEstimationAccuracy,
                         ::testing::Values(0.001, 0.002, 0.005, 0.01, 0.02,
                                           0.05));

// --------------------------------------------------------------- Controller

TEST(BistController, ReportFieldsConsistent) {
  Crossbar xb(32, 32);
  Rng rng(9);
  xb.inject_random_faults(10, 0.9, rng);
  BistController bist;
  const BistReport rep = bist.run(xb);
  EXPECT_EQ(rep.cycles, BistFsm::total_cycles(32));
  EXPECT_DOUBLE_EQ(rep.elapsed_ns,
                   static_cast<double>(rep.cycles) * kReramCycleNs);
  EXPECT_EQ(rep.total_estimate(), rep.sa1_estimate + rep.sa0_estimate);
  EXPECT_DOUBLE_EQ(
      rep.density_estimate,
      static_cast<double>(rep.total_estimate()) / 1024.0);
}

TEST(BistController, FaultFreeCrossbarEstimatesZero) {
  Crossbar xb(64, 64);
  BistController bist;
  const BistReport rep = bist.run(xb);
  EXPECT_EQ(rep.total_estimate(), 0u);
}

TEST(BistController, AccountsTwoWritePasses) {
  Crossbar xb(16, 16);
  BistController bist;
  bist.run(xb);
  EXPECT_EQ(xb.array_writes(), 2u);
  bist.run(xb);
  EXPECT_EQ(xb.array_writes(), 4u);
}

TEST(BistController, SurveyCoversWholeRcs) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 16;
  Rcs rcs(cfg);
  Rng rng(10);
  rcs.crossbar(5).inject_random_faults(20, 0.9, rng);

  BistController bist;
  std::uint64_t cycles = 0;
  const auto densities = bist.survey(rcs, &cycles);
  ASSERT_EQ(densities.size(), rcs.total_crossbars());
  EXPECT_EQ(cycles, BistFsm::total_cycles(16));  // all IMAs in parallel
  EXPECT_GT(densities[5], 0.0);
  EXPECT_EQ(densities[0], 0.0);
}

TEST(BistController, DetectsSa0AndSa1Separately) {
  Crossbar xb(64, 64);
  Rng rng(11);
  // Inject only SA1 faults.
  std::size_t injected = 0;
  while (injected < 20) {
    const auto r = static_cast<std::size_t>(rng.uniform_int(0, 63));
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, 63));
    if (xb.inject_fault(r, c, CellFault::kStuckAt1, rng)) ++injected;
  }
  BistController bist;
  const BistReport rep = bist.run(xb);
  EXPECT_NEAR(static_cast<double>(rep.sa1_estimate), 20.0, 8.0);
  EXPECT_LE(rep.sa0_estimate, 3u);
}

}  // namespace
}  // namespace remapd
