// Tests for the packed SIMD GEMM micro-kernel layer (tensor/gemm_kernel):
// golden values vs a double-precision reference triple loop across
// NN/NT/TN/TT and tile-boundary shapes, BLAS beta/alpha semantics, the
// NaN/Inf zero-skip contract (sparsity must never mask non-finite
// operands), bitwise 1-vs-4-thread determinism, fused-vs-unfused bitwise
// agreement, allocation-free steady state for the transposed paths (which
// previously materialized fresh transpose buffers per call), and the flops
// telemetry regression (degenerate calls must record zero flops).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/conv2d.hpp"
#include "telemetry/telemetry.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace remapd {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Scoped thread-count override (mirrors test_parallel.cpp).
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~ThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

/// Reference: C = alpha * op(A) * op(B) + beta * C with double accumulation,
/// strictly the mathematical definition (no blocking, no skipping).
void ref_gemm(bool ta, bool tb, std::size_t m, std::size_t n, std::size_t k,
              float alpha, const float* a, std::size_t lda, const float* b,
              std::size_t ldb, float beta, float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        s += static_cast<double>(av) * bv;
      }
      const double base = beta == 0.0f ? 0.0 : beta * c[i * ldc + j];
      c[i * ldc + j] = static_cast<float>(base + alpha * s);
    }
}

Tensor random_matrix(std::size_t r, std::size_t cdim, Rng& rng) {
  return Tensor::randn(Shape{r, cdim}, rng);
}

// ---------------------------------------------------------------------------
// Golden values vs the reference triple loop
// ---------------------------------------------------------------------------

TEST(GemmKernel, GoldenSweepAllTransposesAndTailShapes) {
  // Sizes straddle every tile boundary: micro-tile (kMR=6, kNR=16), the
  // row-partition grain (kMC=48), and skinny/tail shapes.
  const std::size_t sizes[] = {1, 3, 6, 7, 15, 16, 17, 47, 48, 49, 100};
  Rng rng(2025);
  for (const std::size_t m : sizes)
    for (const std::size_t n : sizes)
      for (const std::size_t k : sizes)
        for (int t = 0; t < 4; ++t) {
          const bool ta = t & 2, tb = t & 1;
          const Tensor a =
              random_matrix(ta ? k : m, ta ? m : k, rng);
          const Tensor b =
              random_matrix(tb ? n : k, tb ? k : n, rng);
          const Tensor c = matmul(a, ta, b, tb);
          std::vector<float> ref(m * n, 0.0f);
          ref_gemm(ta, tb, m, n, k, 1.0f, a.data(), a.shape()[1], b.data(),
                   b.shape()[1], 0.0f, ref.data(), n);
          for (std::size_t e = 0; e < m * n; ++e)
            ASSERT_NEAR(c[e], ref[e], 2e-4 * (std::abs(ref[e]) + 1.0))
                << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
                << " tb=" << tb << " e=" << e;
        }
}

TEST(GemmKernel, AlphaBetaSemantics) {
  Rng rng(7);
  const std::size_t m = 13, n = 21, k = 35;
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(k, n, rng);
  for (const float alpha : {1.0f, 2.5f, -0.75f})
    for (const float beta : {0.0f, 1.0f, 0.5f}) {
      std::vector<float> c(m * n), ref(m * n);
      for (std::size_t e = 0; e < m * n; ++e) c[e] = ref[e] = 0.125f * e;
      gemm(false, false, m, n, k, alpha, a.data(), k, b.data(), n, beta,
           c.data(), n);
      ref_gemm(false, false, m, n, k, alpha, a.data(), k, b.data(), n, beta,
               ref.data(), n);
      for (std::size_t e = 0; e < m * n; ++e)
        ASSERT_NEAR(c[e], ref[e], 2e-4 * (std::abs(ref[e]) + 1.0))
            << "alpha=" << alpha << " beta=" << beta << " e=" << e;
    }
}

TEST(GemmKernel, BetaZeroOverwritesNaNWithoutReadingC) {
  // BLAS semantics: beta == 0 must store, not accumulate — C may hold NaN
  // or garbage from an uninitialized buffer.
  Rng rng(9);
  const Tensor a = random_matrix(5, 4, rng);
  const Tensor b = random_matrix(4, 3, rng);
  std::vector<float> c(5 * 3, kNaN);
  gemm(false, false, 5, 3, 4, 1.0f, a.data(), 4, b.data(), 3, 0.0f, c.data(),
       3);
  for (const float v : c) EXPECT_TRUE(std::isfinite(v));

  // Degenerate k == 0 and alpha == 0 also clear under beta == 0.
  std::fill(c.begin(), c.end(), kNaN);
  gemm(false, false, 5, 3, 0, 1.0f, a.data(), 4, b.data(), 3, 0.0f, c.data(),
       3);
  for (const float v : c) EXPECT_EQ(v, 0.0f);
  std::fill(c.begin(), c.end(), kNaN);
  gemm(false, false, 5, 3, 4, 0.0f, a.data(), 4, b.data(), 3, 0.0f, c.data(),
       3);
  for (const float v : c) EXPECT_EQ(v, 0.0f);
}

// ---------------------------------------------------------------------------
// NaN/Inf zero-skip contract
// ---------------------------------------------------------------------------

TEST(GemmKernel, ZeroAEntriesNeverMaskNonFiniteB) {
  // Every product is issued: a zero A entry against NaN/Inf in B must
  // surface as NaN (0 * NaN = 0 * Inf = NaN), at every tile position —
  // including column tails past kNR and row tails past kMR.
  const std::size_t m = 8, n = 19, k = 5;
  Tensor a = Tensor::zeros(Shape{m, k});
  Tensor b = Tensor::zeros(Shape{k, n});
  b.at(2, 0) = kNaN;
  b.at(3, 17) = kInf;  // column-tail lane
  const Tensor c = matmul(a, b);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c.at(i, 0))) << i;
    EXPECT_TRUE(std::isnan(c.at(i, 17))) << i;
    EXPECT_EQ(c.at(i, 5), 0.0f) << i;  // finite columns stay clean
  }
}

TEST(GemmKernel, NonFiniteAPropagatesThroughZeroB) {
  const std::size_t m = 7, n = 4, k = 6;
  Tensor a = Tensor::zeros(Shape{m, k});
  Tensor b = Tensor::zeros(Shape{k, n});
  a.at(6, 1) = kInf;  // row-tail strip
  const Tensor c = matmul(a, b);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(c.at(6, j))) << j;  // Inf * 0 = NaN
  for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(c.at(0, j), 0.0f);
}

TEST(GemmKernel, AlphaZeroIssuesNoProductsSoNaNStaysOut) {
  // alpha == 0 short-circuits before any multiply: non-finite operands must
  // NOT reach C (only the beta scale runs) — the BLAS degenerate contract.
  Tensor a = Tensor::zeros(Shape{3, 3});
  Tensor b = Tensor::zeros(Shape{3, 3});
  a.fill(kNaN);
  b.fill(kInf);
  std::vector<float> c(9, 2.0f);
  gemm(false, false, 3, 3, 3, 0.0f, a.data(), 3, b.data(), 3, 0.5f, c.data(),
       3);
  for (const float v : c) EXPECT_EQ(v, 1.0f);
}

// ---------------------------------------------------------------------------
// Thread-count invariance and fused-vs-unfused agreement
// ---------------------------------------------------------------------------

TEST(GemmKernel, BitwiseThreadInvarianceAcrossTransposes) {
  Rng rng(41);
  const std::size_t m = 53, n = 37, k = 61;  // nothing tile-aligned
  for (int t = 0; t < 4; ++t) {
    const bool ta = t & 2, tb = t & 1;
    const Tensor a = random_matrix(ta ? k : m, ta ? m : k, rng);
    const Tensor b = random_matrix(tb ? n : k, tb ? k : n, rng);
    Tensor c1, c4;
    {
      ThreadGuard guard(1);
      c1 = matmul(a, ta, b, tb);
    }
    {
      ThreadGuard guard(4);
      c4 = matmul(a, ta, b, tb);
    }
    ASSERT_EQ(0, std::memcmp(c1.data(), c4.data(), m * n * sizeof(float)))
        << "ta=" << ta << " tb=" << tb;
  }
}

TEST(GemmKernel, FusedPackMatchesGemmBitwise) {
  // GemmAPack::multiply must perform exactly gemm()'s arithmetic: the fused
  // conv path and the plain path agree bitwise, so serving/migration CSV
  // stability cannot depend on which path a layer took.
  Rng rng(43);
  const std::size_t m = 32, n = 100, k = 27;
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(k, n, rng);
  const Tensor via_gemm = matmul(a, b);

  GemmAPack pack;
  pack.pack(m, k, 1.0f, StridedOperand{a.data(), k, 1});
  Tensor via_pack(Shape{m, n});
  pack.multiply(n, b.data(), n, 0.0f, via_pack.data(), n);
  EXPECT_EQ(0,
            std::memcmp(via_gemm.data(), via_pack.data(),
                        m * n * sizeof(float)));

  // Same for a transposed panel (the conv backward path packs We^T via
  // strides): A^T * B' must match gemm(true, false, ...) bitwise.
  GemmAPack tpack;
  tpack.pack(k, m, 1.0f, StridedOperand{a.data(), 1, k});
  Tensor bprime(Shape{m, 16});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      bprime[i * 16 + j] = via_gemm[i * n + j];
  Tensor from_pack(Shape{k, 16});
  tpack.multiply(16, bprime.data(), 16, 0.0f, from_pack.data(), 16);
  Tensor from_gemm(Shape{k, 16});
  gemm(true, false, k, 16, m, 1.0f, a.data(), k, bprime.data(), 16, 0.0f,
       from_gemm.data(), 16);
  EXPECT_EQ(0,
            std::memcmp(from_pack.data(), from_gemm.data(),
                        k * 16 * sizeof(float)));
}

TEST(GemmKernel, FusedConvForwardPropagatesNonFiniteWeights) {
  // The fused forward packs the effective weights once; a diverged (NaN)
  // or full-scale-stuck (Inf-ish) weight must still poison its output
  // plane even when the input patch is all zero — 0 * NaN = NaN.
  Rng rng(3);
  Conv2d conv(1, 2, 1, 1, 0, rng);
  conv.weight_param().value[0] = kNaN;
  conv.weight_param().value[1] = 0.5f;
  const Tensor x = Tensor::zeros(Shape{1, 1, 3, 3});
  for (const bool train : {true, false}) {
    const Tensor y = conv.forward(x, train);
    for (std::size_t p = 0; p < 9; ++p) {
      EXPECT_TRUE(std::isnan(y[p])) << "train=" << train << " p=" << p;
      EXPECT_EQ(y[9 + p], 0.0f) << "train=" << train << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Allocation-free steady state (NT/TN previously heap-allocated per call)
// ---------------------------------------------------------------------------

TEST(GemmKernel, TransposedPathsDoNotAllocateInSteadyState) {
  ThreadGuard guard(1);  // one thread -> one deterministic set of arenas
  Rng rng(17);
  const std::size_t m = 32, n = 576, k = 100;
  const Tensor a = random_matrix(m, k, rng);      // NT: dy * col^T shape
  const Tensor bt = random_matrix(n, k, rng);     // operand stored n x k
  const Tensor at = random_matrix(k, m, rng);     // TN operand
  const Tensor b = random_matrix(k, n, rng);
  Tensor c(Shape{m, n});
  const auto call_both = [&] {
    gemm(false, true, m, n, k, 1.0f, a.data(), k, bt.data(), k, 1.0f,
         c.data(), n);
    gemm(true, false, m, n, k, 1.0f, at.data(), m, b.data(), n, 0.0f,
         c.data(), n);
  };
  for (int i = 0; i < 3; ++i) call_both();  // warm the arenas
  const std::uint64_t warm = gemm_scratch_allocations();
  for (int i = 0; i < 50; ++i) call_both();
  EXPECT_EQ(gemm_scratch_allocations(), warm)
      << "NT/TN steady-state calls must reuse the packing arenas";

  // Repacking the same-geometry panel must also be allocation-free.
  GemmAPack pack;
  pack.pack(m, k, 1.0f, StridedOperand{a.data(), k, 1});
  const std::uint64_t after_pack = gemm_scratch_allocations();
  for (int i = 0; i < 20; ++i)
    pack.pack(m, k, 1.0f, StridedOperand{a.data(), k, 1});
  EXPECT_EQ(gemm_scratch_allocations(), after_pack);
}

// ---------------------------------------------------------------------------
// Regression: flops telemetry must count only multiplies actually issued
// ---------------------------------------------------------------------------

TEST(GemmKernel, FlopsCountedOnlyForIssuedMultiplies) {
  telemetry::set_enabled(true);
  telemetry::Counter& flops =
      telemetry::Registry::instance().counter("tensor.gemm.flops");
  Rng rng(19);
  const Tensor a = random_matrix(6, 5, rng);
  const Tensor b = random_matrix(5, 4, rng);
  Tensor c(Shape{6, 4});

  const std::uint64_t before = flops.value();
  // Degenerate calls: alpha == 0, k == 0, empty C — no multiplies, no flops
  // (the old kernel recorded 2*m*n*k before its early return, inflating
  // GFLOP/s in telemetry and BENCH_gemm.json).
  gemm(false, false, 6, 4, 5, 0.0f, a.data(), 5, b.data(), 4, 0.5f, c.data(),
       4);
  gemm(false, false, 6, 4, 0, 1.0f, a.data(), 5, b.data(), 4, 1.0f, c.data(),
       4);
  gemm(false, false, 0, 4, 5, 1.0f, a.data(), 5, b.data(), 4, 0.0f, c.data(),
       4);
  gemm(false, false, 6, 0, 5, 1.0f, a.data(), 5, b.data(), 4, 0.0f, c.data(),
       4);
  EXPECT_EQ(flops.value(), before);

  gemm(false, false, 6, 4, 5, 1.0f, a.data(), 5, b.data(), 4, 0.0f, c.data(),
       4);
  EXPECT_EQ(flops.value(), before + 2ull * 6 * 4 * 5);
  telemetry::set_enabled(false);
}

// ---------------------------------------------------------------------------
// aligned_grain helper (util/parallel)
// ---------------------------------------------------------------------------

TEST(GemmKernel, AlignedGrainRoundsUpToTileMultiples) {
  EXPECT_EQ(aligned_grain(48, 6), 48u);
  EXPECT_EQ(aligned_grain(47, 6), 48u);
  EXPECT_EQ(aligned_grain(1, 6), 6u);
  EXPECT_EQ(aligned_grain(0, 6), 6u);
  EXPECT_EQ(aligned_grain(13, 0), 13u);  // tile 0 behaves as 1
  EXPECT_EQ(aligned_grain(0, 0), 1u);
}

}  // namespace
}  // namespace remapd
