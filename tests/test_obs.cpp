#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/remap_d.hpp"
#include "obs/audit.hpp"
#include "obs/health.hpp"
#include "obs/jsonl.hpp"
#include "obs/noc_sampler.hpp"
#include "obs/report.hpp"

namespace remapd {
namespace {

using obs::JsonObject;
using obs::number_or;
using obs::string_or;

/// Same small rig as PolicyTest in test_core.cpp: 4x4 tiles of 32x32
/// crossbars, one 64x64 layer -> tasks on crossbars 0..7.
class ObsTest : public ::testing::Test {
 protected:
  ObsTest() : rng_(7) {
    RcsConfig cfg;
    cfg.tiles_x = cfg.tiles_y = 4;
    cfg.xbar_rows = cfg.xbar_cols = 32;
    rcs_ = std::make_unique<Rcs>(cfg);
    mapper_ = std::make_unique<WeightMapper>(*rcs_);
    mapper_->map_layers({{64, 64}});
    density_.reset(rcs_->total_crossbars());
    obs::Observatory::instance().reset();
  }

  ~ObsTest() override {
    obs::Observatory::instance().reset();
    obs::set_enabled(false);
  }

  PolicyContext context() {
    PolicyContext ctx;
    ctx.mapper = mapper_.get();
    ctx.density = &density_;
    ctx.rng = &rng_;
    ctx.audit = &audit_;
    return ctx;
  }

  void set_density(XbarId x, double d) {
    auto all = density_.all();
    all[x] = d;
    density_.update(std::move(all));
  }

  Rng rng_;
  std::unique_ptr<Rcs> rcs_;
  std::unique_ptr<WeightMapper> mapper_;
  FaultDensityMap density_;
  obs::RemapAuditLog audit_;
};

// ----------------------------------------------------------- HealthTracker

TEST_F(ObsTest, HealthTrackerSamplesEveryCrossbar) {
  rcs_->crossbar(3).inject_random_faults(10, 0.9, rng_);
  density_.update(rcs_->fault_densities());  // perfect estimate
  std::vector<std::size_t> cum(rcs_->total_crossbars(), 0);
  cum[3] = 2;

  obs::HealthTracker tracker;
  tracker.sample_epoch(0, *rcs_, density_, *mapper_, cum);
  ASSERT_EQ(tracker.samples().size(), rcs_->total_crossbars());
  EXPECT_EQ(tracker.epochs_sampled(), 1u);

  const obs::HealthSample& s3 = tracker.samples()[3];
  EXPECT_EQ(s3.xbar, 3u);
  EXPECT_EQ(s3.sa0 + s3.sa1, 10u);
  EXPECT_GT(s3.sa0, s3.sa1);  // 9:1 split
  EXPECT_DOUBLE_EQ(s3.true_density,
                   10.0 / static_cast<double>(rcs_->crossbar(3).cell_count()));
  EXPECT_DOUBLE_EQ(s3.est_density, s3.true_density);
  EXPECT_EQ(s3.remaps, 2u);
  // Crossbar 3 holds a forward task of the 64x64 layer; crossbar 8 is idle.
  EXPECT_NE(s3.task, kNoTask);
  EXPECT_EQ(s3.phase, Phase::kForward);
  EXPECT_EQ(tracker.samples()[8].task, kNoTask);

  // Perfect estimate -> zero error stats for the epoch.
  ASSERT_EQ(tracker.epoch_stats().size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.epoch_stats()[0].est_error.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(tracker.epoch_stats()[0].max_true_density, s3.true_density);
}

TEST_F(ObsTest, HealthTrackerTopDegradedOrdersByTrueDensity) {
  rcs_->crossbar(2).inject_random_faults(20, 0.9, rng_);
  rcs_->crossbar(9).inject_random_faults(5, 0.9, rng_);
  density_.update(rcs_->fault_densities());

  obs::HealthTracker tracker;
  tracker.sample_epoch(0, *rcs_, density_, *mapper_, {});
  const auto top = tracker.top_degraded(0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].xbar, 2u);
  EXPECT_EQ(top[1].xbar, 9u);
}

// ------------------------------------------------------------ RemapAuditLog

TEST_F(ObsTest, RemapDAuditsChosenSwap) {
  set_density(4, 0.01);  // backward task, over threshold

  RemapD policy;
  PolicyContext ctx = context();
  ctx.epoch = 3;
  policy.on_epoch_end(ctx);
  ASSERT_EQ(policy.last_events().size(), 1u);
  ASSERT_EQ(audit_.size(), 1u);

  const obs::RemapAuditRecord& rec = audit_.records()[0];
  EXPECT_EQ(rec.epoch, 3u);
  EXPECT_EQ(rec.policy, "remap-d");
  EXPECT_FALSE(rec.at_training_start);
  EXPECT_EQ(rec.sender, 4u);
  EXPECT_EQ(rec.receiver, policy.last_events()[0].receiver_xbar);
  EXPECT_EQ(rec.reason, "density>threshold");
  EXPECT_DOUBLE_EQ(rec.sender_density, 0.01);
  EXPECT_LT(rec.receiver_density, rec.sender_density);
  EXPECT_GT(rec.threshold, 0.0);
  // The chosen receiver was among the recorded candidates.
  EXPECT_NE(std::find(rec.candidates.begin(), rec.candidates.end(),
                      rec.receiver),
            rec.candidates.end());
  EXPECT_EQ(rec.hops, mapper_->hop_distance(rec.sender, rec.receiver));
}

TEST_F(ObsTest, RemapDAuditsSenderWithoutReceiver) {
  // Every other crossbar is denser than the sender: no eligible receiver.
  auto all = density_.all();
  for (XbarId x = 0; x < all.size(); ++x) all[x] = 0.02;
  all[4] = 0.01;
  density_.update(std::move(all));

  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  EXPECT_TRUE(policy.last_events().empty());
  ASSERT_GE(audit_.size(), 1u);
  bool found = false;
  for (const obs::RemapAuditRecord& rec : audit_.records())
    if (rec.sender == 4 && rec.receiver == obs::kNoReceiver &&
        rec.reason == "no-eligible-receiver")
      found = true;
  EXPECT_TRUE(found);
  EXPECT_EQ(audit_.swaps_in_epoch(0), 0u);
}

TEST_F(ObsTest, RemapDAuditsForwardRescue) {
  set_density(0, 0.05);  // forward task beyond the rescue threshold

  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  ASSERT_EQ(audit_.size(), 1u);
  EXPECT_EQ(audit_.records()[0].reason, "forward-rescue");
  EXPECT_EQ(audit_.records()[0].sender, 0u);
}

TEST_F(ObsTest, SwapsInEpochExcludesTrainingStartRound) {
  set_density(4, 0.01);
  RemapD policy;
  PolicyContext ctx = context();
  ctx.at_training_start = true;
  policy.on_training_start(ctx);  // audited as round="start"
  ASSERT_EQ(audit_.size(), 1u);
  EXPECT_TRUE(audit_.records()[0].at_training_start);
  EXPECT_EQ(audit_.swaps_in_epoch(0), 0u);

  set_density(5, 0.01);
  ctx.at_training_start = false;
  policy.on_epoch_end(ctx);
  EXPECT_EQ(audit_.swaps_in_epoch(0), 1u);
}

TEST_F(ObsTest, PoliciesSkipAuditWhenSinkIsNull) {
  set_density(4, 0.01);
  RemapD policy;
  PolicyContext ctx = context();
  ctx.audit = nullptr;  // observatory disabled
  policy.on_epoch_end(ctx);
  EXPECT_EQ(policy.last_events().size(), 1u);
  EXPECT_EQ(audit_.size(), 0u);
}

// ------------------------------------------------- NoC sampler + replay

TEST_F(ObsTest, SimulateRoundTrafficFromAuditRecords) {
  set_density(4, 0.01);
  RemapD policy;
  PolicyContext ctx = context();
  policy.on_epoch_end(ctx);
  ASSERT_EQ(audit_.size(), 1u);

  const noc::RemapTrafficResult res =
      obs::simulate_round_traffic(audit_.records(), 0, *rcs_);
  EXPECT_GT(res.total_cycles, 0u);
  EXPECT_GT(res.packets, 0u);
  // 4x4 tiles -> 2x2 c-mesh routers.
  EXPECT_EQ(res.router_flits.size(), 4u);
  std::uint64_t total = 0;
  for (std::uint64_t f : res.router_flits) total += f;
  EXPECT_GT(total, 0u);

  obs::NocUtilizationSampler sampler;
  sampler.record_round(2, res);
  sampler.record_round(2, res);  // same epoch accumulates
  ASSERT_EQ(sampler.epochs().size(), 1u);
  EXPECT_EQ(sampler.epochs()[0].epoch, 2u);
  EXPECT_EQ(sampler.cycles_in_epoch(2), 2 * res.total_cycles);
  EXPECT_EQ(sampler.epochs()[0].packets, 2 * res.packets);
  EXPECT_EQ(sampler.cycles_in_epoch(9), 0u);
}

TEST_F(ObsTest, SimulateRoundTrafficEmptySliceIsZero) {
  const noc::RemapTrafficResult res =
      obs::simulate_round_traffic(audit_.records(), 0, *rcs_);
  EXPECT_EQ(res.total_cycles, 0u);
  EXPECT_EQ(res.packets, 0u);
}

// ------------------------------------------------------------ JSONL parser

TEST(ObsJsonl, ParsesFlatObjects) {
  JsonObject obj;
  ASSERT_TRUE(obs::parse_jsonl_line(
      R"({"type":"health","epoch":3,"est_density":0.0125,)"
      R"("candidates":[1,2,3],"phase":"forward","neg":-1})",
      &obj));
  EXPECT_EQ(string_or(obj, "type", ""), "health");
  EXPECT_DOUBLE_EQ(number_or(obj, "epoch", -1), 3.0);
  EXPECT_DOUBLE_EQ(number_or(obj, "est_density", 0), 0.0125);
  EXPECT_DOUBLE_EQ(number_or(obj, "neg", 0), -1.0);
  ASSERT_TRUE(obj.at("candidates").is_array());
  EXPECT_EQ(obj.at("candidates").arr, (std::vector<double>{1, 2, 3}));
  // Defaults for missing keys / wrong kinds.
  EXPECT_DOUBLE_EQ(number_or(obj, "missing", 7.5), 7.5);
  EXPECT_EQ(string_or(obj, "epoch", "d"), "d");
}

TEST(ObsJsonl, ParsesEscapesAndEmpty) {
  JsonObject obj;
  ASSERT_TRUE(obs::parse_jsonl_line(R"({"s":"a\"b\\c\nd","e":[]})", &obj));
  EXPECT_EQ(obj.at("s").str, "a\"b\\c\nd");
  EXPECT_TRUE(obj.at("e").arr.empty());
  ASSERT_TRUE(obs::parse_jsonl_line("{}", &obj));
  EXPECT_TRUE(obj.empty());
}

TEST(ObsJsonl, RejectsMalformedLines) {
  JsonObject obj;
  std::string err;
  EXPECT_FALSE(obs::parse_jsonl_line("", &obj, &err));
  EXPECT_FALSE(obs::parse_jsonl_line("not json", &obj, &err));
  EXPECT_FALSE(obs::parse_jsonl_line(R"({"a":1)", &obj, &err));
  EXPECT_FALSE(obs::parse_jsonl_line(R"({"a":1} trailing)", &obj, &err));
  EXPECT_FALSE(obs::parse_jsonl_line(R"({"a":{"nested":1}})", &obj, &err));
  EXPECT_FALSE(obs::parse_jsonl_line(R"({"a":[1,]})", &obj, &err));
  EXPECT_FALSE(obs::parse_jsonl_line(R"({"a":tru})", &obj, &err));
  EXPECT_FALSE(err.empty());
}

// ----------------------------------------------- Observatory round-trip

TEST_F(ObsTest, ObservatoryJsonlRoundTrip) {
  // Drive two epochs of remap-d through the observatory, then re-read the
  // stream with the same parser remapd_report uses and check that the
  // per-epoch swap and fault counts survive the round-trip exactly.
  obs::Observatory& ob = obs::Observatory::instance();
  obs::RunInfo info;
  info.model = "test-model";
  info.policy = "remap-d";
  info.dataset = "synthetic \"quoted\"";
  info.seed = 11;
  info.epochs = 2;
  info.crossbars = rcs_->total_crossbars();
  info.tiles_x = info.tiles_y = 4;
  info.xbar_rows = info.xbar_cols = 32;
  ob.begin_run(info);

  RemapD policy;
  const std::size_t expected_swaps[2] = {1, 2};
  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    set_density(4 + epoch, 0.01);
    if (epoch == 1) set_density(6, 0.012);
    PolicyContext ctx = context();
    ctx.audit = &ob.audit();
    ctx.epoch = epoch;
    policy.on_epoch_end(ctx);
    ASSERT_EQ(policy.last_events().size(), expected_swaps[epoch]);

    obs::EpochObs eo;
    eo.epoch = epoch;
    eo.remaps = policy.last_events().size();
    eo.new_faults = 5 + epoch;
    eo.total_faults = 100 + epoch;
    eo.train_loss = 1.5f;
    eo.test_accuracy = 0.25;
    ob.sample_epoch(eo, *rcs_, density_, *mapper_);
  }

  // Every line must parse; regroup by type.
  const std::string stream = ob.jsonl();
  std::size_t runs = 0, epochs = 0, healths = 0, remaps = 0;
  std::vector<JsonObject> epoch_lines;
  std::istringstream is(stream);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(obs::parse_jsonl_line(line, &obj, &err)) << err << ": " << line;
    const std::string type = string_or(obj, "type", "");
    if (type == "run") {
      ++runs;
      EXPECT_EQ(string_or(obj, "dataset", ""), "synthetic \"quoted\"");
      EXPECT_DOUBLE_EQ(number_or(obj, "seed", 0), 11.0);
    } else if (type == "epoch") {
      ++epochs;
      epoch_lines.push_back(std::move(obj));
    } else if (type == "health") {
      ++healths;
    } else if (type == "remap") {
      ++remaps;
    }
  }
  EXPECT_EQ(runs, 1u);
  ASSERT_EQ(epochs, 2u);
  EXPECT_EQ(healths, 2 * rcs_->total_crossbars());
  EXPECT_EQ(remaps, ob.audit().size());

  for (std::size_t e = 0; e < 2; ++e) {
    EXPECT_DOUBLE_EQ(number_or(epoch_lines[e], "epoch", -1),
                     static_cast<double>(e));
    EXPECT_DOUBLE_EQ(number_or(epoch_lines[e], "remaps", -1),
                     static_cast<double>(expected_swaps[e]));
    EXPECT_DOUBLE_EQ(number_or(epoch_lines[e], "new_faults", -1),
                     static_cast<double>(5 + e));
    EXPECT_DOUBLE_EQ(number_or(epoch_lines[e], "total_faults", -1),
                     static_cast<double>(100 + e));
    // The audit log agrees with the trainer's per-epoch counts.
    EXPECT_EQ(ob.audit().swaps_in_epoch(e), expected_swaps[e]);
  }

  // The summary mentions the run and its churn.
  const std::string summary = ob.summary();
  EXPECT_NE(summary.find("test-model"), std::string::npos);
  EXPECT_NE(summary.find("remap churn"), std::string::npos);
}

TEST_F(ObsTest, ObservatorySealsRunsSequentially) {
  obs::Observatory& ob = obs::Observatory::instance();
  obs::RunInfo info;
  info.model = "first";
  info.crossbars = rcs_->total_crossbars();
  ob.begin_run(info);
  obs::EpochObs eo;
  ob.sample_epoch(eo, *rcs_, density_, *mapper_);

  info.model = "second";
  ob.begin_run(info);  // seals "first"
  ob.sample_epoch(eo, *rcs_, density_, *mapper_);

  std::size_t runs = 0;
  std::istringstream is(ob.jsonl());
  std::string line;
  std::vector<std::string> models;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonObject obj;
    ASSERT_TRUE(obs::parse_jsonl_line(line, &obj));
    if (string_or(obj, "type", "") == "run") {
      ++runs;
      models.push_back(string_or(obj, "model", ""));
    }
  }
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(models, (std::vector<std::string>{"first", "second"}));
}

TEST(ObsGate, DisabledByDefault) {
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(false);
}

}  // namespace
}  // namespace remapd
