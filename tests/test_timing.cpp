#include <gtest/gtest.h>

#include "bist/fsm.hpp"
#include "trainer/timing_model.hpp"

namespace remapd {
namespace {

TEST(TimingModel, ComponentsAdditive) {
  const EpochTiming t = estimate_epoch_timing(PipelineTimingConfig{});
  EXPECT_GT(t.compute_cycles, 0u);
  EXPECT_GT(t.write_cycles, 0u);
  EXPECT_EQ(t.total_cycles, t.compute_cycles + t.write_cycles);
  EXPECT_NEAR(t.milliseconds,
              static_cast<double>(t.total_cycles) * 100.0 / 1e6, 1e-9);
}

TEST(TimingModel, CifarScaleEpochIsTensOfMilliseconds) {
  const EpochTiming t = estimate_epoch_timing(PipelineTimingConfig{});
  EXPECT_GT(t.milliseconds, 10.0);
  EXPECT_LT(t.milliseconds, 100.0);
}

TEST(TimingModel, BistOverheadMatchesPaper) {
  // The headline §III.B.3 claim: 260 cycles of BIST against one epoch of
  // pipelined training is ~0.13 %.
  const EpochTiming t = estimate_epoch_timing(PipelineTimingConfig{});
  const double pct = t.overhead_percent(BistFsm::total_cycles(128));
  EXPECT_GT(pct, 0.10);
  EXPECT_LT(pct, 0.16);
}

TEST(TimingModel, ScalesWithImages) {
  PipelineTimingConfig half;
  half.images_per_epoch = 25000;
  const EpochTiming a = estimate_epoch_timing(PipelineTimingConfig{});
  const EpochTiming b = estimate_epoch_timing(half);
  EXPECT_GT(a.total_cycles, static_cast<std::uint64_t>(
                                1.9 * static_cast<double>(b.total_cycles)));
}

TEST(TimingModel, OverheadZeroOnEmptyEpoch) {
  EpochTiming empty;
  EXPECT_DOUBLE_EQ(empty.overhead_percent(100), 0.0);
}

}  // namespace
}  // namespace remapd
