#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/sgd.hpp"

namespace remapd {
namespace {

/// Scalar probe loss L = sum(seed .* layer(x)); returns dL/dx from the
/// layer's backward and checks it against central finite differences.
void check_input_gradient(Layer& layer, const Tensor& x, double tol = 2e-2) {
  Rng rng(99);
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor seed = Tensor::randn(y.shape(), rng);
  Tensor dx = layer.backward(seed);
  ASSERT_EQ(dx.shape(), x.shape());

  auto loss_at = [&](const Tensor& probe) {
    Tensor out = layer.forward(probe, /*train=*/true);
    double s = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i)
      s += static_cast<double>(seed[i]) * out[i];
    return s;
  };

  const float eps = 1e-2f;
  // Probe a deterministic subset of positions (finite differences on every
  // element would dominate test time without adding signal).
  for (std::size_t i = 0; i < x.numel(); i += std::max<std::size_t>(1, x.numel() / 17)) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], num, tol * (std::abs(num) + 1.0)) << "input idx " << i;
  }
  // Restore the saved-activation state for the caller.
  layer.forward(x, /*train=*/true);
}

/// Same probe loss, checking every parameter gradient (sampled).
void check_param_gradients(Layer& layer, const Tensor& x, double tol = 2e-2) {
  Rng rng(98);
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor seed = Tensor::randn(y.shape(), rng);
  for (Param* p : layer.params()) p->zero_grad();
  layer.backward(seed);

  auto loss_now = [&]() {
    Tensor out = layer.forward(x, /*train=*/true);
    double s = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i)
      s += static_cast<double>(seed[i]) * out[i];
    return s;
  };

  const float eps = 1e-2f;
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.numel();
         i += std::max<std::size_t>(1, p->value.numel() / 11)) {
      const float keep = p->value[i];
      p->value[i] = keep + eps;
      const double lp = loss_now();
      p->value[i] = keep - eps;
      const double lm = loss_now();
      p->value[i] = keep;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * (std::abs(num) + 1.0))
          << p->tag << " idx " << i;
    }
  }
}

// ------------------------------------------------------------------ Conv2d

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 8}));
  EXPECT_EQ(conv.weight_rows(), 8u);
  EXPECT_EQ(conv.weight_cols(), 27u);
}

TEST(Conv2d, StrideShrinksOutput) {
  Rng rng(2);
  Conv2d conv(2, 4, 3, 2, 1, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 8, 8}, rng);
  EXPECT_EQ(conv.forward(x, false).shape(), (Shape{1, 4, 4, 4}));
}

TEST(Conv2d, KnownValue1x1) {
  Rng rng(3);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.weight_param().value[0] = 2.0f;
  conv.params()[1]->value[0] = 0.5f;  // bias
  Tensor x = Tensor::ones(Shape{1, 1, 2, 2});
  Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], 2.5f);
}

TEST(Conv2d, InputGradientMatchesFiniteDifference) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);
  check_input_gradient(conv, x);
}

TEST(Conv2d, ParamGradientsMatchFiniteDifference) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);
  check_param_gradients(conv, x);
}

TEST(Conv2d, BadInputThrows) {
  Rng rng(6);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  EXPECT_THROW(conv.forward(x, false), std::invalid_argument);
  Conv2d fresh(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(fresh.backward(Tensor::zeros(Shape{1, 4, 4, 4})),
               std::logic_error);
}

TEST(Conv2d, ForwardFaultViewClampsWeights) {
  Rng rng(7);
  Conv2d conv(1, 2, 1, 1, 0, rng);
  conv.weight_param().value[0] = 0.3f;
  conv.weight_param().value[1] = -0.2f;
  FaultView fwd;
  fwd.w_max = 1.0f;
  fwd.mode = MappingMode::kSingleArrayBias;
  fwd.clamps.push_back(WeightClamp{0, WeightClampKind::kPosStuck1});  // +1
  conv.set_fault_views(fwd, FaultView{});
  Tensor x = Tensor::ones(Shape{1, 1, 1, 1});
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);   // stuck at +w_max
  EXPECT_FLOAT_EQ(y[1], -0.2f);  // untouched
  conv.clear_fault_views();
  EXPECT_FLOAT_EQ(conv.forward(x, false)[0], 0.3f);
}

// ------------------------------------------------------------------ Linear

TEST(Linear, OutputShapeAndValue) {
  Rng rng(8);
  Linear fc(3, 2, rng);
  fc.weight_param().value.fill(1.0f);
  fc.params()[1]->value[0] = 1.0f;
  Tensor x = Tensor::from_vector(Shape{1, 3}, {1, 2, 3});
  Tensor y = fc.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(Linear, FlattensHigherRankInput) {
  Rng rng(9);
  Linear fc(12, 4, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 2, 2}, rng);
  EXPECT_EQ(fc.forward(x, false).shape(), (Shape{2, 4}));
}

TEST(Linear, GradientsMatchFiniteDifference) {
  Rng rng(10);
  Linear fc(5, 4, rng);
  Tensor x = Tensor::randn(Shape{3, 5}, rng);
  check_input_gradient(fc, x);
  check_param_gradients(fc, x);
}

TEST(Linear, BackwardRestoresInputShape) {
  Rng rng(11);
  Linear fc(8, 2, rng);
  Tensor x = Tensor::randn(Shape{2, 2, 2, 2}, rng);
  fc.forward(x, true);
  Tensor dx = fc.backward(Tensor::ones(Shape{2, 2}));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Linear, BackwardFaultViewAffectsDx) {
  Rng rng(12);
  Linear fc(2, 1, rng);
  fc.weight_param().value[0] = 0.5f;
  fc.weight_param().value[1] = 0.5f;
  FaultView bwd;
  bwd.w_max = 1.0f;
  bwd.clamps.push_back(WeightClamp{0, WeightClampKind::kPosStuck0});  // -1
  fc.set_fault_views(FaultView{}, bwd);

  Tensor x = Tensor::ones(Shape{1, 2});
  fc.forward(x, true);
  Tensor dx = fc.backward(Tensor::ones(Shape{1, 1}));
  // dx[0] uses the clamped backward weight (-w_max), dx[1] the true 0.5.
  EXPECT_FLOAT_EQ(dx[0], -1.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.5f);
}

// ----------------------------------------------------------------- ReLU etc

TEST(ReLU, ForwardAndMaskedBackward) {
  ReLU relu;
  Tensor x = Tensor::from_vector(Shape{4}, {-1, 2, -3, 4});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  Tensor dx = relu.backward(Tensor::ones(Shape{4}));
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 1.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten fl;
  Rng rng(14);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  Tensor y = fl.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  Tensor dx = fl.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

// ----------------------------------------------------------------- Pooling

TEST(MaxPool2d, SelectsMaximaAndRoutesGradient) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor dx = pool.backward(Tensor::ones(Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(MaxPool2d, RejectsNonDivisibleInput) {
  MaxPool2d pool(2);
  Tensor x = Tensor::zeros(Shape{1, 1, 3, 3});
  EXPECT_THROW(pool.forward(x, false), std::invalid_argument);
}

TEST(GlobalAvgPool, AveragesAndBackpropagates) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from_vector(Shape{1, 2, 1, 2}, {2, 4, 10, 20});
  Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
  Tensor dx = gap.backward(Tensor::ones(Shape{1, 2}));
  EXPECT_FLOAT_EQ(dx[0], 0.5f);
  EXPECT_FLOAT_EQ(dx[3], 0.5f);
}

// --------------------------------------------------------------- BatchNorm

TEST(BatchNorm, NormalizesTrainingBatch) {
  BatchNorm bn(2);
  Rng rng(15);
  Tensor x = Tensor::randn(Shape{8, 2, 4, 4}, rng, 3.0f);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization with unit gamma.
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t p = 0; p < 16; ++p, ++n)
        mean += y[(i * 2 + c) * 16 + p];
    mean /= static_cast<double>(n);
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t p = 0; p < 16; ++p)
        var += std::pow(y[(i * 2 + c) * 16 + p] - mean, 2);
    var /= static_cast<double>(n);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GradientsMatchFiniteDifference) {
  BatchNorm bn(3);
  Rng rng(16);
  Tensor x = Tensor::randn(Shape{4, 3, 2, 2}, rng);
  check_input_gradient(bn, x, 5e-2);
  check_param_gradients(bn, x, 5e-2);
}

TEST(BatchNorm, WindowStatsDriveEval) {
  BatchNorm bn(1);
  bn.begin_stats_window();
  Tensor x = Tensor::from_vector(Shape{2, 1}, {4, 6});  // mean 5, var 1
  bn.forward(x, true);
  Tensor probe = Tensor::from_vector(Shape{1, 1}, {5});
  Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0f, 1e-3);
}

TEST(BatchNorm, Rank2AndRank4Supported) {
  BatchNorm bn(4);
  Rng rng(17);
  EXPECT_NO_THROW(bn.forward(Tensor::randn(Shape{3, 4}, rng), true));
  BatchNorm bn4(4);
  EXPECT_NO_THROW(bn4.forward(Tensor::randn(Shape{3, 4, 2, 2}, rng), true));
  BatchNorm wrong(5);
  EXPECT_THROW(wrong.forward(Tensor::randn(Shape{3, 4}, rng), true),
               std::invalid_argument);
}

// -------------------------------------------------------------------- Loss

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::zeros(Shape{2, 4});
  LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Rng rng(18);
  Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  LossResult r = softmax_cross_entropy(logits, {1, 4, 0});
  for (std::size_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 5; ++j) s += r.dlogits.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(19);
  Tensor logits = Tensor::randn(Shape{2, 3}, rng);
  std::vector<std::int32_t> labels{2, 0};
  LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double num = (softmax_cross_entropy(lp, labels).loss -
                        softmax_cross_entropy(lm, labels).loss) /
                       (2.0 * eps);
    EXPECT_NEAR(r.dlogits[i], num, 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, CountsCorrectPredictions) {
  Tensor logits = Tensor::from_vector(Shape{2, 2}, {3, 1, 0, 2});
  LossResult r = softmax_cross_entropy(logits, {0, 1});
  EXPECT_EQ(r.correct, 2u);
  EXPECT_EQ(count_correct(logits, {1, 0}), 0u);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Tensor logits = Tensor::zeros(Shape{1, 2});
  EXPECT_THROW(softmax_cross_entropy(logits, {5}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

// --------------------------------------------------------------------- SGD

TEST(Sgd, PlainStepDescends) {
  Param p(Tensor::from_vector(Shape{1}, {1.0f}));
  Sgd sgd({&p}, Sgd::Config{0.1f, 0.0f, 0.0f, 0.0f});
  p.grad[0] = 2.0f;
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.8f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);  // zeroed after step
}

TEST(Sgd, MomentumAccumulates) {
  Param p(Tensor::from_vector(Shape{1}, {0.0f}));
  Sgd sgd({&p}, Sgd::Config{1.0f, 0.5f, 0.0f, 0.0f});
  p.grad[0] = 1.0f;
  sgd.step();  // v=1, w=-1
  p.grad[0] = 1.0f;
  sgd.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p(Tensor::from_vector(Shape{1}, {10.0f}));
  Sgd sgd({&p}, Sgd::Config{0.1f, 0.0f, 0.1f, 0.0f});
  p.grad[0] = 0.0f;
  sgd.step();
  EXPECT_NEAR(p.value[0], 10.0f - 0.1f * (0.1f * 10.0f), 1e-6);
}

TEST(Sgd, GlobalNormClipBoundsUpdate) {
  Param p(Tensor::from_vector(Shape{2}, {0.0f, 0.0f}));
  Sgd sgd({&p}, Sgd::Config{1.0f, 0.0f, 0.0f, 1.0f});
  p.grad[0] = 30.0f;
  p.grad[1] = 40.0f;  // norm 50, clip to 1 -> scale 0.02
  sgd.step();
  EXPECT_NEAR(p.value[0], -0.6f, 1e-5);
  EXPECT_NEAR(p.value[1], -0.8f, 1e-5);
}

// -------------------------------------------------------- gradient pinning

TEST(GradientPinning, PinsSignAndMagnitude) {
  Tensor grad = Tensor::from_vector(Shape{4}, {0.1f, -0.1f, 0.1f, -0.1f});
  std::optional<FaultView> view = FaultView{};
  view->clamps.push_back(WeightClamp{0, WeightClampKind::kPosStuck1});
  view->clamps.push_back(WeightClamp{1, WeightClampKind::kNegStuck0});
  apply_gradient_pinning(view, grad);
  EXPECT_GT(grad[0], 0.1f);             // pinned positive, amplified
  EXPECT_LT(grad[1], -0.1f);            // pinned negative
  EXPECT_FLOAT_EQ(grad[2], 0.1f);       // untouched
  EXPECT_FLOAT_EQ(grad[3], -0.1f);
  EXPECT_FLOAT_EQ(grad[0], -grad[1]);   // same magnitude
}

TEST(GradientPinning, NoViewIsNoOp) {
  Tensor grad = Tensor::from_vector(Shape{2}, {1.0f, 2.0f});
  std::optional<FaultView> none;
  apply_gradient_pinning(none, grad);
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
  std::optional<FaultView> empty = FaultView{};
  apply_gradient_pinning(empty, grad);
  EXPECT_FLOAT_EQ(grad[1], 2.0f);
}

// ------------------------------------------------------------- fault views

TEST(FaultView, SingleArrayClampValues) {
  FaultView v;
  v.w_max = 0.5f;
  v.mode = MappingMode::kSingleArrayBias;
  EXPECT_FLOAT_EQ(v.clamp_value(0.2f, WeightClampKind::kPosStuck1), 0.5f);
  EXPECT_FLOAT_EQ(v.clamp_value(0.2f, WeightClampKind::kNegStuck1), 0.5f);
  EXPECT_FLOAT_EQ(v.clamp_value(-0.3f, WeightClampKind::kPosStuck0), -0.5f);
  EXPECT_FLOAT_EQ(v.clamp_value(0.3f, WeightClampKind::kNegStuck0), -0.5f);
}

TEST(FaultView, DifferentialClampValues) {
  FaultView v;
  v.w_max = 1.0f;
  v.mode = MappingMode::kDifferentialPair;
  // Positive weight 0.4: pos half active (0.4), neg half 0.
  EXPECT_FLOAT_EQ(v.clamp_value(0.4f, WeightClampKind::kPosStuck0), 0.0f);
  EXPECT_FLOAT_EQ(v.clamp_value(0.4f, WeightClampKind::kPosStuck1), 1.0f);
  EXPECT_FLOAT_EQ(v.clamp_value(0.4f, WeightClampKind::kNegStuck0), 0.4f);
  EXPECT_FLOAT_EQ(v.clamp_value(0.4f, WeightClampKind::kNegStuck1), -0.6f);
  // Negative weight -0.4: neg half active.
  EXPECT_FLOAT_EQ(v.clamp_value(-0.4f, WeightClampKind::kPosStuck0), -0.4f);
  EXPECT_FLOAT_EQ(v.clamp_value(-0.4f, WeightClampKind::kPosStuck1), 0.6f);
}

TEST(FaultView, ApplyCopiesAndClamps) {
  FaultView v;
  v.w_max = 1.0f;
  v.clamps.push_back(WeightClamp{1, WeightClampKind::kPosStuck1});
  const float in[3] = {0.1f, 0.2f, 0.3f};
  float out[3];
  v.apply(in, out, 3);
  EXPECT_FLOAT_EQ(out[0], 0.1f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
  EXPECT_FLOAT_EQ(out[2], 0.3f);
}

// -------------------------------------------------------------- composites

TEST(Sequential, ChainsForwardBackward) {
  Rng rng(20);
  Sequential seq;
  seq.emplace<Linear>(4, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(3, 2, rng);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  Tensor dx = seq.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(seq.params().size(), 4u);  // 2x (weight + bias)
}

TEST(ResidualBlock, IdentitySkipShape) {
  Rng rng(21);
  ResidualBlock block(4, 4, 1, rng, "rb");
  Tensor x = Tensor::randn(Shape{2, 4, 4, 4}, rng);
  EXPECT_EQ(block.forward(x, false).shape(), x.shape());
  EXPECT_EQ(block.faultable().size(), 2u);  // no projection
}

TEST(ResidualBlock, ProjectionWhenShapeChanges) {
  Rng rng(22);
  ResidualBlock block(4, 8, 2, rng, "rb");
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  EXPECT_EQ(block.forward(x, false).shape(), (Shape{1, 8, 4, 4}));
  EXPECT_EQ(block.faultable().size(), 3u);  // conv1, conv2, proj
}

TEST(ResidualBlock, GradientFlowsThroughSkip) {
  Rng rng(23);
  ResidualBlock block(2, 2, 1, rng, "rb");
  Tensor x = Tensor::randn(Shape{2, 2, 3, 3}, rng);
  check_input_gradient(block, x, 6e-2);
}

TEST(FireModule, ConcatenatesExpandPaths) {
  Rng rng(24);
  FireModule fire(4, 2, 3, 5, rng, "fire");
  Tensor x = Tensor::randn(Shape{2, 4, 4, 4}, rng);
  Tensor y = fire.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
  EXPECT_EQ(fire.out_channels(), 8u);
  EXPECT_EQ(fire.faultable().size(), 3u);
}

TEST(FireModule, GradientMatchesFiniteDifference) {
  Rng rng(25);
  FireModule fire(2, 2, 2, 2, rng, "fire");
  Tensor x = Tensor::randn(Shape{1, 2, 3, 3}, rng);
  check_input_gradient(fire, x, 6e-2);
}

TEST(CollectFaultable, FindsNestedWeightLayers) {
  Rng rng(26);
  Sequential seq;
  seq.emplace<Conv2d>(3, 4, 3, 1, 1, rng);
  seq.emplace<ReLU>();
  seq.emplace<ResidualBlock>(4, 8, 2, rng, "rb");
  seq.emplace<FireModule>(8, 2, 4, 4, rng, "f");
  seq.emplace<Linear>(8, 2, rng);
  // conv + (conv1, conv2, proj) + (squeeze, e1, e3) + fc = 8
  EXPECT_EQ(collect_faultable(seq).size(), 8u);
}

TEST(Visit, ReachesEveryBatchNorm) {
  Rng rng(27);
  Sequential seq;
  seq.emplace<BatchNorm>(3);
  seq.emplace<ResidualBlock>(3, 3, 1, rng, "rb");  // 2 BNs inside
  std::size_t count = 0;
  seq.visit([&](Layer& l) {
    if (dynamic_cast<BatchNorm*>(&l)) ++count;
  });
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace remapd
