// Observability surface: HTTP request parsing and routing, the embedded
// server over real sockets, Prometheus exposition (name sanitization
// round-trip), migration flow events in the trace, idempotent append-mode
// flushing, and the headline serving-determinism guarantee — a fleet run
// hammered by a live /metrics + /status poller produces byte-identical
// per-epoch CSV to the same run unserved, at any thread count.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/chip.hpp"
#include "fleet/scheduler.hpp"
#include "fleet/status.hpp"
#include "obs/http_server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"

namespace remapd {
namespace {

// Minimal raw client shared by the socket and serving-determinism tests:
// send `request` verbatim to 127.0.0.1:`port`, read to EOF (the server
// closes every connection).
std::string raw_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string http_get_raw(std::uint16_t port, const std::string& path) {
  return raw_exchange(port, "GET " + path +
                                " HTTP/1.1\r\nHost: t\r\n"
                                "Connection: close\r\n\r\n");
}

}  // namespace

namespace obs {
namespace {

// ------------------------------------------------------- request parsing

TEST(HttpParse, ParsesRequestLineQueryAndHeaders) {
  HttpRequest req;
  std::string err;
  ASSERT_TRUE(parse_http_request(
      "GET /status?verbose=1 HTTP/1.1\r\nHost: localhost:8787\r\n"
      "X-Custom:  padded value \r\n",
      req, err))
      << err;
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/status?verbose=1");
  EXPECT_EQ(req.path, "/status");
  EXPECT_EQ(req.query, "verbose=1");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.header("host"), "localhost:8787");
  EXPECT_EQ(req.header("x-custom"), "padded value");
  EXPECT_EQ(req.header("absent"), "");
}

TEST(HttpParse, HeaderNamesAreCaseInsensitive) {
  HttpRequest req;
  std::string err;
  ASSERT_TRUE(parse_http_request(
      "GET / HTTP/1.0\r\nCONTENT-Type: text/plain\r\n", req, err));
  EXPECT_EQ(req.header("content-type"), "text/plain");
}

TEST(HttpParse, AcceptsBareLfLineEndings) {
  HttpRequest req;
  std::string err;
  ASSERT_TRUE(parse_http_request("GET /x HTTP/1.1\nHost: h\n", req, err));
  EXPECT_EQ(req.path, "/x");
  EXPECT_EQ(req.header("host"), "h");
}

TEST(HttpParse, RejectsMalformedInput) {
  HttpRequest req;
  std::string err;
  EXPECT_FALSE(parse_http_request("", req, err));
  EXPECT_FALSE(parse_http_request("GET\r\n", req, err));
  EXPECT_FALSE(parse_http_request("GET /only-two-tokens\r\n", req, err));
  EXPECT_FALSE(parse_http_request(
      "GET / HTTP/1.1\r\nno-colon-header\r\n", req, err));
  EXPECT_FALSE(err.empty());
}

TEST(HttpParse, RenderedResponseHasFramingHeaders) {
  HttpResponse r = HttpResponse::text("hello\n");
  const std::string wire = render_http_response(r);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nhello\n"));
}

// ------------------------------------------------------------- dispatch

HttpRequest make_request(const std::string& method, const std::string& path) {
  HttpRequest req;
  req.method = method;
  req.target = path;
  req.path = path;
  req.version = "HTTP/1.1";
  return req;
}

TEST(HttpDispatch, RoutesKnownPathAnd404sUnknown) {
  HttpServer server;
  server.route("/ping", [](const HttpRequest&) {
    return HttpResponse::text("pong\n");
  });
  EXPECT_EQ(server.dispatch(make_request("GET", "/ping")).body, "pong\n");
  EXPECT_EQ(server.dispatch(make_request("GET", "/nope")).status, 404);
}

TEST(HttpDispatch, NonGetOnKnownPathIs405AndHandlerThrowIs500) {
  HttpServer server;
  server.route("/ping", [](const HttpRequest&) {
    return HttpResponse::text("pong\n");
  });
  server.route("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  const HttpResponse post = server.dispatch(make_request("POST", "/ping"));
  EXPECT_EQ(post.status, 405);
  EXPECT_NE(render_http_response(post).find("Allow: GET\r\n"),
            std::string::npos);
  const HttpResponse boom = server.dispatch(make_request("GET", "/boom"));
  EXPECT_EQ(boom.status, 500);
  EXPECT_NE(boom.body.find("handler exploded"), std::string::npos);
}

// ------------------------------------------------------- socket round-trip

TEST(HttpServerSocket, ServesRoutesOverRealSockets) {
  HttpServer server;
  server.route("/healthz", [](const HttpRequest&) {
    return HttpResponse::text("ok\n");
  });
  server.start(0);  // kernel-assigned port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string ok = http_get_raw(server.port(), "/healthz");
  EXPECT_NE(ok.find(" 200 "), std::string::npos);
  EXPECT_TRUE(ok.ends_with("ok\n"));

  EXPECT_NE(http_get_raw(server.port(), "/missing").find(" 404 "),
            std::string::npos);
  EXPECT_NE(raw_exchange(server.port(),
                         "POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .find(" 405 "),
            std::string::npos);
  EXPECT_NE(raw_exchange(server.port(), "complete garbage\r\n\r\n")
                .find(" 400 "),
            std::string::npos);

  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

}  // namespace
}  // namespace obs

// ------------------------------------------------------------ prometheus

namespace telemetry {
namespace {

TEST(Prometheus, MetricKeySplitsJobQualifiedNames) {
  EXPECT_EQ(metric_key("gemm.calls").metric, "gemm.calls");
  EXPECT_EQ(metric_key("gemm.calls").job, "");
  const MetricKey k = metric_key("job:alpha/fleet.slices");
  EXPECT_EQ(k.metric, "fleet.slices");
  EXPECT_EQ(k.job, "alpha");
  // Job names are user-controlled and may contain '/': the metric segment
  // is everything after the LAST slash.
  const MetricKey nested = metric_key("job:team/alpha/fleet.slices");
  EXPECT_EQ(nested.metric, "fleet.slices");
  EXPECT_EQ(nested.job, "team/alpha");
}

TEST(Prometheus, NameSanitizationAndLabelEscaping) {
  EXPECT_EQ(prometheus_metric_name("fleet.slice_ns"),
            "remapd_fleet_slice_ns");
  EXPECT_EQ(prometheus_metric_name("weird name:x"), "remapd_weird_name_x");
  EXPECT_EQ(prometheus_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Prometheus, RoundTripsJobQualifiedCounterIntoLabelledFamily) {
  RegistrySnapshot snap;
  snap.counters.emplace_back("job:alpha/fleet.slices", 7);
  snap.counters.emplace_back("job:beta/fleet.slices", 9);
  snap.counters.emplace_back("fleet.migrations", 2);
  const std::string text = prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE remapd_fleet_slices counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("remapd_fleet_slices{job=\"alpha\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("remapd_fleet_slices{job=\"beta\"} 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("remapd_fleet_migrations 2\n"), std::string::npos);
  // Exactly one TYPE line for the shared family.
  EXPECT_EQ(text.find("# TYPE remapd_fleet_slices"),
            text.rfind("# TYPE remapd_fleet_slices"));
}

TEST(Prometheus, HistogramsRenderAsSummaries) {
  RegistrySnapshot snap;
  HistogramStats h;
  h.count = 4;
  h.sum = 100;
  h.min = 10;
  h.max = 40;
  h.p50 = 20;
  h.p95 = 40;
  h.p99 = 40;
  snap.histograms.emplace_back("job:alpha/fleet.slice_ns", h);
  const std::string text = prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE remapd_fleet_slice_ns summary\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("remapd_fleet_slice_ns{job=\"alpha\",quantile=\"0.5\"} 20\n"),
      std::string::npos);
  EXPECT_NE(text.find("remapd_fleet_slice_ns_count{job=\"alpha\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("remapd_fleet_slice_ns_sum{job=\"alpha\"} 100\n"),
            std::string::npos);
}

TEST(Prometheus, EveryLineIsValidExposition) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("gemm.calls").add(3);
  reg.gauge("noc.util").set(0.5);
  reg.histogram("fleet.slice_ns").record(1000);
  {
    JobLabelScope scope("job:my job/with strange+chars", 1);
    reg.counter("fleet.slices").add();
  }
  const std::string text = prometheus_text();
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE remapd_", 0), 0u) << line;
      continue;
    }
    // name{labels} value  |  name value
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric value in: " << line;
    const std::size_t brace = series.find('{');
    if (brace != std::string::npos) {
      EXPECT_TRUE(series.ends_with('}')) << line;
      series = series.substr(0, brace);
    }
    EXPECT_EQ(series.rfind("remapd_", 0), 0u) << line;
    for (const char c : series)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_')
          << "illegal char '" << c << "' in: " << line;
  }
  reg.reset();
}

// ------------------------------------------------- idempotent append flush

TEST(TelemetryFlush, AppendModeFlushLandsExactlyOnce) {
  const std::string path = "test_http_flush.summary.txt";
  std::remove(path.c_str());
  reset_all();
  set_enabled(true);
  Registry::instance().counter("flush.probe").add(42);
  ::setenv("REMAPD_METRICS", path.c_str(), 1);
  set_resume_append(true);

  // Daemon shutdown can flush up to three times (manual, atexit,
  // terminate handler); append mode must land one copy.
  flush_to_env_paths();
  flush_to_env_paths();
  flush_to_env_paths();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  const std::size_t first = text.find("flush.probe");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("flush.probe", first + 1), std::string::npos)
      << "append-mode flush wrote more than one copy";

  set_resume_append(false);
  ::unsetenv("REMAPD_METRICS");
  set_enabled(false);
  reset_all();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace telemetry

// ---------------------------------------------- fleet integration surface

namespace fleet {
namespace {

class FleetThreadGuard {
 public:
  explicit FleetThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~FleetThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

JobSpec tiny_job(const std::string& name, std::uint64_t seed = 7,
                 std::size_t epochs = 2) {
  JobSpec j;
  j.name = name;
  j.model = "resnet12";
  j.policy = "remap-d";
  j.epochs = epochs;
  j.train = 48;
  j.test = 32;
  j.seed = seed;
  return j;
}

/// Render the per-job per-epoch history exactly the way the remapd_fleet
/// CLI writes its --csv output (tools/remapd_fleet.cpp).
std::string history_csv(const Scheduler& scheduler) {
  CsvWriter csv;
  csv.header({"job", "model", "policy", "epoch", "loss", "train_acc",
              "test_acc", "remaps", "faults", "new_faults"});
  for (const FleetJob& job : scheduler.jobs()) {
    if (!job.trainer) continue;
    for (const EpochRecord& e : job.trainer->result().history)
      csv.row(job.spec.name, job.spec.model, job.spec.policy, e.epoch,
              e.train_loss, e.train_accuracy, e.test_accuracy, e.remaps,
              e.total_faults, e.new_faults);
  }
  return csv.dump();
}

std::string run_fleet_csv(bool served, std::size_t threads) {
  FleetThreadGuard guard(threads);
  ChipSpec base;
  base.name = "chip";
  ChipPool pool = ChipPool::homogeneous(3, base);
  SchedulerConfig cfg;
  cfg.force_migrate_at_epoch = 1;  // exercise migration while serving

  StatusBoard board;
  obs::HttpServer server;
  std::thread poller;
  std::atomic<bool> poll_stop{false};
  if (served) {
    cfg.status_board = &board;
    server.route("/metrics", [](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = telemetry::kPrometheusContentType;
      r.body = telemetry::prometheus_text();
      return r;
    });
    server.route("/status", [&board](const obs::HttpRequest&) {
      return obs::HttpResponse::json(board.read().json());
    });
    server.start(0);
  }

  Scheduler scheduler(pool, cfg);
  scheduler.submit(tiny_job("alpha", 7));
  scheduler.submit(tiny_job("beta", 8));

  if (served) {
    // Hammer the endpoints for the whole run from a second thread — the
    // determinism contract says this cannot change a single CSV byte.
    const std::uint16_t port = server.port();
    poller = std::thread([port, &poll_stop] {
      while (!poll_stop.load()) {
        const std::string m = http_get_raw(port, "/metrics");
        const std::string s = http_get_raw(port, "/status");
        EXPECT_NE(m.find(" 200 "), std::string::npos);
        EXPECT_NE(s.find(" 200 "), std::string::npos);
      }
    });
  }

  (void)scheduler.run();

  if (served) {
    // The final published snapshot must be the done-marker.
    const FleetStatus last = board.read();
    EXPECT_TRUE(last.done);
    EXPECT_EQ(last.completed, 2u);
    poll_stop.store(true);
    poller.join();
    server.stop();
  }
  return history_csv(scheduler);
}

TEST(FleetServing, PollingNeverChangesCsvBytes) {
  telemetry::reset_all();
  telemetry::set_enabled(true);  // serving implies metrics collection
  const std::string reference = run_fleet_csv(/*served=*/false, 1);
  ASSERT_FALSE(reference.empty());

  telemetry::reset_all();
  EXPECT_EQ(run_fleet_csv(/*served=*/true, 1), reference)
      << "serving perturbed the run at REMAPD_THREADS=1";

  telemetry::reset_all();
  EXPECT_EQ(run_fleet_csv(/*served=*/true, 4), reference)
      << "serving perturbed the run at REMAPD_THREADS=4";

  telemetry::set_enabled(false);
  telemetry::reset_all();
}

TEST(FleetServing, StatusSnapshotCarriesChipAndJobRows) {
  FleetThreadGuard guard(1);
  telemetry::reset_all();
  ChipSpec base;
  base.name = "chip";
  ChipPool pool = ChipPool::homogeneous(2, base);
  StatusBoard board;
  SchedulerConfig cfg;
  cfg.status_board = &board;
  Scheduler scheduler(pool, cfg);
  scheduler.submit(tiny_job("solo", 7, /*epochs=*/1));
  (void)scheduler.run();

  const FleetStatus st = board.read();
  EXPECT_TRUE(st.done);
  ASSERT_EQ(st.chips.size(), 2u);
  ASSERT_EQ(st.jobs.size(), 1u);
  EXPECT_EQ(st.jobs[0].name, "solo");
  EXPECT_EQ(st.jobs[0].state, "completed");
  EXPECT_EQ(st.jobs[0].trace_id, 1u);
  EXPECT_EQ(st.jobs[0].epochs_completed, 1u);
  EXPECT_GT(st.jobs[0].last_test_accuracy, 0.0);
  EXPECT_GE(board.version(), 2u);  // pre-run publish + per-step publishes

  const std::string json = st.json();
  for (const char* field :
       {"\"step\":", "\"done\":true", "\"chips\":[", "\"jobs\":[",
        "\"trace_id\":1", "\"health\":", "\"epochs_completed\":"})
    EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(FleetServing, StopRequestEndsRunAtStepBoundary) {
  FleetThreadGuard guard(1);
  std::atomic<bool> stop{true};  // already set: run() must do zero steps
  ChipSpec base;
  base.name = "chip";
  ChipPool pool = ChipPool::homogeneous(1, base);
  SchedulerConfig cfg;
  cfg.stop_requested = &stop;
  Scheduler scheduler(pool, cfg);
  scheduler.submit(tiny_job("interrupted"));
  const FleetSummary summary = scheduler.run();
  EXPECT_EQ(summary.steps, 0u);
  EXPECT_EQ(summary.completed, 0u);
}

TEST(FleetServing, MigrationEmitsLinkedFlowEventsUnderJobTraceId) {
  FleetThreadGuard guard(1);
  telemetry::reset_all();
  telemetry::set_enabled(true);

  ChipSpec base;
  base.name = "chip";
  ChipPool pool = ChipPool::homogeneous(2, base);
  SchedulerConfig cfg;
  cfg.force_migrate_at_epoch = 1;
  Scheduler scheduler(pool, cfg);
  scheduler.submit(tiny_job("mover", 7));
  (void)scheduler.run();
  ASSERT_EQ(scheduler.migrations().size(), 1u);

  const std::vector<telemetry::TraceEvent> events =
      telemetry::TraceBuffer::instance().snapshot();
  const telemetry::TraceEvent* start = nullptr;
  const telemetry::TraceEvent* finish = nullptr;
  bool saw_save_span = false;
  bool saw_restore_span = false;
  for (const telemetry::TraceEvent& ev : events) {
    if (ev.ph == 's' && ev.name == "migrate") start = &ev;
    if (ev.ph == 'f' && ev.name == "migrate") finish = &ev;
    if (ev.ph == 'X' && ev.name == "fleet.migrate.save") saw_save_span = true;
    if (ev.ph == 'X' && ev.name == "fleet.migrate.restore")
      saw_restore_span = true;
  }
  ASSERT_NE(start, nullptr) << "no flow start event";
  ASSERT_NE(finish, nullptr) << "no flow finish event";
  EXPECT_TRUE(saw_save_span);
  EXPECT_TRUE(saw_restore_span);

  // Both halves share one arrow id, derived from the job's trace id.
  EXPECT_EQ(start->flow_id, finish->flow_id);
  const std::uint64_t trace_id = scheduler.jobs()[0].trace_id;
  EXPECT_EQ(trace_id, 1u);
  EXPECT_EQ(start->flow_id >> 16, trace_id);
  // Every migration event is tagged with the job and its trace id.
  for (const telemetry::TraceEvent* ev : {start, finish}) {
    EXPECT_NE(ev->args_json.find("\"job\":\"mover\""), std::string::npos)
        << ev->args_json;
    EXPECT_NE(ev->args_json.find("\"trace_id\":1"), std::string::npos)
        << ev->args_json;
  }

  // The exported Chrome trace draws the arrow: 's' and 'f' records with a
  // shared id, the finish bound to its enclosing slice.
  const std::string chrome = telemetry::chrome_trace_json();
  EXPECT_NE(chrome.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(chrome.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(chrome.find("\"id\":" + std::to_string(start->flow_id)),
            std::string::npos);

  telemetry::set_enabled(false);
  telemetry::reset_all();
}

}  // namespace
}  // namespace fleet
}  // namespace remapd
