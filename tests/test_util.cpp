#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace remapd {
namespace {

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i)
    differs = a.uniform() != b.uniform();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(6);
  Rng child = parent.split();
  // The child stream should not replicate the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i)
    differs = parent.uniform() != child.uniform();
  EXPECT_TRUE(differs);
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(7);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
  // Dense case path (k close to n).
  const auto dense = rng.sample_without_replacement(10, 9);
  EXPECT_EQ(std::set<std::size_t>(dense.begin(), dense.end()).size(), 9u);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementEdgeCases) {
  Rng rng(11);
  // k = 0: empty sample, no draws.
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
  EXPECT_TRUE(rng.sample_without_replacement(0, 0).empty());
  // k = n: exactly the full population, each index once.
  const auto full = rng.sample_without_replacement(25, 25);
  EXPECT_EQ(std::set<std::size_t>(full.begin(), full.end()).size(), 25u);
  // Any k > n throws, including the n = 0 population.
  EXPECT_THROW(rng.sample_without_replacement(0, 1), std::invalid_argument);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(8);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.rbegin(), 49u);
  EXPECT_TRUE(rng.permutation(0).empty());
}

// ------------------------------------------------------------------- Stats

TEST(RunningStats, MeanVarianceExtrema) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MeanAndStddevOfVector) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(stddev_of({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(Stats, PearsonCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
  EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);  // constant side
  EXPECT_THROW(pearson({1, 2}, {1}), std::invalid_argument);
}

TEST(Stats, LinearFitRecoversLine) {
  const LinearFit f = linear_fit({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_THROW(linear_fit({}, {}), std::invalid_argument);
}

// --------------------------------------------------------------------- Csv

TEST(Csv, InMemoryRowsAndHeader) {
  CsvWriter csv;
  csv.header({"a", "b", "c"});
  csv.row(1, 2.5, "x");
  EXPECT_EQ(csv.dump(), "a,b,c\n1,2.5,x\n");
}

TEST(Csv, WritesToFile) {
  const std::string path = "/tmp/remapd_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"k", "v"});
    csv.row("answer", 42);
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "answer,42");
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

// --------------------------------------------------------------------- Env

TEST(Env, IntParsingAndFallback) {
  setenv("REMAPD_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("REMAPD_TEST_INT", 7), 123);
  unsetenv("REMAPD_TEST_INT");
  EXPECT_EQ(env_int("REMAPD_TEST_INT", 7), 7);
}

// A set-but-malformed value is a user error that must fail loudly, not be
// silently replaced by the default.
TEST(Env, MalformedValuesThrow) {
  setenv("REMAPD_TEST_INT", "not-a-number", 1);
  EXPECT_THROW(env_int("REMAPD_TEST_INT", 7), std::runtime_error);
  setenv("REMAPD_TEST_INT", "12abc", 1);
  EXPECT_THROW(env_int("REMAPD_TEST_INT", 7), std::runtime_error);
  setenv("REMAPD_TEST_INT", "", 1);
  EXPECT_THROW(env_int("REMAPD_TEST_INT", 7), std::runtime_error);
  unsetenv("REMAPD_TEST_INT");

  setenv("REMAPD_TEST_D", "one.five", 1);
  EXPECT_THROW(env_double("REMAPD_TEST_D", 1.0), std::runtime_error);
  unsetenv("REMAPD_TEST_D");

  // The error message names the variable and the offending value.
  setenv("REMAPD_TEST_INT", "nope", 1);
  try {
    env_int("REMAPD_TEST_INT", 7);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("REMAPD_TEST_INT"), std::string::npos);
    EXPECT_NE(msg.find("nope"), std::string::npos);
  }
  unsetenv("REMAPD_TEST_INT");
}

TEST(Env, SizeRejectsNegative) {
  setenv("REMAPD_TEST_SZ", "8", 1);
  EXPECT_EQ(env_size("REMAPD_TEST_SZ", 3), 8u);
  setenv("REMAPD_TEST_SZ", "-2", 1);
  EXPECT_THROW(env_size("REMAPD_TEST_SZ", 3), std::runtime_error);
  unsetenv("REMAPD_TEST_SZ");
  EXPECT_EQ(env_size("REMAPD_TEST_SZ", 3), 3u);
}

TEST(Env, DoubleNonNegRejectsNegative) {
  setenv("REMAPD_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double_nonneg("REMAPD_TEST_D", 1.0), 2.5);
  setenv("REMAPD_TEST_D", "-0.5", 1);
  EXPECT_THROW(env_double_nonneg("REMAPD_TEST_D", 1.0), std::runtime_error);
  unsetenv("REMAPD_TEST_D");
}

TEST(Env, DoubleAndString) {
  setenv("REMAPD_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("REMAPD_TEST_D", 1.0), 2.5);
  unsetenv("REMAPD_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("REMAPD_TEST_D", 1.0), 1.0);
  setenv("REMAPD_TEST_S", "hello", 1);
  EXPECT_EQ(env_str("REMAPD_TEST_S", "d"), "hello");
  unsetenv("REMAPD_TEST_S");
  EXPECT_EQ(env_str("REMAPD_TEST_S", "d"), "d");
}

// --------------------------------------------------------------------- Log

TEST(Log, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Compile/run smoke: these must not throw regardless of level.
  log_debug("debug ", 1);
  log_info("info ", 2);
  log_warn("warn ", 3);
  log_error("error ", 4);
  set_log_level(original);
}

TEST(Log, ParseLevelCaseInsensitive) {
  bool ok = false;
  EXPECT_EQ(parse_log_level("debug", &ok), LogLevel::kDebug);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("DEBUG", &ok), LogLevel::kDebug);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("Info", &ok), LogLevel::kInfo);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("WaRn", &ok), LogLevel::kWarn);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("warning", &ok), LogLevel::kWarn);  // alias
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("ERROR", &ok), LogLevel::kError);
  EXPECT_TRUE(ok);
}

TEST(Log, ParseLevelUnknownFallsBackToInfo) {
  bool ok = true;
  EXPECT_EQ(parse_log_level("verbose", &ok), LogLevel::kInfo);
  EXPECT_FALSE(ok);
  EXPECT_EQ(parse_log_level("", &ok), LogLevel::kInfo);
  EXPECT_FALSE(ok);
  // Null ok pointer is allowed.
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kInfo);
}

}  // namespace
}  // namespace remapd
