// Quantized conductance subsystem (DESIGN.md §15): level codec geometry,
// stochastic-rounding programmer determinism and unbiasedness, the int8
// GEMM fast path's exactness contract, stuck-level SAF semantics, the
// level-coded checkpoint sections, and the headline guarantees — quantized
// training resumes bitwise at any thread count, and a quantized fleet job
// live-migrates without perturbing a single bit of its history.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fleet/chip.hpp"
#include "fleet/scheduler.hpp"
#include "nn/fault_view.hpp"
#include "quant/programmer.hpp"
#include "quant/quant.hpp"
#include "tensor/gemm_int8.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace remapd {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "remapd_" + name;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~ThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

// ----------------------------------------------------------- QuantSpec

TEST(QuantSpec, ValidateRejectsBadFields) {
  QuantSpec s;
  s.enabled = true;
  s.cell_bits = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.cell_bits = 5;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.cell_bits = 4;
  s.program_noise_sigma = -0.1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.program_noise_sigma = 0.25;
  EXPECT_NO_THROW(s.validate());
}

TEST(QuantSpec, LevelsFollowBitsAndEnable) {
  QuantSpec s;
  EXPECT_EQ(s.levels(), 0u);  // disabled = continuous
  s.enabled = true;
  for (std::size_t bits = 1; bits <= 4; ++bits) {
    s.cell_bits = bits;
    EXPECT_EQ(s.levels(), std::size_t{1} << bits);
  }
}

// ----------------------------------------------------------- level codec

TEST(QuantCodec, EndpointsDecodeToExactFullScale) {
  for (std::size_t bits = 1; bits <= 4; ++bits) {
    const std::size_t L = std::size_t{1} << bits;
    const float w_max = 0.37f;
    // Codes 0 and L-1 ARE the full-scale clamps: a stuck-at cell in
    // single-array mapping pins exactly these decoded values.
    EXPECT_EQ(quant::level_decode(0, L, w_max), -w_max) << bits;
    EXPECT_EQ(quant::level_decode(static_cast<std::uint8_t>(L - 1), L, w_max),
              w_max)
        << bits;
  }
}

TEST(QuantCodec, NearestEncodeRoundTripsEveryCode) {
  for (std::size_t bits = 1; bits <= 4; ++bits) {
    const std::size_t L = std::size_t{1} << bits;
    const float w_max = 1.3f;
    for (std::size_t c = 0; c < L; ++c) {
      const float w = quant::level_decode(static_cast<std::uint8_t>(c), L,
                                          w_max);
      EXPECT_EQ(quant::level_encode_nearest(w, L, w_max), c)
          << "bits=" << bits << " code=" << c;
    }
    // Out-of-range weights clamp onto the grid.
    EXPECT_EQ(quant::level_encode_nearest(10.0f * w_max, L, w_max), L - 1);
    EXPECT_EQ(quant::level_encode_nearest(-10.0f * w_max, L, w_max), 0u);
  }
}

TEST(QuantCodec, LevelToIntMatchesDecodeScale) {
  // w = level_to_int(code) * (w_max / (L-1)): the representation the int8
  // fast path uses for on-grid weights. The two evaluation orders differ
  // by rounding only — a few ULPs, never a level.
  for (std::size_t bits = 2; bits <= 4; ++bits) {
    const std::size_t L = std::size_t{1} << bits;
    const float w_max = 0.8f;
    const float scale = w_max / static_cast<float>(L - 1);
    for (std::size_t c = 0; c < L; ++c) {
      const int q = quant::level_to_int(static_cast<std::uint8_t>(c), L);
      EXPECT_LE(std::abs(q), static_cast<int>(L - 1));
      EXPECT_NEAR(static_cast<float>(q) * scale,
                  quant::level_decode(static_cast<std::uint8_t>(c), L, w_max),
                  1e-6f);
      // Re-encoding the scaled integer form lands on the same code.
      EXPECT_EQ(quant::level_encode_nearest(static_cast<float>(q) * scale, L,
                                            w_max),
                c);
    }
  }
}

TEST(QuantCodec, UpsetIsAnMsbFlipInvolution) {
  for (std::size_t bits = 1; bits <= 4; ++bits) {
    const std::size_t L = std::size_t{1} << bits;
    for (std::size_t c = 0; c < L; ++c) {
      const std::uint8_t u =
          quant::upset_level(static_cast<std::uint8_t>(c), L);
      EXPECT_EQ(u, c ^ (L >> 1));
      EXPECT_EQ(quant::upset_level(u, L), c);  // flipping twice restores
    }
  }
}

// ------------------------------------------ cell stuck-resistance guard

TEST(CellParams, StuckResistanceRejectsNonFault) {
  // Regression: kNone used to silently alias the HRS resistance, hiding
  // caller bugs where a healthy cell was treated as stuck.
  CellParams p;
  Rng rng(1);
  EXPECT_THROW(static_cast<void>(p.sample_stuck_resistance(CellFault::kNone,
                                                           rng)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(p.nominal_stuck_resistance(CellFault::kNone)),
               std::invalid_argument);
  EXPECT_NO_THROW(
      static_cast<void>(p.sample_stuck_resistance(CellFault::kStuckAt0, rng)));
  EXPECT_NO_THROW(
      static_cast<void>(p.nominal_stuck_resistance(CellFault::kStuckAt1)));
}

// ---------------------------------------------- stochastic programmer

QuantSpec spec_of(std::size_t bits, double sigma = 0.0) {
  QuantSpec s;
  s.enabled = true;
  s.cell_bits = bits;
  s.program_noise_sigma = sigma;
  return s;
}

TEST(Programmer, SameStreamReproducesExactly) {
  const StochasticProgrammer prog(spec_of(2), 99);
  std::vector<float> w1(64), w2(64);
  for (std::size_t i = 0; i < w1.size(); ++i)
    w1[i] = w2[i] = 0.01f * static_cast<float>(i) - 0.3f;
  prog.program_span(5, w1.data(), w1.size(), 1.0f);
  prog.program_span(5, w2.data(), w2.size(), 1.0f);
  EXPECT_EQ(std::memcmp(w1.data(), w2.data(), w1.size() * sizeof(float)), 0);
}

TEST(Programmer, StreamsAreKeyedByRoundAndXbar) {
  StochasticProgrammer prog(spec_of(2), 99);
  std::vector<float> base(64), other_xbar(64), other_round(64);
  for (std::size_t i = 0; i < base.size(); ++i)
    base[i] = other_xbar[i] = other_round[i] =
        0.01f * static_cast<float>(i) - 0.3f;
  prog.program_span(5, base.data(), base.size(), 1.0f);
  prog.program_span(6, other_xbar.data(), other_xbar.size(), 1.0f);
  EXPECT_NE(std::memcmp(base.data(), other_xbar.data(),
                        base.size() * sizeof(float)),
            0);
  prog.advance_round();
  prog.program_span(5, other_round.data(), other_round.size(), 1.0f);
  EXPECT_NE(std::memcmp(base.data(), other_round.data(),
                        base.size() * sizeof(float)),
            0);
}

TEST(Programmer, OnGridWeightsAreFixedPoints) {
  // Noise-free stochastic rounding of a weight already on the grid must
  // reproduce it exactly — the property that makes the mapper's code
  // commits idempotent across checkpoint resume.
  const std::size_t L = 8;
  const float w_max = 0.5f;
  const StochasticProgrammer prog(spec_of(3), 7);
  std::vector<float> w(L);
  for (std::size_t c = 0; c < L; ++c)
    w[c] = quant::level_decode(static_cast<std::uint8_t>(c), L, w_max);
  const std::vector<float> before = w;
  prog.program_span(0, w.data(), w.size(), w_max);
  EXPECT_EQ(std::memcmp(w.data(), before.data(), w.size() * sizeof(float)),
            0);
}

TEST(Programmer, StochasticRoundingIsUnbiased) {
  // E[programmed] = requested: the property that lets 3-4-bit cells track
  // fp32 SGD. Mean over many rounds of the same mid-grid weight.
  const float target = 0.2f;
  const float w_max = 1.0f;
  StochasticProgrammer prog(spec_of(2), 1234);  // step = 2/3: coarse grid
  double sum = 0.0;
  const int rounds = 4000;
  for (int r = 0; r < rounds; ++r) {
    float w = target;
    prog.program_span(0, &w, 1, w_max);
    // Programmed value lies on one of the two neighbouring levels.
    EXPECT_TRUE(std::fabs(w - 1.0f / 3.0f) < 1e-6f ||
                std::fabs(w + 1.0f / 3.0f) < 1e-6f)
        << w;
    sum += w;
    prog.advance_round();
  }
  EXPECT_NEAR(sum / rounds, target, 0.02);
}

TEST(Programmer, IndexedMatchesSpanOnSameStream) {
  // program_indexed(idx = identity) must consume the stream exactly like
  // program_span — the two entry points may not diverge.
  const StochasticProgrammer prog(spec_of(2), 4321);
  std::vector<float> a(32), b(32);
  std::vector<std::uint32_t> idx(32);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = b[i] = 0.05f * static_cast<float>(i) - 0.7f;
    idx[i] = static_cast<std::uint32_t>(i);
  }
  prog.program_span(3, a.data(), a.size(), 1.0f);
  prog.program_indexed(3, b.data(), idx.data(), idx.size(), 1.0f);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(Programmer, SnapshotRoundTripsSeedAndRound) {
  StochasticProgrammer prog(spec_of(3), 77);
  prog.advance_round();
  prog.advance_round();
  ckpt::ByteWriter w;
  prog.save_state(w);
  StochasticProgrammer restored(spec_of(3), 0);
  ckpt::ByteReader r(w.bytes().data(), w.size());
  restored.load_state(r);
  EXPECT_EQ(restored.rounds(), 2u);
  // Same future stream: programming after restore matches the original.
  std::vector<float> x(16), y(16);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = y[i] = 0.03f * static_cast<float>(i) - 0.2f;
  prog.program_span(1, x.data(), x.size(), 1.0f);
  restored.program_span(1, y.data(), y.size(), 1.0f);
  EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(float)), 0);
}

// ----------------------------------------------------- int8 GEMM path

int ref_quant(float x, float inv, int qmax) {
  const float t = x * inv;
  if (t != t) return 0;
  if (t > static_cast<float>(qmax)) return qmax;
  if (t < -static_cast<float>(qmax)) return -qmax;
  return static_cast<int>(t + (t >= 0.0f ? 0.5f : -0.5f));
}

TEST(Int8Gemm, MatchesIntegerReferenceBitwise) {
  ThreadGuard guard(1);
  for (const auto& [m, k, n] : {std::tuple<std::size_t, std::size_t,
                                          std::size_t>{5, 7, 9},
                               {64, 64, 64},
                               {17, 33, 16}}) {
    Rng rng(m * 100 + k * 10 + n);
    std::vector<float> a(m * k), b(k * n), c(m * n, -1.0f);
    for (float& v : a) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    for (float& v : b) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    const float a_scale = 1.0f / 15.0f;

    Int8APack pack;
    pack.pack(m, k, StridedOperand{a.data(), k, 1}, a_scale);
    ASSERT_TRUE(pack.multiply(n, StridedOperand{b.data(), n, 1}, c.data(),
                              n));

    // Reference: same quantization rules, exact int32 accumulation.
    float maxabs = 0.0f;
    for (const float v : b) maxabs = std::max(maxabs, std::fabs(v));
    const float binv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
    const float b_scale = maxabs > 0.0f ? maxabs / 127.0f : 0.0f;
    const float scale = a_scale * b_scale;
    const float ainv = 1.0f / a_scale;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        std::int32_t acc = 0;
        for (std::size_t kk = 0; kk < k; ++kk)
          acc += ref_quant(a[i * k + kk], ainv, kInt8AMax) *
                 ref_quant(b[kk * n + j], binv, 127);
        const float expect = static_cast<float>(acc) * scale;
        ASSERT_EQ(c[i * n + j], expect)
            << m << "x" << k << "x" << n << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Int8Gemm, ThreadCountDoesNotChangeOneBit) {
  const std::size_t m = 96, k = 80, n = 64;
  Rng rng(3);
  std::vector<float> a(m * k), b(k * n);
  for (float& v : a) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  for (float& v : b) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  std::vector<float> c1(m * n), c4(m * n);
  {
    ThreadGuard guard(1);
    Int8APack p;
    p.pack(m, k, StridedOperand{a.data(), k, 1}, 0.05f);
    ASSERT_TRUE(p.multiply(n, StridedOperand{b.data(), n, 1}, c1.data(), n));
  }
  {
    ThreadGuard guard(4);
    Int8APack p;
    p.pack(m, k, StridedOperand{a.data(), k, 1}, 0.05f);
    ASSERT_TRUE(p.multiply(n, StridedOperand{b.data(), n, 1}, c4.data(), n));
  }
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);
}

TEST(Int8Gemm, StridedOperandsMatchContiguousBitwise) {
  // The AVX2 packers only run on contiguous operands; strided views of the
  // same logical matrices take the scalar path and must produce identical
  // bytes — the mixed-path determinism contract.
  ThreadGuard guard(1);
  const std::size_t m = 37, k = 45, n = 19;
  Rng rng(11);
  std::vector<float> a(m * k), b(k * n);
  for (float& v : a) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  for (float& v : b) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  std::vector<float> at(k * m), bt(n * k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk) at[kk * m + i] = a[i * k + kk];
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t j = 0; j < n; ++j) bt[j * k + kk] = b[kk * n + j];

  Int8APack pc, ps;
  pc.pack(m, k, StridedOperand{a.data(), k, 1}, 0.1f);
  ps.pack(m, k, StridedOperand{at.data(), 1, m}, 0.1f);
  std::vector<float> c1(m * n), c2(m * n), c3(m * n);
  ASSERT_TRUE(pc.multiply(n, StridedOperand{b.data(), n, 1}, c1.data(), n));
  ASSERT_TRUE(pc.multiply(n, StridedOperand{bt.data(), 1, k}, c2.data(), n));
  ASSERT_TRUE(ps.multiply(n, StridedOperand{b.data(), n, 1}, c3.data(), n));
  EXPECT_EQ(std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(c1.data(), c3.data(), c1.size() * sizeof(float)), 0);
}

TEST(Int8Gemm, NonFiniteActivationsForceFp32Fallback) {
  ThreadGuard guard(1);
  std::vector<float> a(8 * 8, 0.5f), b(8 * 8, 0.25f), c(8 * 8);
  Int8APack p;
  p.pack(8, 8, StridedOperand{a.data(), 8, 1}, 0.1f);
  // NaN mid-matrix (not last: the scan must be NaN-sticky, not
  // last-element-lucky) and inf both refuse the int8 path.
  b[13] = std::nanf("");
  EXPECT_FALSE(p.multiply(8, StridedOperand{b.data(), 8, 1}, c.data(), 8));
  b[13] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(p.multiply(8, StridedOperand{b.data(), 8, 1}, c.data(), 8));
  b[13] = 0.25f;
  EXPECT_TRUE(p.multiply(8, StridedOperand{b.data(), 8, 1}, c.data(), 8));
}

// ------------------------------------------------- fault-view semantics

TEST(FaultViewQuant, StuckCellIsAStuckLevel) {
  // Single-array full-scale clamps and level-grid endpoints coincide
  // exactly, so SAF handling needs no special-casing in quantized mode.
  FaultView v;
  v.w_max = 0.75f;
  v.levels = 16;
  EXPECT_EQ(v.clamp_value(0.2f, WeightClampKind::kPosStuck1), v.w_max);
  EXPECT_EQ(v.clamp_value(0.2f, WeightClampKind::kPosStuck0), -v.w_max);
  EXPECT_EQ(v.clamp_value(0.2f, WeightClampKind::kPosStuck1),
            quant::level_decode(15, 16, v.w_max));
  EXPECT_EQ(v.clamp_value(0.2f, WeightClampKind::kPosStuck0),
            quant::level_decode(0, 16, v.w_max));
}

TEST(FaultViewQuant, LevelClampPinsDecodedValueThroughApply) {
  FaultView v;
  v.w_max = 1.0f;
  v.levels = 8;
  const std::uint8_t code = 5;
  const std::uint8_t flipped = quant::upset_level(code, 8);
  v.clamps.push_back(WeightClamp{2, WeightClampKind::kLevel,
                                 quant::level_decode(flipped, 8, v.w_max)});
  float w[4] = {0.1f, 0.2f, quant::level_decode(code, 8, 1.0f), 0.4f};
  float out[4];
  v.apply(w, out, 4);
  EXPECT_EQ(out[0], w[0]);
  EXPECT_EQ(out[2], quant::level_decode(flipped, 8, 1.0f));
}

TEST(FaultViewQuant, Int8SelectionNeedsLevelsAndOptIn) {
  FaultView v;
  EXPECT_FALSE(v.int8_selected());  // continuous
  v.levels = 16;
  EXPECT_FALSE(v.int8_selected());  // no opt-in
  v.int8_path = true;
  EXPECT_TRUE(v.int8_selected());
  v.w_max = 0.6f;
  EXPECT_FLOAT_EQ(v.int8_weight_scale(), 0.6f / 15.0f);
}

// --------------------------------------------- level-coded checkpoints

CellParams quant_cell(std::size_t bits) {
  CellParams p;
  p.quant = spec_of(bits);
  return p;
}

TEST(QuantCheckpoint, CodedCrossbarRoundTripsAndRejectsEveryFlip) {
  Crossbar xb(6, 10, quant_cell(3));
  ASSERT_TRUE(xb.has_codes());
  Rng rng(5);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 10; ++c)
      xb.set_code(r, c, static_cast<std::uint8_t>(rng.uniform() * 8));
  xb.inject_random_faults(4, 0.5, rng);

  ckpt::CheckpointWriter w;
  xb.save_state(w.section("xb"));
  const std::string good = w.serialize();

  // Round trip restores every code.
  {
    const auto reader = ckpt::CheckpointReader::from_bytes(good);
    ckpt::ByteReader br = reader.open("xb");
    Crossbar back(6, 10, quant_cell(3));
    back.load_state(br);
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 10; ++c)
        ASSERT_EQ(back.code_at(r, c), xb.code_at(r, c));
    EXPECT_EQ(back.fault_count(), xb.fault_count());
  }

  // The packed-nibble payload is CRC-covered like everything else: a flip
  // at any byte offset must be rejected.
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_THROW(ckpt::CheckpointReader::from_bytes(bad),
                 ckpt::CheckpointError)
        << "flip at byte " << pos << " was accepted";
  }
}

TEST(QuantCheckpoint, SnapshotSummaryReportsCodes) {
  Crossbar xb(8, 8, quant_cell(4));
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      xb.set_code(r, c, static_cast<std::uint8_t>((r * 8 + c) % 16));
  ckpt::ByteWriter w;
  xb.save_state(w);
  ckpt::ByteReader r(w.bytes().data(), w.size());
  const auto s = Crossbar::summarize_snapshot(r);
  EXPECT_EQ(s.cell_bits, 4u);
  EXPECT_EQ(s.coded_bytes, 32u);       // 64 cells, 2 codes per byte
  EXPECT_EQ(s.fp32_equiv_bytes, 256u); // 8x compression
  ASSERT_EQ(s.code_hist.size(), 16u);
  for (const std::size_t h : s.code_hist) EXPECT_EQ(h, 4u);
}

// ------------------------------------------- quantized trainer resume

TrainerConfig quant_resume_cfg() {
  TrainerConfig cfg;
  cfg.model = "vgg11";
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.data.train = 48;
  cfg.data.test = 32;
  cfg.data.image_size = 12;
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
  cfg.policy = "remap-d";
  cfg.quant.enabled = true;
  cfg.quant.cell_bits = 3;
  cfg.quant.program_noise_sigma = 0.1;
  cfg.quant.int8_gemm = true;
  return cfg;
}

void expect_bitwise_equal_history(const TrainResult& a,
                                  const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const EpochRecord& x = a.history[i];
    const EpochRecord& y = b.history[i];
    EXPECT_EQ(x.train_loss, y.train_loss) << "epoch " << i;
    EXPECT_EQ(x.train_accuracy, y.train_accuracy) << "epoch " << i;
    EXPECT_EQ(x.test_accuracy, y.test_accuracy) << "epoch " << i;
    EXPECT_EQ(x.remaps, y.remaps) << "epoch " << i;
    EXPECT_EQ(x.total_faults, y.total_faults) << "epoch " << i;
  }
  EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
}

/// Stop a quantized run mid-training, resume in a fresh process state, and
/// demand bitwise equality with the uninterrupted run — including the
/// serialized final checkpoints (level codes, programmer round counter,
/// weights, everything).
void run_quant_resume(std::size_t threads) {
  ThreadGuard guard(threads);
  const std::string tag = std::to_string(threads);
  const std::string mid = tmp_path("quant_mid_" + tag + ".ckpt");
  const std::string end_a = tmp_path("quant_full_" + tag + ".ckpt");
  const std::string end_b = tmp_path("quant_resumed_" + tag + ".ckpt");

  TrainResult full;
  {
    FaultAwareTrainer trainer(quant_resume_cfg());
    full = trainer.run();
    trainer.save_checkpoint(end_a);
  }
  {
    TrainerConfig cfg = quant_resume_cfg();
    cfg.checkpoint_path = mid;
    cfg.checkpoint_every = 1;
    cfg.stop_after_epochs = 2;
    FaultAwareTrainer trainer(cfg);
    const TrainResult partial = trainer.run();
    EXPECT_EQ(partial.history.size(), 2u);
  }
  ASSERT_TRUE(file_exists(mid));
  TrainResult resumed;
  {
    TrainerConfig cfg = quant_resume_cfg();
    cfg.resume_from = mid;
    FaultAwareTrainer trainer(cfg);
    resumed = trainer.run();
    trainer.save_checkpoint(end_b);
  }

  expect_bitwise_equal_history(full, resumed);
  EXPECT_EQ(slurp(end_a), slurp(end_b));

  std::remove(mid.c_str());
  std::remove(end_a.c_str());
  std::remove(end_b.c_str());
}

TEST(QuantResume, BitwiseIdenticalSingleThread) { run_quant_resume(1); }

TEST(QuantResume, BitwiseIdenticalFourThreads) { run_quant_resume(4); }

TEST(QuantResume, CellBitsMismatchIsNamed) {
  const std::string path = tmp_path("quant_mismatch.ckpt");
  {
    TrainerConfig cfg = quant_resume_cfg();
    cfg.epochs = 1;
    cfg.faults = FaultScenario::ideal();
    FaultAwareTrainer trainer(cfg);
    trainer.run();
    trainer.save_checkpoint(path);
  }
  // Resuming a 3-bit run with an fp32 (quant-disabled) config must abort
  // naming the offending fingerprint field, not silently dequantize.
  TrainerConfig cfg = quant_resume_cfg();
  cfg.epochs = 1;
  cfg.faults = FaultScenario::ideal();
  cfg.quant = QuantSpec{};
  cfg.resume_from = path;
  try {
    FaultAwareTrainer trainer(cfg);
    FAIL() << "cell-bits mismatch accepted";
  } catch (const ckpt::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quant.cell_bits"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

// --------------------------------------------- quantized fleet migration

/// A quantized job preempted on chip A and resumed on chip B must retrace
/// the unmigrated run bitwise: stochastic-rounding streams are keyed by
/// (seed, round, xbar), none of which migration changes.
void run_quant_migration(std::size_t threads) {
  ThreadGuard guard(threads);
  fleet::JobSpec spec;
  spec.name = "quant-det";
  spec.model = "resnet12";
  spec.policy = "remap-d";
  spec.epochs = 4;
  spec.train = 48;
  spec.test = 32;
  spec.seed = 21;
  spec.cell_bits = 3;
  spec.int8 = true;

  fleet::ChipSpec chip;
  chip.name = "chip";

  TrainResult base;
  {
    fleet::ChipPool pool = fleet::ChipPool::homogeneous(1, chip);
    fleet::Scheduler sched(pool, fleet::SchedulerConfig{});
    sched.submit(spec);
    const fleet::FleetSummary s = sched.run();
    ASSERT_EQ(s.completed, 1u);
    ASSERT_EQ(s.migrations, 0u);
    base = sched.jobs()[0].trainer->result();
  }
  ASSERT_EQ(base.history.size(), spec.epochs);

  fleet::ChipPool pool = fleet::ChipPool::homogeneous(2, chip);
  fleet::SchedulerConfig cfg;
  cfg.force_migrate_at_epoch = 2;
  fleet::Scheduler sched(pool, cfg);
  sched.submit(spec);
  const fleet::FleetSummary s = sched.run();
  ASSERT_EQ(s.completed, 1u);
  ASSERT_EQ(s.migrations, 1u);
  expect_bitwise_equal_history(base, sched.jobs()[0].trainer->result());
}

TEST(QuantFleetMigration, BitwiseDeterministicSerial) {
  run_quant_migration(1);
}

TEST(QuantFleetMigration, BitwiseDeterministicFourThreads) {
  run_quant_migration(4);
}

}  // namespace
}  // namespace remapd
