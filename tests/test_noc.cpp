#include <gtest/gtest.h>

#include <set>

#include "noc/network.hpp"
#include "noc/traffic.hpp"

namespace remapd {
namespace noc {
namespace {

// ---------------------------------------------------------------- Geometry

TEST(CmeshGeometry, RouterGridFromTileGrid) {
  CmeshGeometry g{4, 4};
  EXPECT_EQ(g.routers_x(), 2u);
  EXPECT_EQ(g.routers_y(), 2u);
  EXPECT_EQ(g.num_routers(), 4u);
  EXPECT_EQ(g.num_tiles(), 16u);

  CmeshGeometry odd{5, 3};
  EXPECT_EQ(odd.routers_x(), 3u);
  EXPECT_EQ(odd.routers_y(), 2u);
}

TEST(CmeshGeometry, TileToRouterAndBack) {
  CmeshGeometry g{4, 4};
  // Tile 0 at (0,0) -> router 0, local port 0. Tile 5 at (1,1) -> router 0,
  // local port 3. Tile 10 at (2,2) -> router 3, local 0.
  EXPECT_EQ(g.router_of_tile(0), 0u);
  EXPECT_EQ(g.local_port_of_tile(0), 0u);
  EXPECT_EQ(g.router_of_tile(5), 0u);
  EXPECT_EQ(g.local_port_of_tile(5), 3u);
  EXPECT_EQ(g.router_of_tile(10), 3u);
  EXPECT_EQ(g.local_port_of_tile(10), 0u);

  // tile_at inverts the mapping for every tile.
  for (std::size_t t = 0; t < g.num_tiles(); ++t)
    EXPECT_EQ(g.tile_at(g.router_of_tile(t), g.local_port_of_tile(t)), t);
}

TEST(CmeshGeometry, EdgeStubsReported) {
  CmeshGeometry g{3, 3};  // 2x2 routers, right/bottom quads partial
  // Router 1 covers tiles x in {2,3}, but tiles_x == 3: local port 1 (x=3)
  // is a stub.
  const std::size_t r = g.router_at(1, 0);
  EXPECT_EQ(g.tile_at(r, 1), g.num_tiles());
}

TEST(CmeshGeometry, HopCountProperties) {
  CmeshGeometry g{8, 8};
  EXPECT_EQ(g.hop_count(0, 0), 0u);
  EXPECT_EQ(g.hop_count(0, 1), 0u);  // same quad
  EXPECT_EQ(g.hop_count(0, 2), 1u);  // neighbouring quad
  for (std::size_t a = 0; a < g.num_tiles(); a += 7)
    for (std::size_t b = 0; b < g.num_tiles(); b += 5)
      EXPECT_EQ(g.hop_count(a, b), g.hop_count(b, a));
}

// ----------------------------------------------------------------- Routing

TEST(XyRoute, DeliversLocallyAtDestinationRouter) {
  CmeshGeometry g{4, 4};
  const std::size_t r = g.router_of_tile(5);
  EXPECT_EQ(xy_route(g, r, 5), g.local_port_of_tile(5));
}

TEST(XyRoute, XBeforeY) {
  CmeshGeometry g{8, 8};  // 4x4 routers
  // From router (0,0) to a tile at router (2,2): must go east first.
  const std::size_t dst_tile = 4 + 4 * 8;  // tile (4,4) -> router (2,2)
  EXPECT_EQ(xy_route(g, g.router_at(0, 0), dst_tile), CmeshGeometry::kPortE);
  // From router (2,0): aligned in x, go south.
  EXPECT_EQ(xy_route(g, g.router_at(2, 0), dst_tile), CmeshGeometry::kPortS);
  // From (3,2): go west.
  EXPECT_EQ(xy_route(g, g.router_at(3, 2), dst_tile), CmeshGeometry::kPortW);
  // From (2,3): go north.
  EXPECT_EQ(xy_route(g, g.router_at(2, 3), dst_tile), CmeshGeometry::kPortN);
}

TEST(XyRoute, EveryStepReducesDistance) {
  CmeshGeometry g{6, 6};
  for (std::size_t src = 0; src < g.num_tiles(); src += 5)
    for (std::size_t dst = 0; dst < g.num_tiles(); dst += 3) {
      if (src == dst) continue;
      std::size_t router = g.router_of_tile(src);
      std::size_t hops = 0;
      while (router != g.router_of_tile(dst)) {
        const std::size_t port = xy_route(g, router, dst);
        ASSERT_GE(port, CmeshGeometry::kConcentration);
        const RouterCoord rc = g.coord(router);
        std::size_t nx = rc.x, ny = rc.y;
        if (port == CmeshGeometry::kPortE) nx++;
        else if (port == CmeshGeometry::kPortW) nx--;
        else if (port == CmeshGeometry::kPortS) ny++;
        else ny--;
        router = g.router_at(nx, ny);
        ASSERT_LE(++hops, g.routers_x() + g.routers_y());
      }
      EXPECT_EQ(hops, g.hop_count(src, dst));
    }
}

TEST(XyTreeRoute, OriginSpreadsAllDirections) {
  CmeshGeometry g{8, 8};
  // Interior router, flit injected from local port 0.
  const std::size_t r = g.router_at(1, 1);
  const auto outs = xy_tree_route(g, r, 0, 0);
  std::set<std::size_t> set(outs.begin(), outs.end());
  EXPECT_TRUE(set.count(CmeshGeometry::kPortN));
  EXPECT_TRUE(set.count(CmeshGeometry::kPortS));
  EXPECT_TRUE(set.count(CmeshGeometry::kPortE));
  EXPECT_TRUE(set.count(CmeshGeometry::kPortW));
  EXPECT_TRUE(set.count(1u));  // other local ports
  EXPECT_FALSE(set.count(0u));  // never echo to the source port
}

TEST(XyTreeRoute, TrunkBranchesYOnly) {
  CmeshGeometry g{8, 8};
  const std::size_t r = g.router_at(2, 1);
  // Flit travelling east (entered from W): continue E, branch N/S, locals.
  const auto outs = xy_tree_route(g, r, CmeshGeometry::kPortW, 0);
  std::set<std::size_t> set(outs.begin(), outs.end());
  EXPECT_TRUE(set.count(CmeshGeometry::kPortE));
  EXPECT_TRUE(set.count(CmeshGeometry::kPortN));
  EXPECT_TRUE(set.count(CmeshGeometry::kPortS));
  EXPECT_FALSE(set.count(CmeshGeometry::kPortW));
  // Flit travelling south (entered from N): only continue south + locals.
  const auto down = xy_tree_route(g, r, CmeshGeometry::kPortN, 0);
  std::set<std::size_t> dset(down.begin(), down.end());
  EXPECT_TRUE(dset.count(CmeshGeometry::kPortS));
  EXPECT_FALSE(dset.count(CmeshGeometry::kPortE));
  EXPECT_FALSE(dset.count(CmeshGeometry::kPortW));
  EXPECT_FALSE(dset.count(CmeshGeometry::kPortN));
}

// ----------------------------------------------------------------- Network

class MeshSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshSizeTest, BroadcastReachesEveryTileExactlyOnce) {
  const std::size_t dim = GetParam();
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{dim, dim};
  Network net(cfg);
  const PacketId id = net.inject(PacketKind::kRemapRequest, 0, kBroadcast, 1);
  net.run_until_idle();
  const PacketStats& st = net.stats(id);
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.deliveries, cfg.geometry.num_tiles() - 1);
}

INSTANTIATE_TEST_SUITE_P(MeshSweep, MeshSizeTest,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Network, UnicastDeliveryAndLatency) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  Network net(cfg);
  const PacketId id = net.inject(PacketKind::kRemapResponse, 0, 15, 1);
  net.run_until_idle();
  const PacketStats& st = net.stats(id);
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.deliveries, 1u);
  // Path: inject + 2 router hops + ejection; latency must be at least the
  // hop count and bounded by a small constant above it.
  EXPECT_GE(st.latency(), cfg.geometry.hop_count(0, 15));
  EXPECT_LE(st.latency(), cfg.geometry.hop_count(0, 15) + 6);
}

TEST(Network, WormholeLatencyScalesWithLength) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  Network a(cfg), b(cfg);
  const PacketId pa = a.inject(PacketKind::kWeightTransfer, 0, 15, 1);
  a.run_until_idle();
  const PacketId pb = b.inject(PacketKind::kWeightTransfer, 0, 15, 100);
  b.run_until_idle();
  // Pipeline: +99 serialization cycles for the 99 extra flits.
  EXPECT_EQ(b.stats(pb).latency() - a.stats(pa).latency(), 99u);
}

TEST(Network, ManyPacketsAllDelivered) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  Network net(cfg);
  Rng rng(1);
  std::vector<PacketId> ids;
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 15));
    auto dst = static_cast<NodeId>(rng.uniform_int(0, 15));
    if (dst == src) dst = (dst + 1) % 16;
    ids.push_back(net.inject(PacketKind::kTraining, src, dst,
                             1 + static_cast<std::size_t>(
                                     rng.uniform_int(0, 7))));
  }
  net.run_until_idle();
  for (PacketId id : ids) EXPECT_TRUE(net.stats(id).complete);
  EXPECT_GT(net.mean_latency(), 0.0);
  EXPECT_GT(net.flit_hops(), 0u);
}

TEST(Network, ConcurrentBroadcastsFromMultipleSenders) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  Network net(cfg);
  std::vector<PacketId> ids;
  for (NodeId s : {0u, 5u, 10u, 15u})
    ids.push_back(net.inject(PacketKind::kRemapRequest, s, kBroadcast, 1));
  net.run_until_idle();
  for (PacketId id : ids)
    EXPECT_EQ(net.stats(id).deliveries, 15u);
}

TEST(Network, InjectValidation) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{2, 2};
  Network net(cfg);
  EXPECT_THROW(net.inject(PacketKind::kTraining, 99, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(net.inject(PacketKind::kTraining, 0, 99, 1),
               std::invalid_argument);
  EXPECT_THROW(net.inject(PacketKind::kTraining, 0, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(net.inject(PacketKind::kTraining, 1, 1, 1),
               std::invalid_argument);
}

TEST(Network, IdleWhenEmpty) {
  NocConfig cfg;
  Network net(cfg);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.run_until_idle(), 0u);
  net.inject(PacketKind::kTraining, 0, 1, 2);
  EXPECT_FALSE(net.idle());
}

// ----------------------------------------------------------------- Traffic

TEST(Traffic, WeightTransferFlitCount) {
  // 128x128 cells x 16-bit over 64-bit flits = 4096 flits (§III.B.4 sizing).
  EXPECT_EQ(weight_transfer_flits(128, 128), 4096u);
  EXPECT_EQ(weight_transfer_flits(32, 32), 256u);
  EXPECT_EQ(weight_transfer_flits(1, 1, 16, 64), 1u);  // rounds up
}

TEST(Traffic, RemapProtocolThreePhases) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  const std::vector<NodeId> senders = {0, 15};
  const std::vector<std::vector<NodeId>> responders = {{1, 2, 3}, {12, 14}};
  const std::vector<RemapPair> pairs = {{0, 1}, {15, 14}};
  const RemapTrafficResult res =
      simulate_remap_protocol(cfg, senders, responders, pairs, 64);
  EXPECT_GT(res.request_cycles, 0u);
  EXPECT_GT(res.response_cycles, 0u);
  EXPECT_GT(res.transfer_cycles, 0u);
  EXPECT_EQ(res.total_cycles,
            res.request_cycles + res.response_cycles + res.transfer_cycles);
  // 2 broadcasts + 5 responses + 4 transfers.
  EXPECT_EQ(res.packets, 11u);
}

TEST(Traffic, ParallelPairsCheaperThanSerial) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  // Two disjoint short-range pairs in one round...
  const RemapTrafficResult both = simulate_remap_protocol(
      cfg, {0, 15}, {{1}, {14}}, {{0, 1}, {15, 14}}, 512);
  // ...versus the same two pairs in two separate rounds.
  const RemapTrafficResult first =
      simulate_remap_protocol(cfg, {0}, {{1}}, {{0, 1}}, 512);
  const RemapTrafficResult second =
      simulate_remap_protocol(cfg, {15}, {{14}}, {{15, 14}}, 512);
  EXPECT_LT(both.transfer_cycles,
            first.transfer_cycles + second.transfer_cycles);
}

TEST(Traffic, OverheadPercentAgainstEpochModel) {
  RemapTrafficResult res;
  res.total_cycles = 4000;
  EpochTrafficModel epoch;  // 2e6 cycles
  EXPECT_NEAR(remap_overhead_percent(res, epoch), 0.2, 1e-9);
}

TEST(Traffic, MonteCarloProducesRequestedRounds) {
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};
  Rng rng(5);
  const MonteCarloResult mc = monte_carlo_remap_overhead(
      cfg, 10, 3, weight_transfer_flits(32, 32), EpochTrafficModel{}, rng);
  EXPECT_EQ(mc.overhead_percent.size(), 10u);
  EXPECT_GT(mc.mean, 0.0);
  EXPECT_GE(mc.worst, mc.mean);
  for (double v : mc.overhead_percent) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace noc
}  // namespace remapd
