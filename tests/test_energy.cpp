#include <gtest/gtest.h>

#include "area/energy_model.hpp"

namespace remapd {
namespace {

TEST(EnergyModel, BreakdownPositiveAndAdditive) {
  RcsEnergyModel model;
  const EpochWorkload w = canonical_epoch_workload(100, 1000, 10, 128, 128);
  const EnergyBreakdown b = model.epoch_energy(w, 100, 260);
  EXPECT_GT(b.compute_pj, 0.0);
  EXPECT_GT(b.write_pj, 0.0);
  EXPECT_GT(b.traffic_pj, 0.0);
  EXPECT_GT(b.buffer_pj, 0.0);
  EXPECT_GT(b.bist_pj, 0.0);
  EXPECT_DOUBLE_EQ(b.total_pj(), b.compute_pj + b.write_pj + b.traffic_pj +
                                     b.buffer_pj + b.bist_pj);
}

TEST(EnergyModel, ScalesLinearlyWithWork) {
  RcsEnergyModel model;
  const EpochWorkload w1 = canonical_epoch_workload(100, 1000, 10, 128, 128);
  const EpochWorkload w2 = canonical_epoch_workload(100, 2000, 20, 128, 128);
  const double e1 = model.epoch_energy(w1, 100, 260).total_pj();
  const double e2 = model.epoch_energy(w2, 100, 260).total_pj();
  // BIST is fixed per epoch; everything else doubles.
  EXPECT_GT(e2, 1.9 * e1 * 0.99);
  EXPECT_LT(e2, 2.0 * e1);
}

TEST(EnergyModel, BistEnergyIsNegligible) {
  RcsEnergyModel model;
  const EpochWorkload w =
      canonical_epoch_workload(320, 50000, 391, 128, 128);
  const EnergyBreakdown b = model.epoch_energy(w, 320, 260);
  EXPECT_LT(b.bist_pj / b.total_pj(), 0.001);
}

TEST(EnergyModel, RemapEnergyComponents) {
  RcsEnergyModel model;
  const double traffic_only = model.remap_energy_pj(1000, 0);
  const double writes_only = model.remap_energy_pj(0, 1000);
  EXPECT_GT(traffic_only, 0.0);
  EXPECT_GT(writes_only, 0.0);
  EXPECT_DOUBLE_EQ(model.remap_energy_pj(1000, 1000),
                   traffic_only + writes_only);
}

TEST(EnergyModel, RemapOverheadBelowPaperBound) {
  // The conclusion's claim: remap traffic < 0.5% power overhead. A typical
  // round (4 pairs, ~100k flit-hops, 8 arrays rewritten) against a
  // paper-scale epoch.
  RcsEnergyModel model;
  const EpochWorkload w =
      canonical_epoch_workload(320, 50000, 391, 128, 128);
  const EnergyBreakdown epoch = model.epoch_energy(w, 320, 260);
  const double remap = model.remap_energy_pj(100000, 8 * 128 * 128);
  const double pct = model.remap_overhead_percent(epoch, remap);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 0.5);
}

TEST(EnergyModel, OverheadZeroForEmptyEpoch) {
  RcsEnergyModel model;
  EnergyBreakdown empty;
  EXPECT_DOUBLE_EQ(model.remap_overhead_percent(empty, 100.0), 0.0);
}

TEST(CanonicalWorkload, ShapesFollowInputs) {
  const EpochWorkload w = canonical_epoch_workload(10, 100, 5, 64, 32);
  EXPECT_EQ(w.mvm_ops, 1000u);
  EXPECT_EQ(w.weight_writes, 50u);
  EXPECT_EQ(w.xbar_rows, 64u);
  EXPECT_EQ(w.xbar_cols, 32u);
  EXPECT_GT(w.noc_flit_hops, 0u);
  EXPECT_GT(w.edram_bits, 0u);
}

}  // namespace
}  // namespace remapd
