#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "trainer/fault_aware_trainer.hpp"

namespace remapd {
namespace {

/// Tiny configuration so each integration run takes ~a second.
TrainerConfig tiny(const std::string& model = "vgg11") {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.data.train = 48;
  cfg.data.test = 32;
  cfg.data.image_size = 12;
  return cfg;
}

TEST(Trainer, IdealRunProducesHistory) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::ideal();
  const TrainResult r = train_with_faults(cfg);
  EXPECT_EQ(r.model, "vgg11");
  EXPECT_EQ(r.policy, "none");
  EXPECT_EQ(r.dataset, "cifar10-like");
  ASSERT_EQ(r.history.size(), 2u);
  for (const EpochRecord& e : r.history) {
    EXPECT_GE(e.test_accuracy, 0.0);
    EXPECT_LE(e.test_accuracy, 1.0);
    EXPECT_TRUE(std::isfinite(e.train_loss));
    EXPECT_EQ(e.total_faults, 0u);
  }
  EXPECT_EQ(r.final_test_accuracy, r.history.back().test_accuracy);
  EXPECT_EQ(r.total_remaps, 0u);
}

TEST(Trainer, LossDecreasesOnIdealHardware) {
  TrainerConfig cfg = tiny();
  cfg.epochs = 4;
  const TrainResult r = train_with_faults(cfg);
  EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
}

TEST(Trainer, DeterministicForSeed) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::paper_default();
  cfg.policy = "remap-d";
  const TrainResult a = train_with_faults(cfg);
  const TrainResult b = train_with_faults(cfg);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_accuracy, b.history[i].test_accuracy);
    EXPECT_EQ(a.history[i].total_faults, b.history[i].total_faults);
    EXPECT_EQ(a.history[i].remaps, b.history[i].remaps);
  }
}

TEST(Trainer, SeedChangesOutcome) {
  TrainerConfig a = tiny(), b = tiny();
  b.seed = a.seed + 1;
  a.faults = b.faults = FaultScenario::paper_default();
  const TrainResult ra = train_with_faults(a);
  const TrainResult rb = train_with_faults(b);
  EXPECT_NE(ra.history.back().total_faults, rb.history.back().total_faults);
}

TEST(Trainer, FaultScenarioInjectsAndAccumulates) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::paper_default();
  const TrainResult r = train_with_faults(cfg);
  EXPECT_GT(r.history.front().total_faults, 0u);
  // Post-deployment faults accumulate epoch over epoch.
  EXPECT_GE(r.history.back().total_faults, r.history.front().total_faults);
  EXPECT_GT(r.history.back().mean_density_est, 0.0);
}

TEST(Trainer, BistCyclesReportedWhenEnabled) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::paper_default();
  cfg.use_bist_estimates = true;
  const TrainResult r = train_with_faults(cfg);
  EXPECT_EQ(r.history.back().bist_cycles,
            2 * (cfg.xbar_size + 2));  // survey cost of one crossbar

  TrainerConfig truth = tiny();
  truth.faults = FaultScenario::paper_default();
  truth.use_bist_estimates = false;
  EXPECT_EQ(train_with_faults(truth).history.back().bist_cycles, 0u);
}

TEST(Trainer, RemapDPerformsRemapsUnderFaults) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::paper_default();
  cfg.policy = "remap-d";
  const TrainResult r = train_with_faults(cfg);
  EXPECT_GT(r.total_remaps, 0u);
  EXPECT_EQ(r.policy, "remap-d");
}

TEST(Trainer, PhaseTargetedInjectionHitsOnlyThatPhase) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::uniform(0.02);
  cfg.fault_target = PhaseFaultTarget::kForwardOnly;
  FaultAwareTrainer trainer(cfg);
  (void)trainer.run();

  const WeightMapper& mapper = trainer.mapper();
  const Rcs& rcs = trainer.rcs();
  std::size_t fwd_faults = 0, bwd_faults = 0;
  for (XbarId x : mapper.xbars_of_phase(Phase::kForward))
    fwd_faults += rcs.crossbar(x).fault_count();
  for (XbarId x : mapper.xbars_of_phase(Phase::kBackward))
    bwd_faults += rcs.crossbar(x).fault_count();
  EXPECT_GT(fwd_faults, 0u);
  EXPECT_EQ(bwd_faults, 0u);
}

TEST(Trainer, PolicyAreaOverheadPropagated) {
  TrainerConfig cfg = tiny();
  cfg.policy = "an-code";
  EXPECT_DOUBLE_EQ(train_with_faults(cfg).policy_area_overhead_percent, 6.3);
  cfg.policy = "remap-t-10";
  EXPECT_DOUBLE_EQ(train_with_faults(cfg).policy_area_overhead_percent, 10.0);
}

TEST(Trainer, RcsSizedForModel) {
  TrainerConfig cfg = tiny("resnet12");
  FaultAwareTrainer trainer(cfg);
  EXPECT_GE(trainer.rcs().total_crossbars(), trainer.mapper().num_tasks());
  EXPECT_GT(trainer.mapper().num_tasks(), 0u);
}

TEST(Trainer, RecommendedConfigKnowsTheZoo) {
  const TrainerConfig vgg = recommended_config("vgg19");
  EXPECT_EQ(vgg.model, "vgg19");
  EXPECT_LT(vgg.sgd.lr, recommended_config("resnet18").sgd.lr);
  EXPECT_EQ(recommended_config("resnet12").epochs, 8u);
}

// Every zoo model's recommended configuration must survive trainer
// construction (model build, RCS sizing, tiling, mapping) — a registry
// entry whose config cannot even construct is dead on arrival.
TEST(Trainer, RecommendedConfigConstructsForEveryZooModel) {
  for (const std::string& name : model_zoo()) {
    TrainerConfig cfg = recommended_config(name);
    // Shrink the dataset so construction stays fast; the mapping/RCS
    // geometry under test is independent of sample counts.
    cfg.data.train = 32;
    cfg.data.test = 16;
    EXPECT_NO_THROW({
      FaultAwareTrainer trainer(cfg);
      EXPECT_EQ(trainer.config().model, name);
      EXPECT_GE(trainer.rcs().total_crossbars(),
                trainer.mapper().num_tasks());
    }) << "recommended_config(" << name << ") failed to construct";
  }
}

TEST(Trainer, EnvOverridesApply) {
  TrainerConfig cfg = tiny();
  setenv("REMAPD_EPOCHS", "3", 1);
  setenv("REMAPD_TRAIN", "64", 1);
  setenv("REMAPD_TEST", "16", 1);
  apply_env_overrides(cfg);
  unsetenv("REMAPD_EPOCHS");
  unsetenv("REMAPD_TRAIN");
  unsetenv("REMAPD_TEST");
  EXPECT_EQ(cfg.epochs, 3u);
  EXPECT_EQ(cfg.data.train, 64u);
  EXPECT_EQ(cfg.data.test, 16u);
}

TEST(Trainer, UnknownModelOrPolicyThrows) {
  TrainerConfig cfg = tiny();
  cfg.model = "lenet";
  EXPECT_THROW(FaultAwareTrainer{cfg}, std::invalid_argument);
  TrainerConfig cfg2 = tiny();
  cfg2.policy = "hope";
  EXPECT_THROW(FaultAwareTrainer{cfg2}, std::invalid_argument);
}


TEST(Trainer, RecommendedConfigWidensFragileModels) {
  // VGG-19 and SqueezeNet get 1.5x width (see DESIGN.md calibration §6.10).
  EXPECT_EQ(recommended_config("vgg19").model_cfg.base_width, 12u);
  EXPECT_EQ(recommended_config("squeezenet").model_cfg.base_width, 12u);
  EXPECT_EQ(recommended_config("resnet18").model_cfg.base_width, 8u);
}

TEST(Trainer, RcsHasMinimumMeshSize) {
  // Even a tiny model runs on at least the 4x4-tile chip of Fig. 3.
  TrainerConfig cfg = tiny("squeezenet");
  FaultAwareTrainer trainer(cfg);
  EXPECT_GE(trainer.rcs().num_tiles(), 16u);
}

TEST(Trainer, MappingStaysBijectiveAfterRemapping) {
  TrainerConfig cfg = tiny("resnet12");
  cfg.epochs = 3;
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
  cfg.policy = "remap-d";
  FaultAwareTrainer trainer(cfg);
  const TrainResult r = trainer.run();
  EXPECT_GT(r.total_remaps, 0u);

  const WeightMapper& mapper = trainer.mapper();
  std::set<XbarId> used;
  for (TaskId t = 0; t < mapper.num_tasks(); ++t) {
    const XbarId x = mapper.xbar_of(t);
    EXPECT_TRUE(used.insert(x).second) << "crossbar " << x << " reused";
    EXPECT_EQ(mapper.task_on(x), t);
  }
  // Every crossbar not in `used` must be idle.
  for (XbarId x = 0; x < trainer.rcs().total_crossbars(); ++x) {
    if (!used.count(x)) {
      EXPECT_EQ(mapper.task_on(x), kNoTask);
    }
  }
}

TEST(Trainer, MechanisticEnduranceProducesWearFaults) {
  TrainerConfig cfg = tiny("vgg11");
  cfg.epochs = 3;
  cfg.faults = FaultScenario::ideal();
  cfg.faults.enable_post = true;
  cfg.faults.mechanistic_endurance = true;
  cfg.faults.endurance.characteristic_writes = 60.0;  // fast wear for test
  const TrainResult r = train_with_faults(cfg);
  EXPECT_GT(r.history.back().total_faults, 0u);
  // Wear grows with accumulated writes epoch over epoch.
  EXPECT_GE(r.history.back().total_faults, r.history.front().total_faults);
}
// The central integration property: backward-phase faults hurt training
// far more than the same density of forward-phase faults (Fig. 5), and
// Remap-D recovers most of the loss under the combined scenario (Fig. 6).
// These run a few epochs and are the slowest tests in the suite.

TEST(TrainerSlow, BackwardFaultsHurtMoreThanForward) {
  TrainerConfig base = tiny("resnet12");
  base.epochs = 5;
  base.data.train = 128;
  base.data.test = 64;
  base.data.image_size = 16;
  base.faults = FaultScenario::uniform(0.02);

  TrainerConfig fwd = base;
  fwd.fault_target = PhaseFaultTarget::kForwardOnly;
  TrainerConfig bwd = base;
  bwd.fault_target = PhaseFaultTarget::kBackwardOnly;

  const double acc_fwd = train_with_faults(fwd).final_test_accuracy;
  const double acc_bwd = train_with_faults(bwd).final_test_accuracy;
  EXPECT_GT(acc_fwd, acc_bwd + 0.15);
}

TEST(TrainerSlow, RemapDBeatsNoProtection) {
  TrainerConfig base = tiny("resnet12");
  base.epochs = 5;
  base.data.train = 128;
  base.data.test = 64;
  base.data.image_size = 16;
  base.faults = FaultScenario::paper_default_compressed(base.epochs);

  // A single fault realization is extremely noisy at this scale: the
  // unprotected run ranges from total collapse to near-clean accuracy
  // depending on where the faults land, so compare the mean over a few
  // seeds. The protection margin is dominated by the collapse cases that
  // Remap-D prevents (Fig. 6).
  double acc_none = 0.0, acc_remap = 0.0;
  const std::uint64_t seeds[] = {42, 43, 44};
  for (const std::uint64_t seed : seeds) {
    TrainerConfig none = base;
    none.policy = "none";
    none.seed = seed;
    TrainerConfig remap = base;
    remap.policy = "remap-d";
    remap.seed = seed;
    acc_none += train_with_faults(none).final_test_accuracy;
    acc_remap += train_with_faults(remap).final_test_accuracy;
  }
  EXPECT_GT(acc_remap, acc_none);
}

// Regression: last() on an empty history used to be UB (vector::back on an
// empty vector); it must throw instead.
TEST(Trainer, LastThrowsOnEmptyHistory) {
  TrainResult empty;
  EXPECT_THROW((void)empty.last(), std::out_of_range);
}

TEST(Trainer, LastReturnsFinalEpoch) {
  TrainerConfig cfg = tiny();
  const TrainResult r = train_with_faults(cfg);
  ASSERT_FALSE(r.history.empty());
  EXPECT_EQ(&r.last(), &r.history.back());
  EXPECT_EQ(r.last().epoch, cfg.epochs - 1);
}

TEST(Trainer, NewFaultsRecordedPerEpoch) {
  TrainerConfig cfg = tiny();
  cfg.faults = FaultScenario::paper_default();
  const TrainResult r = train_with_faults(cfg);
  std::size_t new_total = 0;
  for (const EpochRecord& e : r.history) new_total += e.new_faults;
  EXPECT_GT(new_total, 0u);
  // Exact accounting: the ground-truth total grows by precisely the newly
  // failed cells of the epochs after the first record.
  EXPECT_EQ(r.history.back().total_faults,
            r.history.front().total_faults + new_total -
                r.history.front().new_faults);

  TrainerConfig ideal = tiny();
  ideal.faults = FaultScenario::ideal();
  for (const EpochRecord& e : train_with_faults(ideal).history)
    EXPECT_EQ(e.new_faults, 0u);
}

}  // namespace
}  // namespace remapd
