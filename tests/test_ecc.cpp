#include <gtest/gtest.h>

#include "ecc/an_code.hpp"

namespace remapd {
namespace {

TEST(AnCode, RejectsInvalidA) {
  EXPECT_THROW(AnCode(2), std::invalid_argument);
  EXPECT_THROW(AnCode(1), std::invalid_argument);
  EXPECT_THROW(AnCode(4), std::invalid_argument);
  EXPECT_NO_THROW(AnCode(3));
  EXPECT_NO_THROW(AnCode(17));
}

TEST(AnCode, EncodeDecodeRoundTrip) {
  AnCode code(17);
  for (std::int64_t v : {0L, 1L, -1L, 42L, -1000L, 123456L}) {
    EXPECT_EQ(code.decode(code.encode(v)), v);
  }
}

TEST(AnCode, DecodeRejectsCorruptedWord) {
  AnCode code(17);
  EXPECT_THROW((void)code.decode(code.encode(5) + 1), std::invalid_argument);
}

TEST(AnCode, CheckDetectsErrors) {
  AnCode code(17);
  EXPECT_TRUE(code.check(code.encode(7)));
  for (std::int64_t e = 1; e < 17; ++e)
    EXPECT_FALSE(code.check(code.encode(7) + e)) << e;
}

TEST(AnCode, CorrectsWithinCapability) {
  AnCode code(17);
  EXPECT_EQ(code.correctable_magnitude(), 8);
  const std::int64_t word = code.encode(-3);
  for (std::int64_t e = -8; e <= 8; ++e)
    EXPECT_EQ(code.correct(word + e), word) << "error " << e;
}

TEST(AnCode, MiscorrectsBeyondCapability) {
  // An error of magnitude > A/2 aliases to the wrong code word — exactly
  // the failure mode full-scale stuck-cell errors trigger.
  AnCode code(17);
  const std::int64_t word = code.encode(10);
  EXPECT_NE(code.correct(word + 9), word);
}

TEST(AnCode, LinearityUnderAddition) {
  // MVM accumulation preserves code membership: A*x + A*y = A*(x+y).
  AnCode code(9);
  const std::int64_t a = code.encode(12), b = code.encode(-5);
  EXPECT_TRUE(code.check(a + b));
  EXPECT_EQ(code.decode(a + b), 7);
}

TEST(AnCode, VectorHelpers) {
  AnCode code(17);
  const std::vector<std::int64_t> values = {1, -2, 30};
  auto encoded = code.encode(values);
  ASSERT_EQ(encoded.size(), 3u);
  encoded[1] += 3;  // small correctable error
  const auto decoded = code.correct_and_decode(encoded);
  EXPECT_EQ(decoded, values);
}

class AnCodeParamTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(AnCodeParamTest, ResidueFoldedSymmetric) {
  AnCode code(GetParam());
  for (std::int64_t v = -50; v <= 50; ++v) {
    const std::int64_t r = code.residue(v);
    EXPECT_LE(std::abs(r), code.a() / 2);
    EXPECT_EQ((v - r) % code.a(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AValues, AnCodeParamTest,
                         ::testing::Values(3, 5, 9, 17, 31, 127));

}  // namespace
}  // namespace remapd
