// Fleet subsystem: job-file parsing (strict, line+field errors), chip pool
// semantics, scheduler policies and admission control, per-job telemetry
// attribution, and the headline guarantee — a job live-migrated between
// identical chips mid-training produces *bitwise* the same training
// history as the same job run uninterrupted on one chip, at any thread
// count.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "fleet/chip.hpp"
#include "fleet/jobfile.hpp"
#include "fleet/migration.hpp"
#include "fleet/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "util/parallel.hpp"

namespace remapd {
namespace fleet {
namespace {

class FleetThreadGuard {
 public:
  explicit FleetThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~FleetThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

/// The small fast job every fleet test schedules (a vgg11 at ckpt-test
/// scale finishes an epoch in ~100 ms).
JobSpec tiny_job(const std::string& name, std::uint64_t seed = 7,
                 std::size_t epochs = 4) {
  JobSpec j;
  j.name = name;
  j.model = "resnet12";
  j.policy = "remap-d";
  j.epochs = epochs;
  j.train = 48;
  j.test = 32;
  j.seed = seed;
  return j;
}

ChipSpec pristine_chip(const std::string& name = "chip") {
  ChipSpec c;
  c.name = name;
  return c;
}

void expect_bitwise_equal_history(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const EpochRecord& x = a.history[i];
    const EpochRecord& y = b.history[i];
    EXPECT_EQ(x.epoch, y.epoch);
    EXPECT_EQ(x.train_loss, y.train_loss) << "epoch " << i;
    EXPECT_EQ(x.train_accuracy, y.train_accuracy) << "epoch " << i;
    EXPECT_EQ(x.test_accuracy, y.test_accuracy) << "epoch " << i;
    EXPECT_EQ(x.remaps, y.remaps) << "epoch " << i;
    EXPECT_EQ(x.total_faults, y.total_faults) << "epoch " << i;
    EXPECT_EQ(x.new_faults, y.new_faults) << "epoch " << i;
    EXPECT_EQ(x.mean_density_est, y.mean_density_est) << "epoch " << i;
  }
  EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
}

// ------------------------------------------------------------ job files

TEST(FleetJobfile, ParsesCsvWithReorderedColumns) {
  const std::string csv =
      "# fleet mix\n"
      "epochs,name,model,priority,seed\n"
      "4,alpha,resnet12,2,11\n"
      "2,beta,vgg11,-1,12\n";
  const std::vector<JobSpec> jobs = parse_jobs_csv(csv, "mix.csv");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "alpha");
  EXPECT_EQ(jobs[0].epochs, 4u);
  EXPECT_EQ(jobs[0].priority, 2);
  EXPECT_EQ(jobs[0].seed, 11u);
  EXPECT_EQ(jobs[1].model, "vgg11");
  EXPECT_EQ(jobs[1].priority, -1);
  // Unspecified columns keep spec defaults.
  EXPECT_EQ(jobs[1].policy, "remap-d");
}

TEST(FleetJobfile, ParsesJsonArray) {
  const std::string json =
      "[\n"
      "  {\"name\": \"a\", \"model\": \"resnet12\", \"epochs\": 3},\n"
      "  {\"name\": \"b\", \"policy\": \"none\", \"seed\": 99,\n"
      "   \"priority\": 5}\n"
      "]\n";
  const std::vector<JobSpec> jobs = parse_jobs_json(json, "mix.json");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].epochs, 3u);
  EXPECT_EQ(jobs[1].policy, "none");
  EXPECT_EQ(jobs[1].seed, 99u);
  EXPECT_EQ(jobs[1].priority, 5);
}

/// Malformed entries fail loudly, naming the line and the field.
TEST(FleetJobfile, RejectsBadValuesNamingLineAndField) {
  const std::string csv =
      "name,epochs\n"
      "ok,4\n"
      "bad,abc\n";
  try {
    parse_jobs_csv(csv, "jobs.csv");
    FAIL() << "expected FleetError";
  } catch (const FleetError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("jobs.csv line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("epochs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
  }
}

TEST(FleetJobfile, RejectsUnknownColumnOnHeaderLine) {
  try {
    parse_jobs_csv("name,epochz\nx,4\n", "jobs.csv");
    FAIL() << "expected FleetError";
  } catch (const FleetError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("jobs.csv line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("epochz"), std::string::npos) << msg;
  }
}

TEST(FleetJobfile, RejectsRaggedRowsZeroEpochsAndDuplicates) {
  EXPECT_THROW(parse_jobs_csv("name,epochs\na,4,9\n", "f"), FleetError);
  EXPECT_THROW(parse_jobs_csv("name,epochs\na,0\n", "f"), FleetError);
  EXPECT_THROW(parse_jobs_csv("name,epochs\na,4\na,2\n", "f"), FleetError);
  EXPECT_THROW(parse_jobs_csv("name,epochs\n", "f"), FleetError);
}

TEST(FleetJobfile, RejectsMalformedJson) {
  // Unknown key, with its line number.
  try {
    parse_jobs_json("[\n {\"name\": \"a\",\n  \"epoch\": 3}\n]", "j");
    FAIL() << "expected FleetError";
  } catch (const FleetError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("j line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("epoch"), std::string::npos) << msg;
  }
  // Floats, trailing garbage, bare truncation.
  EXPECT_THROW(parse_jobs_json("[{\"name\":\"a\",\"epochs\":1.5}]", "j"),
               FleetError);
  EXPECT_THROW(parse_jobs_json("[{\"name\":\"a\"}] extra", "j"), FleetError);
  EXPECT_THROW(parse_jobs_json("[{\"name\":\"a\"", "j"), FleetError);
  EXPECT_THROW(parse_jobs_json("[]", "j"), FleetError);
}

// ------------------------------------------------------------ chip pool

/// Cell-exact snapshot of an RCS (densities only count faults; the
/// serialized state distinguishes *which* cells are stuck).
std::string rcs_state(const Rcs& rcs) {
  ckpt::ByteWriter w;
  rcs.save_state(w);
  return w.bytes();
}

TEST(FleetChip, NativeImprintIsAFixedPerChipPattern) {
  ChipSpec spec = pristine_chip("c");
  spec.native_fault_density = 0.01;
  SimChip chip(0, spec);

  Rcs a(RcsConfig::sized_for(8, 32, 32));
  Rcs b(RcsConfig::sized_for(8, 32, 32));
  EXPECT_GT(chip.imprint_native(a), 0u);
  chip.imprint_native(b);
  // Same chip, same geometry: identical cell-level fault pattern.
  EXPECT_EQ(rcs_state(a), rcs_state(b));

  // A different chip of the same spec family stamps a different pattern.
  SimChip other(1, ChipSpec{"d", 0.01, 0.9, 0.0, 0.0, 99});
  Rcs c(RcsConfig::sized_for(8, 32, 32));
  other.imprint_native(c);
  EXPECT_NE(rcs_state(a), rcs_state(c));
}

TEST(FleetChip, WearRoundsAreDeterministicAndDistinct) {
  ChipSpec spec = pristine_chip("w");
  spec.wear_xbar_fraction = 0.5;
  spec.wear_cell_fraction = 0.01;

  SimChip x(0, spec);
  SimChip y(0, spec);
  Rcs rx(RcsConfig::sized_for(8, 32, 32));
  Rcs ry(RcsConfig::sized_for(8, 32, 32));
  const std::size_t w1x = x.inject_wear(rx);
  const std::size_t w1y = y.inject_wear(ry);
  EXPECT_GT(w1x, 0u);
  EXPECT_EQ(w1x, w1y);
  EXPECT_EQ(rcs_state(rx), rcs_state(ry));
  // The next round draws a fresh pattern on the same chip.
  const std::string after1 = rcs_state(rx);
  x.inject_wear(rx);
  EXPECT_NE(rcs_state(rx), after1);
}

TEST(FleetChip, PoolPicksHealthiestFreeChip) {
  ChipPool pool = ChipPool::homogeneous(3, pristine_chip());
  EXPECT_EQ(pool.free_count(), 3u);
  // All pristine: lowest id wins.
  EXPECT_EQ(pool.best_free_chip(4, 0.05, 2.0), 0u);
  pool.chip(0).bind(42);
  EXPECT_EQ(pool.best_free_chip(4, 0.05, 2.0), 1u);
  EXPECT_EQ(pool.best_free_chip(4, 0.05, 2.0, /*exclude=*/1), 2u);
  pool.chip(1).bind(43);
  pool.chip(2).bind(44);
  EXPECT_EQ(pool.best_free_chip(4, 0.05, 2.0), kNoIndex);
  EXPECT_THROW(pool.chip(0).bind(45), FleetError);
}

// ----------------------------------------------- migration determinism

/// Train `spec` uninterrupted on a lone pristine chip.
TrainResult single_chip_run(const JobSpec& spec) {
  ChipPool pool = ChipPool::homogeneous(1, pristine_chip());
  SchedulerConfig cfg;
  Scheduler sched(pool, cfg);
  sched.submit(spec);
  const FleetSummary s = sched.run();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.migrations, 0u);
  return sched.jobs()[0].trainer->result();
}

/// The acceptance-criteria test: preempt on chip A, resume on chip B
/// (identical chips — the job's fault schedule travels with it), and the
/// training history must match the unmigrated run bitwise. Exercised at 1
/// and 4 threads like the checkpoint resume tests.
void run_migration_determinism(std::size_t threads) {
  FleetThreadGuard guard(threads);
  const JobSpec spec = tiny_job("det", /*seed=*/21);
  const TrainResult base = single_chip_run(spec);
  ASSERT_EQ(base.history.size(), spec.epochs);

  ChipPool pool = ChipPool::homogeneous(2, pristine_chip());
  SchedulerConfig cfg;
  cfg.force_migrate_at_epoch = 2;
  Scheduler sched(pool, cfg);
  sched.submit(spec);
  const FleetSummary s = sched.run();
  EXPECT_EQ(s.completed, 1u);
  ASSERT_EQ(s.migrations, 1u);
  EXPECT_EQ(sched.migrations()[0].at_epoch, 2u);
  EXPECT_NE(sched.migrations()[0].from_chip, sched.migrations()[0].to_chip);

  expect_bitwise_equal_history(base, sched.jobs()[0].trainer->result());
}

TEST(FleetMigration, BitwiseDeterministicSerial) {
  run_migration_determinism(1);
}

TEST(FleetMigration, BitwiseDeterministicFourThreads) {
  run_migration_determinism(4);
}

/// Builds a bound, deployed job on `pool.chip(0)` outside the scheduler,
/// for the migration edge-case tests.
FleetJob deployed_job(const JobSpec& spec, ChipPool& pool) {
  FleetJob job;
  job.spec = spec;
  job.cfg = spec.trainer_config();
  job.trainer = std::make_unique<FaultAwareTrainer>(job.cfg);
  pool.chip(0).imprint_native(job.trainer->rcs());
  job.trainer->begin_training();
  pool.chip(0).bind(0);
  job.chip = 0;
  job.state = JobState::kRunning;
  return job;
}

TEST(FleetMigration, MigrateAtEpochZeroIsExact) {
  const JobSpec spec = tiny_job("epoch0", /*seed=*/31);
  const TrainResult base = single_chip_run(spec);

  // Migrate before a single epoch has run: the epoch-0 checkpoint must
  // already carry the deployed state (begin_training ran at bind).
  ChipPool pool = ChipPool::homogeneous(2, pristine_chip());
  FleetJob job = deployed_job(spec, pool);
  EXPECT_EQ(job.trainer->epochs_completed(), 0u);
  migrate_job(job, 0, pool.chip(0), pool.chip(1));
  EXPECT_EQ(job.chip, 1u);
  EXPECT_TRUE(pool.chip(0).free());
  EXPECT_TRUE(job.trainer->run_slice(0));
  expect_bitwise_equal_history(base, job.trainer->result());
}

TEST(FleetMigration, DoubleMigrationIsExact) {
  const JobSpec spec = tiny_job("double", /*seed=*/33);
  const TrainResult base = single_chip_run(spec);

  ChipPool pool = ChipPool::homogeneous(3, pristine_chip());
  FleetJob job = deployed_job(spec, pool);
  EXPECT_FALSE(job.trainer->run_slice(1));
  // Two back-to-back migrations with no training in between.
  migrate_job(job, 0, pool.chip(0), pool.chip(1));
  migrate_job(job, 0, pool.chip(1), pool.chip(2));
  EXPECT_EQ(job.migrations, 2u);
  EXPECT_TRUE(job.trainer->run_slice(0));
  expect_bitwise_equal_history(base, job.trainer->result());
}

TEST(FleetMigration, PreFaultedTargetImprintsItsDefects) {
  const JobSpec spec = tiny_job("prefault", /*seed=*/35, /*epochs=*/3);

  std::vector<ChipSpec> specs(2, pristine_chip());
  specs[0].name = "clean";
  specs[1].name = "scarred";
  specs[1].native_fault_density = 0.02;
  specs[1].seed = 77;
  ChipPool pool(std::move(specs));

  FleetJob job = deployed_job(spec, pool);
  EXPECT_FALSE(job.trainer->run_slice(1));
  const std::size_t faults_before = job.trainer->result().history.back()
                                        .total_faults;
  migrate_job(job, 0, pool.chip(0), pool.chip(1));
  // The target's native defects are stamped into the migrated-in RCS...
  EXPECT_GT(pool.chip(1).native_faults_imprinted(), 0u);
  // ...and the job still trains to completion on the scarred chip.
  EXPECT_TRUE(job.trainer->run_slice(0));
  EXPECT_EQ(job.trainer->result().history.size(), spec.epochs);
  EXPECT_GT(job.trainer->result().history.back().total_faults, faults_before);
}

TEST(FleetMigration, RefusesBusyTargetAndForeignSource) {
  const JobSpec spec = tiny_job("refuse", /*seed=*/37, /*epochs=*/2);
  ChipPool pool = ChipPool::homogeneous(3, pristine_chip());
  FleetJob job = deployed_job(spec, pool);
  pool.chip(1).bind(9);
  EXPECT_THROW(migrate_job(job, 0, pool.chip(0), pool.chip(1)), FleetError);
  EXPECT_THROW(migrate_job(job, 0, pool.chip(2), pool.chip(2)), FleetError);
  EXPECT_THROW(migrate_job(job, 5, pool.chip(0), pool.chip(2)), FleetError);
}

// ------------------------------------------------------------ scheduler

TEST(FleetScheduler, FifoRunsInSubmissionOrderOnOneChip) {
  ChipPool pool = ChipPool::homogeneous(1, pristine_chip());
  SchedulerConfig cfg;
  Scheduler sched(pool, cfg);
  for (int i = 0; i < 3; ++i)
    sched.submit(tiny_job("f" + std::to_string(i), 40 + i, /*epochs=*/1));
  const FleetSummary s = sched.run();
  EXPECT_EQ(s.completed, 3u);
  const std::vector<FleetJob>& jobs = sched.jobs();
  EXPECT_LT(jobs[0].finish_step, jobs[1].finish_step);
  EXPECT_LT(jobs[1].finish_step, jobs[2].finish_step);
}

TEST(FleetScheduler, PriorityPolicyRunsHighestFirst) {
  ChipPool pool = ChipPool::homogeneous(1, pristine_chip());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kPriority;
  Scheduler sched(pool, cfg);
  JobSpec lo = tiny_job("lo", 50, 1);
  JobSpec hi = tiny_job("hi", 51, 1);
  JobSpec mid = tiny_job("mid", 52, 1);
  lo.priority = 0;
  hi.priority = 9;
  mid.priority = 4;
  sched.submit(lo);
  sched.submit(hi);
  sched.submit(mid);
  const FleetSummary s = sched.run();
  EXPECT_EQ(s.completed, 3u);
  const std::vector<FleetJob>& jobs = sched.jobs();
  EXPECT_LT(jobs[1].finish_step, jobs[2].finish_step);  // hi before mid
  EXPECT_LT(jobs[2].finish_step, jobs[0].finish_step);  // mid before lo
}

TEST(FleetScheduler, AdmissionControlRejectsBeyondQueueBound) {
  ChipPool pool = ChipPool::homogeneous(1, pristine_chip());
  SchedulerConfig cfg;
  cfg.max_queued = 2;
  Scheduler sched(pool, cfg);
  for (int i = 0; i < 4; ++i)
    sched.submit(tiny_job("q" + std::to_string(i), 60 + i, /*epochs=*/1));
  const std::vector<FleetJob>& jobs = sched.jobs();
  EXPECT_EQ(jobs[0].state, JobState::kQueued);
  EXPECT_EQ(jobs[1].state, JobState::kQueued);
  EXPECT_EQ(jobs[2].state, JobState::kRejected);
  EXPECT_EQ(jobs[3].state, JobState::kRejected);
  EXPECT_NE(jobs[2].failure.find("admission"), std::string::npos);

  const FleetSummary s = sched.run();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_FALSE(jobs[2].trainer);  // rejected jobs never construct a trainer
}

TEST(FleetScheduler, BadModelFailsTheJobNotTheFleet) {
  ChipPool pool = ChipPool::homogeneous(1, pristine_chip());
  SchedulerConfig cfg;
  Scheduler sched(pool, cfg);
  JobSpec bad = tiny_job("bad", 70, 1);
  bad.model = "transformer9000";
  sched.submit(bad);
  sched.submit(tiny_job("good", 71, 1));
  const FleetSummary s = sched.run();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(sched.jobs()[0].state, JobState::kFailed);
  EXPECT_FALSE(sched.jobs()[0].failure.empty());
  EXPECT_EQ(sched.jobs()[1].state, JobState::kCompleted);
}

TEST(FleetScheduler, HealthDrivenMigrationMovesOffWearingChip) {
  // Chip 0 wears aggressively; chip 1 is pristine. The health score of
  // chip 0 collapses within a couple of slices and the job must move.
  std::vector<ChipSpec> specs(2, pristine_chip());
  specs[0].name = "wearing";
  specs[0].wear_xbar_fraction = 0.8;
  specs[0].wear_cell_fraction = 0.02;
  specs[1].name = "fresh";
  ChipPool pool(std::move(specs));

  SchedulerConfig cfg;
  cfg.migrate_below = 0.9;
  Scheduler sched(pool, cfg);
  sched.submit(tiny_job("mover", 80, /*epochs=*/4));
  const FleetSummary s = sched.run();
  EXPECT_EQ(s.completed, 1u);
  ASSERT_GE(s.migrations, 1u);
  const MigrationRecord& m = sched.migrations()[0];
  EXPECT_EQ(m.from_chip, 0u);
  EXPECT_EQ(m.to_chip, 1u);
  EXPECT_GT(m.to_score, m.from_score);
}

// --------------------------------------------------- telemetry attribution

TEST(FleetTelemetry, TwoJobsMetricsDoNotInterleave) {
  telemetry::Registry::instance().reset();
  telemetry::set_enabled(true);

  ChipPool pool = ChipPool::homogeneous(2, pristine_chip());
  SchedulerConfig cfg;
  Scheduler sched(pool, cfg);
  sched.submit(tiny_job("left", 90, /*epochs=*/2));
  sched.submit(tiny_job("right", 91, /*epochs=*/3));
  const FleetSummary s = sched.run();
  telemetry::set_enabled(false);
  EXPECT_EQ(s.completed, 2u);

  // Each job's trainer counters land under its own label...
  std::uint64_t left = 0, right = 0, unlabeled = 0, slices = 0;
  for (const auto& [name, value] :
       telemetry::Registry::instance().counters()) {
    if (name == "job:left/trainer.epochs") left = value;
    if (name == "job:right/trainer.epochs") right = value;
    if (name == "trainer.epochs") unlabeled = value;
    if (name == "fleet.slices") slices = value;
  }
  EXPECT_EQ(left, 2u);
  EXPECT_EQ(right, 3u);
  // ...nothing leaks into the unlabeled stream...
  EXPECT_EQ(unlabeled, 0u);
  // ...and fleet-level instruments stay unlabeled aggregates.
  EXPECT_EQ(slices, 5u);
  telemetry::Registry::instance().reset();
}

}  // namespace
}  // namespace fleet
}  // namespace remapd
