#include <gtest/gtest.h>

#include "bist/fsm.hpp"
#include "bist/march.hpp"

namespace remapd {
namespace {

TEST(MarchCMinus, FaultFreeArrayReportsNothing) {
  Crossbar xb(16, 16);
  const MarchResult res = march_c_minus(xb);
  EXPECT_TRUE(res.faults.empty());
  EXPECT_EQ(res.cycles, march_c_minus_cycles(256));
}

TEST(MarchCMinus, CycleCostIsTenOpsPerCell) {
  Crossbar xb(8, 4);
  const MarchResult res = march_c_minus(xb);
  EXPECT_EQ(res.cycles, 10u * 32u);
  EXPECT_EQ(res.reads + res.writes, res.cycles);
  EXPECT_EQ(res.reads, 5u * 32u);
  EXPECT_EQ(res.writes, 5u * 32u);
}

TEST(MarchCMinus, DetectsEveryStuckAtFaultWithLocationAndType) {
  Crossbar xb(32, 32);
  Rng rng(5);
  xb.inject_random_faults(40, 0.5, rng);
  const MarchResult res = march_c_minus(xb);
  ASSERT_EQ(res.fault_count(), 40u);
  for (const MarchFault& f : res.faults) {
    EXPECT_EQ(xb.fault_at(f.row, f.col), f.type)
        << "(" << f.row << "," << f.col << ")";
  }
}

TEST(MarchCMinus, DetectsSingleCornerFaults) {
  for (auto type : {CellFault::kStuckAt0, CellFault::kStuckAt1}) {
    Crossbar xb(4, 4);
    Rng rng(6);
    xb.inject_fault(3, 3, type, rng);
    const MarchResult res = march_c_minus(xb);
    ASSERT_EQ(res.fault_count(), 1u);
    EXPECT_EQ(res.faults[0].row, 3u);
    EXPECT_EQ(res.faults[0].col, 3u);
    EXPECT_EQ(res.faults[0].type, type);
  }
}

TEST(MarchCMinus, CostDwarfsDensityBist) {
  // The §II trade-off: exact locations cost ~630x the cycles of the
  // density-only BIST on a 128x128 array.
  const std::uint64_t march = march_c_minus_cycles(128 * 128);
  const std::uint64_t bist = BistFsm::total_cycles(128);
  EXPECT_EQ(march, 163840u);
  EXPECT_EQ(bist, 260u);
  EXPECT_GT(march / bist, 600u);
}

class MarchDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(MarchDensityTest, CountMatchesGroundTruthExactly) {
  Crossbar xb(64, 64);
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1e5));
  xb.inject_random_faults(
      static_cast<std::size_t>(GetParam() * 4096.0), 0.9, rng);
  const MarchResult res = march_c_minus(xb);
  EXPECT_EQ(res.fault_count(), xb.fault_count());
}

INSTANTIATE_TEST_SUITE_P(Densities, MarchDensityTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.25));

}  // namespace
}  // namespace remapd
