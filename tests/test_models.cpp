#include <gtest/gtest.h>

#include "models/registry.hpp"
#include "nn/loss.hpp"

namespace remapd {
namespace {

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, BuildsAndRunsForward) {
  Rng rng(42);
  ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  Model m = build_model(GetParam(), cfg, rng);
  EXPECT_EQ(m.name, GetParam());

  Tensor x = Tensor::randn(Shape{2, 3, 16, 16}, rng);
  Tensor y = m.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  for (std::size_t i = 0; i < y.numel(); ++i)
    ASSERT_TRUE(std::isfinite(y[i]));
}

TEST_P(ModelZooTest, BackwardProducesGradients) {
  Rng rng(43);
  ModelConfig cfg;
  cfg.input_size = 16;
  Model m = build_model(GetParam(), cfg, rng);
  Tensor x = Tensor::randn(Shape{4, 3, 16, 16}, rng);
  Tensor logits = m.forward(x, true);
  LossResult lr = softmax_cross_entropy(logits, {0, 1, 2, 3});
  m.backward(lr.dlogits);

  double grad_norm = 0.0;
  for (Param* p : m.params())
    for (std::size_t i = 0; i < p->grad.numel(); ++i)
      grad_norm += static_cast<double>(p->grad[i]) * p->grad[i];
  EXPECT_GT(grad_norm, 0.0);
  EXPECT_TRUE(std::isfinite(grad_norm));
}

TEST_P(ModelZooTest, HasFaultableLayers) {
  Rng rng(44);
  Model m = build_model(GetParam(), ModelConfig{}, rng);
  const auto layers = m.faultable();
  EXPECT_FALSE(layers.empty());
  std::size_t total = 0;
  for (FaultableLayer* l : layers) {
    EXPECT_GT(l->weight_rows(), 0u);
    EXPECT_GT(l->weight_cols(), 0u);
    total += l->weight_rows() * l->weight_cols();
  }
  EXPECT_EQ(total, m.total_mapped_weights());
}

TEST_P(ModelZooTest, VariableInputSizeSupported) {
  Rng rng(45);
  ModelConfig cfg;
  cfg.input_size = 8;
  Model m = build_model(GetParam(), cfg, rng);
  Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{1, 10}));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZooTest,
                         ::testing::ValuesIn(model_zoo()));

TEST(ModelZoo, ContainsThePaperSixModels) {
  const auto& zoo = model_zoo();
  EXPECT_EQ(zoo.size(), 6u);
  for (const char* name : {"vgg11", "vgg16", "vgg19", "resnet12", "resnet18",
                           "squeezenet"})
    EXPECT_NE(std::find(zoo.begin(), zoo.end(), name), zoo.end()) << name;
}

TEST(ModelZoo, UnknownNameThrows) {
  Rng rng(46);
  EXPECT_THROW(build_model("alexnet", ModelConfig{}, rng),
               std::invalid_argument);
  EXPECT_THROW(build_vgg(13, ModelConfig{}, rng), std::invalid_argument);
  EXPECT_THROW(build_resnet(34, ModelConfig{}, rng), std::invalid_argument);
}

TEST(ModelZoo, DepthOrderingInConvCount) {
  // VGG19 has strictly more faultable layers than VGG16 than VGG11, and
  // ResNet-18 more than ResNet-12 (the "6 conv layers removed" variant).
  Rng rng(47);
  auto count = [&](const std::string& name) {
    Model m = build_model(name, ModelConfig{}, rng);
    return m.faultable().size();
  };
  EXPECT_LT(count("vgg11"), count("vgg16"));
  EXPECT_LT(count("vgg16"), count("vgg19"));
  EXPECT_LT(count("resnet12"), count("resnet18"));
  // ResNet-12 = ResNet-18 minus 3 basic blocks = 6 convolutions.
  Model r18 = build_model("resnet18", ModelConfig{}, rng);
  Model r12 = build_model("resnet12", ModelConfig{}, rng);
  EXPECT_EQ(r18.faultable().size() - r12.faultable().size(), 6u);
}

TEST(ModelZoo, WidthScalesWithBaseWidth) {
  Rng rng(48);
  ModelConfig narrow, wide;
  narrow.base_width = 8;
  wide.base_width = 16;
  Model a = build_model("resnet12", narrow, rng);
  Model b = build_model("resnet12", wide, rng);
  EXPECT_GT(b.total_mapped_weights(), 3 * a.total_mapped_weights());
}

TEST(ModelZoo, ClassCountPropagates) {
  Rng rng(49);
  ModelConfig cfg;
  cfg.num_classes = 20;
  Model m = build_model("squeezenet", cfg, rng);
  Tensor x = Tensor::randn(Shape{1, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{1, 20}));
}

}  // namespace
}  // namespace remapd
