#include <gtest/gtest.h>

#include <set>

#include "data/synth.hpp"

namespace remapd {
namespace {

TEST(Synth, ClassCounts) {
  EXPECT_EQ(synth_num_classes(SynthKind::kCifar10), 10u);
  EXPECT_EQ(synth_num_classes(SynthKind::kCifar100), 20u);
  EXPECT_EQ(synth_num_classes(SynthKind::kSvhn), 10u);
  EXPECT_STREQ(synth_name(SynthKind::kCifar10), "cifar10-like");
  EXPECT_STREQ(synth_name(SynthKind::kSvhn), "svhn-like");
}

TEST(Synth, SizesAndShapes) {
  SynthSpec spec;
  spec.train = 64;
  spec.test = 32;
  spec.image_size = 12;
  TrainTest tt = make_synthetic(spec);
  EXPECT_EQ(tt.train.size(), 64u);
  EXPECT_EQ(tt.test.size(), 32u);
  EXPECT_EQ(tt.train.images.shape(), (Shape{64, 3, 12, 12}));
  EXPECT_EQ(tt.train.labels.size(), 64u);
  EXPECT_EQ(tt.train.num_classes, 10u);
}

TEST(Synth, BalancedLabels) {
  SynthSpec spec;
  spec.train = 100;
  TrainTest tt = make_synthetic(spec);
  std::vector<int> counts(10, 0);
  for (auto l : tt.train.labels) counts[static_cast<std::size_t>(l)]++;
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Synth, DeterministicForSeed) {
  SynthSpec spec;
  spec.train = 16;
  spec.test = 8;
  spec.seed = 77;
  TrainTest a = make_synthetic(spec);
  TrainTest b = make_synthetic(spec);
  EXPECT_EQ(max_abs_diff(a.train.images, b.train.images), 0.0f);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synth, DifferentSeedsDiffer) {
  SynthSpec a, b;
  a.train = b.train = 16;
  a.seed = 1;
  b.seed = 2;
  EXPECT_GT(max_abs_diff(make_synthetic(a).train.images,
                         make_synthetic(b).train.images),
            0.01f);
}

TEST(Synth, ClassesAreSeparated) {
  // Mean image of two classes should differ clearly relative to noise.
  SynthSpec spec;
  spec.train = 200;
  spec.noise = 0.1;
  TrainTest tt = make_synthetic(spec);
  const std::size_t elems = 3 * spec.image_size * spec.image_size;
  std::vector<double> mean0(elems, 0.0), mean1(elems, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    const float* img = tt.train.images.data() + i * elems;
    if (tt.train.labels[i] == 0) {
      for (std::size_t e = 0; e < elems; ++e) mean0[e] += img[e];
      ++n0;
    } else if (tt.train.labels[i] == 1) {
      for (std::size_t e = 0; e < elems; ++e) mean1[e] += img[e];
      ++n1;
    }
  }
  double dist = 0.0;
  for (std::size_t e = 0; e < elems; ++e)
    dist += std::pow(mean0[e] / n0 - mean1[e] / n1, 2);
  EXPECT_GT(std::sqrt(dist / elems), 0.1);
}

TEST(Synth, SvhnGlyphBrighterThanBackground) {
  SynthSpec spec;
  spec.kind = SynthKind::kSvhn;
  spec.train = 40;
  spec.noise = 0.05;
  TrainTest tt = make_synthetic(spec);
  // The glyph pixels have contrast >= 1.2 * gain >= 0.72, the background is
  // ~N(0, 0.3); the max pixel should clearly exceed the mean.
  const std::size_t elems = 3 * spec.image_size * spec.image_size;
  for (std::size_t i = 0; i < 5; ++i) {
    const float* img = tt.train.images.data() + i * elems;
    float mx = img[0];
    double mean = 0.0;
    for (std::size_t e = 0; e < elems; ++e) {
      mx = std::max(mx, img[e]);
      mean += img[e];
    }
    mean /= elems;
    EXPECT_GT(mx, mean + 0.5);
  }
}

class SynthKindTest : public ::testing::TestWithParam<SynthKind> {};

TEST_P(SynthKindTest, GeneratesValidDataset) {
  SynthSpec spec;
  spec.kind = GetParam();
  spec.train = 40;
  spec.test = 20;
  TrainTest tt = make_synthetic(spec);
  EXPECT_EQ(tt.train.num_classes, synth_num_classes(GetParam()));
  for (auto l : tt.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(static_cast<std::size_t>(l), tt.train.num_classes);
  }
  // All finite values.
  for (std::size_t i = 0; i < tt.train.images.numel(); ++i)
    ASSERT_TRUE(std::isfinite(tt.train.images[i]));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SynthKindTest,
                         ::testing::Values(SynthKind::kCifar10,
                                           SynthKind::kCifar100,
                                           SynthKind::kSvhn));

// ----------------------------------------------------------------- Batcher

TEST(Batcher, CoversEverySampleOncePerEpoch) {
  SynthSpec spec;
  spec.train = 50;
  TrainTest tt = make_synthetic(spec);
  Rng rng(5);
  Batcher batcher(tt.train, 16, rng);
  EXPECT_EQ(batcher.batches_per_epoch(), 4u);  // 16+16+16+2

  batcher.start_epoch();
  std::multiset<float> seen;
  std::size_t total = 0;
  for (std::size_t b = 0; b < batcher.batches_per_epoch(); ++b) {
    Batch batch = batcher.get(b);
    total += batch.labels.size();
    for (std::size_t k = 0; k < batch.labels.size(); ++k)
      seen.insert(batch.images[k * batch.images.numel() /
                               batch.labels.size()]);
  }
  EXPECT_EQ(total, 50u);
}

TEST(Batcher, ShufflesBetweenEpochs) {
  SynthSpec spec;
  spec.train = 32;
  TrainTest tt = make_synthetic(spec);
  Rng rng(6);
  Batcher batcher(tt.train, 32, rng);
  batcher.start_epoch();
  Batch a = batcher.get(0);
  batcher.start_epoch();
  Batch b = batcher.get(0);
  EXPECT_NE(a.labels, b.labels);  // overwhelmingly likely after shuffle
}

TEST(Batcher, OutOfRangeThrows) {
  SynthSpec spec;
  spec.train = 8;
  TrainTest tt = make_synthetic(spec);
  Rng rng(7);
  Batcher batcher(tt.train, 4, rng);
  EXPECT_THROW(batcher.get(2), std::out_of_range);
  EXPECT_THROW(Batcher(tt.train, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace remapd
