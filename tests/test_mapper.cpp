#include <gtest/gtest.h>

#include <set>

#include "xbar/mapper.hpp"

namespace remapd {
namespace {

Rcs make_rcs(std::size_t xbar = 32, std::size_t tiles = 4) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = tiles;
  cfg.xbar_rows = cfg.xbar_cols = xbar;
  return Rcs(cfg);
}

TEST(WeightMapper, RequiresSquareCrossbars) {
  RcsConfig cfg;
  cfg.xbar_rows = 16;
  cfg.xbar_cols = 32;
  Rcs rcs(cfg);
  EXPECT_THROW(WeightMapper{rcs}, std::invalid_argument);
}

TEST(WeightMapper, CreatesForwardAndBackwardTasks) {
  Rcs rcs = make_rcs();
  WeightMapper mapper(rcs);
  mapper.map_layers({{8, 27}, {64, 72}});
  // Layer 0: 1 fwd + 1 bwd block. Layer 1 (64x72 @32): fwd 2x3=6, bwd 3x2=6.
  EXPECT_EQ(mapper.num_tasks(), 14u);
  EXPECT_EQ(mapper.xbars_of_phase(Phase::kForward).size(), 7u);
  EXPECT_EQ(mapper.xbars_of_phase(Phase::kBackward).size(), 7u);
}

TEST(WeightMapper, TilingCoversMatrixExactlyOnce) {
  Rcs rcs = make_rcs();
  WeightMapper mapper(rcs);
  const std::size_t R = 70, C = 45;
  mapper.map_layers({{R, C}});

  std::vector<int> cover(R * C, 0);
  for (TaskId t = 0; t < mapper.num_tasks(); ++t) {
    const WeightBlock& blk = mapper.task(t);
    if (blk.phase != Phase::kForward) continue;
    for (std::size_t r = blk.row0; r < blk.row0 + blk.rows; ++r)
      for (std::size_t c = blk.col0; c < blk.col0 + blk.cols; ++c)
        cover[r * C + c]++;
  }
  for (int v : cover) ASSERT_EQ(v, 1);
}

TEST(WeightMapper, BlockExtentsFitCrossbars) {
  Rcs rcs = make_rcs(32);
  WeightMapper mapper(rcs);
  mapper.map_layers({{100, 200}});
  for (TaskId t = 0; t < mapper.num_tasks(); ++t) {
    const WeightBlock& blk = mapper.task(t);
    EXPECT_LE(blk.rows, 32u);
    EXPECT_LE(blk.cols, 32u);
    EXPECT_GT(blk.rows, 0u);
    EXPECT_GT(blk.cols, 0u);
  }
}

TEST(WeightMapper, ThrowsWhenRcsTooSmall) {
  Rcs rcs = make_rcs(8, 2);  // 2x2 tiles x 8 = 32 crossbars
  WeightMapper mapper(rcs);
  EXPECT_THROW(mapper.map_layers({{128, 128}}), std::runtime_error);
}

TEST(WeightMapper, AssignmentIsBijective) {
  Rcs rcs = make_rcs();
  WeightMapper mapper(rcs);
  mapper.map_layers({{40, 40}, {16, 90}});

  std::set<XbarId> used;
  for (TaskId t = 0; t < mapper.num_tasks(); ++t) {
    const XbarId x = mapper.xbar_of(t);
    EXPECT_TRUE(used.insert(x).second) << "crossbar reused";
    EXPECT_EQ(mapper.task_on(x), t);
  }
}

TEST(WeightMapper, SwapTasksMaintainsBijection) {
  Rcs rcs = make_rcs();
  WeightMapper mapper(rcs);
  mapper.map_layers({{40, 40}});
  const std::size_t n = mapper.num_tasks();
  ASSERT_GE(rcs.total_crossbars(), n + 1);

  // Swap with an occupied crossbar.
  const XbarId x0 = mapper.xbar_of(0), x1 = mapper.xbar_of(1);
  mapper.swap_tasks(0, x1);
  EXPECT_EQ(mapper.xbar_of(0), x1);
  EXPECT_EQ(mapper.xbar_of(1), x0);
  EXPECT_EQ(mapper.task_on(x1), 0u);
  EXPECT_EQ(mapper.task_on(x0), 1u);

  // Move to an idle crossbar.
  const XbarId idle = rcs.total_crossbars() - 1;
  ASSERT_EQ(mapper.task_on(idle), kNoTask);
  mapper.swap_tasks(0, idle);
  EXPECT_EQ(mapper.xbar_of(0), idle);
  EXPECT_EQ(mapper.task_on(x1), kNoTask);
}

TEST(WeightMapper, FaultViewMapsCellToWeightIndex) {
  Rcs rcs = make_rcs(32);
  WeightMapper mapper(rcs);
  mapper.map_layers({{8, 27}});
  Rng rng(1);

  // Forward block of layer 0 is task 0; crossbar cell (i, j) holds W(row0+j,
  // col0+i). Inject at cell (2, 5) -> weight (5, 2) -> index 5*27+2 = 137.
  const XbarId fx = mapper.xbar_of(0);
  rcs.crossbar(fx).inject_fault(2, 5, CellFault::kStuckAt1, rng);
  FaultView fwd = mapper.build_fault_view(0, Phase::kForward, 1.0f);
  ASSERT_EQ(fwd.clamps.size(), 1u);
  EXPECT_EQ(fwd.clamps[0].index, 5u * 27u + 2u);

  // Backward stores W^T (27x8). Cell (3, 4) holds W^T(4, 3) = W(3, 4) ->
  // index 3*27+4 = 85.
  const XbarId bx = mapper.xbar_of(1);
  ASSERT_EQ(mapper.task(1).phase, Phase::kBackward);
  rcs.crossbar(bx).inject_fault(3, 4, CellFault::kStuckAt0, rng);
  FaultView bwd = mapper.build_fault_view(0, Phase::kBackward, 1.0f);
  ASSERT_EQ(bwd.clamps.size(), 1u);
  EXPECT_EQ(bwd.clamps[0].index, 3u * 27u + 4u);
}

TEST(WeightMapper, FaultsOutsideOccupiedExtentIgnored) {
  Rcs rcs = make_rcs(32);
  WeightMapper mapper(rcs);
  mapper.map_layers({{8, 27}});  // occupies 27 rows x 8 cols of the array
  Rng rng(2);
  const XbarId fx = mapper.xbar_of(0);
  rcs.crossbar(fx).inject_fault(30, 30, CellFault::kStuckAt1, rng);
  EXPECT_TRUE(mapper.build_fault_view(0, Phase::kForward, 1.0f).empty());
  EXPECT_EQ(mapper.effective_fault_count(0), 0u);

  rcs.crossbar(fx).inject_fault(1, 1, CellFault::kStuckAt1, rng);
  EXPECT_EQ(mapper.effective_fault_count(0), 1u);
}

TEST(WeightMapper, ViewFollowsTaskAfterSwap) {
  Rcs rcs = make_rcs(32);
  WeightMapper mapper(rcs);
  mapper.map_layers({{8, 27}});
  Rng rng(3);

  const XbarId idle = rcs.total_crossbars() - 1;
  rcs.crossbar(idle).inject_fault(0, 0, CellFault::kStuckAt1, rng);

  EXPECT_TRUE(mapper.build_fault_view(0, Phase::kForward, 1.0f).empty());
  mapper.swap_tasks(0, idle);  // forward block moves onto the faulty array
  EXPECT_EQ(mapper.build_fault_view(0, Phase::kForward, 1.0f).clamps.size(),
            1u);
}

TEST(WeightMapper, HopDistanceUsesTileGrid) {
  Rcs rcs = make_rcs(32, 4);
  WeightMapper mapper(rcs);
  const std::size_t per_tile = rcs.config().xbars_per_tile();
  EXPECT_EQ(mapper.hop_distance(0, per_tile - 1), 0u);  // same tile
  EXPECT_EQ(mapper.hop_distance(0, per_tile), 1u);      // neighbour tile
}

TEST(WeightMapper, RecordWeightUpdateTouchesMappedOnly) {
  Rcs rcs = make_rcs(32);
  WeightMapper mapper(rcs);
  mapper.map_layers({{8, 27}});
  mapper.record_weight_update();
  EXPECT_EQ(rcs.crossbar(mapper.xbar_of(0)).array_writes(), 1u);
  EXPECT_EQ(rcs.crossbar(rcs.total_crossbars() - 1).array_writes(), 0u);
}

TEST(WeightMapper, BuildViewUsesMappingMode) {
  Rcs rcs = make_rcs(32);
  WeightMapper mapper(rcs);
  mapper.map_layers({{8, 27}});
  Rng rng(4);
  rcs.crossbar(mapper.xbar_of(0)).inject_fault(0, 0, CellFault::kStuckAt0,
                                               rng);
  FaultView single = mapper.build_fault_view(0, Phase::kForward, 1.0f,
                                             MappingMode::kSingleArrayBias);
  FaultView diff = mapper.build_fault_view(0, Phase::kForward, 1.0f,
                                           MappingMode::kDifferentialPair);
  EXPECT_EQ(single.mode, MappingMode::kSingleArrayBias);
  EXPECT_EQ(diff.mode, MappingMode::kDifferentialPair);
}

TEST(BlockCovers, ForwardAndBackwardSemantics) {
  WeightBlock fwd{0, Phase::kForward, 10, 20, 5, 6};
  EXPECT_TRUE(block_covers(fwd, 10, 20));
  EXPECT_TRUE(block_covers(fwd, 14, 25));
  EXPECT_FALSE(block_covers(fwd, 15, 20));
  EXPECT_FALSE(block_covers(fwd, 10, 26));

  // Backward block over W^T rows [10,15) x cols [20,26) covers W rows
  // [20,26) x cols [10,15).
  WeightBlock bwd{0, Phase::kBackward, 10, 20, 5, 6};
  EXPECT_TRUE(block_covers(bwd, 20, 10));
  EXPECT_TRUE(block_covers(bwd, 25, 14));
  EXPECT_FALSE(block_covers(bwd, 26, 10));
  EXPECT_FALSE(block_covers(bwd, 20, 15));
}

class MapperTilingProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MapperTilingProperty, ForwardPlusBackwardWeightConservation) {
  const auto [rows, cols] = GetParam();
  RcsConfig cfg = RcsConfig::sized_for(
      2 * ((rows + 31) / 32) * ((cols + 31) / 32) + 8, 32, 32);
  Rcs rcs(cfg);
  WeightMapper mapper(rcs);
  mapper.map_layers({{rows, cols}});

  std::size_t fwd_cells = 0, bwd_cells = 0;
  for (TaskId t = 0; t < mapper.num_tasks(); ++t) {
    const WeightBlock& blk = mapper.task(t);
    (blk.phase == Phase::kForward ? fwd_cells : bwd_cells) +=
        blk.rows * blk.cols;
  }
  EXPECT_EQ(fwd_cells, rows * cols);
  EXPECT_EQ(bwd_cells, rows * cols);
}

INSTANTIATE_TEST_SUITE_P(
    DimSweep, MapperTilingProperty,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(32u, 32u),
                      std::make_pair(33u, 31u), std::make_pair(64u, 576u),
                      std::make_pair(8u, 27u), std::make_pair(100u, 100u),
                      std::make_pair(7u, 129u)));

}  // namespace
}  // namespace remapd
