#include <gtest/gtest.h>

#include "area/area_model.hpp"

namespace remapd {
namespace {

TEST(AreaModel, AllComponentsPositive) {
  RcsAreaModel model{RcsAreaConfig{}};
  const AreaBreakdown b = model.compute();
  EXPECT_GT(b.crossbars, 0.0);
  EXPECT_GT(b.dacs, 0.0);
  EXPECT_GT(b.adcs, 0.0);
  EXPECT_GT(b.sample_holds, 0.0);
  EXPECT_GT(b.shift_adds, 0.0);
  EXPECT_GT(b.registers, 0.0);
  EXPECT_GT(b.edram, 0.0);
  EXPECT_GT(b.routers, 0.0);
  EXPECT_GT(b.func_units, 0.0);
  EXPECT_GT(b.bist, 0.0);
  EXPECT_GT(b.total_with_bist(), b.total_without_bist());
}

TEST(AreaModel, BistOverheadMatchesPaperBallpark) {
  // §IV.C reports 0.61% BIST area overhead; the calibrated component table
  // must land in that neighbourhood.
  RcsAreaModel model{RcsAreaConfig{}};
  const double pct = model.compute().bist_overhead_percent();
  EXPECT_GT(pct, 0.3);
  EXPECT_LT(pct, 1.0);
}

TEST(AreaModel, BistIsTinyComparedToBaselines) {
  RcsAreaModel model{RcsAreaConfig{}};
  const double bist = model.compute().bist_overhead_percent();
  EXPECT_LT(bist, RcsAreaModel::an_code_overhead_percent());
  EXPECT_LT(bist, RcsAreaModel::remap_t_overhead_percent(10.0));
  EXPECT_DOUBLE_EQ(RcsAreaModel::an_code_overhead_percent(), 6.3);
  EXPECT_DOUBLE_EQ(RcsAreaModel::remap_t_overhead_percent(5.0), 5.0);
}

TEST(AreaModel, ScalesWithSystemSize) {
  RcsAreaConfig small;
  small.num_tiles = 4;
  RcsAreaConfig big;
  big.num_tiles = 64;
  const double a = RcsAreaModel(small).compute().total_with_bist();
  const double b = RcsAreaModel(big).compute().total_with_bist();
  EXPECT_NEAR(b / a, 16.0, 1e-6);
  // The overhead *ratio* is size-independent (BIST per IMA).
  EXPECT_NEAR(RcsAreaModel(small).compute().bist_overhead_percent(),
              RcsAreaModel(big).compute().bist_overhead_percent(), 1e-9);
}

TEST(AreaModel, ReportListsEveryComponent) {
  RcsAreaModel model{RcsAreaConfig{}};
  const auto rows = model.report();
  EXPECT_EQ(rows.size(), 10u);
  double sum = 0.0;
  for (const auto& [name, um2] : rows) {
    EXPECT_FALSE(name.empty());
    sum += um2;
  }
  EXPECT_NEAR(sum, model.compute().total_with_bist(), 1e-6);
}

TEST(BistInventory, GateCountSumsComponents) {
  BistInventory inv;
  EXPECT_EQ(inv.total_gates(),
            inv.fsm_gates + inv.counter_gates + inv.flip_logic_gates +
                inv.density_accum_gates + inv.control_regs_gates);
  // A BIST module is a ~1k-gate digital block — far smaller than an IMA.
  EXPECT_LT(inv.total_gates(), 2000u);
}

}  // namespace
}  // namespace remapd
