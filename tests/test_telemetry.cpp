#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace remapd {
namespace telemetry {
namespace {

/// Scoped enable + clean slate, restoring disabled/empty state afterwards
/// so telemetry tests cannot leak into the rest of the suite.
class TelemetryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_all();
  }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator — enough to prove the Chrome
// trace export is well-formed JSON, without a parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counter / gauge / histogram math.

TEST_F(TelemetryFixture, CounterAddsAndResets) {
  Counter& c = Registry::instance().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryFixture, CounterHandleIsStableAcrossLookups) {
  Counter& a = Registry::instance().counter("test.stable");
  a.add(7);
  Counter& b = Registry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
}

TEST_F(TelemetryFixture, GaugeHoldsLastValue) {
  Gauge& g = Registry::instance().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(TelemetryFixture, HistogramCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  for (const std::uint64_t v : {5u, 100u, 3u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1108u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST_F(TelemetryFixture, HistogramBucketIndexing) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  // Bucket b's upper bound is the largest value with bit width b.
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
}

TEST_F(TelemetryFixture, HistogramPercentilesWithinBucketResolution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  // Power-of-two buckets: the quantile comes back as a bucket upper bound,
  // so it can overshoot by at most 2x (and is clamped to the max).
  const std::uint64_t p50 = h.percentile(0.50);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 100u);
  const std::uint64_t p95 = h.percentile(0.95);
  EXPECT_GE(p95, 95u);
  EXPECT_LE(p95, 100u);
  EXPECT_EQ(h.percentile(1.0), 100u);
  // All-equal samples pin every quantile to the (clamped) observed value.
  Histogram uniform;
  for (int i = 0; i < 10; ++i) uniform.record(7);
  EXPECT_EQ(uniform.percentile(0.50), 7u);
  EXPECT_EQ(uniform.percentile(0.99), 7u);
}

TEST_F(TelemetryFixture, HistogramIsThreadSafe) {
  Histogram& h = Registry::instance().histogram("test.mt");
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (int i = 0; i < kPer; ++i) h.record(static_cast<std::uint64_t>(i));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kPer - 1));
}

// ---------------------------------------------------------------------------
// Spans, nesting, disabled-mode behavior.

TEST_F(TelemetryFixture, SpanRecordsNestingAndDuration) {
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
  }
  const std::vector<TraceEvent> events = TraceBuffer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends first, so it is recorded first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].dur_ns, events[1].dur_ns);
  EXPECT_GE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(events[0].ph, 'X');
}

TEST_F(TelemetryFixture, InstantEventsCarryArgs) {
  trace_instant("remap", "core", "{\"sender\":3,\"receiver\":7}");
  const auto events = TraceBuffer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[0].dur_ns, 0u);
  EXPECT_EQ(events[0].args_json, "{\"sender\":3,\"receiver\":7}");
}

TEST_F(TelemetryFixture, DisabledModeIsANoOp) {
  set_enabled(false);
  {
    TraceSpan span("ghost", "test");
    trace_instant("ghost-instant", "test");
    count("test.ghost_counter");
    gauge_set("test.ghost_gauge", 9.0);
    observe("test.ghost_hist", 5);
  }
  EXPECT_EQ(TraceBuffer::instance().size(), 0u);
  EXPECT_EQ(Registry::instance().counter("test.ghost_counter").value(), 0u);
  EXPECT_DOUBLE_EQ(Registry::instance().gauge("test.ghost_gauge").value(),
                   0.0);
  EXPECT_EQ(Registry::instance().histogram("test.ghost_hist").count(), 0u);
}

TEST_F(TelemetryFixture, KernelTimerFeedsCounterAndHistogram) {
  Counter& calls = Registry::instance().counter("test.kernel_calls");
  Histogram& ns = Registry::instance().histogram("test.kernel_ns");
  { KernelTimer t(calls, ns); }
  { KernelTimer t(calls, ns); }
  EXPECT_EQ(calls.value(), 2u);
  EXPECT_EQ(ns.count(), 2u);

  set_enabled(false);
  { KernelTimer t(calls, ns); }
  EXPECT_EQ(calls.value(), 2u);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST_F(TelemetryFixture, ChromeTraceIsParseableJsonArrayOfXEvents) {
  {
    TraceSpan outer("epoch", "trainer", "{\"epoch\":0}");
    TraceSpan inner("forward", "trainer");
  }
  trace_instant("remap", "core", "{\"sender\":1,\"receiver\":2}");

  const std::string json = chrome_trace_json();
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"epoch\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TelemetryFixture, EmptyTraceIsStillValidJson) {
  const std::string json = chrome_trace_json();
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
}

TEST_F(TelemetryFixture, JsonEscapingSurvivesHostileNames) {
  {
    TraceSpan span("quote\" back\\slash\nnewline", "test");
  }
  const std::string json = chrome_trace_json();
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
}

TEST_F(TelemetryFixture, JsonlEmitsOneObjectPerLine) {
  { TraceSpan span("alpha", "test"); }
  Registry::instance().counter("test.c").add(3);
  Registry::instance().histogram("test.h").record(11);

  const std::string out = jsonl();
  std::size_t lines = 0, start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const std::string line = out.substr(start, end - start);
    if (!line.empty()) {
      JsonValidator v(line);
      EXPECT_TRUE(v.valid()) << line;
      ++lines;
    }
    start = end + 1;
  }
  EXPECT_GE(lines, 3u);
  EXPECT_NE(out.find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"histogram\""), std::string::npos);
}

TEST_F(TelemetryFixture, SummaryTableListsSpansAndCounters) {
  { TraceSpan span("bist-survey", "trainer"); }
  Registry::instance().counter("noc.flits_injected").add(64);
  const std::string table = summary_table();
  EXPECT_NE(table.find("bist-survey"), std::string::npos);
  EXPECT_NE(table.find("noc.flits_injected"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

TEST_F(TelemetryFixture, RegistryResetZeroesButKeepsHandles) {
  Counter& c = Registry::instance().counter("test.reset_me");
  c.add(5);
  { TraceSpan span("soon-gone", "test"); }
  reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(TraceBuffer::instance().size(), 0u);
  c.add(2);
  EXPECT_EQ(Registry::instance().counter("test.reset_me").value(), 2u);
}

}  // namespace
}  // namespace telemetry
}  // namespace remapd
