#include <gtest/gtest.h>

#include "noc/topology.hpp"

namespace remapd {
namespace noc {
namespace {

TEST(Topology, MeshBasics) {
  const TopologyStats s = analyze_mesh(4, 4);
  EXPECT_EQ(s.routers, 16u);
  EXPECT_EQ(s.ports_per_router, 5u);
  EXPECT_EQ(s.max_hops, 6u);  // corner to corner
  EXPECT_EQ(s.broadcast_tree_links, 15u);
  EXPECT_GT(s.avg_hops, 0.0);
}

TEST(Topology, CmeshBasics) {
  const TopologyStats s = analyze_cmesh(4, 4);
  EXPECT_EQ(s.routers, 4u);
  EXPECT_EQ(s.ports_per_router, 8u);
  EXPECT_EQ(s.max_hops, 2u);
  EXPECT_EQ(s.broadcast_tree_links, 3u);
}

class TopologySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologySweep, CmeshDominatesMesh) {
  const std::size_t dim = GetParam();
  const TopologyStats mesh = analyze_mesh(dim, dim);
  const TopologyStats cmesh = analyze_cmesh(dim, dim);
  // The §III.B.1 claims: fewer routers, lower hop counts, smaller
  // broadcast tree, less total switch area.
  EXPECT_EQ(cmesh.routers * 4, mesh.routers);
  EXPECT_LT(cmesh.avg_hops, mesh.avg_hops);
  EXPECT_LE(cmesh.max_hops, mesh.max_hops);
  EXPECT_LT(cmesh.broadcast_tree_links, mesh.broadcast_tree_links);
  EXPECT_LT(cmesh.relative_router_area, mesh.relative_router_area);
}

INSTANTIATE_TEST_SUITE_P(Dims, TopologySweep,
                         ::testing::Values(4, 6, 8, 12, 16));

TEST(Topology, AvgHopsMatchesHandComputation) {
  // 2x2 tiles on a c-mesh collapse into one router: all hops zero.
  const TopologyStats s = analyze_cmesh(2, 2);
  EXPECT_EQ(s.routers, 1u);
  EXPECT_DOUBLE_EQ(s.avg_hops, 0.0);
  EXPECT_EQ(s.max_hops, 0u);

  // 1x2 mesh: the only pair is one hop apart.
  const TopologyStats m = analyze_mesh(2, 1);
  EXPECT_DOUBLE_EQ(m.avg_hops, 1.0);
}

}  // namespace
}  // namespace noc
}  // namespace remapd
