// Checkpoint subsystem: serialization primitives, the checksummed
// container, corruption rejection, and the headline guarantee — a run
// interrupted at a checkpoint and resumed in a fresh process state
// continues *bitwise* identically to the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "ckpt/crc32.hpp"
#include "tensor/tensor.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace remapd {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "remapd_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// ------------------------------------------------------------- primitives

TEST(Snapshot, PrimitiveRoundTrip) {
  ckpt::ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f32(3.25f);
  w.f64(-1.0 / 3.0);
  w.boolean(true);
  w.str("hello checkpoint");
  w.vec_u8({1, 2, 3});
  w.vec_u64({10, 20});
  w.vec_f32({0.5f, -0.5f});
  w.vec_f64({1e-300, 1e300});

  ckpt::ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 3.25f);
  EXPECT_EQ(r.f64(), -1.0 / 3.0);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello checkpoint");
  EXPECT_EQ(r.vec_u8(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{10, 20}));
  EXPECT_EQ(r.vec_f32(), (std::vector<float>{0.5f, -0.5f}));
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1e-300, 1e300}));
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Snapshot, ReadPastEndThrows) {
  ckpt::ByteWriter w;
  w.u32(7);
  ckpt::ByteReader r(w.bytes().data(), w.size());
  r.u32();
  EXPECT_THROW(r.u8(), ckpt::CheckpointError);
}

TEST(Snapshot, ExpectEndCatchesLeftovers) {
  ckpt::ByteWriter w;
  w.u64(1);
  w.u64(2);
  ckpt::ByteReader r(w.bytes().data(), w.size());
  r.u64();
  EXPECT_THROW(r.expect_end(), ckpt::CheckpointError);
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(ckpt::crc32(s, 9), 0xCBF43926u);
}

TEST(Snapshot, TensorRoundTripAndShapeCheck) {
  Tensor t = Tensor::zeros({2, 3});
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(i) * 0.25f;
  ckpt::ByteWriter w;
  save_tensor(w, t);
  {
    ckpt::ByteReader r(w.bytes().data(), w.size());
    const Tensor back = load_tensor(r);
    ASSERT_EQ(back.shape(), t.shape());
    for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], t[i]);
  }
  {
    ckpt::ByteReader r(w.bytes().data(), w.size());
    Tensor wrong = Tensor::zeros({3, 2});
    EXPECT_THROW(load_tensor_into(r, wrong), ckpt::CheckpointError);
  }
}

TEST(Snapshot, RngRoundTripIncludesDistributionCache) {
  Rng a(123);
  // Odd number of normal() draws: normal_distribution caches a Box-Muller
  // spare, so the next draw comes from internal state, not the engine.
  for (int i = 0; i < 7; ++i) a.normal();
  a.uniform();

  ckpt::ByteWriter w;
  a.save_state(w);
  Rng b(999);  // deliberately different stream before restore
  ckpt::ByteReader r(w.bytes().data(), w.size());
  b.load_state(r);

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.uniform_int(0, 1 << 20), b.uniform_int(0, 1 << 20));
  }
}

// -------------------------------------------------------------- container

ckpt::CheckpointWriter small_checkpoint() {
  ckpt::CheckpointWriter w;
  ckpt::ByteWriter& a = w.section("alpha");
  a.str("first section");
  a.u64(42);
  ckpt::ByteWriter& b = w.section("beta");
  b.vec_f64({1.5, -2.5});
  return w;
}

TEST(Checkpoint, SectionRoundTrip) {
  const std::string bytes = small_checkpoint().serialize();
  const ckpt::CheckpointReader r = ckpt::CheckpointReader::from_bytes(bytes);
  ASSERT_EQ(r.sections().size(), 2u);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_TRUE(r.has("beta"));
  EXPECT_FALSE(r.has("gamma"));
  ckpt::ByteReader a = r.open("alpha");
  EXPECT_EQ(a.str(), "first section");
  EXPECT_EQ(a.u64(), 42u);
  a.expect_end();
  ckpt::ByteReader b = r.open("beta");
  EXPECT_EQ(b.vec_f64(), (std::vector<double>{1.5, -2.5}));
  EXPECT_THROW(static_cast<void>(r.open("gamma")), ckpt::CheckpointError);
}

TEST(Checkpoint, DuplicateSectionThrows) {
  ckpt::CheckpointWriter w;
  w.section("dup");
  EXPECT_THROW(w.section("dup"), ckpt::CheckpointError);
}

TEST(Checkpoint, EveryFlippedByteIsRejected) {
  const std::string good = small_checkpoint().serialize();
  ASSERT_NO_THROW(ckpt::CheckpointReader::from_bytes(good));
  // A flip anywhere — magic, header, table, payload — must be caught.
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_THROW(ckpt::CheckpointReader::from_bytes(bad),
                 ckpt::CheckpointError)
        << "flip at byte " << pos << " was accepted";
  }
}

TEST(Checkpoint, TruncationIsRejected) {
  const std::string good = small_checkpoint().serialize();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{17}, good.size() - 1}) {
    EXPECT_THROW(ckpt::CheckpointReader::from_bytes(good.substr(0, keep)),
                 ckpt::CheckpointError)
        << "truncation to " << keep << " bytes was accepted";
  }
}

TEST(Checkpoint, WrongVersionIsRejected) {
  std::string bytes = small_checkpoint().serialize();
  // format_version lives right after the 8-byte magic (little-endian u32);
  // bump it and fix nothing else: version check fires before any CRC.
  bytes[8] = static_cast<char>(ckpt::kFormatVersion + 1);
  try {
    ckpt::CheckpointReader::from_bytes(bytes);
    FAIL() << "wrong version accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Checkpoint, AtomicWriteLeavesNoTmpFile) {
  const std::string path = tmp_path("atomic.ckpt");
  small_checkpoint().write_file(path);
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_NO_THROW(ckpt::CheckpointReader{path});
  // Overwrite is atomic too.
  small_checkpoint().write_file(path);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(ckpt::CheckpointReader{tmp_path("does_not_exist.ckpt")},
               ckpt::CheckpointError);
}

// ----------------------------------------------------- bitwise resume

class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) : old_(parallel_threads()) {
    set_parallel_threads(n);
  }
  ~ThreadGuard() { set_parallel_threads(old_); }

 private:
  std::size_t old_;
};

TrainerConfig resume_cfg() {
  TrainerConfig cfg;
  cfg.model = "vgg11";
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.data.train = 48;
  cfg.data.test = 32;
  cfg.data.image_size = 12;
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
  cfg.policy = "remap-d";
  return cfg;
}

void expect_bitwise_equal_history(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const EpochRecord& x = a.history[i];
    const EpochRecord& y = b.history[i];
    EXPECT_EQ(x.epoch, y.epoch);
    EXPECT_EQ(x.train_loss, y.train_loss) << "epoch " << i;
    EXPECT_EQ(x.train_accuracy, y.train_accuracy) << "epoch " << i;
    EXPECT_EQ(x.test_accuracy, y.test_accuracy) << "epoch " << i;
    EXPECT_EQ(x.remaps, y.remaps) << "epoch " << i;
    EXPECT_EQ(x.total_faults, y.total_faults) << "epoch " << i;
    EXPECT_EQ(x.new_faults, y.new_faults) << "epoch " << i;
    EXPECT_EQ(x.mean_density_est, y.mean_density_est) << "epoch " << i;
    EXPECT_EQ(x.new_upsets, y.new_upsets) << "epoch " << i;
    EXPECT_EQ(x.live_upsets, y.live_upsets) << "epoch " << i;
    EXPECT_EQ(x.refreshed_cells, y.refreshed_cells) << "epoch " << i;
    EXPECT_EQ(x.refresh_cycles, y.refresh_cycles) << "epoch " << i;
  }
  EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
  EXPECT_EQ(a.total_remaps, b.total_remaps);
}

/// The headline test: run 4 epochs straight; separately run 2 epochs,
/// checkpoint, resume in a fresh trainer, finish — everything (per-epoch
/// metrics, weights, fault maps, task assignments) must match bitwise.
/// The final-state comparison is done on the serialized checkpoints of
/// both runs, which cover every stateful component byte for byte.
void run_resume_comparison(std::size_t threads) {
  ThreadGuard guard(threads);
  const std::string mid = tmp_path("resume_mid_" + std::to_string(threads) +
                                   ".ckpt");
  const std::string end_a = tmp_path("resume_full_" + std::to_string(threads) +
                                     ".ckpt");
  const std::string end_b = tmp_path("resume_resumed_" +
                                     std::to_string(threads) + ".ckpt");

  // Leg 1: uninterrupted reference run.
  TrainResult full;
  {
    FaultAwareTrainer trainer(resume_cfg());
    full = trainer.run();
    trainer.save_checkpoint(end_a);
  }

  // Leg 2: train 2 epochs, checkpoint, stop.
  {
    TrainerConfig cfg = resume_cfg();
    cfg.checkpoint_path = mid;
    cfg.checkpoint_every = 1;
    cfg.stop_after_epochs = 2;
    FaultAwareTrainer trainer(cfg);
    const TrainResult partial = trainer.run();
    EXPECT_EQ(partial.history.size(), 2u);
  }
  ASSERT_TRUE(file_exists(mid));

  // Leg 3: fresh trainer, restore, finish the remaining epochs.
  TrainResult resumed;
  {
    TrainerConfig cfg = resume_cfg();
    cfg.resume_from = mid;
    FaultAwareTrainer trainer(cfg);
    resumed = trainer.run();
    trainer.save_checkpoint(end_b);
  }

  expect_bitwise_equal_history(full, resumed);
  // Byte-identical final checkpoints: weights, momentum, BN statistics,
  // RNG streams, cell-level fault maps, wear counters, task map, density
  // map, history — all of it.
  EXPECT_EQ(slurp(end_a), slurp(end_b));

  std::remove(mid.c_str());
  std::remove(end_a.c_str());
  std::remove(end_b.c_str());
}

TEST(CheckpointResume, BitwiseIdenticalSingleThread) {
  run_resume_comparison(1);
}

TEST(CheckpointResume, BitwiseIdenticalFourThreads) {
  run_resume_comparison(4);
}

TEST(CheckpointResume, CorruptCheckpointRefusesToResume) {
  const std::string path = tmp_path("corrupt.ckpt");
  {
    TrainerConfig cfg = resume_cfg();
    cfg.epochs = 2;
    cfg.faults = FaultScenario::ideal();
    FaultAwareTrainer trainer(cfg);
    trainer.run();
    trainer.save_checkpoint(path);
  }
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << bytes;
  }
  TrainerConfig cfg = resume_cfg();
  cfg.epochs = 2;
  cfg.faults = FaultScenario::ideal();
  cfg.resume_from = path;
  EXPECT_THROW(FaultAwareTrainer{cfg}, ckpt::CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointResume, ConfigMismatchIsNamed) {
  const std::string path = tmp_path("mismatch.ckpt");
  {
    TrainerConfig cfg = resume_cfg();
    cfg.epochs = 2;
    cfg.faults = FaultScenario::ideal();
    FaultAwareTrainer trainer(cfg);
    trainer.run();
    trainer.save_checkpoint(path);
  }
  TrainerConfig cfg = resume_cfg();
  cfg.epochs = 2;
  cfg.faults = FaultScenario::ideal();
  cfg.seed = 4242;  // diverges from the checkpointed run
  cfg.resume_from = path;
  try {
    FaultAwareTrainer trainer(cfg);
    FAIL() << "seed mismatch accepted";
  } catch (const ckpt::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("seed"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remapd
